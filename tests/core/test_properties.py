"""Property-based tests of the flattening isomorphism (Theorem 2).

The correctness proof's key step: lifting preserves operations --
performing an operation per group and then flattening equals flattening
first and performing the lifted operation.  These properties drive random
nested datasets through both paths.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.control_flow import while_loop
from repro.core.nestedbag import group_by_key_into_nested_bag, nested_map
from repro.engine import EngineContext, laptop_config

group_keys = st.sampled_from(["g0", "g1", "g2", "g3"])
values = st.integers(min_value=-50, max_value=50)
nested_datasets = st.lists(
    st.tuples(group_keys, values), min_size=1, max_size=25
)


def groups_of(records):
    groups = {}
    for key, value in records:
        groups.setdefault(key, []).append(value)
    return groups


def build_nested(records):
    ctx = EngineContext(laptop_config())
    return group_by_key_into_nested_bag(ctx.bag_of(records))


@settings(max_examples=30, deadline=None)
@given(records=nested_datasets)
def test_lifted_map_preserves_per_group_semantics(records):
    nested = build_nested(records)
    got = nested.inner.map(lambda x: x * 2 + 1).collect_nested()
    expected = {
        key: Counter(x * 2 + 1 for x in group)
        for key, group in groups_of(records).items()
    }
    assert {k: Counter(v) for k, v in got.items()} == expected


@settings(max_examples=30, deadline=None)
@given(records=nested_datasets)
def test_lifted_filter_preserves_per_group_semantics(records):
    nested = build_nested(records)
    got = nested.inner.filter(lambda x: x > 0).collect_nested()
    for key, group in groups_of(records).items():
        # A fully filtered-out group has no representation records at
        # all -- the Sec. 4.4 property that makes the stored tags bag
        # necessary for count().
        assert Counter(got.get(key, [])) == Counter(
            x for x in group if x > 0
        )


@settings(max_examples=30, deadline=None)
@given(records=nested_datasets)
def test_lifted_count_equals_per_group_len(records):
    nested = build_nested(records)
    got = nested.inner.count().as_dict()
    assert got == {k: len(v) for k, v in groups_of(records).items()}


@settings(max_examples=30, deadline=None)
@given(records=nested_datasets)
def test_lifted_sum_equals_per_group_sum(records):
    nested = build_nested(records)
    assert nested.inner.sum().as_dict() == {
        k: sum(v) for k, v in groups_of(records).items()
    }


@settings(max_examples=30, deadline=None)
@given(records=nested_datasets)
def test_lifted_distinct_equals_per_group_set(records):
    nested = build_nested(records)
    got = nested.inner.distinct().collect_nested()
    for key, group in groups_of(records).items():
        assert sorted(got[key]) == sorted(set(group))


@settings(max_examples=30, deadline=None)
@given(records=nested_datasets)
def test_lifted_reduce_by_key_equals_per_group_reduction(records):
    nested = build_nested(records)
    keyed = nested.inner.map(lambda x: (x % 3, x))
    got = nested.inner.map(lambda x: (x % 3, x)).reduce_by_key(
        lambda a, b: a + b
    ).collect_nested()
    del keyed
    for key, group in groups_of(records).items():
        expected = {}
        for x in group:
            expected[x % 3] = expected.get(x % 3, 0) + x
        assert dict(got[key]) == expected


@settings(max_examples=30, deadline=None)
@given(records=nested_datasets)
def test_flatten_is_the_inverse_of_nesting(records):
    nested = build_nested(records)
    assert Counter(nested.flatten().collect()) == Counter(records)


@settings(max_examples=30, deadline=None)
@given(records=nested_datasets)
def test_scalar_pipeline_matches_per_group_computation(records):
    """A whole mini-UDF (count, sum, arithmetic) via both paths."""
    nested = build_nested(records)
    result = nested.map_groups(
        lambda _keys, inner: (inner.sum() + inner.count() * 10)
    ).as_dict()
    for key, group in groups_of(records).items():
        assert result[key] == sum(group) + len(group) * 10


@settings(max_examples=20, deadline=None)
@given(
    seeds=st.lists(
        st.integers(min_value=0, max_value=30), min_size=1, max_size=8
    ),
    step=st.integers(min_value=1, max_value=5),
    bound=st.integers(min_value=1, max_value=40),
)
def test_lifted_while_equals_sequential_loops(seeds, step, bound):
    """Listing 4's lifted loop vs. running each original loop alone."""
    ctx = EngineContext(laptop_config())

    def sequential(value):
        iterations = 0
        while value < bound:
            value += step
            iterations += 1
        return value, iterations

    def udf(x):
        state = while_loop(
            {"x": x, "it": 0},
            cond_fn=lambda s: s["x"] < bound,
            body_fn=lambda s: {"x": s["x"] + step, "it": s["it"] + 1},
            loop_vars=["x", "it"],
        )
        return state["x"].binary(state["it"], lambda a, b: (a, b))

    got = nested_map(ctx.bag_of(seeds), udf).collect_values()
    assert Counter(got) == Counter(sequential(v) for v in seeds)

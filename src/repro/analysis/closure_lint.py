"""NPL2xx: closure serializability, checked at decoration/import time.

The PR 2 task runtime serializes each task closure when a stage is
dispatched on the process backend; an unserializable capture surfaces
there as a :class:`~repro.errors.SerializationError` *mid-job*.  This
pass resolves a UDF's captured names up front and probes every captured
value with the runtime's own serde layer
(:func:`repro.engine.runtime.serde.check_serializable`), so the same
failure is reported at import time with the variable's name.

A second check (NPL202) catches captures that may even serialize but are
semantically wrong to ship: engine runtime objects such as an
:class:`~repro.engine.context.EngineContext` or a
:class:`~repro.engine.bag.Bag`.  A UDF holding a context would launch
jobs from inside a job -- the inner-parallel antipattern the paper's
flattening exists to remove.

Both checks unwrap ``functools.partial`` objects and bound methods
before inspecting captures: a partial's frozen arguments and a method's
bound instance ship with the task exactly like closure cells do, so the
diagnostics name the offending value rather than the opaque wrapper
(which used to hide the real capture entirely -- a bare ``partial`` has
no ``__code__``, and the pass silently skipped it).
"""

import functools

from ..engine.runtime.serde import check_serializable
from .diagnostics import make_diagnostic


def analyze_closure(fn, filename=None, line=None):
    """Closure diagnostics for one function; returns Diagnostics.

    Args:
        fn: The function to check.  A ``@nested_udf``-decorated function
            is unwrapped to its ``original`` automatically.
        filename / line: Override the reported location (defaults to the
            function's defining file and first line).
    """
    original = getattr(fn, "original", fn)
    inner, wrapper_bindings = _unwrap_wrappers(original)
    code = getattr(inner, "__code__", None)
    if code is None and not wrapper_bindings:
        return []
    if filename is None:
        filename = code.co_filename if code is not None else "<unknown>"
    if line is None:
        line = code.co_firstlineno if code is not None else 1
    name = getattr(inner, "__name__", None) or "<callable>"
    diags = []
    for desc, value in wrapper_bindings + _captured_bindings(inner):
        engine_kind = _engine_object_kind(value)
        if engine_kind is not None:
            diags.append(
                make_diagnostic(
                    "NPL202",
                    "UDF %r captures %s (%s); engine runtime objects "
                    "must not be shipped into tasks (launching jobs "
                    "from inside a job is the inner-parallel "
                    "antipattern)"
                    % (name, engine_kind, desc),
                    file=filename,
                    line=line,
                    col=1,
                )
            )
    for problem in check_serializable(original):
        diags.append(
            make_diagnostic(
                "NPL201",
                "UDF %r: %s -- the process backend would fail at task "
                "launch; fix the capture or use backend='serial'"
                % (name, problem),
                file=filename,
                line=line,
                col=1,
            )
        )
    return diags


def _unwrap_wrappers(fn):
    """Peel ``functools.partial`` and bound-method wrappers off ``fn``.

    Returns ``(inner, bindings)`` where ``inner`` is the underlying
    plain function and ``bindings`` is a list of ``(description,
    value)`` pairs the wrappers contribute: partial positional/keyword
    arguments and bound instances all ship with the task exactly like
    closure cells, so they get the same NPL202 engine-object scrutiny.
    """
    bindings = []
    depth = 0
    while depth < 16:
        depth += 1
        if isinstance(fn, functools.partial):
            for index, value in enumerate(fn.args):
                bindings.append(("partial argument %d" % index, value))
            for key in sorted(fn.keywords or {}):
                bindings.append(
                    ("partial keyword %r" % key, fn.keywords[key])
                )
            fn = fn.func
            continue
        bound_self = getattr(fn, "__self__", None)
        bound_func = getattr(fn, "__func__", None)
        if bound_self is not None and bound_func is not None:
            bindings.append(
                ("bound instance of %s" % type(bound_self).__name__,
                 bound_self)
            )
            fn = bound_func
            continue
        break
    return fn, bindings


def _captured_bindings(fn):
    """``(description, value)`` pairs for the function's closure cells."""
    closure = getattr(fn, "__closure__", None)
    code = getattr(fn, "__code__", None)
    if not closure or code is None:
        return []
    bindings = []
    for cell_name, cell in zip(code.co_freevars, closure):
        try:
            bindings.append(
                ("captured variable %r" % cell_name, cell.cell_contents)
            )
        except ValueError:  # pragma: no cover - empty cell
            continue
    return bindings


def _engine_object_kind(value):
    """A description when ``value`` is an engine runtime object."""
    # Imported lazily so a closure check never forces engine submodules
    # that the caller has not already loaded.
    from ..engine.bag import Bag
    from ..engine.context import EngineContext
    from ..engine.runtime.scheduler import TaskScheduler

    if isinstance(value, EngineContext):
        return "the engine context"
    if isinstance(value, Bag):
        return "a Bag"
    if isinstance(value, TaskScheduler):
        return "the task scheduler"
    return None

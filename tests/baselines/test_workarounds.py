"""The outer- and inner-parallel workaround runners."""

import pytest

from repro.baselines.inner_parallel import (
    group_locally,
    run_inner_parallel,
)
from repro.baselines.outer_parallel import (
    run_outer_parallel,
    sequential_udf,
)
from repro.engine import ClusterConfig, EngineContext
from repro.errors import SimulatedOutOfMemory


class TestOuterParallel:
    def test_applies_udf_per_group(self, ctx):
        bag = ctx.bag_of([("a", 1), ("a", 2), ("b", 5)])
        result = run_outer_parallel(
            bag, lambda _k, values: (sum(values), len(values))
        ).collect_as_map()
        assert result == {"a": 3, "b": 5}

    def test_sequential_udf_wrapper(self, ctx):
        bag = ctx.bag_of([("a", 1), ("a", 2)])
        udf = sequential_udf(lambda _k, values: max(values))
        assert run_outer_parallel(bag, udf).collect_as_map() == {"a": 2}

    def test_work_is_credited_to_the_trace(self, ctx):
        bag = ctx.bag_of([("a", i) for i in range(10)])
        before = ctx.trace.total_records
        run_outer_parallel(
            bag, lambda _k, values: (0, 10_000)
        ).collect()
        assert ctx.trace.total_records - before > 10_000

    def test_oversized_group_dies(self):
        ctx = EngineContext(
            ClusterConfig(
                machines=1,
                cores_per_machine=1,
                memory_per_machine_bytes=5_000,
                bytes_per_record=100.0,
                memory_overhead_factor=1.0,
                memory_safety_fraction=1.0,
            )
        )
        bag = ctx.bag_of([("hot", i) for i in range(100)])
        with pytest.raises(SimulatedOutOfMemory):
            run_outer_parallel(
                bag, sequential_udf(lambda _k, v: len(v))
            ).collect()

    def test_parallelism_capped_by_group_count(self, ctx):
        """With fewer groups than partitions, only that many reduce
        tasks carry records (the workaround's core weakness)."""
        bag = ctx.bag_of([("g%d" % (i % 3), i) for i in range(60)])
        run_outer_parallel(
            bag, sequential_udf(lambda _k, v: len(v))
        ).collect()
        reduce_stages = [
            stage
            for job in ctx.trace.jobs
            for stage in job.stages
            if stage.kind == "shuffle"
        ]
        busy_tasks = sum(
            1 for r in reduce_stages[-1].task_records if r > 0
        )
        assert busy_tasks <= 3


class TestInnerParallel:
    def test_results_per_group(self, ctx):
        groups = {"a": [1, 2], "b": [5]}
        results = run_inner_parallel(
            ctx, groups, lambda c, values: c.bag_of(values).sum()
        )
        assert results == [("a", 3), ("b", 5)]

    def test_jobs_scale_with_group_count(self, ctx):
        def per_group(c, values):
            return c.bag_of(values).count()

        ctx.reset_trace()
        run_inner_parallel(ctx, {"a": [1]}, per_group)
        one_group_jobs = ctx.trace.num_jobs
        ctx.reset_trace()
        run_inner_parallel(
            ctx, {k: [1] for k in "abcdefgh"}, per_group
        )
        assert ctx.trace.num_jobs == 8 * one_group_jobs

    def test_group_locally(self):
        records = [("a", 1), ("b", 2), ("a", 3)]
        assert group_locally(records) == {"a": [1, 3], "b": [2]}

    def test_deterministic_order(self, ctx):
        groups = {"b": [1], "a": [2], "c": [3]}
        results = run_inner_parallel(
            ctx, groups, lambda c, values: values[0]
        )
        assert [k for k, _v in results] == ["a", "b", "c"]

"""Execution backends: where a dispatched task set actually runs.

Two backends implement the same contract
(``submit_invocations(invocations) -> handle``,
``run_invocations(invocations) -> outcomes``, ``close()``):

* :class:`SerialBackend` runs tasks inline on the calling thread --
  today's behavior, zero overhead, and the default.
* :class:`ProcessPoolBackend` serializes each invocation (closure +
  input partition) with :mod:`repro.engine.runtime.serde`, runs it on a
  pool of worker processes, and deserializes the outcomes.  Worker
  pools are shared per worker-count across all contexts in the process
  (tasks are self-contained, so a warm pool can serve any context) and
  torn down at interpreter exit.

``submit_invocations`` is the non-blocking half of the contract: it
hands the set to the backend and returns a handle whose ``get()``
yields the outcomes.  The process backend submits via ``map_async``,
so a dispatching thread can overlap driver-side work (shuffle
bucketing, sibling-stage submission) with remote execution; both
backends are safe to drive from multiple threads concurrently, which
is how the DAG scheduler (:mod:`repro.engine.dag`) keeps every worker
busy across independent plan branches.  ``run_invocations`` is simply
``submit_invocations(...).get()``.

Both backends report failures as :class:`TaskOutcome` data rather than
raising, so the scheduler's retry policy is backend-independent.
"""

import atexit
import multiprocessing
import os
import time

from ...errors import SerializationError
from ...observe import NULL_TRACER
from ...observe.events import KIND_SERDE
from . import serde
from .task import TaskOutcome, execute_invocation


class _ReadyHandle:
    """A submission handle whose outcomes are already available."""

    __slots__ = ("_outcomes",)

    def __init__(self, outcomes):
        self._outcomes = outcomes

    def get(self):
        return self._outcomes

    def ready(self):
        return True


class _AsyncHandle:
    """A submission handle over an in-flight ``map_async`` result.

    ``get()`` blocks for the raw payloads and deserializes them on the
    *calling* thread (outcome deserialization is driver work and should
    be billed to whichever dispatch thread consumes the set).
    """

    __slots__ = ("_async_result", "_tracer")

    def __init__(self, async_result, tracer):
        self._async_result = async_result
        self._tracer = tracer

    def get(self):
        outcome_payloads = self._async_result.get()
        serde_start = time.perf_counter()
        outcomes = [serde.loads(payload) for payload in outcome_payloads]
        if self._tracer.enabled:
            self._tracer.instant(
                "serde:load-outcomes", KIND_SERDE,
                tasks=len(outcomes),
                seconds=time.perf_counter() - serde_start,
                bytes=sum(len(p) for p in outcome_payloads),
            )
        return outcomes

    def ready(self):
        return self._async_result.ready()


class SerialBackend:
    """Run every task inline on the calling thread."""

    name = "serial"
    #: Set by the scheduler when its context traces; serial execution
    #: emits nothing itself (the scheduler anchors task spans from the
    #: outcomes), so this exists for interface symmetry.
    tracer = NULL_TRACER

    def submit_invocations(self, invocations):
        """Run inline and return an already-completed handle.

        There is no remote resource to overlap with, so eager inline
        execution *is* the serial backend's submission; concurrency
        across serial task sets comes from the scheduler's dispatch
        threads, not from this method.
        """
        return _ReadyHandle(self.run_invocations(invocations))

    def run_invocations(self, invocations):
        return [execute_invocation(invocation) for invocation in invocations]

    def close(self):
        pass


class ProcessPoolBackend:
    """Run tasks on a pool of worker processes.

    Args:
        num_workers: Pool size; ``0`` means one worker per CPU.
    """

    name = "process"
    #: Set by the scheduler when its context traces; serde spans around
    #: the dispatch are emitted through it.
    tracer = NULL_TRACER

    def __init__(self, num_workers=0):
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        self.num_workers = num_workers or (os.cpu_count() or 1)

    def submit_invocations(self, invocations):
        """Serialize the set and hand it to the shared pool, non-blocking.

        Serialization happens here, on the submitting thread (it is
        driver-side work that must precede the network hop); the
        returned handle's ``get()`` blocks for the workers and
        deserializes the outcomes.  ``multiprocessing.Pool`` queues
        submissions from concurrent threads safely, so independent
        stages interleave their tasks over the same workers.
        """
        tracer = self.tracer
        serde_start = time.perf_counter()
        payloads = []
        for invocation in invocations:
            payloads.append(
                serde.ensure_serializable(
                    invocation,
                    invocation.operator,
                    what="task (closure + input partition)",
                )
            )
        if tracer.enabled:
            tracer.instant(
                "serde:dump-tasks", KIND_SERDE,
                tasks=len(payloads),
                seconds=time.perf_counter() - serde_start,
                bytes=sum(len(p) for p in payloads),
            )
        pool = _shared_pool(self.num_workers)
        async_result = pool.map_async(_worker_run, payloads, chunksize=1)
        return _AsyncHandle(async_result, tracer)

    def run_invocations(self, invocations):
        return self.submit_invocations(invocations).get()

    def close(self):
        # Pools are shared across contexts; they are reclaimed at
        # interpreter exit (see shutdown_pools), not per backend.
        pass


def make_backend(config):
    """Build the backend named by ``config.backend``."""
    if config.backend == "serial":
        return SerialBackend()
    if config.backend == "process":
        return ProcessPoolBackend(config.num_workers)
    raise ValueError(
        "unknown backend %r (expected 'serial' or 'process')"
        % (config.backend,)
    )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _worker_run(payload):
    """Pool entry point: bytes in, bytes out.

    The invocation arrives pre-serialized (so closures survive the
    trip on spawn-based platforms too); the outcome is serialized here,
    with a structured fallback when a task *returns* something
    unserializable.
    """
    load_start = time.perf_counter()
    invocation = serde.loads(payload)
    load_seconds = time.perf_counter() - load_start
    outcome = execute_invocation(invocation)
    if outcome.events is not None:
        # The closure was deserialized before the task body started:
        # carry it back as a worker-side serde span anchored just
        # before the attempt (negative offset on the task timeline).
        outcome.events.insert(
            0,
            (
                "serde:load-task", KIND_SERDE,
                -load_seconds, load_seconds,
                {"task": invocation.task_index},
            ),
        )
    try:
        return serde.dumps(outcome)
    except Exception as exc:
        fallback = TaskOutcome(
            task_index=outcome.task_index,
            ok=False,
            error=SerializationError(
                "result of operator %r cannot be serialized back to "
                "the driver: %s: %s"
                % (invocation.operator, type(exc).__name__, exc)
            ),
            seconds=outcome.seconds,
            worker_pid=outcome.worker_pid,
            attempt=outcome.attempt,
            start_epoch=outcome.start_epoch,
            events=outcome.events,
        )
        return serde.dumps(fallback)


# ----------------------------------------------------------------------
# Shared pool management
# ----------------------------------------------------------------------

_POOLS = {}


def _shared_pool(num_workers):
    pool = _POOLS.get(num_workers)
    if pool is None:
        # Prefer fork: workers inherit imported modules, so the first
        # dispatch does not pay an interpreter start per worker.
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else methods[0]
        context = multiprocessing.get_context(method)
        pool = context.Pool(processes=num_workers)
        _POOLS[num_workers] = pool
    return pool


def shutdown_pools():
    """Terminate every shared worker pool (idempotent)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.terminate()
        pool.join()


atexit.register(shutdown_pools)

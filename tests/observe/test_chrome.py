"""Chrome trace-event export: structure Perfetto can load."""

import json

from repro.observe import TraceEvent, to_chrome, write_chrome
from repro.observe.chrome import ENGINE_PID
from repro.observe.events import DRIVER_LANE, worker_lane


def small_trace():
    return [
        TraceEvent("driver:collect", "driver", 100.0, 1.0),
        TraceEvent("job#0:collect", "job", 100.1, 0.8),
        TraceEvent("stage#0:Map", "stage", 100.2, 0.5),
        TraceEvent(
            "task:Map#0", "task", 100.25, 0.1, worker_lane(7),
            {"task": 0},
        ),
        TraceEvent("shuffle:ReduceByKey", "shuffle", 100.7, None,
                   DRIVER_LANE, {"records": 5}),
    ]


class TestToChrome:
    def test_document_shape(self):
        doc = to_chrome(small_trace(), label="unit")
        assert set(doc) == {
            "traceEvents", "displayTimeUnit", "otherData"
        }
        assert doc["displayTimeUnit"] == "ms"
        assert all("ph" in e for e in doc["traceEvents"])

    def test_metadata_names_process_and_lanes(self):
        doc = to_chrome(small_trace(), label="unit")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {
            (e["name"], e["args"].get("name"))
            for e in meta
            if e["name"] in ("process_name", "thread_name")
        }
        assert ("process_name", "unit") in names
        assert ("thread_name", DRIVER_LANE) in names
        assert ("thread_name", worker_lane(7)) in names

    def test_driver_lane_is_tid_zero_and_sorted_first(self):
        doc = to_chrome(small_trace())
        thread_names = {
            e["args"]["name"]: e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert thread_names[DRIVER_LANE] == 0
        assert thread_names[worker_lane(7)] > 0

    def test_spans_are_complete_events_in_microseconds(self):
        doc = to_chrome(small_trace())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in spans}
        driver = by_name["driver:collect"]
        # Timestamps are relative to the trace origin, in microseconds.
        assert driver["ts"] == 0.0
        assert driver["dur"] == 1_000_000.0
        task = by_name["task:Map#0"]
        assert task["ts"] == 250_000.0
        assert task["args"] == {"task": 0}

    def test_instants_are_i_events(self):
        doc = to_chrome(small_trace())
        (instant,) = [
            e for e in doc["traceEvents"] if e["ph"] == "i"
        ]
        assert instant["name"] == "shuffle:ReduceByKey"
        assert instant["s"] == "t"
        assert "dur" not in instant

    def test_nesting_by_time_containment(self):
        """Driver contains job contains stage on the same tid."""
        doc = to_chrome(small_trace())
        spans = {
            e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"
        }
        driver = spans["driver:collect"]
        job = spans["job#0:collect"]
        stage = spans["stage#0:Map"]
        assert driver["tid"] == job["tid"] == stage["tid"]
        assert driver["ts"] <= job["ts"]
        assert job["ts"] + job["dur"] <= driver["ts"] + driver["dur"]
        assert stage["ts"] + stage["dur"] <= job["ts"] + job["dur"]

    def test_all_events_share_the_engine_pid(self):
        doc = to_chrome(small_trace())
        assert {e["pid"] for e in doc["traceEvents"]} == {ENGINE_PID}

    def test_empty_trace_has_only_metadata(self):
        doc = to_chrome([])
        assert doc["traceEvents"]
        assert all(e["ph"] == "M" for e in doc["traceEvents"])


class TestWriteChrome:
    def test_writes_loadable_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        assert write_chrome(small_trace(), path, label="x") == path
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["otherData"]["producer"] == "repro.observe"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

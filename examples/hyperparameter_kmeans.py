"""Hyperparameter optimization with nested parallel K-means (Sec. 2.3).

Many random centroid initializations are tried in parallel, while each
individual training run is *also* data-parallel -- the nesting current
dataflow engines cannot express.  The training loop is an iterative
lifted while loop: configurations that converge early drop out of the
computation (Listing 4's P1-P3).

Run:  python examples/hyperparameter_kmeans.py
"""

import repro
from repro.data import clustered_points, initial_centroids
from repro.tasks import kmeans

NUM_CONFIGS = 8
K = 3

def model_cost(points, centroids):
    """Sum of squared distances to the nearest centroid (the metric the
    hyperparameter search minimizes)."""
    return sum(
        min(kmeans.squared_distance(p, c) for c in centroids)
        for p in points
    )

def main():
    ctx = repro.EngineContext(repro.paper_cluster_config())

    points = clustered_points(600, k=K, seed=7)
    configs = initial_centroids(k=K, num_configs=NUM_CONFIGS, seed=7)

    # All configurations share the point bag (a closure of the lifted
    # UDF); the per-iteration assignment is the half-lifted
    # mapWithClosure of Sec. 8.3, with the broadcast side chosen at
    # runtime.
    trained = kmeans.kmeans_nested_shared(
        ctx, points, configs, max_iterations=15, tolerance=1e-3
    )

    print("Trained %d configurations in one nested-parallel program:"
          % NUM_CONFIGS)
    best = None
    for _tag, (config_id, centroids) in sorted(trained.collect()):
        cost = model_cost(points, centroids)
        marker = ""
        if best is None or cost < best[1]:
            best = (config_id, cost)
            marker = "  <- best so far"
        print("  %-6s cost %10.1f%s" % (config_id, cost, marker))

    print()
    print("Best configuration:", best[0], "cost %.1f" % best[1])
    print("Trace:", ctx.trace.summary())
    print("Simulated cluster runtime: %.1f s" % ctx.simulated_seconds())

if __name__ == "__main__":
    main()

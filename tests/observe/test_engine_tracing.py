"""End-to-end engine tracing: span trees, retries, stragglers, overhead.

These tests drive real engine jobs with tracing on and assert on the
emitted events -- including the cross-backend contract that the span
tree has the same *shape* whether tasks run inline or in worker
processes.
"""

import os

import pytest

from repro.engine import EngineContext, laptop_config
from repro.observe import MemorySink, Tracer
from repro.observe.events import (
    DRIVER_LANE,
    KIND_BROADCAST,
    KIND_DRIVER,
    KIND_FAULT,
    KIND_JOB,
    KIND_SERDE,
    KIND_SHUFFLE,
    KIND_STAGE,
    KIND_STRAGGLER,
    KIND_TASK,
    KIND_TASK_RETRY,
    KIND_TASK_SET,
    SPAN_KINDS,
)


def traced_ctx(backend="serial", **overrides):
    overrides.setdefault("backend", backend)
    if backend == "process":
        overrides.setdefault("num_workers", 2)
    return EngineContext(laptop_config(**overrides), trace=True)


def shuffle_job(ctx):
    return (
        ctx.bag_of(range(80))
        .map(lambda x: (x % 4, x))
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )


def kinds_of(events):
    counts = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


class TestSpanTree:
    def test_driver_wraps_job_wraps_stages(self):
        ctx = traced_ctx()
        shuffle_job(ctx)
        events = ctx.tracer.events()
        (driver,) = [e for e in events if e.kind == KIND_DRIVER]
        (job,) = [e for e in events if e.kind == KIND_JOB]
        stages = [e for e in events if e.kind == KIND_STAGE]
        assert driver.name.startswith("driver:collect")
        assert driver.ts <= job.ts and job.end <= driver.end
        assert stages
        for stage in stages:
            assert job.ts <= stage.ts and stage.end <= job.end

    def test_task_spans_inside_task_sets(self):
        ctx = traced_ctx()
        shuffle_job(ctx)
        events = ctx.tracer.events()
        task_sets = [e for e in events if e.kind == KIND_TASK_SET]
        tasks = [e for e in events if e.kind == KIND_TASK]
        assert task_sets and tasks
        slack = 1e-6
        for task in tasks:
            assert any(
                ts.ts - slack <= task.ts
                and task.end <= ts.end + slack
                for ts in task_sets
            ), "task span %r outside every task_set window" % task.name

    def test_job_span_records_stage_and_record_counts(self):
        ctx = traced_ctx()
        shuffle_job(ctx)
        (job,) = [
            e for e in ctx.tracer.events() if e.kind == KIND_JOB
        ]
        assert job.args["stages"] == len(ctx.trace.jobs[-1].stages)
        assert job.args["records"] > 0

    def test_shuffle_and_broadcast_instants(self):
        ctx = traced_ctx()
        shuffle_job(ctx)
        shuffles = [
            e for e in ctx.tracer.events() if e.kind == KIND_SHUFFLE
        ]
        assert shuffles
        assert shuffles[0].args["records"] > 0
        assert shuffles[0].args["bytes"] > 0
        ctx.broadcast([1, 2, 3])
        broadcasts = [
            e for e in ctx.tracer.events() if e.kind == KIND_BROADCAST
        ]
        assert broadcasts
        assert broadcasts[-1].args["records"] == 3

    def test_stage_span_carries_full_measured_task_seconds(self):
        ctx = traced_ctx()
        shuffle_job(ctx)
        stages = [
            e for e in ctx.tracer.events() if e.kind == KIND_STAGE
        ]
        total = sum(e.args["task_seconds"] for e in stages)
        assert total == pytest.approx(
            ctx.trace.measured_task_seconds, abs=1e-9
        )


class TestBackendParity:
    def test_span_tree_shape_matches_across_backends(self):
        """Serial and process runs of the same program must emit the
        same span tree -- same names, same kinds, same nesting counts --
        differing only in timings, lanes, and backend-specific serde
        events."""
        results = {}
        shapes = {}
        for backend in ("serial", "process"):
            ctx = traced_ctx(backend)
            results[backend] = sorted(shuffle_job(ctx))
            shapes[backend] = sorted(
                (e.kind, e.name)
                for e in ctx.tracer.events()
                if e.kind in SPAN_KINDS
            )
            ctx.close()
        assert results["serial"] == results["process"]
        assert shapes["serial"] == shapes["process"]

    def test_process_tasks_run_on_worker_lanes(self):
        ctx = traced_ctx("process")
        shuffle_job(ctx)
        lanes = {
            e.lane for e in ctx.tracer.events() if e.kind == KIND_TASK
        }
        assert lanes
        assert all(lane.startswith("worker-") for lane in lanes)
        assert DRIVER_LANE not in lanes
        ctx.close()

    def test_worker_serde_events_reanchored_into_dispatch(self):
        ctx = traced_ctx("process")
        shuffle_job(ctx)
        events = ctx.tracer.events()
        worker_serde = [
            e for e in events
            if e.kind == KIND_SERDE and e.lane != DRIVER_LANE
        ]
        assert worker_serde, "worker-side serde spans must come back"
        stages = [e for e in events if e.kind == KIND_STAGE]
        t0 = min(e.ts for e in stages)
        t1 = max(e.end for e in stages)
        for event in worker_serde:
            assert t0 - 1.0 <= event.ts <= t1 + 1.0
        ctx.close()


class TestRetriesAndStragglers:
    def test_one_retry_event_per_scheduler_retry(self):
        ctx = traced_ctx()
        ctx.fault_injector.kill_task(task_index=1, stage=0, times=2)
        shuffle_job(ctx)
        events = ctx.tracer.events()
        retries = [e for e in events if e.kind == KIND_TASK_RETRY]
        faults = [e for e in events if e.kind == KIND_FAULT]
        assert ctx.runtime.tasks_retried == 2
        assert len(retries) == 2
        assert len(faults) == 2
        assert [e.args["task"] for e in retries] == [1, 1]
        assert [e.args["next_attempt"] for e in retries] == [2, 3]
        assert all(
            e.args["error"] == "InjectedFault" for e in faults
        )

    def test_retried_attempts_emit_task_spans_per_attempt(self):
        ctx = traced_ctx()
        ctx.fault_injector.kill_task(task_index=0, stage=0)
        shuffle_job(ctx)
        attempts = [
            e.args["attempt"]
            for e in ctx.tracer.events()
            if e.kind == KIND_TASK and e.args["task"] == 0
            and e.args["dispatch"] == 0
        ]
        assert sorted(attempts) == [1, 2]

    def test_straggler_event_names_offending_partition(self):
        import time

        def slow_tail(items, index):
            if index == 2:
                time.sleep(0.05)
            return list(items)

        ctx = traced_ctx(straggler_min_task_seconds=0.01)
        bag = ctx.bag_of(range(16), num_partitions=4)
        bag.map_partitions(slow_tail).collect()
        stragglers = [
            e for e in ctx.tracer.events()
            if e.kind == KIND_STRAGGLER
        ]
        assert len(stragglers) == 1
        assert stragglers[0].args["partition"] == 2
        assert stragglers[0].args["seconds"] >= 0.05


class TestOverheadStructure:
    def test_event_count_independent_of_record_count(self):
        """The granularity contract: events scale with tasks and
        stages, never with records."""
        counts = {}
        for n in (40, 400):
            ctx = EngineContext(
                laptop_config(), trace=Tracer(MemorySink())
            )
            (
                ctx.bag_of(range(n), num_partitions=4)
                .map(lambda x: (x % 4, x))
                .reduce_by_key(lambda a, b: a + b)
                .collect()
            )
            counts[n] = len(ctx.tracer.events())
        assert counts[40] == counts[400]

    def test_task_span_cap_bounds_events_per_stage(self):
        tracer = Tracer(MemorySink(), max_task_spans=4)
        ctx = EngineContext(laptop_config(), trace=tracer)
        ctx.bag_of(range(64), num_partitions=16).map(
            lambda x: x
        ).collect()
        tasks = [
            e for e in ctx.tracer.events() if e.kind == KIND_TASK
        ]
        assert len(tasks) == 4
        assert sorted(e.args["task"] for e in tasks) == [0, 1, 2, 3]
        # The stage span still accounts for every task.
        (stage,) = [
            e for e in ctx.tracer.events() if e.kind == KIND_STAGE
        ]
        assert stage.args["tasks"] == 16

    def test_untraced_context_emits_nothing(self):
        ctx = EngineContext(laptop_config())
        shuffle_job(ctx)
        assert not ctx.tracer.enabled
        assert ctx.tracer.events() == []

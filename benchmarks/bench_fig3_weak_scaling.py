"""Fig. 3: weak scaling of the three iterative tasks.

Constant total input; the number of inner computations varies inversely
with their size.  Expected: Matryoshka near-constant; inner-parallel
degrades linearly in the group count; outer-parallel OOMs at few groups
and only becomes competitive at many groups.
"""

from repro.bench import figures

import os

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


def test_fig3a_kmeans(figure_benchmark):
    sweep = figure_benchmark(figures.fig3_weak_scaling_kmeans, SCALE)
    xs = sweep.x_values()
    times = [sweep.seconds(figures.MATRYOSHKA, x) for x in xs]
    assert max(times) / min(times) < 2.0


def test_fig3b_pagerank(figure_benchmark):
    sweep = figure_benchmark(figures.fig3_weak_scaling_pagerank, SCALE)
    xs = sweep.x_values()
    assert sweep.result_for(figures.OUTER, xs[0]).status == "oom"
    assert sweep.speedup(figures.INNER, figures.MATRYOSHKA, xs[-1]) > 10


def test_fig3c_avg_distances(figure_benchmark):
    sweep = figure_benchmark(
        figures.fig3_weak_scaling_avg_distances, SCALE
    )
    for x in sweep.x_values():
        assert sweep.speedup(figures.INNER, figures.MATRYOSHKA, x) > 2

"""Compiled fused pipelines: parity, gating, caching, observability."""

import pickle

import pytest

from repro.engine import EngineContext, laptop_config
from repro.engine.codegen import (
    chain_compilability,
    clear_compiled_cache,
    compiled_cache_size,
    generate_source,
    plan_compiled_task,
)
from repro.engine.runtime.task import (
    STEP_FILTER,
    STEP_FLATMAP,
    STEP_MAP,
    CompiledPipelineTask,
    FusedPipelineTask,
)
from repro.engine.validate import trace_signature
from repro.engine.work import Weighted


# Module-level UDFs: provably pure, with recoverable source.


def _double(x):
    return x * 2


def _odd(x):
    return x % 2 == 1


def _pair(x):
    return [x, x + 1]


def _negate(x):
    return -x


def _weighted_pair(x):
    return [Weighted(x, work=3)]


_COUNTER = {"n": 0}


def _impure(x):
    _COUNTER["n"] += 1
    return x


def _steps(*pairs):
    return [
        (kind, fn, "%s#%d" % (fn.__name__.strip("_"), i))
        for i, (kind, fn) in enumerate(pairs)
    ]


class TestParity:
    """Compiled output must match the interpreter exactly: records,
    per-operator counts, and (trivially) zero weighted works."""

    CHAINS = [
        _steps((STEP_MAP, _double)),
        _steps((STEP_FILTER, _odd)),
        _steps((STEP_FLATMAP, _pair)),
        _steps((STEP_MAP, _double), (STEP_FILTER, _odd)),
        _steps((STEP_FILTER, _odd), (STEP_MAP, _double)),
        _steps((STEP_MAP, _double), (STEP_FLATMAP, _pair),
               (STEP_FILTER, _odd), (STEP_MAP, _negate)),
        _steps((STEP_FLATMAP, _pair), (STEP_FLATMAP, _pair),
               (STEP_FILTER, _odd)),
        _steps((STEP_FILTER, _odd), (STEP_FILTER, _odd),
               (STEP_MAP, _double), (STEP_MAP, _negate),
               (STEP_FLATMAP, _pair)),
    ]

    @pytest.mark.parametrize("steps", CHAINS,
                             ids=["+".join(s[2] for s in c)
                                  for c in CHAINS])
    @pytest.mark.parametrize("part", [[], [7], list(range(20))],
                             ids=["empty", "one", "twenty"])
    def test_matches_interpreter(self, steps, part):
        task, reason = plan_compiled_task(steps)
        assert reason is None, reason
        out_i, counts_i, works_i = FusedPipelineTask(steps)(list(part))
        out_c, counts_c, works_c = task(list(part))
        assert out_c == out_i
        assert counts_c == counts_i
        assert works_c == works_i
        assert all(w == 0 for w in works_c)


class TestGating:
    def test_impure_udf_falls_back(self):
        steps = _steps((STEP_MAP, _impure))
        key, reason = chain_compilability(steps)
        assert key is None
        assert "impure" in reason

    def test_unproven_purity_falls_back(self):
        # No recoverable source: exec'd functions can't be analyzed.
        namespace = {}
        exec("def mystery(x):\n    return x", namespace)
        steps = [(STEP_MAP, namespace["mystery"], "Map#1")]
        key, reason = chain_compilability(steps)
        assert key is None
        assert "purity unproven" in reason

    def test_weighted_returning_udf_falls_back(self):
        steps = _steps((STEP_MAP, _double),
                       (STEP_FLATMAP, _weighted_pair))
        key, reason = chain_compilability(steps)
        assert key is None
        assert "Weighted" in reason

    def test_pure_chain_gets_a_stable_key(self):
        steps = _steps((STEP_MAP, _double), (STEP_FILTER, _odd))
        key_a, _ = chain_compilability(steps)
        key_b, _ = chain_compilability(steps)
        assert key_a == key_b
        assert len(key_a) == 16

    def test_key_distinguishes_step_kinds(self):
        as_map = _steps((STEP_MAP, _double))
        as_filter = _steps((STEP_FILTER, _double))
        assert chain_compilability(as_map)[0] != (
            chain_compilability(as_filter)[0]
        )


class TestGeneratedSource:
    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            generate_source([])

    def test_source_is_one_loop(self):
        source = generate_source([STEP_MAP, STEP_FILTER, STEP_MAP])
        # One record loop, no per-step dispatch machinery.
        assert source.count("for ") == 1
        assert "call_udf" not in source
        assert "unwrap" not in source

    def test_flatmap_nests_loops(self):
        source = generate_source([STEP_FLATMAP, STEP_FLATMAP])
        assert source.count("for ") == 3


class TestCompiledTask:
    def test_pickles_without_compiled_state(self):
        steps = _steps((STEP_MAP, _double), (STEP_FILTER, _odd))
        task, _ = plan_compiled_task(steps)
        clone = pickle.loads(pickle.dumps(task))
        assert isinstance(clone, CompiledPipelineTask)
        assert clone.key == task.key
        assert clone(list(range(10))) == task(list(range(10)))

    def test_cache_reused_across_instances(self):
        clear_compiled_cache()
        steps = _steps((STEP_MAP, _double), (STEP_FILTER, _odd))
        task_a, _ = plan_compiled_task(steps)
        task_a(list(range(4)))
        size = compiled_cache_size()
        task_b, _ = plan_compiled_task(steps)
        task_b(list(range(4)))
        assert compiled_cache_size() == size

    def test_udf_errors_attributed_to_chain(self):
        def boom(x):
            raise RuntimeError("kaput")

        steps = _steps((STEP_MAP, _double))
        task, _ = plan_compiled_task(steps)
        # Swap in a failing UDF post-plan: execution (not planning)
        # must wrap the error with the chain's operator label.
        broken = CompiledPipelineTask(
            [(STEP_MAP, boom, "Map#0")], task.source, task.key
        )
        from repro.errors import UdfError

        with pytest.raises(UdfError, match="Map#0"):
            broken([1])


class TestEngineIntegration:
    def _run(self, compile_pipelines, trace=False, **overrides):
        return EngineContext(
            laptop_config(
                compile_pipelines=compile_pipelines, **overrides
            ),
            trace=trace,
        )

    def _program(self, ctx):
        return (
            ctx.bag_of(range(200), num_partitions=4)
            .map(_double)
            .filter(_odd2)
            .flat_map(_pair)
            .collect()
        )

    def test_identical_results_and_signature(self):
        with self._run(False) as base, self._run(True) as comp:
            assert sorted(self._program(comp)) == sorted(
                self._program(base)
            )
            assert trace_signature(comp.trace) == trace_signature(
                base.trace
            )
            assert comp.simulated_seconds() == base.simulated_seconds()

    def test_decision_recorded_per_chain(self):
        with self._run(True) as ctx:
            self._program(ctx)
            decisions = [
                d for d in ctx.optimizer_decisions
                if d.kind == "compiled-pipeline"
            ]
            assert len(decisions) == 1
            assert decisions[0].choice == "compile"
            assert "compiled as" in decisions[0].detail

    def test_fallback_reason_recorded(self):
        with self._run(True) as ctx:
            ctx.bag_of(range(10)).map(_impure).count()
            (decision,) = [
                d for d in ctx.optimizer_decisions
                if d.kind == "compiled-pipeline"
            ]
            assert decision.choice == "interpret"
            assert "impure" in decision.detail

    def test_no_decisions_when_disabled(self):
        with self._run(False) as ctx:
            self._program(ctx)
            assert not [
                d for d in ctx.optimizer_decisions
                if d.kind == "compiled-pipeline"
            ]

    def test_codegen_span_emitted_once(self):
        clear_compiled_cache()
        with self._run(True, trace=True) as ctx:
            self._program(ctx)
            self._program(ctx)  # second run: cache hit, no new span
            spans = [
                e for e in ctx.tracer.events()
                if e.kind == "codegen"
            ]
            assert len(spans) == 1
            assert spans[0].args["key"]
            assert spans[0].args["steps"] == 3
            assert spans[0].args["source_lines"] > 0

    def test_process_backend_runs_compiled_chains(self):
        with self._run(
            True, backend="process", num_workers=2
        ) as ctx:
            out = self._program(ctx)
            assert sorted(out) == sorted(
                y for x in range(200) if (x * 2) % 3 != 0
                for y in (x * 2, x * 2 + 1)
            )
            assert any(
                d.choice == "compile"
                for d in ctx.optimizer_decisions
                if d.kind == "compiled-pipeline"
            )

    def test_env_var_enables_compilation(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE", "1")
        assert laptop_config().compile_pipelines is True
        monkeypatch.setenv("REPRO_COMPILE", "0")
        assert laptop_config().compile_pipelines is False

    def test_explain_annotates_compiled_chains(self):
        with self._run(True) as ctx:
            bag = (
                ctx.bag_of(range(10))
                .map(_double)
                .filter(_odd2)
            )
            text = bag.explain(compile=True)
            assert "compiled=yes(" in text
            impure = ctx.bag_of(range(10)).map(_impure)
            text = impure.explain(compile=True)
            assert "compiled=no(" in text
            assert "impure" in text


def _odd2(x):
    return x % 3 != 0

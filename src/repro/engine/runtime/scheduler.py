"""The task scheduler: stage dispatch, retries, and straggler tracking.

The executor hands the scheduler one *task set* per stage evaluation --
the same task callable applied to each partition's arguments -- and the
scheduler owns everything a Spark ``TaskSchedulerImpl`` would: running
the set on the configured backend, retrying failed attempts within the
retry budget, re-raising permanent failures, and recording per-task
measured wall-clock (plus retry and straggler counts) into the stage's
metrics, next to the simulated counters.

Measured-time accounting: only the *successful* attempt of a task is
credited to ``stage.task_seconds`` -- a retried task is never counted
twice.  Time burned in failed attempts accrues separately to
``stage.failed_attempt_seconds``.

Retry policy: only *transient* failures are retried -- injected faults
(:class:`~repro.engine.runtime.faults.FaultInjector`) and any error
whose ``retryable`` attribute is true.  Deterministic failures
(:class:`~repro.errors.UdfError`, simulated OOM, plan errors) fail the
job on first occurrence: rerunning a UDF bug ``max_task_attempts``
times would only repeat its side effects.

Tracing (:mod:`repro.observe`): when the context traces, every
dispatch emits a ``stage`` span wrapping one ``task_set`` span per
retry wave, ``task`` spans re-anchored from worker outcomes onto the
driver timeline, and ``fault`` / ``task_retry`` / ``straggler``
instants.  All hooks are guarded by ``tracer.enabled``; with tracing
off the only cost is one attribute read per dispatch.
"""

import os
import statistics
import time

from ...errors import TaskFailedError
from ...observe import NULL_TRACER
from ...observe.events import (
    DRIVER_LANE,
    KIND_FAULT,
    KIND_STAGE,
    KIND_STRAGGLER,
    KIND_TASK,
    KIND_TASK_RETRY,
    KIND_TASK_SET,
    worker_lane,
)
from .backends import SerialBackend, make_backend
from .faults import FaultInjector
from .task import Invocation


class TaskScheduler:
    """Dispatches per-partition tasks for one engine context."""

    def __init__(self, config, fault_injector=None, backend=None,
                 tracer=None):
        self.config = config
        self.fault_injector = (
            fault_injector if fault_injector is not None else FaultInjector()
        )
        self.backend = backend if backend is not None else make_backend(config)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Backends emit their own serde spans through the context's
        # tracer (plain attribute: backends default to NULL_TRACER).
        self.backend.tracer = self.tracer
        #: Task sets dispatched so far (the fault injector's stage
        #: addressing; deterministic given a deterministic plan).
        self.dispatch_count = 0
        #: Total task attempts ever run, split by outcome.
        self.tasks_launched = 0
        self.tasks_failed = 0
        self.tasks_retried = 0

    # ------------------------------------------------------------------

    def run_stage(self, task, args_list, stage=None):
        """Run ``task(*args)`` for every args tuple; return the values.

        Args:
            task: A picklable callable (see
                :mod:`repro.engine.runtime.task`), shared by the set.
            args_list: One argument tuple per task; task ``i`` is
                partition ``i`` of the stage.
            stage: Optional :class:`~repro.engine.metrics.StageMetrics`
                to credit measured seconds / retries / stragglers to.

        Returns:
            The task return values, in task order.

        Raises:
            The reconstructed task error after a non-retryable failure,
            or :class:`~repro.errors.TaskFailedError` when a task
            exhausts ``config.max_task_attempts``.
        """
        ordinal = self.dispatch_count
        self.dispatch_count += 1
        tracer = self.tracer
        if (
            not tracer.enabled
            and not self.fault_injector.pending
            and isinstance(self.backend, SerialBackend)
        ):
            # Hot path: a paper-scale stage dispatches >1000 tasks and
            # the serial backend runs them right here, so skip the
            # invocation/outcome machinery -- real failures are
            # non-retryable under the retry policy anyway, and raising
            # in place preserves the original traceback exactly.
            return self._run_serial_fast(task, args_list, stage)
        operator = getattr(task, "operator", type(task).__name__)
        if not tracer.enabled:
            return self._run_outcomes(
                task, args_list, stage, ordinal, operator
            )
        stage_id = stage.stage_id if stage is not None else ordinal
        with tracer.span(
            "stage#%s:%s" % (stage_id, operator),
            KIND_STAGE,
            dispatch=ordinal,
            operator=operator,
            tasks=len(args_list),
            backend=self.backend.name,
        ) as span_args:
            before = stage.measured_seconds if stage is not None else 0.0
            values = self._run_outcomes(
                task, args_list, stage, ordinal, operator
            )
            if stage is not None:
                # Task spans are capped per stage, so the span carries
                # the *full* measured per-task total itself -- reports
                # and traces agree exactly on stage measured seconds.
                span_args["task_seconds"] = (
                    stage.measured_seconds - before
                )
            return values

    # ------------------------------------------------------------------

    def _run_outcomes(self, task, args_list, stage, ordinal, operator):
        """The outcome-mediated dispatch loop (retries, tracing)."""
        tracer = self.tracer
        collect = tracer.enabled
        span_cap = tracer.max_task_spans
        max_attempts = self.config.max_task_attempts

        final = [None] * len(args_list)
        pending = [
            self._invocation(task, args_list[i], ordinal, operator, i, 1)
            for i in range(len(args_list))
        ]
        wave = 0
        while pending:
            window_start = tracer.now()
            outcomes = self.backend.run_invocations(pending)
            window_end = tracer.now()
            if collect:
                tracer.emit_anchored(
                    "taskset#%d.%d:%s" % (ordinal, wave, operator),
                    KIND_TASK_SET, window_start, 0.0,
                    window_end - window_start, DRIVER_LANE,
                    dispatch=ordinal, wave=wave, tasks=len(pending),
                )
            self.tasks_launched += len(pending)
            wave += 1
            pending = []
            for outcome in outcomes:
                # Per-task spans are capped per stage (failures and
                # retries always emit); see Tracer.max_task_spans.
                if collect and (
                    outcome.task_index < span_cap
                    or not outcome.ok
                    or outcome.attempt > 1
                ):
                    self._emit_task_events(
                        outcome, operator, ordinal, window_start,
                        window_end,
                    )
                if outcome.ok:
                    if stage is not None:
                        stage.add_task_seconds(
                            outcome.task_index, outcome.seconds
                        )
                    final[outcome.task_index] = outcome
                    continue
                # A failed attempt never counts toward the stage's
                # task_seconds (retried work must not be double-billed);
                # it is tracked separately.
                if stage is not None:
                    stage.failed_attempt_seconds += outcome.seconds
                self.tasks_failed += 1
                if collect:
                    tracer.instant(
                        "fault:%s#%d" % (operator, outcome.task_index),
                        KIND_FAULT,
                        dispatch=ordinal,
                        task=outcome.task_index,
                        attempt=outcome.attempt,
                        error=type(outcome.error).__name__,
                    )
                if not outcome.retryable:
                    self._reraise(outcome)
                if outcome.attempt >= max_attempts:
                    raise TaskFailedError(
                        ordinal,
                        outcome.task_index,
                        outcome.attempt,
                        outcome.error,
                    )
                self.tasks_retried += 1
                if stage is not None:
                    stage.task_retries += 1
                if collect:
                    tracer.instant(
                        "retry:%s#%d" % (operator, outcome.task_index),
                        KIND_TASK_RETRY,
                        dispatch=ordinal,
                        task=outcome.task_index,
                        next_attempt=outcome.attempt + 1,
                        error=type(outcome.error).__name__,
                    )
                pending.append(
                    self._invocation(
                        task,
                        args_list[outcome.task_index],
                        ordinal,
                        operator,
                        outcome.task_index,
                        outcome.attempt + 1,
                    )
                )
        stragglers = self._straggler_indices(
            [outcome.seconds for outcome in final]
        )
        if stage is not None:
            stage.straggler_tasks += len(stragglers)
        if collect:
            for index in stragglers:
                tracer.instant(
                    "straggler:%s#%d" % (operator, index),
                    KIND_STRAGGLER,
                    dispatch=ordinal,
                    partition=index,
                    seconds=final[index].seconds,
                )
        return [outcome.value for outcome in final]

    def _emit_task_events(self, outcome, operator, ordinal, window_start,
                          window_end):
        """Re-anchor one attempt (and its worker events) to the driver.

        The attempt's ``start_epoch`` was read from the machine's shared
        wall clock inside the worker; clamping it into the dispatch
        window guards against clock adjustments between the driver's
        and the worker's reads.
        """
        tracer = self.tracer
        anchor = min(
            max(outcome.start_epoch, window_start),
            max(window_start, window_end - outcome.seconds),
        )
        lane = (
            DRIVER_LANE
            if outcome.worker_pid in (0, os.getpid())
            else worker_lane(outcome.worker_pid)
        )
        tracer.emit_anchored(
            "task:%s#%d" % (operator, outcome.task_index),
            KIND_TASK, anchor, 0.0, outcome.seconds, lane,
            dispatch=ordinal,
            task=outcome.task_index,
            attempt=outcome.attempt,
            ok=outcome.ok,
            pid=outcome.worker_pid,
        )
        for name, kind, offset, dur, args in outcome.events or ():
            tracer.emit_anchored(
                name, kind, anchor, offset, dur, lane, **args
            )

    # ------------------------------------------------------------------

    def _run_serial_fast(self, task, args_list, stage):
        """Inline execution with per-task timing but no retry plumbing."""
        perf_counter = time.perf_counter
        values = []
        seconds = []
        for args in args_list:
            start = perf_counter()
            values.append(task(*args))
            seconds.append(perf_counter() - start)
        self.tasks_launched += len(args_list)
        if stage is not None:
            for index, value in enumerate(seconds):
                stage.add_task_seconds(index, value)
            stage.straggler_tasks += len(self._straggler_indices(seconds))
        return values

    def _invocation(self, task, args, ordinal, operator, index, attempt):
        inject = self.fault_injector.should_fail(ordinal, operator, index)
        collect = self.tracer.enabled and (
            index < self.tracer.max_task_spans or attempt > 1
        )
        return Invocation(
            task=task,
            args=tuple(args),
            task_index=index,
            attempt=attempt,
            inject_fault=inject,
            collect_events=collect,
        )

    def _reraise(self, outcome):
        error = outcome.error
        if outcome.error_traceback and outcome.worker_pid != 0:
            # Cross-process errors lose their original traceback; keep
            # the worker-side rendering on the exception for debugging.
            error.worker_traceback = outcome.error_traceback
        raise error

    def _straggler_indices(self, seconds):
        """Indices of tasks that took disproportionately long.

        A task is a straggler when it exceeds both the configured
        multiple of the set's median runtime
        (``config.straggler_factor``, settable via the
        ``REPRO_STRAGGLER_FACTOR`` environment variable) and an
        absolute floor (so microsecond-scale jitter never counts).
        """
        if len(seconds) < 2:
            return []
        median = statistics.median(seconds)
        threshold = max(
            self.config.straggler_min_task_seconds,
            self.config.straggler_factor * median,
        )
        return [
            index for index, value in enumerate(seconds)
            if value > threshold
        ]

    def close(self):
        self.backend.close()

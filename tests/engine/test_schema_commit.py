"""Schema-driven columnar commitment and columnar-direct codegen.

The executor consumes :mod:`repro.analysis.schema` chain verdicts three
ways under ``compile_pipelines=True`` + ``schema_inference=True``:

* proven output schema -> probe-free ``encode_committed`` (a
  ``columnar-commit`` decision with ``choice="commit"``);
* refuted output schema -> no encode attempt (``choice="skip"``);
* unknown -> the per-partition probe exactly as before
  (``choice="probe"``);

and a proven *input* schema makes the generated loop read
``ColumnarPartition`` buffers directly, while a refuted or unknown
input schema falls back to the interpreted ``FusedPipelineTask`` with
the verdict recorded on the ``compiled-pipeline`` decision.
"""

from dataclasses import replace

import pytest

from repro.engine import EngineContext, laptop_config
from repro.engine import codegen
from repro.engine.columnar import ColumnarPartition, encode_committed
from repro.engine.runtime.task import STEP_FILTER, STEP_MAP


@pytest.fixture
def schema_ctx():
    config = replace(
        laptop_config(),
        compile_pipelines=True,
        schema_inference=True,
    )
    return EngineContext(config)


def _decisions(ctx, kind):
    return [d for d in ctx.optimizer_decisions if d.kind == kind]


def _double(x):
    return x * 2


def _half(x):
    return x / 2


def _to_pair(x):
    return (x, x / 2)


def _to_str(x):
    return "n=%d" % x


def _shift(x):
    return x - 3


def _keep(x):
    return x % 3 != 0


def _grow(x):
    return x * 1099511627776  # 2**40 as a literal: provably int


def _shout(s):
    return s + "!"


class TestCommitDecisions:
    def test_proven_chain_commits_without_probe(self, schema_ctx):
        result = (
            schema_ctx.bag_of(range(100), num_partitions=4)
            .map(_double)
            .filter(_keep)
            .collect()
        )
        assert sorted(result) == sorted(
            x * 2 for x in range(100) if (x * 2) % 3 != 0
        )
        commits = _decisions(schema_ctx, "columnar-commit")
        assert commits and all(d.choice == "commit" for d in commits)
        assert "proven columnar" in commits[0].detail
        compiled = _decisions(schema_ctx, "compiled-pipeline")
        assert compiled and compiled[0].choice == "compile"

    def test_refuted_chain_skips_encoding(self, schema_ctx):
        result = (
            schema_ctx.bag_of(range(10), num_partitions=2)
            .map(_to_str)
            .collect()
        )
        assert sorted(result) == sorted("n=%d" % x for x in range(10))
        commits = _decisions(schema_ctx, "columnar-commit")
        assert commits and all(d.choice == "skip" for d in commits)
        assert "refutes columnar" in commits[0].detail

    def test_unknown_chain_probes(self, schema_ctx):
        # Mixed int/float driver data defeats the scan, so the output
        # schema is unknown and the per-partition probe stays.
        result = (
            schema_ctx.bag_of([1, 2.5, 3, 4.5], num_partitions=2)
            .map(_double)
            .collect()
        )
        assert sorted(result) == sorted([2, 5.0, 6, 9.0])
        commits = _decisions(schema_ctx, "columnar-commit")
        assert commits and all(d.choice == "probe" for d in commits)


class TestInterpreterFallback:
    def test_refuted_input_schema_runs_interpreted(self, schema_ctx):
        """A chain whose *input* schema is refuted must fall back to
        the interpreted path, with the reason on the decision."""
        result = (
            schema_ctx.bag_of(["a", "bb", "ccc"], num_partitions=2)
            .map(_shout)
            .collect()
        )
        assert sorted(result) == ["a!", "bb!", "ccc!"]
        compiled = _decisions(schema_ctx, "compiled-pipeline")
        assert compiled
        assert compiled[0].choice == "interpret"
        assert "input schema refuted" in compiled[0].detail

    def test_unknown_input_schema_runs_interpreted(self, schema_ctx):
        result = (
            schema_ctx.bag_of([1, 2.5, 3], num_partitions=2)
            .map(_double)
            .collect()
        )
        assert sorted(result) == sorted([2, 5.0, 6])
        compiled = _decisions(schema_ctx, "compiled-pipeline")
        assert compiled and compiled[0].choice == "interpret"
        assert "input schema unknown" in compiled[0].detail

    def test_inference_off_keeps_generic_compiled_path(self):
        config = replace(laptop_config(), compile_pipelines=True)
        ctx = EngineContext(config)
        result = ctx.bag_of(["a", "bb"]).map(_shout).collect()
        assert sorted(result) == ["a!", "bb!"]
        # Without schema inference there is no columnar-commit record
        # and the chain compiles the generic way.
        assert _decisions(ctx, "columnar-commit") == []
        compiled = _decisions(ctx, "compiled-pipeline")
        assert compiled and compiled[0].choice == "compile"


class TestCommittedEncodeFallback:
    def test_overflow_keeps_plain_records(self, schema_ctx):
        """Proven-int schemas cannot rule out >64-bit values; the
        committed encode must fall back to the intact record list."""
        big = 2 ** 50
        result = (
            schema_ctx.bag_of([big, big + 1, 2], num_partitions=1)
            .map(_grow)
            .collect()
        )
        assert sorted(result) == sorted(
            [big * 2 ** 40, (big + 1) * 2 ** 40, 2 * 2 ** 40]
        )
        # The decision still says commit -- the runtime fallback is per
        # partition, after the attempt.
        commits = _decisions(schema_ctx, "columnar-commit")
        assert commits and commits[0].choice == "commit"

    def test_encode_committed_rejects_ragged_records(self):
        # Mid-partition arity change: min-arity (zip) and mean-arity
        # (sum of lens) guards both refuse, leaving records untouched.
        records = [(1, 2), (3, 4, 5)]
        assert encode_committed("ii", False, records) is None
        assert records == [(1, 2), (3, 4, 5)]
        records = [(1, 2), (3,)]
        assert encode_committed("ii", False, records) is None
        records = [(1, 2), (3,), (4, 5, 6)]  # mean happens to be 2
        assert encode_committed("ii", False, records) is None

    def test_encode_committed_happy_paths(self):
        part = encode_committed("if", False, [(1, 2.0), (3, 4.0)])
        assert isinstance(part, ColumnarPartition)
        assert part.to_records() == [(1, 2.0), (3, 4.0)]
        part = encode_committed("i", True, [1, 2, 3])
        assert part.to_records() == [1, 2, 3]

    def test_encode_committed_rejects_wrong_values(self):
        assert encode_committed("i", True, [1, "x"]) is None
        assert encode_committed("i", True, [1, 2 ** 80]) is None
        assert encode_committed("ii", False, [1, 2]) is None
        assert encode_committed("i", True, []) is None


class TestColumnarDirectLoop:
    def test_direct_source_has_runtime_guard(self):
        source = codegen.generate_source(
            [STEP_MAP, STEP_FILTER], input_spec=("ii", False)
        )
        assert '_cols = getattr(_part, "columns", None)' in source
        assert "_src = _part" in source  # the non-columnar fallback

    def test_schema_folds_into_cache_key(self):
        from repro.analysis.schema import chain_schema

        ctx = EngineContext(
            replace(
                laptop_config(),
                compile_pipelines=True,
                schema_inference=True,
            )
        )
        bag = ctx.bag_of(range(10)).map(_double)
        chain = [bag.node]
        steps = [(STEP_MAP, _double, "Map")]
        plain, _ = codegen.plan_compiled_task(steps)
        schemed, _ = codegen.plan_compiled_task(
            steps, schema=chain_schema(chain)
        )
        assert plain is not None and schemed is not None
        assert plain.key != schemed.key

    def test_direct_loop_reads_columnar_input(self, schema_ctx):
        """A cached columnar partition feeds the next chain's generated
        loop directly; values must round-trip exactly."""
        base = (
            schema_ctx.bag_of(range(200), num_partitions=4)
            .map(_double)
            .cache()
        )
        assert base.count() == 200
        # The cached partitions are columnar (proven int schema) and
        # the second chain's input schema is proven, so its generated
        # loop takes the buffer-direct branch.
        result = base.map(_shift).collect()
        assert sorted(result) == sorted(x * 2 - 3 for x in range(200))

    def test_direct_loop_tuple_records(self, schema_ctx):
        base = (
            schema_ctx.bag_of(range(50), num_partitions=2)
            .map(_to_pair)
            .cache()
        )
        assert base.count() == 50
        result = base.map(_first_plus_second).collect()
        assert sorted(result) == sorted(x + x / 2 for x in range(50))

    def test_float_chain_commits_and_round_trips(self, schema_ctx):
        result = (
            schema_ctx.bag_of(range(20), num_partitions=2)
            .map(_half)
            .collect()
        )
        assert sorted(result) == sorted(x / 2 for x in range(20))
        commits = _decisions(schema_ctx, "columnar-commit")
        assert commits and commits[0].choice == "commit"


def _first_plus_second(pair):
    return pair[0] + pair[1]

"""Plan-property inference: partitioning, key preservation, cardinality.

This module is an abstract interpretation over :mod:`repro.engine.plan`
DAGs.  For every node it infers:

* **Partitioning** -- whether the node's output is provably
  hash-partitioned on the record key (first tuple slot) into a known
  number of partitions, and *which shuffle produced that layout*.
* **Key preservation** -- whether a ``Map``/``FlatMap``/``MapPartitions``
  UDF provably never rewrites the key slot (an AST proof, see
  :func:`udf_preserves_key`).
* **Record bounds** -- static cardinality bounds extending
  :func:`repro.engine.plan.static_record_count` with upper bounds
  through filters, shuffles and joins.

The engine's shuffles place keys with a *balanced* assignment built from
runtime key counts (:func:`repro.engine.partitioner
.build_balanced_assignment`), not a pure hash of the key.  Two
independent shuffles with the same partition count therefore do **not**
co-partition identically; co-partitioning is only provable when two
plan edges trace back to the *same* shuffle node.  A
:class:`Partitioning` consequently carries the identity of its origin
shuffle node, and the executor keeps a registry of the concrete
assignments those origins produced at runtime.

The inference powers three consumers:

* the executor's shuffle-elision pass (:mod:`repro.engine.optimize`),
* the NPL4xx plan diagnostics (:mod:`repro.analysis.plan_lint`),
* ``Bag.explain(properties=True)`` annotations
  (:func:`partitioning_notes`).

Import direction: this module imports :mod:`repro.engine.plan` only.
The engine reaches back into it lazily (from inside functions) to avoid
an import cycle.
"""

import ast
import inspect
import textwrap

from ..engine import plan as p

__all__ = [
    "HASH",
    "NONE",
    "Partitioning",
    "Elision",
    "RecordBound",
    "PlanProperties",
    "infer_properties",
    "partitioning_notes",
    "udf_preserves_key",
    "function_ast",
]

#: Output is hash-partitioned on the record key (first tuple slot).
HASH = "hash"
#: No partitioning is provable for the output.
NONE = "none"


class Partitioning:
    """The partitioning property inferred for one plan node's output.

    Attributes:
        kind: :data:`HASH` or :data:`NONE`.
        num_partitions: Partition count of the layout (HASH only).
        origin: The shuffle node whose runtime assignment defines the
            layout (HASH only).  Two HASH properties describe the same
            physical layout iff their origins are the same node.
        blame: For NONE: the node that *destroyed* a provable hash
            partitioning (a key-rewriting map, a coalesce, a union), or
            ``None`` when there was nothing to destroy.
        reason: For NONE with a blame: why the partitioning was lost --
            ``"rewrites-key"`` (UDF provably rewrites the key slot),
            ``"unproven"`` (UDF could not be proven key-preserving),
            ``"coalesce"``, ``"union"``.
        lost: For NONE with a blame: the HASH partitioning that was
            lost.
    """

    __slots__ = ("kind", "num_partitions", "origin", "blame", "reason", "lost")

    def __init__(self, kind, num_partitions=0, origin=None, blame=None,
                 reason="", lost=None):
        self.kind = kind
        self.num_partitions = num_partitions
        self.origin = origin
        self.blame = blame
        self.reason = reason
        self.lost = lost

    @classmethod
    def hashed(cls, num_partitions, origin):
        return cls(HASH, num_partitions=num_partitions, origin=origin)

    @classmethod
    def unknown(cls, blame=None, reason="", lost=None):
        return cls(NONE, blame=blame, reason=reason, lost=lost)

    def __repr__(self):
        if self.kind == HASH:
            return "Partitioning(hash, parts=%d)" % self.num_partitions
        if self.blame is not None:
            return "Partitioning(none, %s)" % self.reason
        return "Partitioning(none)"


class Elision:
    """A shuffle the executor may elide (or partially elide).

    Attributes:
        node: The wide node (ReduceByKey/GroupByKey/CoGroup).
        choice: ``"elide"`` (full elision: the input is already laid
            out exactly as this shuffle would lay it out),
            ``"adopt-left"`` / ``"adopt-right"`` (a CoGroup keeps one
            side in place and bucketizes only the other side into the
            adopted layout), or ``"elide-both"`` (both CoGroup sides
            share the same origin layout; zip partitions directly).
        origin: The shuffle node whose layout is reused.
    """

    __slots__ = ("node", "choice", "origin")

    def __init__(self, node, choice, origin):
        self.node = node
        self.choice = choice
        self.origin = origin

    def __repr__(self):
        return "Elision(%s, %s)" % (type(self.node).__name__, self.choice)


class RecordBound:
    """Static cardinality bounds for one node's output.

    Attributes:
        exact: Exact record count, or ``None`` when unknown.
        upper: Upper bound on the record count, or ``None``.
    """

    __slots__ = ("exact", "upper")

    def __init__(self, exact=None, upper=None):
        self.exact = exact
        self.upper = upper

    def __repr__(self):
        return "RecordBound(exact=%r, upper=%r)" % (self.exact, self.upper)


class PlanProperties:
    """Inference results for a whole plan, keyed by node identity."""

    __slots__ = ("root", "partitioning", "elisions", "bounds")

    def __init__(self, root, partitioning, elisions, bounds):
        self.root = root
        self.partitioning = partitioning
        self.elisions = elisions
        self.bounds = bounds

    def partitioning_of(self, node):
        return self.partitioning[id(node)]

    def bound_of(self, node):
        return self.bounds[id(node)]


# ----------------------------------------------------------------------
# UDF key-preservation proof
# ----------------------------------------------------------------------

_PRESERVES_CACHE = {}


def function_ast(fn):
    """The ``ast.Lambda`` or ``ast.FunctionDef`` node for ``fn``.

    Returns ``None`` when the source is unavailable, unparseable, or
    ambiguous (several candidate definitions on the source lines).
    ``inspect.getsource`` of a lambda inside a method can return a
    fragment like ``return self.map(lambda kv: ...)`` that is not a
    valid module-level statement; such fragments are re-parsed wrapped
    in a dummy function body.
    """
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError):
        return None
    if source.startswith("."):
        # A lambda on its own line of a fluent chain comes back as
        # ``.map(lambda kv: ...)``; make it a parseable expression.
        source = source[1:]
    try:
        tree = ast.parse(source)
    except SyntaxError:
        try:
            tree = ast.parse(
                "def _repro_wrap_():\n" + textwrap.indent(source, "    ")
            )
        except SyntaxError:
            return None
    code = getattr(fn, "__code__", None)
    if code is None:
        return None
    if fn.__name__ == "<lambda>":
        candidates = [n for n in ast.walk(tree) if isinstance(n, ast.Lambda)]
    else:
        candidates = [
            n for n in ast.walk(tree)
            if isinstance(n, ast.FunctionDef) and n.name == fn.__name__
        ]
    if len(candidates) > 1:
        argnames = tuple(code.co_varnames[: code.co_argcount])
        candidates = [
            n for n in candidates
            if tuple(a.arg for a in n.args.args) == argnames
        ]
    if len(candidates) != 1:
        return None
    return candidates[0]


def udf_preserves_key(fn, flat=False):
    """Prove whether ``fn`` preserves the key slot of keyed records.

    The engine's keyed records are 2-tuples ``(key, value)``.  A map UDF
    preserves partitioning when every record it emits carries the same
    key as its input record.  This is a conservative AST proof:

    Returns:
        ``True`` when every emitted record provably keeps the input
        key, ``False`` when some emitted record provably rewrites it,
        and ``None`` when no proof either way is possible (treated as
        not preserving).
    """
    code = getattr(fn, "__code__", None)
    if code is None:
        return None
    cache_key = (code, bool(flat))
    if cache_key in _PRESERVES_CACHE:
        return _PRESERVES_CACHE[cache_key]
    verdict = _prove_preserves_key(fn, flat)
    _PRESERVES_CACHE[cache_key] = verdict
    return verdict


def _prove_preserves_key(fn, flat):
    code = fn.__code__
    if code.co_argcount != 1:
        return None
    node = function_ast(fn)
    if node is None:
        return None
    if isinstance(node, ast.Lambda):
        args = node.args
        param = args.args[0].arg if args.args else None
        bodies = [node.body]
    else:
        args = node.args
        if (args.vararg or args.kwarg or args.kwonlyargs
                or getattr(args, "posonlyargs", [])):
            return None
        if len(args.args) != 1:
            return None
        param = args.args[0].arg
        returns = [n for n in ast.walk(node) if isinstance(n, ast.Return)]
        if not returns or any(r.value is None for r in returns):
            return None
        bodies = [r.value for r in returns]
    if param is None or (not isinstance(node, ast.Lambda)
                         and _rebinds_name(node, param)):
        return None
    if isinstance(node, ast.Lambda) and (
            args.vararg or args.kwarg or args.kwonlyargs
            or getattr(args, "posonlyargs", []) or len(args.args) != 1):
        return None
    aliases = set() if isinstance(node, ast.Lambda) else _key_aliases(
        node, param
    )
    classify = _classify_flat if flat else _classify_map
    return _combine(classify(body, param, aliases) for body in bodies)


def _rebinds_name(fndef, name):
    """True when ``name`` is assigned anywhere in the function body."""
    for n in ast.walk(fndef):
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store):
            if n.id == name:
                return True
    return False


def _key_aliases(fndef, param):
    """Names provably bound (exactly once) to the input record's key.

    Recognizes ``k = kv[0]`` and tuple unpacking ``k, v = kv``.  A name
    bound more than once anywhere in the body is not trusted.
    """
    bound_counts = {}
    for n in ast.walk(fndef):
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store):
            bound_counts[n.id] = bound_counts.get(n.id, 0) + 1
    aliases = set()
    for n in ast.walk(fndef):
        if not isinstance(n, ast.Assign) or len(n.targets) != 1:
            continue
        target = n.targets[0]
        if (isinstance(target, ast.Name)
                and _is_key_expr(n.value, param, set())
                and bound_counts.get(target.id) == 1):
            aliases.add(target.id)
        elif (isinstance(target, ast.Tuple) and len(target.elts) == 2
              and isinstance(target.elts[0], ast.Name)
              and isinstance(n.value, ast.Name) and n.value.id == param
              and bound_counts.get(target.elts[0].id) == 1):
            aliases.add(target.elts[0].id)
    return aliases


def _is_key_expr(expr, param, aliases):
    """``kv[0]`` or a trusted alias of it."""
    if isinstance(expr, ast.Name):
        return expr.id in aliases
    return (
        isinstance(expr, ast.Subscript)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == param
        and isinstance(expr.slice, ast.Constant)
        and expr.slice.value == 0
    )


def _references(expr, names):
    for n in ast.walk(expr):
        if isinstance(n, ast.Name) and n.id in names:
            return True
    return False


def _combine(verdicts):
    """All True -> True; any False -> False; else None."""
    result = True
    for verdict in verdicts:
        if verdict is False:
            return False
        if verdict is None:
            result = None
    return result


def _classify_map(expr, param, aliases):
    """Does a map expression emit a record with the input record's key?"""
    if isinstance(expr, ast.IfExp):
        return _combine((
            _classify_map(expr.body, param, aliases),
            _classify_map(expr.orelse, param, aliases),
        ))
    if isinstance(expr, ast.Name):
        if expr.id == param:
            return True  # identity: the record itself
        return None
    if _is_key_expr(expr, param, aliases):
        return False  # emits the bare key (a keys() rewrite)
    if (isinstance(expr, ast.Subscript)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == param
            and isinstance(expr.slice, ast.Constant)):
        return False  # emits a non-key slot (a values() rewrite)
    if isinstance(expr, ast.Tuple) and len(expr.elts) == 2:
        if any(isinstance(e, ast.Starred) for e in expr.elts):
            return None
        first = expr.elts[0]
        if _is_key_expr(first, param, aliases):
            return True
        if (isinstance(first, ast.Subscript)
                and isinstance(first.value, ast.Name)
                and first.value.id == param
                and isinstance(first.slice, ast.Constant)
                and first.slice.value != 0):
            return False  # key rebuilt from a non-key slot
        if _references(first, {param} | aliases):
            return None  # e.g. f(kv[0]), kv[0] + 0, the whole record
        return False  # key built from something unrelated to the input
    return None


def _classify_flat(expr, param, aliases):
    """Does a flat-map expression emit only input-keyed records?"""
    if isinstance(expr, ast.IfExp):
        return _combine((
            _classify_flat(expr.body, param, aliases),
            _classify_flat(expr.orelse, param, aliases),
        ))
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        if any(isinstance(e, ast.Starred) for e in expr.elts):
            return None
        if not expr.elts:
            return True  # emits nothing
        return _combine(
            _classify_map(e, param, aliases) for e in expr.elts
        )
    if isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
        shadowed = {param} | aliases
        for comp in expr.generators:
            for n in ast.walk(comp.target):
                if isinstance(n, ast.Name) and n.id in shadowed:
                    return None  # comprehension shadows the record
        return _classify_map(expr.elt, param, aliases)
    return None


# ----------------------------------------------------------------------
# Partitioning and bound inference
# ----------------------------------------------------------------------

def infer_properties(root):
    """Run the abstract interpretation over the plan rooted at ``root``.

    Returns:
        A :class:`PlanProperties` with per-node partitioning,
        shuffle-elision opportunities, and record bounds (all keyed by
        ``id(node)``).
    """
    parts = {}
    elisions = {}
    bounds = {}
    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        key = id(node)
        if key in parts:
            continue
        if not expanded:
            stack.append((node, True))
            for child in node.children:
                if id(child) not in parts:
                    stack.append((child, False))
            continue
        partitioning, elision = _node_partitioning(node, parts)
        parts[key] = partitioning
        if elision is not None:
            elisions[key] = elision
        bounds[key] = _node_bound(node, bounds)
    return PlanProperties(root, parts, elisions, bounds)


def _node_partitioning(node, parts):
    """(Partitioning, Elision-or-None) for one node, children solved."""
    if isinstance(node, p.Filter):
        return parts[id(node.child)], None
    if isinstance(node, (p.Map, p.FlatMap)):
        child = parts[id(node.child)]
        if child.kind != HASH:
            return child, None
        if getattr(node, "preserves_partitioning", False):
            return child, None
        verdict = udf_preserves_key(node.fn, flat=isinstance(node, p.FlatMap))
        if verdict is True:
            return child, None
        reason = "rewrites-key" if verdict is False else "unproven"
        return Partitioning.unknown(blame=node, reason=reason,
                                    lost=child), None
    if isinstance(node, p.MapPartitions):
        child = parts[id(node.child)]
        if child.kind != HASH:
            return child, None
        if getattr(node, "preserves_partitioning", False):
            return child, None
        return Partitioning.unknown(blame=node, reason="unproven",
                                    lost=child), None
    if isinstance(node, p.ZipWithUniqueId):
        child = parts[id(node.child)]
        if child.kind != HASH:
            return child, None
        return Partitioning.unknown(blame=node, reason="rewrites-key",
                                    lost=child), None
    if isinstance(node, p.Coalesce):
        child = parts[id(node.child)]
        if child.kind != HASH:
            return child, None
        return Partitioning.unknown(blame=node, reason="coalesce",
                                    lost=child), None
    if isinstance(node, p.Union):
        lost = None
        for inp in node.children:
            if parts[id(inp)].kind == HASH:
                lost = parts[id(inp)]
                break
        blame = node if lost is not None else None
        return Partitioning.unknown(blame=blame, reason="union",
                                    lost=lost), None
    if isinstance(node, (p.ReduceByKey, p.GroupByKey)):
        child = parts[id(node.child)]
        n = node.num_partitions
        if child.kind == HASH and child.num_partitions == n:
            # Every key is already confined to the partition this
            # shuffle would send it to: the shuffle is a no-op.
            return child, Elision(node, "elide", child.origin)
        return Partitioning.hashed(n, node), None
    if isinstance(node, p.CoGroup):
        left = parts[id(node.left)]
        right = parts[id(node.right)]
        n = node.num_partitions
        left_fits = left.kind == HASH and left.num_partitions == n
        right_fits = right.kind == HASH and right.num_partitions == n
        if left_fits and right_fits and left.origin is right.origin:
            return (Partitioning.hashed(n, left.origin),
                    Elision(node, "elide-both", left.origin))
        if left_fits:
            return (Partitioning.hashed(n, node),
                    Elision(node, "adopt-left", left.origin))
        if right_fits:
            return (Partitioning.hashed(n, node),
                    Elision(node, "adopt-right", right.origin))
        return Partitioning.hashed(n, node), None
    if isinstance(node, p.BroadcastJoin):
        # Probe-side records (k, v) become (k, (v, w)) in place: the
        # output keeps the left (probe) side's layout and key set.
        return parts[id(node.left)], None
    # Parallelize, CrossBroadcast, and anything unknown.
    return Partitioning.unknown(reason="source"), None


#: Bounds beyond this are useless for sizing decisions and, because
#: join bounds multiply, can otherwise snowball into astronomically
#: large bignums on deep lifted-loop plans; cap to "unknown".
_BOUND_CAP = 10 ** 15


def _capped(value):
    return value if value is None or value <= _BOUND_CAP else None


def _node_bound(node, bounds):
    """Static record bounds for one node, children already solved."""
    if isinstance(node, p.Parallelize):
        n = len(node.data)
        return RecordBound(exact=n, upper=n)
    if isinstance(node, (p.Map, p.ZipWithUniqueId, p.Coalesce)):
        child = bounds[id(node.child)]
        return RecordBound(exact=child.exact, upper=child.upper)
    if isinstance(node, p.Filter):
        return RecordBound(upper=bounds[id(node.child)].upper)
    if isinstance(node, p.Union):
        exacts = [bounds[id(c)].exact for c in node.children]
        uppers = [bounds[id(c)].upper for c in node.children]
        return RecordBound(
            exact=_capped(
                sum(exacts) if all(e is not None for e in exacts)
                else None
            ),
            upper=_capped(
                sum(uppers) if all(u is not None for u in uppers)
                else None
            ),
        )
    if isinstance(node, (p.ReduceByKey, p.GroupByKey)):
        # At most one output record per distinct key.
        return RecordBound(upper=bounds[id(node.child)].upper)
    if isinstance(node, p.CoGroup):
        left = bounds[id(node.left)].upper
        right = bounds[id(node.right)].upper
        if left is not None and right is not None:
            return RecordBound(upper=_capped(left + right))
        return RecordBound()
    if isinstance(node, p.BroadcastJoin):
        left = bounds[id(node.left)].upper
        right = bounds[id(node.right)].upper
        if left is not None and right is not None:
            return RecordBound(upper=_capped(left * right))
        return RecordBound()
    if isinstance(node, p.CrossBroadcast):
        left = bounds[id(node.left)]
        right = bounds[id(node.right)]
        exact = (left.exact * right.exact
                 if left.exact is not None and right.exact is not None
                 else None)
        upper = (left.upper * right.upper
                 if left.upper is not None and right.upper is not None
                 else None)
        return RecordBound(exact=_capped(exact), upper=_capped(upper))
    return RecordBound()


def partitioning_notes(root, props=None):
    """Human-readable partitioning annotations, keyed by ``id(node)``.

    Used by ``Bag.explain(properties=True)``.  HASH nodes are annotated
    ``hash(k0)`` (fresh layout) or ``hash(k0) via #N`` (layout inherited
    from the shuffle with plan id ``N``); nodes that *destroy* a
    provable partitioning are annotated ``drops hash(k0)``.  Other
    nodes carry no note.
    """
    if props is None:
        props = infer_properties(root)
    ids = p.assign_node_ids(root)
    notes = {}
    for node in p.iter_nodes(root):
        partitioning = props.partitioning[id(node)]
        if partitioning.kind == HASH:
            origin = partitioning.origin
            if origin is node:
                notes[id(node)] = "hash(k0)"
            else:
                origin_id = ids.get(id(origin))
                if origin_id is None:
                    notes[id(node)] = "hash(k0)"
                else:
                    notes[id(node)] = "hash(k0) via #%d" % origin_id
        elif partitioning.blame is node:
            notes[id(node)] = "drops hash(k0)"
    return notes

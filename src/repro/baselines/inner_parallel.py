"""The inner-parallel workaround (paper Sec. 1).

Parallelize at the level of the inner collections only: a loop in the
driver program iterates over the groups *sequentially* and launches a
full parallel job chain for each.  Every core can help with every group,
but the total job-launch overhead scales with the number of groups (times
the number of iterations for iterative tasks) -- the failure mode the
cost model's per-job term reproduces.

The per-group inputs are assumed to be pre-partitioned (one dataset per
group, as a user of this workaround would have them on distributed
storage); the driver loop does not pay to re-scan the full input per
group.
"""


def run_inner_parallel(ctx, groups, per_group_fn):
    """Run a parallel computation per group, one group at a time.

    Args:
        ctx: The engine context (jobs of all groups accumulate in its
            trace, sequentially, exactly like a driver loop).
        groups: ``{key: [values]}`` -- the pre-partitioned inputs.
        per_group_fn: ``per_group_fn(ctx, values_list) -> result``; it
            builds bags with ``ctx.bag_of`` and runs parallel operations
            (each action is a separate job).

    Returns:
        ``[(key, result), ...]`` in key order.
    """
    results = []
    for key in sorted(groups, key=repr):
        results.append((key, per_group_fn(ctx, groups[key])))
    return results


def group_locally(records):
    """Driver-side grouping helper: ``[(k, v), ...] -> {k: [v, ...]}``."""
    groups = {}
    for key, value in records:
        groups.setdefault(key, []).append(value)
    return groups

"""DAG-parallel stage scheduling: parity with serial, gather, errors.

The contract under test (see ``repro.engine.dag``): switching
``ClusterConfig.scheduler`` from ``"serial"`` to ``"dag"`` changes
*when* stages run but nothing observable -- results, trace signatures,
shuffle accounting, and cache behavior stay bit-identical.
"""

import threading

import pytest

from repro.engine import EngineContext, laptop_config
from repro.engine.dag import OrdinalCursor, plan_units, total_ordinal_budget
from repro.engine.validate import (
    ScheduleParityError,
    assert_schedule_parity,
    trace_signature,
)
from repro.errors import UdfError


def dag_ctx(**overrides):
    overrides.setdefault("scheduler", "dag")
    return EngineContext(laptop_config(**overrides))


def branching_cogroup(ctx):
    left = (
        ctx.bag_of(range(40))
        .map(lambda x: (x % 4, x))
        .reduce_by_key(lambda a, b: a + b)
    )
    right = (
        ctx.bag_of(range(30))
        .map(lambda x: (x % 5, x * x))
        .group_by_key()
    )
    return sorted(left.cogroup(right).collect())


def wide_union(ctx):
    arms = [
        ctx.bag_of([(i, v) for v in range(10)], num_partitions=2)
        .reduce_by_key(lambda a, b: a + b)
        for i in range(4)
    ]
    return sorted(arms[0].union(*arms[1:]).collect())


def broadcast_join(ctx):
    big = ctx.bag_of([(k % 3, k) for k in range(24)])
    small = ctx.bag_of([(0, "a"), (1, "b"), (2, "c")])
    return sorted(big.join(small, strategy="broadcast").collect())


class TestScheduleParity:
    def test_branching_cogroup(self):
        assert_schedule_parity(branching_cogroup)

    def test_wide_union(self):
        assert_schedule_parity(wide_union)

    def test_broadcast_join(self):
        assert_schedule_parity(broadcast_join)

    def test_parity_on_process_backend(self):
        assert_schedule_parity(
            branching_cogroup,
            config=laptop_config(backend="process"),
            num_workers=2,
        )

    def test_parity_helper_detects_divergence(self):
        def rigged(ctx):
            return [ctx.config.scheduler]

        with pytest.raises(ScheduleParityError, match="different results"):
            assert_schedule_parity(rigged)

    def test_trace_signatures_identical_for_multi_job_program(self):
        def program(ctx):
            shared = ctx.bag_of(range(60)).map(lambda x: (x % 6, 1))
            counts = shared.reduce_by_key(lambda a, b: a + b)
            counts.count()
            return sorted(counts.collect())

        signatures = []
        for scheduler in ("serial", "dag"):
            ctx = EngineContext(laptop_config(scheduler=scheduler))
            program(ctx)
            signatures.append(trace_signature(ctx.trace))
            ctx.close()
        assert signatures[0] == signatures[1]


class TestDagExecution:
    def test_cached_bag_materialized_once_and_shared(self):
        ctx = dag_ctx()
        shared = (
            ctx.bag_of(range(40))
            .map(lambda x: (x % 4, x))
            .reduce_by_key(lambda a, b: a + b)
            .cache()
        )
        first = sorted(shared.collect())
        assert shared.node.materialized is not None
        second = sorted(shared.map(lambda kv: kv).collect())
        assert first == second
        # The second job reads the cache: it records a "cached" stage
        # and schedules no shuffle of its own.
        second_job = ctx.trace.jobs[-1]
        assert any(s.kind == "cached" for s in second_job.stages)
        assert all(
            s.shuffle_read_records == 0 for s in second_job.stages
        )

    def test_udf_error_propagates_and_context_survives(self):
        ctx = dag_ctx()

        def boom(kv):
            raise ValueError("bad record %r" % (kv,))

        left = ctx.bag_of(range(20)).map(lambda x: (x % 2, x))
        right = (
            ctx.bag_of(range(20))
            .map(lambda x: (x % 2, x))
            .reduce_by_key(lambda a, b: a + b)
            .map(boom)
        )
        with pytest.raises(UdfError):
            left.cogroup(right).collect()
        # The context stays usable after a failed DAG job.
        assert ctx.bag_of(range(5)).count() == 5

    def test_single_unit_plans_skip_the_coordinator(self):
        # A one-unit plan (plain parallelize + count) runs serially even
        # under the DAG scheduler; results are unaffected.
        ctx = dag_ctx()
        assert ctx.bag_of(range(7), num_partitions=2).count() == 7

    def test_stage_ids_consecutive_under_dag(self):
        ctx = dag_ctx()
        branching_cogroup(ctx)
        for job in ctx.trace.jobs:
            assert [s.stage_id for s in job.stages] == list(
                range(len(job.stages))
            )


class TestPlannedOrdinals:
    def test_unit_ordinals_cover_the_reserved_budget(self):
        ctx = EngineContext(laptop_config())
        left = ctx.bag_of(range(12)).map(lambda x: (x % 3, x))
        wide = left.reduce_by_key(lambda a, b: a + b)
        units = plan_units(wide.node)
        budget = total_ordinal_budget(units)
        assert budget == units[-1].ordinal_offset + units[-1].ordinal_budget
        offsets = [u.ordinal_offset for u in units]
        assert offsets == sorted(offsets)

    def test_ordinal_cursor_is_sequential(self):
        cursor = OrdinalCursor(5)
        assert [cursor.take() for _ in range(3)] == [5, 6, 7]


class TestGather:
    def test_results_in_submission_order(self):
        ctx = EngineContext(laptop_config())
        results = ctx.gather(
            lambda: ctx.bag_of(range(10)).count(),
            lambda: sorted(ctx.bag_of([3, 1, 2]).collect()),
            lambda: ctx.bag_of(range(4)).map(lambda x: x * x).count(),
        )
        assert results == [10, [1, 2, 3], 4]

    def test_trace_restored_to_submission_order(self):
        ctx = dag_ctx()
        barrier = threading.Barrier(3, timeout=10)

        def job(label, n):
            def run():
                barrier.wait()
                return ctx.bag_of(range(n)).count(label=label)

            return run

        ctx.gather(job("a", 5), job("b", 6), job("c", 7))
        labels = [job.label for job in ctx.trace.jobs]
        assert labels == ["a", "b", "c"]
        assert [job.job_id for job in ctx.trace.jobs] == [0, 1, 2]

    def test_earliest_slot_exception_wins(self):
        ctx = EngineContext(laptop_config())

        def fail(message):
            def run():
                raise RuntimeError(message)

            return run

        with pytest.raises(RuntimeError, match="first"):
            ctx.gather(
                lambda: ctx.bag_of(range(3)).count(),
                fail("first"),
                fail("second"),
            )

    def test_empty_gather(self):
        ctx = EngineContext(laptop_config())
        assert ctx.gather() == []

    def test_gather_parity_across_schedulers(self):
        def program(ctx):
            return ctx.gather(
                lambda: sorted(
                    ctx.bag_of(range(20))
                    .map(lambda x: (x % 2, x))
                    .reduce_by_key(lambda a, b: a + b)
                    .collect()
                ),
                lambda: ctx.bag_of(range(15)).count(),
            )

        assert_schedule_parity(program)

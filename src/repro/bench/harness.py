"""Experiment harness: run a task under each system, report simulated time.

Each measured run gets a fresh :class:`EngineContext` over the experiment's
cluster configuration.  The program executes for real; the reported
seconds come from the cost model over the recorded trace.  Simulated OOM
is caught and reported the way the paper's plots mark failed runs.
"""

import math
from dataclasses import dataclass, field

from ..engine import EngineContext
from ..errors import SimulatedOutOfMemory

OOM = "OOM"


@dataclass
class RunResult:
    """Outcome of one measured run."""

    system: str
    x: object
    seconds: float = math.nan
    status: str = "ok"
    jobs: int = 0
    detail: str = ""

    @property
    def failed(self):
        return self.status != "ok"

    def cell(self):
        if self.status == "oom":
            return OOM
        if self.status == "skipped":
            return "-"
        return _format_seconds(self.seconds)


def run_measured(config, system, x, fn):
    """Run ``fn(ctx)`` on a fresh context; return a :class:`RunResult`.

    The trace is checked against the invariants of
    :mod:`repro.engine.validate` before it is costed: a figure must
    never be computed from a malformed trace.
    """
    ctx = EngineContext(config)
    try:
        fn(ctx)
    except SimulatedOutOfMemory as oom:
        return RunResult(
            system=system,
            x=x,
            status="oom",
            jobs=ctx.trace.num_jobs,
            detail=str(oom),
        )
    ctx.validate_trace()
    return RunResult(
        system=system,
        x=x,
        seconds=ctx.simulated_seconds(),
        jobs=ctx.trace.num_jobs,
    )


@dataclass
class Sweep:
    """One experiment: systems x sweep values, rendered as a table.

    Attributes:
        title: Table heading (e.g. ``"Fig. 3b: weak scaling, PageRank"``).
        x_label: Name of the sweep parameter column.
        systems: Column order.
        results: All collected :class:`RunResult` rows.
    """

    title: str
    x_label: str
    systems: list
    results: list = field(default_factory=list)

    def add(self, result):
        self.results.append(result)

    def run(self, config, system, x, fn):
        result = run_measured(config, system, x, fn)
        self.add(result)
        return result

    def result_for(self, system, x):
        for result in self.results:
            if result.system == system and result.x == x:
                return result
        return None

    def seconds(self, system, x):
        """Simulated seconds of one cell, or None if missing/failed."""
        result = self.result_for(system, x)
        if result is None or result.failed:
            return None
        return result.seconds

    def speedup(self, baseline, system, x):
        """How much faster ``system`` is than ``baseline`` at ``x``."""
        base = self.seconds(baseline, x)
        ours = self.seconds(system, x)
        if base is None or ours is None or ours == 0:
            return None
        return base / ours

    def x_values(self):
        seen = []
        for result in self.results:
            if result.x not in seen:
                seen.append(result.x)
        return seen

    def to_table(self):
        """Aligned text table: one row per x value, one column per system."""
        header = [self.x_label] + list(self.systems)
        rows = [header]
        for x in self.x_values():
            row = [str(x)]
            for system in self.systems:
                result = self.result_for(system, x)
                row.append(result.cell() if result else "-")
            rows.append(row)
        widths = [
            max(len(row[i]) for row in rows) for i in range(len(header))
        ]
        lines = [self.title, "=" * len(self.title)]
        for index, row in enumerate(rows):
            lines.append(
                "  ".join(
                    cell.rjust(width) for cell, width in zip(row, widths)
                )
            )
            if index == 0:
                lines.append(
                    "  ".join("-" * width for width in widths)
                )
        return "\n".join(lines)

    def print_table(self):
        print()
        print(self.to_table())

    def to_csv(self):
        """The sweep as CSV text (x column + one column per system).

        Failed cells render as ``OOM``; missing cells are empty.  Handy
        for plotting the figures with external tooling.
        """
        lines = [",".join([self.x_label] + list(self.systems))]
        for x in self.x_values():
            row = [str(x)]
            for system in self.systems:
                result = self.result_for(system, x)
                if result is None:
                    row.append("")
                elif result.failed:
                    row.append(OOM)
                else:
                    row.append("%.3f" % result.seconds)
            lines.append(",".join(row))
        return "\n".join(lines) + "\n"


def _format_seconds(seconds):
    if seconds != seconds:  # NaN
        return "-"
    if seconds >= 100:
        return "%.0f s" % seconds
    if seconds >= 1:
        return "%.1f s" % seconds
    return "%.2f s" % seconds


def geometric_x_values(start, stop, factor=2):
    """Sweep values ``start, start*factor, ... <= stop`` (inclusive)."""
    values = []
    x = start
    while x <= stop:
        values.append(x)
        x *= factor
    return values

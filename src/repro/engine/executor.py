"""Plan evaluation: turns a lineage DAG into data, recording metrics.

The executor evaluates plans recursively.  Narrow operators fuse into the
stage of their input (their per-task record counts are credited to that
stage); wide operators perform a hash shuffle and open a new stage.  The
recorded :class:`~repro.engine.metrics.JobMetrics` mirror what the Spark UI
would show for the same program, which is what the cost model needs.

Everything actually executes -- results are real, only the clock is
simulated.
"""

import sys

from ..errors import PlanError, SimulatedOutOfMemory, UdfError
from . import plan as p
from .partitioner import build_balanced_assignment
from .work import unwrap

_MIN_RECURSION_LIMIT = 20000


def _origin(node):
    name = node.name
    if node.label:
        name += "[%s]" % node.label
    return name


class _Result:
    """Partitions of an evaluated node plus the stage that produced them."""

    __slots__ = ("partitions", "stage")

    def __init__(self, partitions, stage):
        self.partitions = partitions
        self.stage = stage


class Executor:
    """Evaluates plan nodes for one :class:`EngineContext`."""

    def __init__(self, config, trace):
        self.config = config
        self.trace = trace
        if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
            sys.setrecursionlimit(_MIN_RECURSION_LIMIT)

    # ------------------------------------------------------------------
    # Job entry points (actions)
    # ------------------------------------------------------------------

    def collect(self, node, label=""):
        """Run a job and return all elements as a list."""
        job = self.trace.new_job("collect", label)
        partitions = self._run(node, job)
        result = [item for part in partitions for item in part]
        self._check_driver_memory(len(result))
        job.collected_records += len(result)
        return result

    def count(self, node, label=""):
        job = self.trace.new_job("count", label)
        partitions = self._run(node, job)
        job.collected_records += len(partitions)
        return sum(len(part) for part in partitions)

    def save(self, node, label=""):
        """Write a bag to distributed storage (the paper's output op).

        The data never passes through the driver; the job is charged a
        parallel disk write.  Returns the number of records written.
        """
        job = self.trace.new_job("save", label)
        partitions = self._run(node, job)
        written = sum(len(part) for part in partitions)
        if node.meta:
            job.saved_meta_records += written
        else:
            job.saved_records += written
        return written

    def reduce(self, node, fn, label=""):
        job = self.trace.new_job("reduce", label)
        partitions = self._run(node, job)
        partials = []
        for part in partitions:
            iterator = iter(part)
            try:
                acc = next(iterator)
            except StopIteration:
                continue
            for item in iterator:
                acc = fn(acc, item)
            partials.append(acc)
        job.collected_records += len(partials)
        if not partials:
            raise PlanError("reduce of an empty bag")
        acc = partials[0]
        for item in partials[1:]:
            acc = fn(acc, item)
        return acc

    def fold(self, node, zero, fn, label=""):
        job = self.trace.new_job("fold", label)
        partitions = self._run(node, job)
        acc = zero
        for part in partitions:
            for item in part:
                acc = fn(acc, item)
        job.collected_records += len(partitions)
        return acc

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _run(self, node, job):
        memo = {}
        return self._eval(node, job, memo).partitions

    def _eval(self, node, job, memo):
        key = id(node)
        if key in memo:
            return memo[key]
        if node.materialized is not None:
            stage = job.new_stage("cached", meta=node.meta, origin=_origin(node))
            for _ in node.materialized:
                stage.task_records.append(0)
            result = _Result(node.materialized, stage)
            memo[key] = result
            return result
        result = self._eval_fresh(node, job, memo)
        if node.cached:
            node.materialized = result.partitions
        memo[key] = result
        return result

    def _eval_fresh(self, node, job, memo):
        if isinstance(node, p.Parallelize):
            return self._eval_parallelize(node, job)
        if isinstance(node, p.Map):
            return self._eval_elementwise(node, job, memo, self._map_part)
        if isinstance(node, p.Filter):
            return self._eval_elementwise(node, job, memo, self._filter_part)
        if isinstance(node, p.FlatMap):
            return self._eval_elementwise(node, job, memo, self._flatmap_part)
        if isinstance(node, p.MapPartitions):
            return self._eval_map_partitions(node, job, memo)
        if isinstance(node, p.ZipWithUniqueId):
            return self._eval_zip_with_unique_id(node, job, memo)
        if isinstance(node, p.Union):
            return self._eval_union(node, job, memo)
        if isinstance(node, p.Coalesce):
            return self._eval_coalesce(node, job, memo)
        if isinstance(node, p.ReduceByKey):
            return self._eval_reduce_by_key(node, job, memo)
        if isinstance(node, p.GroupByKey):
            return self._eval_group_by_key(node, job, memo)
        if isinstance(node, p.CoGroup):
            return self._eval_cogroup(node, job, memo)
        if isinstance(node, p.BroadcastJoin):
            return self._eval_broadcast_join(node, job, memo)
        if isinstance(node, p.CrossBroadcast):
            return self._eval_cross_broadcast(node, job, memo)
        raise PlanError("unknown plan node type: %s" % node.name)

    def _eval_parallelize(self, node, job):
        partitions = node.build_partitions()
        stage = job.new_stage("input", meta=node.meta, origin=_origin(node))
        for part in partitions:
            stage.task_records.append(len(part))
        return _Result(partitions, stage)

    # -- narrow elementwise operators ----------------------------------

    def _eval_elementwise(self, node, job, memo, apply_part):
        child = self._eval(node.child, job, memo)
        factor = self.config.sequential_work_factor
        out = []
        for index, part in enumerate(child.partitions):
            child.stage.add_task_records(index, len(part))
            work = [0]
            out.append(apply_part(node, part, work))
            if work[0]:
                # UDF-internal sequential work runs record-at-a-time and
                # is charged at the configured slowdown over the bulk rate.
                child.stage.add_task_records(index, int(work[0] * factor))
        return _Result(out, child.stage)

    def _map_part(self, node, part, work):
        out = []
        for item in part:
            out.append(unwrap(self._call(node, node.fn, item), work))
        return out

    def _filter_part(self, node, part, work):
        out = []
        for item in part:
            if unwrap(self._call(node, node.fn, item), work):
                out.append(item)
        return out

    def _flatmap_part(self, node, part, work):
        out = []
        for item in part:
            produced = unwrap(self._call(node, node.fn, item), work)
            out.extend(produced)
        return out

    def _eval_map_partitions(self, node, job, memo):
        child = self._eval(node.child, job, memo)
        out = []
        for index, part in enumerate(child.partitions):
            child.stage.add_task_records(index, len(part))
            produced = list(self._call(node, node.fn, part, index))
            out.append(produced)
        return _Result(out, child.stage)

    def _eval_zip_with_unique_id(self, node, job, memo):
        child = self._eval(node.child, job, memo)
        n = max(1, len(child.partitions))
        out = []
        for index, part in enumerate(child.partitions):
            child.stage.add_task_records(index, len(part))
            out.append(
                [(item, index + i * n) for i, item in enumerate(part)]
            )
        return _Result(out, child.stage)

    def _eval_union(self, node, job, memo):
        partition_lists = []
        for child in node.children:
            partition_lists.append(self._eval(child, job, memo).partitions)
        partitions = p.chain_partitions(partition_lists)
        stage = job.new_stage("union", meta=node.meta, origin=_origin(node))
        for _ in partitions:
            stage.task_records.append(0)
        return _Result(partitions, stage)

    def _eval_coalesce(self, node, job, memo):
        child = self._eval(node.child, job, memo)
        n = min(node.num_partitions, max(1, len(child.partitions)))
        out = [[] for _ in range(n)]
        for index, part in enumerate(child.partitions):
            out[index % n].extend(part)
        stage = job.new_stage(
            "union", meta=node.meta, origin=_origin(node)
        )
        for part in out:
            stage.task_records.append(0)
        return _Result(out, stage)

    # -- wide (shuffling) operators ------------------------------------

    def _shuffle(self, result, num_partitions, job, meta=False,
                 origin="", assignment=None):
        """Shuffle keyed partitions; returns (buckets, reduce_stage).

        Keys are spread over reduce buckets with a balanced assignment
        (see :func:`build_balanced_assignment`); joins pass a shared
        ``assignment`` so both sides co-partition.
        """
        if assignment is None:
            assignment = self._key_assignment(
                result.partitions, num_partitions
            )
        buckets = [[] for _ in range(num_partitions)]
        moved = 0
        for index, part in enumerate(result.partitions):
            result.stage.add_task_records(index, len(part))
            moved += len(part)
            for record in part:
                self._require_keyed(record)
                buckets[assignment[record[0]]].append(record)
        stage = job.new_stage("shuffle", meta=meta, origin=origin)
        stage.shuffle_read_records = moved
        for bucket in buckets:
            stage.task_records.append(len(bucket))
        return buckets, stage

    def _key_assignment(self, partition_lists, num_partitions):
        counts = {}
        for part in partition_lists:
            for record in part:
                self._require_keyed(record)
                key = record[0]
                counts[key] = counts.get(key, 0) + 1
        return build_balanced_assignment(counts, num_partitions)

    def _eval_reduce_by_key(self, node, job, memo):
        child = self._eval(node.child, job, memo)
        # Map-side combine: reduce within each map partition first, so the
        # shuffle only moves one record per (partition, key) pair.
        combined = _Result(
            [
                self._combine_partition(node, part)
                for part in child.partitions
            ],
            child.stage,
        )
        buckets, stage = self._shuffle(
            combined, node.num_partitions, job, meta=node.meta,
            origin=_origin(node),
        )
        out = []
        for bucket in buckets:
            out.append(self._combine_partition(node, bucket))
        self._account_spill(stage)
        return _Result(out, stage)

    def _combine_partition(self, node, records):
        acc = {}
        for record in records:
            self._require_keyed(record)
            key, value = record
            if key in acc:
                acc[key] = self._call(node, node.fn, acc[key], value)
            else:
                acc[key] = value
        return list(acc.items())

    def _eval_group_by_key(self, node, job, memo):
        child = self._eval(node.child, job, memo)
        buckets, stage = self._shuffle(
            child, node.num_partitions, job, meta=node.meta,
            origin=_origin(node),
        )
        out = []
        limit = self._task_limit(buckets)
        rate = self._stage_rate(stage)
        for bucket in buckets:
            groups = {}
            for key, value in bucket:
                groups.setdefault(key, []).append(value)
            for key, values in groups.items():
                needed = self.config.materialized_bytes(len(values), rate)
                if needed > limit:
                    raise SimulatedOutOfMemory(
                        "materializing group %r" % (key,), needed, limit
                    )
            out.append(list(groups.items()))
        self._account_spill(stage)
        return _Result(out, stage)

    def _task_limit(self, buckets):
        """Per-task memory budget given how many tasks run concurrently."""
        nonempty = sum(1 for bucket in buckets if bucket)
        per_machine = -(-max(1, nonempty) // self.config.machines)
        return self.config.task_memory_limit_bytes(per_machine)

    def _eval_cogroup(self, node, job, memo):
        left = self._eval(node.left, job, memo)
        right = self._eval(node.right, job, memo)
        # Both sides co-partition: one key assignment over both inputs.
        counts = {}
        for result in (left, right):
            for part in result.partitions:
                for record in part:
                    self._require_keyed(record)
                    counts[record[0]] = counts.get(record[0], 0) + 1
        assignment = build_balanced_assignment(
            counts, node.num_partitions
        )
        left_buckets, stage = self._shuffle(
            left, node.num_partitions, job, meta=node.meta,
            origin=_origin(node), assignment=assignment,
        )
        right_buckets, right_stage = self._shuffle(
            right, node.num_partitions, job, meta=node.meta,
            assignment=assignment,
        )
        out = []
        limit = self._task_limit(left_buckets)
        for bucket_index in range(node.num_partitions):
            groups = {}
            for key, value in left_buckets[bucket_index]:
                groups.setdefault(key, ([], []))[0].append(value)
            for key, value in right_buckets[bucket_index]:
                groups.setdefault(key, ([], []))[1].append(value)
            for key, (lvals, rvals) in groups.items():
                needed = self.config.materialized_bytes(
                    len(lvals) + len(rvals), self._stage_rate(stage)
                )
                if needed > limit:
                    raise SimulatedOutOfMemory(
                        "cogrouping key %r" % (key,), needed, limit
                    )
            out.append(list(groups.items()))
        # The reduce side reads both shuffles; fold the right-side counts
        # into the stage that emits the cogrouped output.
        for index, count in enumerate(right_stage.task_records):
            stage.add_task_records(index, count)
        stage.shuffle_read_records += right_stage.shuffle_read_records
        self._account_spill(stage)
        return _Result(out, stage)

    # -- broadcast operators (narrow) ----------------------------------

    def _eval_broadcast_join(self, node, job, memo):
        right = self._eval(node.right, job, memo)
        table = {}
        count = 0
        for index, part in enumerate(right.partitions):
            right.stage.add_task_records(index, len(part))
            for record in part:
                self._require_keyed(record)
                key, value = record
                table.setdefault(key, []).append(value)
                count += 1
        self._check_broadcast(
            count, "broadcast join build side", meta=node.right.meta
        )
        if node.right.meta:
            job.broadcast_meta_records += count
        else:
            job.broadcast_records += count
        left = self._eval(node.left, job, memo)
        stage = self._scale_corrected(left.stage, node, job)
        out = []
        for index, part in enumerate(left.partitions):
            produced = []
            for record in part:
                self._require_keyed(record)
                key, value = record
                for other in table.get(key, ()):
                    produced.append((key, (value, other)))
            stage.add_task_records(index, len(part) + len(produced))
            out.append(produced)
        return _Result(out, stage)

    def _eval_cross_broadcast(self, node, job, memo):
        if node.broadcast_side == "right":
            stream_node, small_node = node.left, node.right
        else:
            stream_node, small_node = node.right, node.left
        small = self._eval(small_node, job, memo)
        payload = [item for part in small.partitions for item in part]
        for index, part in enumerate(small.partitions):
            small.stage.add_task_records(index, len(part))
        self._check_broadcast(
            len(payload), "cross-product broadcast side",
            meta=small_node.meta,
        )
        if small_node.meta:
            job.broadcast_meta_records += len(payload)
        else:
            job.broadcast_records += len(payload)
        stream = self._eval(stream_node, job, memo)
        stage = self._scale_corrected(stream.stage, node, job)
        out = []
        for index, part in enumerate(stream.partitions):
            produced = []
            for item in part:
                for other in payload:
                    if node.broadcast_side == "right":
                        produced.append((item, other))
                    else:
                        produced.append((other, item))
            stage.add_task_records(index, len(produced))
            out.append(produced)
        return _Result(out, stage)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _call(self, node, fn, *args):
        try:
            return fn(*args)
        except (SimulatedOutOfMemory, UdfError):
            raise
        except Exception as exc:
            raise UdfError(node.name, exc) from exc

    def _require_keyed(self, record):
        if not isinstance(record, tuple) or len(record) != 2:
            raise PlanError(
                "keyed operator expects (key, value) records, got %r"
                % (record,)
            )

    def _account_spill(self, stage):
        cfg = self.config
        rate = self._stage_rate(stage)
        # Per-task spill: a reduce task whose working set exceeds its
        # memory share sorts/aggregates on disk.
        nonempty = sum(1 for records in stage.task_records if records)
        per_machine = -(-max(1, nonempty) // cfg.machines)
        task_limit = cfg.task_memory_limit_bytes(per_machine)
        for records in stage.task_records:
            if cfg.materialized_bytes(records, rate) > task_limit:
                stage.spilled_records += records
        # Cluster-level spill: processing the entire input at once can
        # exceed aggregate memory, in which case the excess goes through
        # disk (this is the memory pressure the paper observes for
        # Matryoshka's Bounce Rate at full input size, Sec. 9.4).
        cluster_limit = cfg.executor_memory_limit_bytes * cfg.machines
        total = cfg.materialized_bytes(stage.total_records, rate)
        excess = total - cluster_limit
        if excess > 0:
            per_record = rate * cfg.memory_overhead_factor
            stage.spilled_records += int(excess / per_record)

    def _scale_corrected(self, stage, node, job):
        """Stage to credit a join/cross output to.

        A cross product whose stream side is meta-scale but whose output
        pairs carry data-scale payloads (or vice versa) must not inherit
        the stream stage's record scale; open a narrow continuation stage
        at the node's own scale.
        """
        if stage.meta == node.meta:
            return stage
        corrected = job.new_stage(
            "union", meta=node.meta, origin=_origin(node)
        )
        for _ in stage.task_records:
            corrected.task_records.append(0)
        return corrected

    def _stage_rate(self, stage):
        if stage.meta:
            return self.config.result_record_bytes
        return self.config.bytes_per_record

    def _check_broadcast(self, num_records, what, meta=False):
        # A broadcast lives deserialized on every executor (shared across
        # that machine's tasks) and must also pass through the driver.
        rate = (
            self.config.result_record_bytes
            if meta
            else self.config.bytes_per_record
        )
        needed = self.config.materialized_bytes(num_records, rate)
        limit = min(
            self.config.executor_memory_limit_bytes,
            self.config.driver_memory_bytes,
        )
        if needed > limit:
            raise SimulatedOutOfMemory(what, needed, limit)

    def _check_driver_memory(self, num_records):
        needed = int(num_records * self.config.result_record_bytes)
        if needed > self.config.driver_memory_bytes:
            raise SimulatedOutOfMemory(
                "collecting result to the driver",
                needed,
                self.config.driver_memory_bytes,
            )

"""Plan evaluation: turns a lineage DAG into data, recording metrics.

The executor evaluates plans **iteratively**: the lineage DAG is
linearized over an explicit work stack (children before parents), so
arbitrarily deep lineages -- e.g. the loop-unrolled control flow that
``repro.core.control_flow`` compiles -- evaluate without recursion and
without touching the interpreter's recursion limit.

Narrow elementwise chains (``map``/``filter``/``flat_map``) are *fused*
into one per-partition pipeline: records stream through the whole chain
one at a time instead of materializing an intermediate list per
operator (the Flare-style pipelined evaluation the chain's stage
accounting already assumed).  Narrow operators fuse into the stage of
their input (their per-task record counts are credited to that stage);
wide operators perform a hash shuffle and open a new stage.  The
recorded :class:`~repro.engine.metrics.JobMetrics` mirror what the
Spark UI would show for the same program, which is what the cost model
needs.  A cogroup schedules exactly **one** reduce stage that reads
both sides' shuffle files -- the stage layout a Spark scheduler
produces -- and every completed job is checked against the trace
invariants in :mod:`repro.engine.validate`.

Everything actually executes -- results are real, only the clock is
simulated.  *Where* a partition's work runs is the task runtime's
business (:mod:`repro.engine.runtime`): each stage's per-partition work
is packaged as a picklable task and dispatched through the
:class:`~repro.engine.runtime.TaskScheduler`, which runs it inline
(serial backend) or across worker processes (process backend), retries
transient failures, and records measured per-task wall-clock into the
trace next to the simulated counters.  Driver-side data movement
(parallelize slicing, shuffle bucketing, unions, coalesce) stays
inline: it is the simulated cluster's fabric, not task work.

*When* each step runs is the stage-graph scheduler's business
(:mod:`repro.engine.dag`): the executor linearizes the plan into
evaluation units up front and then either runs them one at a time in
plan order (``config.scheduler == "serial"``) or dispatches every
ready unit onto the scheduler's bounded thread pool as its inputs
complete (``"dag"``), overlapping independent plan branches.  Unit
evaluation itself -- the ``_eval_*`` methods below -- is identical
under both schedules; anything they mutate outside their own unit's
state (shared input stages, the layout registry, the decision log) is
either commutative or lock-guarded.
"""

import contextlib
import threading
import weakref

from ..errors import PlanError, SimulatedOutOfMemory
from ..observe import NULL_TRACER
from ..observe.events import (
    DRIVER_LANE,
    KIND_BROADCAST,
    KIND_DRIVER,
    KIND_JOB,
    KIND_SHUFFLE,
    gather_lane,
)
from . import codegen
from . import dag
from . import plan as p
from .columnar import as_records, encode_committed, maybe_columnar
from .optimize import (
    plan_auto_caches,
    plan_shuffle_elisions,
    release_layouts,
    sweep_layouts,
)
from .partitioner import build_balanced_assignment, stable_hash
from .runtime.scheduler import TaskScheduler
from .runtime.task import (
    STEP_FILTER,
    STEP_FLATMAP,
    STEP_MAP,
    BroadcastJoinProbeTask,
    CoGroupBucketTask,
    CombineTask,
    CrossBroadcastTask,
    FusedPipelineTask,
    GroupBucketTask,
    MapPartitionsTask,
)
from .validate import validate_job


def _origin(node):
    name = node.name
    if node.label:
        name += "[%s]" % node.label
    return name


class _Result:
    """Partitions of an evaluated node plus the stage that produced them."""

    __slots__ = ("partitions", "stage")

    def __init__(self, partitions, stage):
        self.partitions = partitions
        self.stage = stage


class Executor:
    """Evaluates plan nodes for one :class:`EngineContext`."""

    def __init__(self, config, trace, scheduler=None, tracer=None):
        self.config = config
        self.trace = trace
        self.scheduler = (
            scheduler if scheduler is not None else TaskScheduler(config)
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Optimizer decisions taken so far (shuffle elisions), as
        #: :class:`repro.core.optimizer.Decision` records.
        self.decisions = []
        # Concrete shuffle layouts by origin-node identity:
        # ``{id(node): (weakref(node), {key: bucket})}``.  The weak
        # reference keeps the registry from pinning dead plan graphs
        # alive on a long-lived context: a cached bag holds its origin
        # shuffle node strongly (so its entry survives for cross-job
        # adoption), while a one-shot job's nodes are collected with
        # the plan and their entries swept by ``sweep_layouts``.
        # Because the key is a raw id(), readers must verify the weak
        # reference still points at the node they asked about -- a
        # recycled id on a not-yet-swept entry would otherwise serve a
        # stale layout.
        self._assignments = {}
        # Guards executor-level shared state (the decision log and the
        # layout registry) against concurrent unit evaluation under the
        # DAG schedule and concurrent jobs under ``ctx.gather``.
        self._state_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Cross-job state management (long-lived contexts)
    # ------------------------------------------------------------------

    def release_plan(self, root):
        """Release the cross-job layouts registered under ``root``.

        Called by :meth:`Bag.uncache` (and through it, artifact-cache
        eviction in :mod:`repro.serve`): dropping a cached bag must
        also drop the origin->layout entries its subtree registered,
        both to free the pinned key assignments and so no later job can
        adopt a layout whose materialized partitions are gone.  Returns
        the number of registry entries released.
        """
        with self._state_lock:
            return release_layouts(self._assignments, root)

    def layout_registry_size(self):
        """Number of origin->layout entries currently retained."""
        with self._state_lock:
            return len(self._assignments)

    def sweep_layouts(self):
        """Drop layout entries whose origin node has been collected.

        Entries only hold their node weakly, so once a job's plan graph
        is garbage (nothing cached it), its registered layouts are
        unreachable by any future plan; ``ctx.end_job`` sweeps them so
        a long-lived context's registry tracks only live (cached)
        subtrees.  Returns the number of entries dropped.
        """
        with self._state_lock:
            return sweep_layouts(self._assignments)

    def drain_decisions(self):
        """Return and clear the optimizer-decision log.

        Long-lived contexts call this per accounting window
        (``ctx.end_job``) so the log cannot grow without bound.
        """
        with self._state_lock:
            drained = self.decisions[:]
            del self.decisions[:]
            return drained

    # ------------------------------------------------------------------
    # Job entry points (actions)
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def _job_scope(self, action, label):
        """Open a job (and, when tracing, its driver + job spans).

        The ``driver`` span covers the whole action call -- plan
        evaluation plus driver-side result assembly -- and the ``job``
        span nests just inside it, so traces show the four-level
        hierarchy driver > job > stage > task.  Jobs submitted from a
        ``ctx.gather`` thunk get their own driver-side lane (see
        :func:`~repro.observe.events.gather_lane`) so concurrent jobs'
        span nesting stays well-formed per lane.
        """
        tracer = self.tracer
        if not tracer.enabled:
            yield self.trace.new_job(action, label)
            return
        slot = self.trace.current_slot()
        lane = DRIVER_LANE if slot < 0 else gather_lane(slot)
        suffix = "[%s]" % label if label else ""
        with tracer.span(
            "driver:%s%s" % (action, suffix), KIND_DRIVER, lane=lane,
            action=action,
        ):
            job = self.trace.new_job(action, label)
            with tracer.span(
                "job#%d:%s%s" % (job.job_id, action, suffix),
                KIND_JOB,
                lane=lane,
                job=job.job_id,
                action=action,
            ) as args:
                yield job
                args["stages"] = len(job.stages)
                args["records"] = job.total_records

    def collect(self, node, label=""):
        """Run a job and return all elements as a list."""
        with self._job_scope("collect", label) as job:
            partitions = self._run(node, job)
            result = [item for part in partitions for item in part]
            self._check_driver_memory(len(result))
            job.collected_records += len(result)
            self._finish(job)
        return result

    def count(self, node, label=""):
        with self._job_scope("count", label) as job:
            partitions = self._run(node, job)
            job.collected_records += len(partitions)
            self._finish(job)
        return sum(len(part) for part in partitions)

    def save(self, node, label=""):
        """Write a bag to distributed storage (the paper's output op).

        The data never passes through the driver; the job is charged a
        parallel disk write.  Returns the number of records written.
        """
        with self._job_scope("save", label) as job:
            partitions = self._run(node, job)
            written = sum(len(part) for part in partitions)
            if node.meta:
                job.saved_meta_records += written
            else:
                job.saved_records += written
            self._finish(job)
        return written

    def reduce(self, node, fn, label=""):
        with self._job_scope("reduce", label) as job:
            partitions = self._run(node, job)
            partials = []
            for part in partitions:
                iterator = iter(part)
                try:
                    acc = next(iterator)
                except StopIteration:
                    continue
                for item in iterator:
                    acc = fn(acc, item)
                partials.append(acc)
            job.collected_records += len(partials)
            if not partials:
                raise PlanError("reduce of an empty bag")
            acc = partials[0]
            for item in partials[1:]:
                acc = fn(acc, item)
            self._finish(job)
        return acc

    def fold(self, node, zero, fn, label=""):
        with self._job_scope("fold", label) as job:
            partitions = self._run(node, job)
            acc = zero
            for part in partitions:
                for item in part:
                    acc = fn(acc, item)
            job.collected_records += len(partitions)
            self._finish(job)
        return acc

    def _finish(self, job):
        if self.config.validate_traces:
            validate_job(job)

    # ------------------------------------------------------------------
    # Iterative evaluation
    # ------------------------------------------------------------------

    def _run(self, node, job):
        return self._eval(node, job).partitions

    def _eval(self, root, job):
        """Evaluate ``root`` via its unit graph (:mod:`repro.engine.dag`).

        The plan is linearized into evaluation units first (stack-safe:
        call depth stays constant in the lineage depth, so 20k-operator
        chains evaluate without recursion-limit games), each unit's
        dispatch ordinals are reserved while planning, and the units
        then run under the configured schedule.  Both schedules produce
        identical results, metrics, and shuffle accounting; the DAG
        schedule additionally overlaps independent plan branches on the
        task scheduler's dispatch pool.
        """
        elisions = plan_shuffle_elisions(root, self.config)
        self._apply_auto_caches(root)
        units = dag.plan_units(root)
        ordinal_base = self.scheduler.reserve_ordinals(
            dag.total_ordinal_budget(units)
        )
        if self.config.scheduler == "dag" and len(units) > 1:
            return dag.run_dag(self, units, job, elisions, ordinal_base)
        return dag.run_serial(self, units, job, elisions, ordinal_base)

    def run_unit(self, unit, job_slice, results, elisions, ordinals):
        """Evaluate one unit; the schedule-independent unit body.

        Called by both run loops in :mod:`repro.engine.dag` -- on the
        driver thread (serial) or a dispatch-pool thread (DAG).  New
        stages go to ``job_slice``; ``results`` maps dependency node
        ids to their completed :class:`_Result` (the run loop
        guarantees every entry in ``unit.deps`` is present before the
        unit starts and publishes this unit's own result afterwards).
        """
        node = unit.node
        if unit.cached:
            return self._cached_result(node, job_slice)
        if unit.chain is not None:
            result = self._eval_fused(
                unit.chain, results[id(unit.chain[0].child)], ordinals
            )
        else:
            result = self._eval_node(
                node, job_slice, results, elisions, ordinals
            )
        if node.cached:
            node.materialized = result.partitions
        return result

    def _cached_result(self, node, job):
        stage = job.new_stage("cached", meta=node.meta, origin=_origin(node))
        for _ in node.materialized:
            stage.task_records.append(0)
        return _Result(node.materialized, stage)

    def _eval_node(self, node, job, results, elisions, ordinals):
        if isinstance(node, p.Parallelize):
            return self._eval_parallelize(node, job)
        if isinstance(node, p.MapPartitions):
            return self._eval_map_partitions(
                node, results[id(node.child)], ordinals
            )
        if isinstance(node, p.ZipWithUniqueId):
            return self._eval_zip_with_unique_id(
                node, results[id(node.child)]
            )
        if isinstance(node, p.Union):
            return self._eval_union(
                node, job, [results[id(child)] for child in node.children]
            )
        if isinstance(node, p.Coalesce):
            return self._eval_coalesce(node, job, results[id(node.child)])
        if isinstance(node, p.ReduceByKey):
            return self._eval_reduce_by_key(
                node, job, results[id(node.child)], elisions, ordinals
            )
        if isinstance(node, p.GroupByKey):
            return self._eval_group_by_key(
                node, job, results[id(node.child)], elisions, ordinals
            )
        if isinstance(node, p.CoGroup):
            return self._eval_cogroup(
                node, job, results[id(node.left)],
                results[id(node.right)], elisions, ordinals,
            )
        if isinstance(node, p.BroadcastJoin):
            return self._eval_broadcast_join(
                node, job, results[id(node.left)],
                results[id(node.right)], ordinals,
            )
        if isinstance(node, p.CrossBroadcast):
            return self._eval_cross_broadcast(
                node, job, results[id(node.left)],
                results[id(node.right)], ordinals,
            )
        raise PlanError("unknown plan node type: %s" % node.name)

    def _eval_parallelize(self, node, job):
        partitions = node.build_partitions()
        stage = job.new_stage("input", meta=node.meta, origin=_origin(node))
        for part in partitions:
            stage.task_records.append(len(part))
        return _Result(partitions, stage)

    # -- fused narrow elementwise chains -------------------------------

    def _eval_fused(self, chain, child, ordinals):
        """Stream each partition through the whole elementwise chain.

        One output list per partition is materialized at the fusion
        boundary; no per-operator intermediates exist.  The per-record
        pipeline loop lives in
        :class:`~repro.engine.runtime.task.FusedPipelineTask` and runs
        wherever the backend puts it; each operator is then credited
        its input record count (plus reported UDF work) on the input's
        stage, exactly as unfused evaluation would.

        With ``config.compile_pipelines`` on, chains whose UDFs pass
        the codegen gate run as one generated, specialized loop
        (:class:`~repro.engine.runtime.task.CompiledPipelineTask`)
        instead, and output partitions are re-encoded columnar at the
        fusion boundary when their records pack
        (:mod:`repro.engine.columnar`).  Either way the credited
        counts -- and with them the simulated seconds -- are identical;
        the per-chain compile-or-fallback choice is recorded as a
        ``compiled-pipeline`` optimizer decision.

        ``config.schema_inference`` additionally pre-commits the
        storage format from the chain's inferred output schema
        (:mod:`repro.analysis.schema`), recorded as a
        ``columnar-commit`` decision: a *proven* int/float fixed-arity
        schema encodes without the per-partition probe, a *refuted*
        schema skips encoding entirely, and only an unknown verdict
        probes as before.  A proven *input* schema generates the
        columnar-direct loop; an unproven one falls back to the
        interpreter with the verdict recorded as the reason.
        """
        steps = []
        for op in chain:
            if isinstance(op, p.Map):
                steps.append((STEP_MAP, op.fn, _origin(op)))
            elif isinstance(op, p.Filter):
                steps.append((STEP_FILTER, op.fn, _origin(op)))
            else:
                steps.append((STEP_FLATMAP, op.fn, _origin(op)))
        factor = self.config.sequential_work_factor
        stage = child.stage
        compiled = self.config.compile_pipelines
        task = None
        schema = None
        if compiled:
            if self.config.schema_inference:
                schema = codegen.plan_chain_schema(chain)
            task, reason = codegen.plan_compiled_task(
                steps, tracer=self.tracer, schema=schema
            )
            self._record_compile_decision(steps, task, reason)
            if schema is not None:
                self._record_columnar_decision(steps, schema)
        if task is None:
            task = FusedPipelineTask(steps)
        results = self.scheduler.run_stage(
            task,
            [(part,) for part in child.partitions],
            stage=stage,
            ordinal=ordinals.take(),
        )
        out = []
        for index, (records, counts, works) in enumerate(results):
            out.append(self._store_fused(records, compiled, schema))
            for i in range(len(steps)):
                stage.add_task_records(index, counts[i])
                if works[i]:
                    # UDF-internal sequential work runs record-at-a-time
                    # and is charged at the configured slowdown over the
                    # bulk rate.
                    stage.add_task_records(index, int(works[i] * factor))
        return _Result(out, stage)

    @staticmethod
    def _store_fused(records, compiled, schema):
        """Pick the storage format for one fused output partition.

        Only the storage changes here, never the values: columnar
        partitions decode to the exact records that went in, so counts,
        trace signatures, and simulated seconds are identical across
        all four paths (plain, probe, commit, skip).
        """
        if not compiled:
            return records
        if schema is None or schema.output_verdict is None:
            return maybe_columnar(records)
        if schema.output_verdict is False:
            # Refuted: skip the encode attempt entirely.
            return records
        kinds, scalar = schema.output_spec
        part = encode_committed(kinds, scalar, records)
        # A proven schema can still fail to encode on value range
        # (>64-bit ints); the untouched record list is the fallback.
        return records if part is None else part

    def _record_columnar_decision(self, steps, schema):
        """Log one ``columnar-commit`` decision for a fused chain."""
        from ..core.optimizer import Decision

        operator = "+".join(step[2] for step in steps)
        if schema.output_verdict is True:
            choice, detail = "commit", (
                "%s output schema %r proven columnar; encode probe "
                "skipped" % (operator, schema.output_schema)
            )
        elif schema.output_verdict is False:
            choice, detail = "skip", (
                "%s output schema %r refutes columnar encoding; "
                "keeping plain records" % (operator, schema.output_schema)
            )
        else:
            choice, detail = "probe", (
                "%s output schema %r unknown; probing per partition"
                % (operator, schema.output_schema)
            )
        decision = Decision(
            kind="columnar-commit",
            choice=choice,
            num_tags=len(steps),
            detail=detail,
        )
        with self._state_lock:
            self.decisions.append(decision)

    def _record_compile_decision(self, steps, task, reason):
        """Log one ``compiled-pipeline`` decision for a fused chain."""
        from ..core.optimizer import Decision

        operator = "+".join(step[2] for step in steps)
        if task is not None:
            decision = Decision(
                kind="compiled-pipeline",
                choice="compile",
                num_tags=len(steps),
                detail="%s compiled as %s" % (operator, task.key),
            )
        else:
            decision = Decision(
                kind="compiled-pipeline",
                choice="interpret",
                num_tags=len(steps),
                detail="%s: %s" % (operator, reason),
            )
        with self._state_lock:
            self.decisions.append(decision)

    # -- other narrow operators ----------------------------------------

    def _eval_map_partitions(self, node, child, ordinals):
        task = MapPartitionsTask(node.fn, _origin(node))
        results = self.scheduler.run_stage(
            task,
            [
                # The UDF's contract is a real list, whatever the
                # upstream boundary produced.
                (as_records(part), index)
                for index, part in enumerate(child.partitions)
            ],
            stage=child.stage,
            ordinal=ordinals.take(),
        )
        factor = self.config.sequential_work_factor
        out = []
        for index, (records, work) in enumerate(results):
            out.append(records)
            child.stage.add_task_records(
                index, len(child.partitions[index])
            )
            if work:
                child.stage.add_task_records(index, int(work * factor))
        return _Result(out, child.stage)

    def _eval_zip_with_unique_id(self, node, child):
        n = max(1, len(child.partitions))
        out = []
        for index, part in enumerate(child.partitions):
            child.stage.add_task_records(index, len(part))
            out.append(
                [(item, index + i * n) for i, item in enumerate(part)]
            )
        return _Result(out, child.stage)

    def _eval_union(self, node, job, children):
        partitions = p.chain_partitions(
            [child.partitions for child in children]
        )
        stage = job.new_stage("union", meta=node.meta, origin=_origin(node))
        for _ in partitions:
            stage.task_records.append(0)
        return _Result(partitions, stage)

    def _eval_coalesce(self, node, job, child):
        n = min(node.num_partitions, max(1, len(child.partitions)))
        out = [[] for _ in range(n)]
        for index, part in enumerate(child.partitions):
            out[index % n].extend(part)
        stage = job.new_stage(
            "coalesce", meta=node.meta, origin=_origin(node)
        )
        for part in out:
            stage.task_records.append(0)
        return _Result(out, stage)

    # -- wide (shuffling) operators ------------------------------------

    def _bucketize(self, result, num_partitions, assignment):
        """Hash-partition keyed records into reduce buckets.

        Charges the map-side shuffle write to the producing stage and
        returns ``(buckets, moved)`` where ``moved`` is the number of
        records written to (and later read from) the shuffle.
        """
        buckets = [[] for _ in range(num_partitions)]
        moved = 0
        for index, part in enumerate(result.partitions):
            result.stage.add_task_records(index, len(part))
            moved += len(part)
            for record in part:
                self._require_keyed(record)
                buckets[assignment[record[0]]].append(record)
        return buckets, moved

    def _shuffle(self, result, node, job):
        """Shuffle keyed partitions; returns (buckets, reduce_stage).

        Keys are spread over reduce buckets with a balanced assignment
        (see :func:`build_balanced_assignment`).  The concrete
        assignment is registered under the shuffle node's identity so
        later wide operators can *adopt* the layout instead of
        re-shuffling (see :mod:`repro.engine.optimize`).
        """
        origin = _origin(node)
        assignment = self._key_assignment(
            result.partitions, node.num_partitions
        )
        buckets, moved = self._bucketize(
            result, node.num_partitions, assignment
        )
        stage = job.new_stage("shuffle", meta=node.meta, origin=origin)
        stage.shuffle_read_records = moved
        stage.shuffle_write_records = moved
        for bucket in buckets:
            stage.task_records.append(len(bucket))
        self._trace_shuffle(stage, origin)
        with self._state_lock:
            self._assignments[id(node)] = (weakref.ref(node), assignment)
        return buckets, stage

    def _planned_elision(self, node, child_partitions, elisions):
        """The elision planned for ``node``, if its runtime precondition
        (the input actually has the predicted partition count) holds."""
        elision = elisions.get(id(node))
        if elision is None:
            return None
        if len(child_partitions) != node.num_partitions:
            return None
        return elision

    def _apply_auto_caches(self, root):
        """Flip ``cached`` on subtrees the auto-cache pass proved safe.

        Runs before the plan is linearized into units, so the unit
        graph already sees the node as cached and later jobs over the
        same (now materialized) subtree short-circuit through
        ``_cached_result``.  The flip happens under the state lock and
        re-checks ``cached``: two jobs gathered concurrently over a
        shared subtree must record the decision exactly once.
        """
        chosen = plan_auto_caches(root, self.config)
        if not chosen:
            return
        from ..core.optimizer import Decision

        with self._state_lock:
            for node in chosen.values():
                if node.cached:
                    continue  # the other job got here first
                node.cached = True
                self.decisions.append(
                    Decision(
                        kind="auto-cache",
                        choice="cache",
                        # narrow nodes inherit their partition count at
                        # evaluation time; 0 = not fixed by the node
                        num_tags=getattr(node, "num_partitions", 0),
                        detail="%s has multiple consumers and a proven "
                        "pure, deterministic subtree" % _origin(node),
                    )
                )

    def _record_elision(self, node, elision):
        from ..core.optimizer import Decision

        decision = Decision(
            kind="shuffle-elision",
            choice=elision.choice,
            num_tags=node.num_partitions,
            detail="%s reuses the partitioning of %s"
            % (_origin(node), _origin(elision.origin)),
        )
        with self._state_lock:
            self.decisions.append(decision)

    def _key_assignment(self, partition_lists, num_partitions):
        counts = {}
        for part in partition_lists:
            for record in part:
                self._require_keyed(record)
                key = record[0]
                counts[key] = counts.get(key, 0) + 1
        return build_balanced_assignment(counts, num_partitions)

    def _combine_pass(self, task, parts, stage, ordinal):
        """Run one combine task set; credit reported UDF work.

        Returns the combined partitions.  ``CombineTask`` reports the
        ``Weighted`` work its reductions declared; it is charged to
        the same stage (and task index) the reductions ran on, at the
        sequential-work slowdown, like every other UDF's work.
        """
        results = self.scheduler.run_stage(
            task, [(part,) for part in parts], stage=stage,
            ordinal=ordinal,
        )
        factor = self.config.sequential_work_factor
        out = []
        for index, (records, work) in enumerate(results):
            out.append(records)
            if work:
                stage.add_task_records(index, int(work * factor))
        return out

    def _eval_reduce_by_key(self, node, job, child, elisions, ordinals):
        task = CombineTask(node.fn, _origin(node))
        elision = self._planned_elision(node, child.partitions, elisions)
        if elision is not None:
            # The input is provably laid out exactly as this shuffle
            # would lay it out: every key is confined to the partition
            # it would be sent to, so a single combine pass per
            # partition produces the final result and nothing crosses
            # the network.  The stage stays a (zero-volume) shuffle
            # stage so trace shapes match the unoptimized plan.
            stage = job.new_stage(
                "shuffle", meta=node.meta, origin=_origin(node)
            )
            for _ in child.partitions:
                stage.task_records.append(0)
            out = self._combine_pass(
                task, child.partitions, stage, ordinals.take()
            )
            for index, bucket in enumerate(out):
                stage.add_task_records(index, len(bucket))
            stage.shuffle_records_saved = sum(len(b) for b in out)
            self._account_spill(stage)
            self._record_elision(node, elision)
            return _Result(out, stage)
        # Map-side combine: reduce within each map partition first, so the
        # shuffle only moves one record per (partition, key) pair.  The
        # same combine task runs on both sides of the shuffle.
        combined = _Result(
            self._combine_pass(
                task, child.partitions, child.stage, ordinals.take()
            ),
            child.stage,
        )
        buckets, stage = self._shuffle(combined, node, job)
        out = self._combine_pass(task, buckets, stage, ordinals.take())
        self._account_spill(stage)
        return _Result(out, stage)

    def _eval_group_by_key(self, node, job, child, elisions, ordinals):
        elision = self._planned_elision(node, child.partitions, elisions)
        if elision is not None:
            # Keys are already confined to their target partitions:
            # group each partition in place, no shuffle traffic.
            stage = job.new_stage(
                "shuffle", meta=node.meta, origin=_origin(node)
            )
            for part in child.partitions:
                stage.task_records.append(len(part))
            stage.shuffle_records_saved = sum(
                len(part) for part in child.partitions
            )
            task = GroupBucketTask(
                self._stage_rate(stage),
                self.config.memory_overhead_factor,
                self._task_limit(child.partitions),
                _origin(node),
            )
            out = self.scheduler.run_stage(
                task, [(part,) for part in child.partitions], stage=stage,
                ordinal=ordinals.take(),
            )
            self._account_spill(stage)
            self._record_elision(node, elision)
            return _Result(out, stage)
        buckets, stage = self._shuffle(child, node, job)
        task = GroupBucketTask(
            self._stage_rate(stage),
            self.config.memory_overhead_factor,
            self._task_limit(buckets),
            _origin(node),
        )
        out = self.scheduler.run_stage(
            task, [(bucket,) for bucket in buckets], stage=stage,
            ordinal=ordinals.take(),
        )
        self._account_spill(stage)
        return _Result(out, stage)

    def _task_limit(self, buckets):
        """Per-task memory budget given how many tasks run concurrently."""
        nonempty = sum(1 for bucket in buckets if bucket)
        per_machine = -(-max(1, nonempty) // self.config.machines)
        return self.config.task_memory_limit_bytes(per_machine)

    def _eval_cogroup(self, node, job, left, right, elisions, ordinals):
        elided = self._eval_cogroup_elided(
            node, job, left, right, elisions, ordinals
        )
        if elided is not None:
            return elided
        # Both sides co-partition: one key assignment over both inputs.
        counts = {}
        for result in (left, right):
            for part in result.partitions:
                for record in part:
                    self._require_keyed(record)
                    counts[record[0]] = counts.get(record[0], 0) + 1
        assignment = build_balanced_assignment(
            counts, node.num_partitions
        )
        left_buckets, left_moved = self._bucketize(
            left, node.num_partitions, assignment
        )
        right_buckets, right_moved = self._bucketize(
            right, node.num_partitions, assignment
        )
        with self._state_lock:
            self._assignments[id(node)] = (weakref.ref(node), assignment)
        # One reduce stage reads both sides' shuffle files (Spark
        # schedules a single reduce task set for a cogroup); each input
        # record is credited exactly once.
        stage = job.new_stage("shuffle", meta=node.meta,
                              origin=_origin(node))
        stage.shuffle_read_records = left_moved + right_moved
        stage.shuffle_write_records = left_moved + right_moved
        for bucket_index in range(node.num_partitions):
            stage.task_records.append(
                len(left_buckets[bucket_index])
                + len(right_buckets[bucket_index])
            )
        self._trace_shuffle(stage, _origin(node))
        return self._run_cogroup_buckets(
            node, stage, left_buckets, right_buckets, ordinals
        )

    def _eval_cogroup_elided(self, node, job, left, right, elisions,
                             ordinals):
        """A cogroup whose shuffle is (partially) elided, or ``None``.

        ``elide-both``: both sides already share the origin's layout --
        zip their partitions directly, nothing moves.  ``adopt-left`` /
        ``adopt-right``: one side stays in place and only the other
        side is bucketized into the adopted layout (its map-side write
        is still charged); keys the origin never saw are placed by
        hash.  Falls back to a full shuffle when a runtime
        precondition fails (partition-count mismatch, or the origin's
        concrete assignment was never registered by this executor).
        """
        elision = elisions.get(id(node))
        if elision is None or elision.choice not in (
            "elide-both", "adopt-left", "adopt-right",
        ):
            return None
        n = node.num_partitions
        layout = None
        if elision.choice == "elide-both":
            if len(left.partitions) != n or len(right.partitions) != n:
                return None
            left_buckets = left.partitions
            right_buckets = right.partitions
            moved = 0
            saved = sum(len(part) for part in left.partitions) + sum(
                len(part) for part in right.partitions
            )
        else:
            if elision.choice == "adopt-left":
                adopted, other = left, right
            else:
                adopted, other = right, left
            if len(adopted.partitions) != n:
                return None
            with self._state_lock:
                entry = self._assignments.get(id(elision.origin))
            if entry is None or entry[0]() is not elision.origin:
                return None
            layout = dict(entry[1])
            other_buckets, moved = self._adopt_bucketize(other, n, layout)
            if elision.choice == "adopt-left":
                left_buckets = adopted.partitions
                right_buckets = other_buckets
            else:
                left_buckets = other_buckets
                right_buckets = adopted.partitions
            saved = sum(len(part) for part in adopted.partitions)
        stage = job.new_stage("shuffle", meta=node.meta,
                              origin=_origin(node))
        stage.shuffle_read_records = moved
        stage.shuffle_write_records = moved
        stage.shuffle_records_saved = saved
        for bucket_index in range(n):
            stage.task_records.append(
                len(left_buckets[bucket_index])
                + len(right_buckets[bucket_index])
            )
        if moved:
            self._trace_shuffle(stage, _origin(node))
        if layout is not None:
            # The output layout is the (extended) adopted layout;
            # register it under this node so stacked joins can adopt
            # it in turn.
            with self._state_lock:
                self._assignments[id(node)] = (weakref.ref(node), layout)
        self._record_elision(node, elision)
        return self._run_cogroup_buckets(
            node, stage, left_buckets, right_buckets, ordinals
        )

    def _adopt_bucketize(self, result, num_partitions, layout):
        """Bucketize one cogroup side into an adopted shuffle layout.

        Extends ``layout`` in place with hash-placed buckets for keys
        the origin shuffle never saw; charges the map-side write to the
        producing stage like :meth:`_bucketize`.
        """
        buckets = [[] for _ in range(num_partitions)]
        moved = 0
        for index, part in enumerate(result.partitions):
            result.stage.add_task_records(index, len(part))
            moved += len(part)
            for record in part:
                self._require_keyed(record)
                key = record[0]
                bucket = layout.get(key)
                if bucket is None:
                    bucket = stable_hash(key) % num_partitions
                    layout[key] = bucket
                buckets[bucket].append(record)
        return buckets, moved

    def _run_cogroup_buckets(self, node, stage, left_buckets,
                             right_buckets, ordinals):
        limit = self._task_limit(
            [
                left_buckets[i] + right_buckets[i]
                for i in range(node.num_partitions)
            ]
        )
        task = CoGroupBucketTask(
            self._stage_rate(stage),
            self.config.memory_overhead_factor,
            limit,
            _origin(node),
        )
        out = self.scheduler.run_stage(
            task,
            [
                (left_buckets[i], right_buckets[i])
                for i in range(node.num_partitions)
            ],
            stage=stage,
            ordinal=ordinals.take(),
        )
        self._account_spill(stage)
        return _Result(out, stage)

    # -- broadcast operators (narrow) ----------------------------------

    def _eval_broadcast_join(self, node, job, left, right, ordinals):
        table = {}
        count = 0
        for index, part in enumerate(right.partitions):
            right.stage.add_task_records(index, len(part))
            for record in part:
                self._require_keyed(record)
                key, value = record
                table.setdefault(key, []).append(value)
                count += 1
        self._check_broadcast(
            count, "broadcast join build side", meta=node.right.meta
        )
        if node.right.meta:
            job.broadcast_meta_records += count
        else:
            job.broadcast_records += count
        self._trace_broadcast(
            "join build side", _origin(node), count, node.right.meta
        )
        stage = self._scale_corrected(left.stage, node, job)
        task = BroadcastJoinProbeTask(table, _origin(node))
        out = self.scheduler.run_stage(
            task,
            [(part,) for part in left.partitions],
            stage=stage,
            ordinal=ordinals.take(),
        )
        for index, part in enumerate(left.partitions):
            stage.add_task_records(index, len(part) + len(out[index]))
        return _Result(out, stage)

    def _eval_cross_broadcast(self, node, job, left, right, ordinals):
        if node.broadcast_side == "right":
            stream_node, stream = node.left, left
            small_node, small = node.right, right
        else:
            stream_node, stream = node.right, right
            small_node, small = node.left, left
        payload = [item for part in small.partitions for item in part]
        for index, part in enumerate(small.partitions):
            small.stage.add_task_records(index, len(part))
        self._check_broadcast(
            len(payload), "cross-product broadcast side",
            meta=small_node.meta,
        )
        if small_node.meta:
            job.broadcast_meta_records += len(payload)
        else:
            job.broadcast_records += len(payload)
        self._trace_broadcast(
            "cross-product side", _origin(node), len(payload),
            small_node.meta,
        )
        stage = self._scale_corrected(stream.stage, node, job)
        task = CrossBroadcastTask(
            payload, node.broadcast_side, _origin(node)
        )
        out = self.scheduler.run_stage(
            task,
            [(part,) for part in stream.partitions],
            stage=stage,
            ordinal=ordinals.take(),
        )
        for index, produced in enumerate(out):
            stage.add_task_records(index, len(produced))
        return _Result(out, stage)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _trace_shuffle(self, stage, origin):
        """Emit a ``shuffle`` instant for a freshly bucketized stage."""
        if not self.tracer.enabled:
            return
        self.tracer.instant(
            "shuffle:%s" % origin,
            KIND_SHUFFLE,
            records=stage.shuffle_read_records,
            bytes=int(
                stage.shuffle_read_records * self._stage_rate(stage)
            ),
            partitions=stage.num_tasks,
            origin=origin,
        )

    def _trace_broadcast(self, what, origin, num_records, meta):
        """Emit a ``broadcast`` instant for a shipped payload."""
        if not self.tracer.enabled:
            return
        rate = (
            self.config.result_record_bytes
            if meta
            else self.config.bytes_per_record
        )
        self.tracer.instant(
            "broadcast:%s" % origin,
            KIND_BROADCAST,
            what=what,
            records=num_records,
            bytes=int(num_records * rate),
            origin=origin,
        )

    def _require_keyed(self, record):
        if not isinstance(record, tuple) or len(record) != 2:
            raise PlanError(
                "keyed operator expects (key, value) records, got %r"
                % (record,)
            )

    def _account_spill(self, stage):
        cfg = self.config
        rate = self._stage_rate(stage)
        # Per-task spill: a reduce task whose working set exceeds its
        # memory share sorts/aggregates on disk.
        nonempty = sum(1 for records in stage.task_records if records)
        per_machine = -(-max(1, nonempty) // cfg.machines)
        task_limit = cfg.task_memory_limit_bytes(per_machine)
        for records in stage.task_records:
            if cfg.materialized_bytes(records, rate) > task_limit:
                stage.spilled_records += records
        # Cluster-level spill: processing the entire input at once can
        # exceed aggregate memory, in which case the excess goes through
        # disk (this is the memory pressure the paper observes for
        # Matryoshka's Bounce Rate at full input size, Sec. 9.4).
        cluster_limit = cfg.executor_memory_limit_bytes * cfg.machines
        total = cfg.materialized_bytes(stage.total_records, rate)
        excess = total - cluster_limit
        if excess > 0:
            per_record = rate * cfg.memory_overhead_factor
            stage.spilled_records += int(excess / per_record)

    def _scale_corrected(self, stage, node, job):
        """Stage to credit a join/cross output to.

        A cross product whose stream side is meta-scale but whose output
        pairs carry data-scale payloads (or vice versa) must not inherit
        the stream stage's record scale; open a narrow continuation stage
        at the node's own scale.
        """
        if stage.meta == node.meta:
            return stage
        corrected = job.new_stage(
            "union", meta=node.meta, origin=_origin(node)
        )
        for _ in stage.task_records:
            corrected.task_records.append(0)
        return corrected

    def _stage_rate(self, stage):
        if stage.meta:
            return self.config.result_record_bytes
        return self.config.bytes_per_record

    def _check_broadcast(self, num_records, what, meta=False):
        # A broadcast lives deserialized on every executor (shared across
        # that machine's tasks) and must also pass through the driver.
        rate = (
            self.config.result_record_bytes
            if meta
            else self.config.bytes_per_record
        )
        needed = self.config.materialized_bytes(num_records, rate)
        limit = min(
            self.config.executor_memory_limit_bytes,
            self.config.driver_memory_bytes,
        )
        if needed > limit:
            raise SimulatedOutOfMemory(what, needed, limit)

    def _check_driver_memory(self, num_records):
        needed = int(num_records * self.config.result_record_bytes)
        if needed > self.config.driver_memory_bytes:
            raise SimulatedOutOfMemory(
                "collecting result to the driver",
                needed,
                self.config.driver_memory_bytes,
            )

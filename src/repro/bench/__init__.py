"""Benchmark harness and per-figure experiment definitions."""

from . import figures
from .harness import OOM, RunResult, Sweep, geometric_x_values, run_measured

__all__ = [
    "OOM",
    "RunResult",
    "Sweep",
    "figures",
    "geometric_x_values",
    "run_measured",
]

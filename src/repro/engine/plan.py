"""Logical plan nodes (the lineage DAG behind every Bag).

A :class:`~repro.engine.bag.Bag` is a thin, immutable handle around one of
these nodes.  Plans are lazy; the :mod:`executor <repro.engine.executor>`
evaluates them when an action runs.

Narrow nodes (Map, Filter, FlatMap, MapPartitions, ZipWithUniqueId,
BroadcastJoin, CrossBroadcast) transform partitions in place and fuse into
the stage of their input.  Elementwise nodes additionally mark themselves
``fusable``: the executor streams records through maximal fusable chains
one record at a time instead of materializing an intermediate list per
operator.  Wide nodes (ReduceByKey, GroupByKey, CoGroup) require a
shuffle and start a new stage.
"""

import itertools


class PlanNode:
    """Base class for all plan nodes."""

    #: Subclasses list their child nodes here.
    children = ()

    #: Elementwise record-at-a-time operators (map/filter/flat_map) set
    #: this; the executor fuses unbroken chains of them into one
    #: streaming per-partition pipeline.
    fusable = False

    def __init__(self):
        self.cached = False
        self.materialized = None
        # A short human-readable label, settable via Bag.with_label().
        self.label = ""
        # Record scale for cost accounting: False = data-scale records
        # (each stands for ``bytes_per_record`` of the paper's dataset),
        # True = meta-scale records (per-tag scalars, counts, trained
        # models -- charged at ``result_record_bytes``).  Set by
        # Bag._derive from the children; InnerScalar marks its
        # representation explicitly.
        self.meta = False

    @property
    def name(self):
        return type(self).__name__

    def explain(self, indent=0):
        """Multi-line textual rendering of the plan tree."""
        pad = "  " * indent
        line = pad + self.name
        if self.label:
            line += " [%s]" % self.label
        if self.cached:
            line += " (cached)"
        lines = [line]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


class Parallelize(PlanNode):
    """A dataset provided by the driver, split into partitions."""

    def __init__(self, data, num_partitions):
        super().__init__()
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.data = list(data)
        self.num_partitions = num_partitions

    def build_partitions(self):
        """Split the driver-side data into ``num_partitions`` slices."""
        n = self.num_partitions
        partitions = [[] for _ in range(n)]
        for index, item in enumerate(self.data):
            partitions[index % n].append(item)
        return partitions


class UnaryNode(PlanNode):
    """A node with exactly one child."""

    def __init__(self, child):
        super().__init__()
        self.child = child

    @property
    def children(self):
        return (self.child,)


class Map(UnaryNode):
    fusable = True

    def __init__(self, child, fn):
        super().__init__(child)
        self.fn = fn


class Filter(UnaryNode):
    fusable = True

    def __init__(self, child, fn):
        super().__init__(child)
        self.fn = fn


class FlatMap(UnaryNode):
    fusable = True

    def __init__(self, child, fn):
        super().__init__(child)
        self.fn = fn


class MapPartitions(UnaryNode):
    """Applies ``fn(items, partition_index)`` to each whole partition."""

    def __init__(self, child, fn):
        super().__init__(child)
        self.fn = fn


class ZipWithUniqueId(UnaryNode):
    """Pairs each element with a cluster-unique integer id.

    Produces ``(element, id)`` pairs, with Spark's id scheme:
    ``id = partition_index + i * num_partitions``.
    """


class Coalesce(UnaryNode):
    """Merge partitions down to ``num_partitions`` without a shuffle.

    Spark's narrow ``coalesce``: needed wherever unions would otherwise
    accumulate partitions (e.g. a lifted if merging branch results every
    loop iteration would double them each time).
    """

    def __init__(self, child, num_partitions):
        super().__init__(child)
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions


class Union(PlanNode):
    """Concatenation of the partitions of all children (narrow)."""

    def __init__(self, inputs):
        super().__init__()
        if not inputs:
            raise ValueError("union of zero inputs")
        self._inputs = tuple(inputs)

    @property
    def children(self):
        return self._inputs


class ReduceByKey(UnaryNode):
    """Shuffle by key with map-side combining, then per-key reduction."""

    def __init__(self, child, fn, num_partitions):
        super().__init__(child)
        self.fn = fn
        self.num_partitions = num_partitions


class GroupByKey(UnaryNode):
    """Shuffle by key, materializing each group as a list.

    Materializing a group that exceeds executor memory raises
    :class:`~repro.errors.SimulatedOutOfMemory` -- this is the failure mode
    of the outer-parallel workaround in the paper's experiments.
    """

    def __init__(self, child, num_partitions):
        super().__init__(child)
        self.num_partitions = num_partitions


class CoGroup(PlanNode):
    """Shuffle both inputs by key; emit ``(k, (left_values, right_values))``.

    Joins, left-outer joins, and subtract-by-key derive from this node at
    the Bag level.
    """

    def __init__(self, left, right, num_partitions):
        super().__init__()
        self.left = left
        self.right = right
        self.num_partitions = num_partitions

    @property
    def children(self):
        return (self.left, self.right)


class BroadcastJoin(PlanNode):
    """Narrow equi-join: the right side is broadcast to every executor."""

    def __init__(self, left, right):
        super().__init__()
        self.left = left
        self.right = right

    @property
    def children(self):
        return (self.left, self.right)


class CrossBroadcast(PlanNode):
    """Cross product implemented by broadcasting one side.

    ``broadcast_side`` is ``"right"`` (default) or ``"left"``.  The
    broadcast side is collected to the driver and shipped to every
    executor; the other side streams through unchanged partitions.
    """

    def __init__(self, left, right, broadcast_side="right"):
        super().__init__()
        if broadcast_side not in ("left", "right"):
            raise ValueError("broadcast_side must be 'left' or 'right'")
        self.left = left
        self.right = right
        self.broadcast_side = broadcast_side

    @property
    def children(self):
        return (self.left, self.right)


def iter_nodes(root):
    """Yield every node in the plan reachable from ``root`` (pre-order)."""
    seen = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        stack.extend(node.children)


def count_nodes(root):
    return sum(1 for _ in iter_nodes(root))


def flatten_union_inputs(inputs):
    """Collapse nested unions into a single input list."""
    flat = []
    for node in inputs:
        if isinstance(node, Union) and not node.cached:
            flat.extend(node.children)
        else:
            flat.append(node)
    return flat


def chain_partitions(partition_lists):
    """Concatenate per-child partition lists (for Union)."""
    return list(itertools.chain.from_iterable(partition_lists))

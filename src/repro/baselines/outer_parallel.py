"""The outer-parallel workaround (paper Sec. 1).

Parallelize at the level of the outer collection only: ``groupBy`` the
data and process each group *sequentially* inside a single map UDF.  Its
two failure modes, both reproduced here, are

* parallelism capped at the number of groups -- with fewer groups than
  cores, cores idle (the cost model's makespan term captures this); and
* each whole group must be materialized on one executor -- large or
  skewed groups die with (simulated) OOM.
"""

from ..engine.work import Weighted


def run_outer_parallel(bag, group_udf, num_partitions=None):
    """Process each group of a keyed bag sequentially.

    Args:
        bag: A keyed ``Bag[(K, V)]``.
        group_udf: ``group_udf(key, values_list) -> (result, work)`` where
            ``work`` is the record-equivalents of sequential CPU work the
            UDF performed (so the cost model can see inside the black
            box).
        num_partitions: Optional partition count for the group shuffle.

    Returns:
        A ``Bag[(K, result)]``.
    """
    grouped = bag.group_by_key(num_partitions)

    def apply(record):
        key, values = record
        result, work = group_udf(key, values)
        return Weighted((key, result), work)

    return grouped.map(apply)


def sequential_udf(fn, work_per_item=1):
    """Wrap a plain ``fn(key, values) -> result`` into a measured UDF.

    Assumes the UDF makes one pass over its group; single-pass analytics
    (like Bounce Rate) can use this directly, while iterative tasks
    report their own work.
    """

    def wrapped(key, values):
        return fn(key, values), len(values) * work_per_item

    return wrapped

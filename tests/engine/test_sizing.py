"""SizeEstimator behaviour."""

from repro.engine.sizing import estimate_record_size, estimate_size


class TestEstimateSize:
    def test_primitives_positive(self):
        for obj in (1, 1.5, "abc", b"abc", True, None):
            assert estimate_size(obj) > 0

    def test_bigger_string_bigger_estimate(self):
        assert estimate_size("x" * 1000) > estimate_size("x")

    def test_container_grows_with_elements(self):
        assert estimate_size(list(range(100))) > estimate_size(
            list(range(10))
        )

    def test_dict_includes_keys_and_values(self):
        assert estimate_size({"key": "value" * 100}) > estimate_size({})

    def test_handles_cycles(self):
        loop = []
        loop.append(loop)
        assert estimate_size(loop) > 0

    def test_sampling_extrapolates_large_lists(self):
        small = estimate_size(["x" * 50] * 100)
        large = estimate_size(["x" * 50] * 10_000)
        assert large > 50 * small

    def test_object_with_dict(self):
        class Record:
            def __init__(self):
                self.payload = "x" * 500

        assert estimate_size(Record()) > 500

    def test_object_with_slots(self):
        class Slotted:
            __slots__ = ("payload",)

            def __init__(self):
                self.payload = "y" * 500

        assert estimate_size(Slotted()) > 500


class TestEstimateRecordSize:
    def test_empty_sequence(self):
        assert estimate_record_size([]) == 0.0

    def test_average_of_sample(self):
        records = [(i, "x") for i in range(10)]
        per_record = estimate_record_size(records)
        assert per_record == estimate_size(records[0])

"""Verified auto-caching: the optimizer inserts ``cache()`` for reused
subtrees only when the subtree is *proven* pure and deterministic.

Gated behind ``config.optimize_caching`` (default off); every insertion
is recorded as a ``Decision(kind="auto-cache")``.
"""

import dataclasses
import random

import pytest

from repro.analysis import analyze_plan
from repro.engine import EngineContext, laptop_config
from repro.engine.optimize import plan_auto_caches


def _double(x):
    return x * 2


def _negate(x):
    return -x


def _noisy(x):
    return x + random.random()


def caching_ctx(**overrides):
    overrides.setdefault("backend", "serial")
    overrides.setdefault("optimize_caching", True)
    trace = overrides.pop("trace", False)
    return EngineContext(laptop_config(**overrides), trace=trace)


def reuse_job(ctx, fn=_double):
    feats = ctx.bag_of(range(20)).map(fn)
    return (
        feats.map(_double).union(feats.map(_negate)).sum()
    ), feats


class TestPlanAutoCaches:
    def test_proven_reused_subtree_is_chosen(self, ctx):
        feats = ctx.bag_of(range(20)).map(_double)
        merged = feats.map(_double).union(feats.map(_negate))
        chosen = plan_auto_caches(merged.node, caching_ctx().config)
        assert id(feats.node) in chosen

    def test_disabled_config_chooses_nothing(self, ctx, config):
        feats = ctx.bag_of(range(20)).map(_double)
        merged = feats.map(_double).union(feats.map(_negate))
        assert plan_auto_caches(merged.node, config) == {}

    def test_unproven_subtree_is_not_chosen(self, ctx):
        feats = ctx.bag_of(range(20)).map(_noisy)
        merged = feats.map(_double).union(feats.map(_negate))
        assert plan_auto_caches(merged.node, caching_ctx().config) == {}

    def test_already_cached_subtree_is_not_rechosen(self, ctx):
        feats = ctx.bag_of(range(20)).map(_double).cache()
        merged = feats.map(_double).union(feats.map(_negate))
        assert plan_auto_caches(merged.node, caching_ctx().config) == {}

    def test_single_consumer_is_not_chosen(self, ctx):
        feats = ctx.bag_of(range(20)).map(_double)
        assert (
            plan_auto_caches(
                feats.map(_negate).node, caching_ctx().config
            )
            == {}
        )


class TestExecutorAutoCache:
    def test_decision_recorded_and_node_cached(self):
        ctx = caching_ctx()
        expected = sum(x * 2 * 2 + -(x * 2) for x in range(20))
        result, feats = reuse_job(ctx)
        assert result == expected
        assert feats.node.cached
        assert feats.node.materialized is not None
        decisions = [
            d for d in ctx.optimizer_decisions if d.kind == "auto-cache"
        ]
        assert len(decisions) == 1
        assert "proven" in decisions[0].detail

    def test_off_by_default(self, ctx):
        result, feats = reuse_job(ctx)
        assert not feats.node.cached
        assert not [
            d for d in ctx.optimizer_decisions if d.kind == "auto-cache"
        ]

    def test_nondeterministic_subtree_never_cached(self):
        ctx = caching_ctx()
        _, feats = reuse_job(ctx, fn=_noisy)
        assert not feats.node.cached
        assert not [
            d for d in ctx.optimizer_decisions if d.kind == "auto-cache"
        ]

    def test_second_job_reuses_materialized_partitions(self):
        ctx = caching_ctx(trace=True)
        expected = sum(x * 2 * 2 + -(x * 2) for x in range(20)) * 1
        feats = ctx.bag_of(range(20)).map(_double)
        merged = feats.map(_double).union(feats.map(_negate))
        assert merged.sum() == expected
        assert feats.node.cached
        assert merged.count() == 40
        kinds = [
            stage.kind
            for job in ctx.trace.jobs
            for stage in job.stages
        ]
        assert "cached" in kinds

    def test_results_identical_with_and_without(self):
        plain = EngineContext(laptop_config(backend="serial"))
        cached = caching_ctx()
        assert reuse_job(plain)[0] == reuse_job(cached)[0]


def caching_ctx_config():
    return caching_ctx().config


class TestNpl504:
    def test_unproven_reuse_reports_npl504(self, ctx):
        feats = ctx.bag_of(range(20)).map(_noisy)
        merged = feats.map(_double).union(feats.map(_negate))
        diags = analyze_plan(merged.node, config=caching_ctx_config())
        found = [d.code for d in diags]
        assert "NPL504" in found
        assert "NPL301" in found  # the manual-cache hint still applies
        note = diags[found.index("NPL504")]
        assert note.severity == "info"
        assert "auto-caching" in note.message

    def test_proven_reuse_is_silent(self, ctx):
        feats = ctx.bag_of(range(20)).map(_double)
        merged = feats.map(_double).union(feats.map(_negate))
        diags = analyze_plan(merged.node, config=caching_ctx_config())
        found = [d.code for d in diags]
        assert "NPL504" not in found
        assert "NPL301" not in found  # optimizer will cache it

    def test_no_npl504_when_caching_disabled(self, ctx, config):
        feats = ctx.bag_of(range(20)).map(_noisy)
        merged = feats.map(_double).union(feats.map(_negate))
        diags = analyze_plan(merged.node, config=config)
        found = [d.code for d in diags]
        assert "NPL504" not in found
        assert "NPL301" in found

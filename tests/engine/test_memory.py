"""Simulated OOM and spill paths (failure injection)."""

import pytest

from repro.engine import ClusterConfig, EngineContext
from repro.errors import SimulatedOutOfMemory


def tiny_memory_context(**overrides):
    defaults = {
        "machines": 2,
        "cores_per_machine": 2,
        "memory_per_machine_bytes": 4_000,
        "bytes_per_record": 100.0,
        "memory_overhead_factor": 1.0,
        "memory_safety_fraction": 1.0,
        "driver_memory_bytes": 10_000_000,
        "parallelism_factor": 1,
    }
    defaults.update(overrides)
    return EngineContext(ClusterConfig(**defaults))


class TestGroupMaterializationOom:
    def test_oversized_group_raises(self):
        ctx = tiny_memory_context()
        # One group of 100 records x 100 B = 10 KB > 4 KB executor limit.
        bag = ctx.bag_of([("hot", i) for i in range(100)])
        with pytest.raises(SimulatedOutOfMemory) as err:
            bag.group_by_key().collect()
        assert "materializing group" in str(err.value)

    def test_small_groups_fit(self):
        ctx = tiny_memory_context()
        bag = ctx.bag_of([(i, i) for i in range(40)])
        assert len(bag.group_by_key().collect()) == 40

    def test_lone_task_gets_full_executor_memory(self):
        ctx = tiny_memory_context()
        # 30 records in one group: 3 KB < 4 KB only if the task is alone.
        bag = ctx.bag_of([("only", i) for i in range(30)])
        assert len(bag.group_by_key().collect()) == 1

    def test_overhead_factor_tightens_the_limit(self):
        ctx = tiny_memory_context(memory_overhead_factor=5.0)
        bag = ctx.bag_of([("only", i) for i in range(30)])
        with pytest.raises(SimulatedOutOfMemory):
            bag.group_by_key().collect()


class TestBroadcastOom:
    def test_broadcast_join_build_side_too_large(self):
        ctx = tiny_memory_context()
        left = ctx.bag_of([(i, i) for i in range(5)])
        right = ctx.bag_of([(i, i) for i in range(100)])
        with pytest.raises(SimulatedOutOfMemory):
            left.join(right, strategy="broadcast").collect()

    def test_repartition_join_survives_the_same_inputs(self):
        ctx = tiny_memory_context()
        left = ctx.bag_of([(i, i) for i in range(5)])
        right = ctx.bag_of([(i, i) for i in range(100)])
        assert len(left.join(right).collect()) == 5

    def test_driver_broadcast_checked(self):
        ctx = tiny_memory_context()
        with pytest.raises(SimulatedOutOfMemory):
            ctx.broadcast(list(range(1000)))

    def test_meta_broadcast_is_cheap(self):
        ctx = tiny_memory_context()
        left = ctx.bag_of([(i, i) for i in range(5)])
        right = ctx.bag_of([(i, i) for i in range(100)]).as_meta()
        # 100 records at 256 B (meta) x1 overhead = 25.6 KB... still too
        # big for 4 KB; shrink to demonstrate the meta rate is used.
        small_right = ctx.bag_of([(i, i) for i in range(10)]).as_meta()
        assert left.join(
            small_right, strategy="broadcast"
        ).collect() is not None
        with pytest.raises(SimulatedOutOfMemory):
            left.join(right, strategy="broadcast").collect()


class TestCogroupOom:
    def test_hot_key_cogroup_raises(self):
        ctx = tiny_memory_context()
        left = ctx.bag_of([("hot", i) for i in range(80)])
        right = ctx.bag_of([("hot", i) for i in range(80)])
        with pytest.raises(SimulatedOutOfMemory) as err:
            left.cogroup(right).collect()
        assert "cogrouping key" in str(err.value)


class TestSpillAccounting:
    def test_oversized_reduce_task_spills_not_dies(self):
        ctx = tiny_memory_context()
        # reduce_by_key combines map-side; to force volume, use unique
        # keys so nothing combines: 120 records -> 12 KB through one
        # 1-partition shuffle (> 4 KB task limit) => spill, no OOM.
        bag = ctx.bag_of([(i, i) for i in range(120)])
        reduced = bag.reduce_by_key(lambda a, b: a + b, num_partitions=1)
        assert len(reduced.collect()) == 120
        spilled = sum(
            stage.spilled_records
            for job in ctx.trace.jobs
            for stage in job.stages
        )
        assert spilled > 0

    def test_small_shuffles_do_not_spill(self):
        ctx = tiny_memory_context()
        bag = ctx.bag_of([(i, i) for i in range(4)])
        bag.reduce_by_key(lambda a, b: a + b).collect()
        spilled = sum(
            stage.spilled_records
            for job in ctx.trace.jobs
            for stage in job.stages
        )
        assert spilled == 0

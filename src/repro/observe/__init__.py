"""``repro.observe`` -- tracing, metrics export, and run comparison.

The measurement layer of the engine (see ``docs/observability.md``):

* :class:`Tracer` + sinks -- span-based structured tracing through
  driver, jobs, stages, task sets, and tasks, including worker-side
  events re-anchored onto the driver timeline.  Enable per context
  (``EngineContext(trace=...)``) or globally (``REPRO_TRACE``).
* :func:`to_chrome` / :func:`write_chrome` -- Chrome trace-event JSON,
  loadable in Perfetto or ``chrome://tracing``.
* :func:`summarize_events` / :func:`timeline` -- terminal rendering.
* :class:`RunReport` -- schema-versioned JSON merging simulated
  seconds, measured wall-clock, shuffle volume, retries, and straggler
  flags, with :func:`RunReport.compare` producing per-stage deltas and
  regression verdicts.
* ``python -m repro.observe`` -- ``render`` / ``summarize`` / ``diff``.

This package deliberately imports nothing from :mod:`repro.engine`:
the engine depends on it, never the other way around.
"""

from .chrome import to_chrome, write_chrome
from .events import (
    ALL_KINDS,
    DRIVER_LANE,
    SPAN_KINDS,
    TraceEvent,
    worker_lane,
)
from .render import (
    summarize_events,
    summarize_report,
    timeline,
    top_stages,
)
from .report import (
    ReportDiff,
    RunReport,
    entry_from_context,
)
from .sinks import JsonlSink, MemorySink, NullSink, read_events
from .tracer import NULL_TRACER, Tracer, resolve_tracer

__all__ = [
    "ALL_KINDS",
    "DRIVER_LANE",
    "JsonlSink",
    "MemorySink",
    "NULL_TRACER",
    "NullSink",
    "ReportDiff",
    "RunReport",
    "SPAN_KINDS",
    "TraceEvent",
    "Tracer",
    "entry_from_context",
    "read_events",
    "resolve_tracer",
    "summarize_events",
    "summarize_report",
    "timeline",
    "to_chrome",
    "top_stages",
    "worker_lane",
    "write_chrome",
]

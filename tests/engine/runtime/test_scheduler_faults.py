"""Fault injection, retries, and runtime measurement via the scheduler."""

import time

import pytest

from repro.engine import EngineContext, TaskScheduler, laptop_config
from repro.engine.metrics import ExecutionTrace
from repro.errors import InjectedFault, TaskFailedError, UdfError


def fresh_ctx(**overrides):
    overrides.setdefault("backend", "serial")
    return EngineContext(laptop_config(**overrides))


class SleepTask:
    operator = "Sleep[test]"

    def __call__(self, seconds):
        time.sleep(seconds)
        return seconds


class TestFaultInjection:
    def test_killed_task_retried_to_success(self):
        ctx = fresh_ctx()
        ctx.fault_injector.kill_task(task_index=1, stage=0)
        data = list(range(20))
        assert sorted(ctx.bag_of(data).map(lambda x: x + 1).collect()) == [
            x + 1 for x in data
        ]
        assert ctx.fault_injector.injected == 1
        assert ctx.fault_injector.pending == 0
        assert ctx.runtime.tasks_retried == 1

    def test_retry_recorded_in_stage_metrics(self):
        ctx = fresh_ctx()
        ctx.fault_injector.kill_task(task_index=0, stage=0)
        ctx.bag_of(range(8)).map(lambda x: x).collect()
        assert ctx.trace.task_retries == 1
        retried_stages = [
            stage
            for job in ctx.trace.jobs
            for stage in job.stages
            if stage.task_retries
        ]
        assert len(retried_stages) == 1

    def test_operator_matcher_kills_n_attempts(self):
        ctx = fresh_ctx()
        ctx.fault_injector.kill_task(operator="Map", times=2)
        data = list(range(20))
        assert sorted(
            ctx.bag_of(data).map(lambda x: x * 2).collect()
        ) == [x * 2 for x in data]
        assert ctx.fault_injector.injected == 2
        assert ctx.runtime.tasks_retried == 2

    def test_exhausted_retry_budget_fails_the_job(self):
        ctx = fresh_ctx(max_task_attempts=3)
        ctx.fault_injector.kill_task(task_index=0, stage=0, times=99)
        with pytest.raises(TaskFailedError) as info:
            ctx.bag_of(range(8)).map(lambda x: x).collect()
        assert info.value.task_index == 0
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, InjectedFault)
        assert ctx.fault_injector.injected == 3

    def test_kill_plan_requires_a_matcher(self):
        ctx = fresh_ctx()
        with pytest.raises(ValueError):
            ctx.fault_injector.kill_task()

    def test_reset_clears_plans(self):
        ctx = fresh_ctx()
        ctx.fault_injector.kill_task(task_index=0)
        ctx.fault_injector.reset()
        assert ctx.fault_injector.pending == 0
        ctx.bag_of(range(4)).map(lambda x: x).collect()
        assert ctx.fault_injector.injected == 0

    def test_injection_works_on_process_backend(self):
        ctx = EngineContext(
            laptop_config(backend="process", num_workers=2)
        )
        ctx.fault_injector.kill_task(task_index=0, stage=0)
        data = list(range(12))
        assert sorted(
            ctx.bag_of(data).map(lambda x: x + 3).collect()
        ) == [x + 3 for x in data]
        assert ctx.fault_injector.injected == 1
        assert ctx.trace.task_retries == 1


class TestRetryPolicy:
    def test_udf_bug_is_not_retried(self):
        ctx = fresh_ctx()
        # A never-matching kill plan keeps the outcome-mediated path
        # active, so this exercises the scheduler's retry decision.
        ctx.fault_injector.kill_task(operator="NoSuchOperator")

        def boom(x):
            raise ValueError("bad record %r" % x)

        with pytest.raises(UdfError):
            ctx.bag_of(range(4)).map(boom).collect()
        assert ctx.runtime.tasks_retried == 0
        assert ctx.trace.task_retries == 0

    def test_udf_bug_fails_fast_on_serial_fast_path(self):
        ctx = fresh_ctx()

        def boom(x):
            raise ValueError("bad record %r" % x)

        with pytest.raises(UdfError) as info:
            ctx.bag_of(range(4)).map(boom).collect()
        assert isinstance(info.value.original, ValueError)
        assert ctx.runtime.tasks_retried == 0


class TestMeasurement:
    def test_task_seconds_recorded_per_stage(self):
        ctx = fresh_ctx()
        ctx.bag_of(range(32)).map(lambda x: x).collect()
        assert ctx.measured_task_seconds() > 0
        for job in ctx.trace.jobs:
            for stage in job.stages:
                if stage.task_records:
                    assert len(stage.task_seconds) == len(
                        stage.task_records
                    )

    def test_measure_reports_simulated_and_measured(self):
        ctx = fresh_ctx()
        with ctx.measure() as measurement:
            ctx.bag_of(range(100)).map(lambda x: x + 1).count()
        assert measurement.seconds > 0
        assert measurement.measured_seconds > 0
        assert measurement.task_seconds >= 0
        assert measurement.measured_seconds != measurement.seconds

    def test_straggler_detection(self):
        config = laptop_config(
            backend="serial",
            straggler_min_task_seconds=0.005,
            straggler_factor=1.5,
        )
        scheduler = TaskScheduler(config)
        trace = ExecutionTrace()
        stage = trace.new_job("collect").new_stage("input")
        args = [(0.0,)] * 5 + [(0.03,)]
        values = scheduler.run_stage(SleepTask(), args, stage=stage)
        assert values == [0.0] * 5 + [0.03]
        assert stage.straggler_tasks == 1

    def test_no_straggler_when_uniform(self):
        config = laptop_config(backend="serial")
        scheduler = TaskScheduler(config)
        trace = ExecutionTrace()
        stage = trace.new_job("collect").new_stage("input")
        scheduler.run_stage(SleepTask(), [(0.0,)] * 6, stage=stage)
        assert stage.straggler_tasks == 0

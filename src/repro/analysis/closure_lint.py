"""NPL2xx: closure serializability, checked at decoration/import time.

The PR 2 task runtime serializes each task closure when a stage is
dispatched on the process backend; an unserializable capture surfaces
there as a :class:`~repro.errors.SerializationError` *mid-job*.  This
pass resolves a UDF's captured names up front and probes every captured
value with the runtime's own serde layer
(:func:`repro.engine.runtime.serde.check_serializable`), so the same
failure is reported at import time with the variable's name.

A second check (NPL202) catches captures that may even serialize but are
semantically wrong to ship: engine runtime objects such as an
:class:`~repro.engine.context.EngineContext` or a
:class:`~repro.engine.bag.Bag`.  A UDF holding a context would launch
jobs from inside a job -- the inner-parallel antipattern the paper's
flattening exists to remove.
"""

from ..engine.runtime.serde import check_serializable
from .diagnostics import make_diagnostic


def analyze_closure(fn, filename=None, line=None):
    """Closure diagnostics for one function; returns Diagnostics.

    Args:
        fn: The function to check.  A ``@nested_udf``-decorated function
            is unwrapped to its ``original`` automatically.
        filename / line: Override the reported location (defaults to the
            function's defining file and first line).
    """
    original = getattr(fn, "original", fn)
    code = getattr(original, "__code__", None)
    if code is None:
        return []
    if filename is None:
        filename = code.co_filename
    if line is None:
        line = code.co_firstlineno
    diags = []
    for name, value in _captured_bindings(original):
        engine_kind = _engine_object_kind(value)
        if engine_kind is not None:
            diags.append(
                make_diagnostic(
                    "NPL202",
                    "UDF %r captures %s %r; engine runtime objects "
                    "must not be shipped into tasks (launching jobs "
                    "from inside a job is the inner-parallel "
                    "antipattern)"
                    % (original.__name__, engine_kind, name),
                    file=filename,
                    line=line,
                    col=1,
                )
            )
    for problem in check_serializable(original):
        diags.append(
            make_diagnostic(
                "NPL201",
                "UDF %r: %s -- the process backend would fail at task "
                "launch; fix the capture or use backend='serial'"
                % (original.__name__, problem),
                file=filename,
                line=line,
                col=1,
            )
        )
    return diags


def _captured_bindings(fn):
    """``(name, value)`` pairs for the function's closure cells."""
    closure = getattr(fn, "__closure__", None)
    if not closure:
        return []
    bindings = []
    for name, cell in zip(fn.__code__.co_freevars, closure):
        try:
            bindings.append((name, cell.cell_contents))
        except ValueError:  # pragma: no cover - empty cell
            continue
    return bindings


def _engine_object_kind(value):
    """A description when ``value`` is an engine runtime object."""
    # Imported lazily so a closure check never forces engine submodules
    # that the caller has not already loaded.
    from ..engine.bag import Bag
    from ..engine.context import EngineContext
    from ..engine.runtime.scheduler import TaskScheduler

    if isinstance(value, EngineContext):
        return "the engine context"
    if isinstance(value, Bag):
        return "a Bag"
    if isinstance(value, TaskScheduler):
        return "the task scheduler"
    return None

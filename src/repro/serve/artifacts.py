"""The cross-job artifact cache: bounded memory, LRU, pinnable.

Iterative service workloads (PageRank sweeps, hyperparameter searches)
re-read the same inputs job after job; keeping those materialized
across jobs is where a long-running engine wins over one-shot
execution (the same reuse Labyrinth exploits for loop-invariant data
and Flare's resident runtime amortizes).  The :class:`ArtifactCache`
holds two artifact kinds:

* **bags** -- a cached :class:`~repro.engine.bag.Bag` whose
  materialized partitions live on the context.  The cache is charged
  the partitions' estimated in-memory size
  (:func:`repro.engine.sizing.estimate_size`) after each job; eviction
  calls :meth:`Bag.uncache`, which releases the partitions *and* the
  subtree's origin->layout registry entries -- the cache therefore
  subsumes the cross-job layout registry: an evicted artifact's layout
  can no longer be adopted by later plans.
* **broadcasts** -- a :class:`~repro.engine.broadcast.Broadcast`
  payload, charged its estimated size on insert.

Entries are keyed by name; each entry also records the identity of the
plan node it caches (``node_id``), which is the key the executor's
layout registry uses.  Eviction is strict LRU over *unpinned* entries:
worker slots pin every artifact a job resolves for the job's duration,
so memory pressure can never evict partitions out from under a running
job.  If every entry is pinned the cache may transiently exceed its
budget; it re-evicts at the next unpin.
"""

import threading

from ..engine.sizing import estimate_size

__all__ = ["ArtifactCache", "CacheEntry"]

KIND_BAG = "bag"
KIND_BROADCAST = "broadcast"


class CacheEntry:
    """One cached artifact and its bookkeeping."""

    __slots__ = ("key", "kind", "value", "bytes", "pins", "hits",
                 "node_id", "fingerprint")

    def __init__(self, key, kind, value, fingerprint=None):
        self.key = key
        self.kind = kind
        self.value = value
        self.bytes = 0
        self.pins = 0
        self.hits = 0
        # Identity of the cached plan node (bags only): the same key
        # the executor's origin->layout registry is indexed by.
        self.node_id = (
            id(value.node) if kind == KIND_BAG else None
        )
        # Canonical program fingerprint (see
        # :func:`repro.analysis.effects.fingerprint_function`): reuse
        # under the same key is only offered when the caller's
        # fingerprint matches, so an artifact name cannot serve stale
        # data after its builder's code changed.
        self.fingerprint = fingerprint

    def __repr__(self):
        return (
            "CacheEntry(%r, kind=%s, bytes=%d, pins=%d, hits=%d)"
            % (self.key, self.kind, self.bytes, self.pins, self.hits)
        )


class ArtifactCache:
    """Memory-bounded LRU cache of cross-job artifacts.

    Args:
        limit_bytes: Total estimated-byte budget.  0 disables retention
            entirely (every unpinned entry is evicted on rebalance) --
            the service's "cold" mode.
        on_evict: Callback invoked with each evicted
            :class:`CacheEntry` *outside* any job, *inside* the cache
            lock.  The service uses it to ``uncache()`` bag artifacts.
    """

    def __init__(self, limit_bytes=256 * 1024 * 1024, on_evict=None):
        if limit_bytes < 0:
            raise ValueError("limit_bytes must be >= 0")
        self.limit_bytes = limit_bytes
        self.on_evict = on_evict
        self._entries = {}
        # LRU order: most recent at the end.  Maintained by hand (a
        # plain list of keys) so tests can assert the exact order.
        self._lru = []
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes_evicted = 0

    # -- core ----------------------------------------------------------

    def get_or_build(self, key, factory, kind=KIND_BAG, pin=False,
                     fingerprint=None):
        """Look up ``key``, building it via ``factory()`` on a miss.

        Returns ``(value, hit)``.  With ``pin=True`` the entry is
        pinned before the lock is released, so a concurrent rebalance
        can never evict it between lookup and use.

        ``fingerprint`` (optional) is the canonical identity of the
        program that produces this artifact (see
        :func:`repro.analysis.effects.fingerprint_function`).  A hit
        is only served when it matches the stored entry's fingerprint;
        a mismatch means the builder's code changed (or is not
        provably deterministic, in which case the service hands in a
        fresh fingerprint per job), so the stale entry is evicted and
        the artifact rebuilt.  If the stale entry is still pinned by a
        running job it stays untouched and the fresh value is built
        *outside* the cache; a later call replaces the slot once the
        entry is unpinned.
        """
        with self._lock:
            entry = self._entries.get(key)
            if (
                entry is not None
                and fingerprint is not None
                and entry.fingerprint != fingerprint
            ):
                if entry.pins == 0:
                    self._evict_locked(key)
                    entry = None
                else:
                    self.misses += 1
                    return factory(), False
            hit = entry is not None
            if hit:
                entry.hits += 1
                self.hits += 1
                self._touch(key)
            else:
                self.misses += 1
                value = factory()
                entry = CacheEntry(key, kind, value,
                                   fingerprint=fingerprint)
                if kind == KIND_BROADCAST:
                    entry.bytes = estimate_size(value.value)
                self._entries[key] = entry
                self._lru.append(key)
                self._rebalance()
            if pin:
                entry.pins += 1
            return entry.value, hit

    def pin(self, key):
        """Protect ``key`` from eviction until :meth:`unpin`."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry.pins += 1
            return entry is not None

    def unpin(self, key):
        """Release one pin; rebalances once the entry is unpinned."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return
            entry.pins = max(0, entry.pins - 1)
            if entry.pins == 0:
                self._rebalance()

    def charge(self, key, nbytes=None):
        """(Re)measure an entry's footprint and rebalance.

        Called by the service after each job: a bag artifact's
        partitions exist only once a job materialized them, so its
        cost is unknown at build time.  ``nbytes=None`` estimates from
        the artifact itself (materialized partitions for bags, the
        payload for broadcasts).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return 0
            if nbytes is None:
                nbytes = self._estimate(entry)
            entry.bytes = int(nbytes)
            self._rebalance()
            return entry.bytes

    def _estimate(self, entry):
        if entry.kind == KIND_BROADCAST:
            return estimate_size(entry.value.value)
        materialized = entry.value.node.materialized
        if materialized is None:
            return 0
        return estimate_size(materialized)

    # -- eviction ------------------------------------------------------

    def _touch(self, key):
        self._lru.remove(key)
        self._lru.append(key)

    def _rebalance(self):
        """Evict LRU-first until within budget (pinned entries skip)."""
        while self.total_bytes > self.limit_bytes:
            victim = None
            for key in self._lru:
                if self._entries[key].pins == 0:
                    victim = key
                    break
            if victim is None:
                return  # everything pinned; retry at next unpin
            self._evict_locked(victim)

    def _evict_locked(self, key):
        entry = self._entries.pop(key)
        self._lru.remove(key)
        self.evictions += 1
        self.bytes_evicted += entry.bytes
        if self.on_evict is not None:
            self.on_evict(entry)

    def evict(self, key):
        """Explicitly evict one entry (even a zero-cost one)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.pins > 0:
                return False
            self._evict_locked(key)
            return True

    def clear(self):
        """Evict every unpinned entry."""
        with self._lock:
            for key in list(self._lru):
                if self._entries[key].pins == 0:
                    self._evict_locked(key)

    # -- introspection -------------------------------------------------

    @property
    def total_bytes(self):
        return sum(e.bytes for e in self._entries.values())

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def keys(self):
        """Entry keys in LRU order (least recent first)."""
        with self._lock:
            return list(self._lru)

    def entry(self, key):
        with self._lock:
            return self._entries.get(key)

    def stats(self):
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.total_bytes,
                "limit_bytes": self.limit_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "bytes_evicted": self.bytes_evicted,
            }

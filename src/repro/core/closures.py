"""Half-lifted operations (paper Sec. 5.2 and 8.3).

A *half-lifted* operation has one input from inside a lifted UDF (an
InnerScalar or InnerBag) and one plain input from outside (a closure of the
enclosing driver program).  Replicating the outside input once per tag
would be correct but potentially enormous; these implementations avoid it.

The flagship case is the half-lifted ``mapWithClosure`` used by K-means
(Sec. 8.3): the bag of points lives *outside* the lifted UDF, while the
current means are an InnerScalar *inside* it.  The operation is a cross
product between the two, implemented by broadcasting one side -- and
choosing which side to broadcast is a runtime optimizer decision.
"""

from ..errors import FlatteningError
from .primitives import InnerBag, InnerScalar, retag


def half_lifted_map_with_closure(primary_bag, closure, fn, side=None):
    """Half-lifted ``mapWithClosure`` (paper Sec. 8.3).

    For every tag ``t`` with closure value ``s`` and every element ``x``
    of the plain ``primary_bag``, emits ``fn(x, s)`` under tag ``t``.

    Args:
        primary_bag: A plain engine Bag defined outside the lifted UDF.
        closure: The InnerScalar captured inside the lifted UDF.
        fn: ``fn(primary_element, closure_value) -> result``.
        side: ``None`` lets the optimizer choose which side to broadcast
            (Sec. 8.3: broadcast the InnerScalar when it has a single
            partition, else broadcast the estimated-smaller side);
            ``"scalar"`` or ``"primary"`` forces a side.

    Returns:
        An InnerBag of the results, in the closure's lifting context.
    """
    if not isinstance(closure, InnerScalar):
        raise FlatteningError(
            "half_lifted_map_with_closure needs an InnerScalar closure"
        )
    optimizer = closure.optimizer
    if side is None:
        side = optimizer.cross_broadcast_side(primary_bag, closure)
    elif side not in ("scalar", "primary"):
        raise FlatteningError("side must be None, 'scalar', or 'primary'")
    broadcast_side = "right" if side == "scalar" else "left"
    # Pairs come out as (primary_element, (tag, scalar_value)).
    pairs = primary_bag.cross(closure.repr, broadcast_side=broadcast_side)
    return InnerBag(
        closure.lctx,
        pairs.map(
            lambda pair: retag(pair[1][0], fn(pair[0], pair[1][1]))
        ),
    )


def half_lifted_filter_with_closure(primary_bag, closure, fn, side=None):
    """Half-lifted filter: keep ``(tag, x)`` where ``fn(x, s)`` holds."""
    mapped = half_lifted_map_with_closure(
        primary_bag, closure, lambda x, s: (x, bool(fn(x, s))), side
    )
    kept = mapped.repr.filter(lambda te: te[1][1])
    return InnerBag(
        closure.lctx, kept.map(lambda te: (te[0], te[1][0]))
    )


def replicate_bag(plain_bag, lctx):
    """Fully lift a plain bag into a lifting context by replication.

    This is the naive alternative the paper warns about ("this can make it
    very large"): every element is copied once per tag.  Provided both for
    completeness and so tests/benchmarks can demonstrate why half-lifted
    operations exist.
    """
    pairs = plain_bag.cross(lctx.tags, broadcast_side="right")
    return InnerBag(lctx, pairs.map(lambda pair: (pair[1], pair[0])))


def replicate_scalar(value, lctx):
    """Lift a plain driver-side scalar: the same value under every tag."""
    return lctx.constant(value)

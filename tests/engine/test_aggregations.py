"""aggregate_by_key, count_by_key, top, min/max."""

from collections import Counter

import pytest

from repro.errors import PlanError


class TestAggregateByKey:
    def test_list_accumulator(self, ctx):
        bag = ctx.bag_of([("a", 1), ("a", 2), ("b", 5)])
        got = bag.aggregate_by_key(
            (), lambda acc, v: acc + (v,), lambda x, y: x + y
        ).map_values(sorted).collect_as_map()
        assert got == {"a": [1, 2], "b": [5]}

    def test_accumulator_type_differs_from_values(self, ctx):
        bag = ctx.bag_of([("a", "xx"), ("a", "y"), ("b", "zzz")])
        lengths = bag.aggregate_by_key(
            0, lambda acc, s: acc + len(s), lambda x, y: x + y
        ).collect_as_map()
        assert lengths == {"a": 3, "b": 3}

    def test_zero_not_duplicated_across_partitions(self, ctx):
        # With a non-trivial zero, a wrong implementation would add it
        # once per partition.
        bag = ctx.bag_of(
            [("k", 1)] * 12, num_partitions=6
        )
        got = bag.aggregate_by_key(
            100, lambda acc, v: acc + v, lambda x, y: x + y - 100
        ).collect_as_map()
        assert got == {"k": 112}

    def test_matches_group_then_fold(self, ctx):
        records = [(i % 3, i) for i in range(20)]
        bag = ctx.bag_of(records)
        aggregated = bag.aggregate_by_key(
            0, lambda acc, v: acc + v, lambda x, y: x + y
        ).collect_as_map()
        expected = {}
        for key, value in records:
            expected[key] = expected.get(key, 0) + value
        assert aggregated == expected


class TestCountByKey:
    def test_counts(self, ctx):
        bag = ctx.bag_of([("a", "x"), ("a", "y"), ("b", "z")])
        assert bag.count_by_key().collect_as_map() == {"a": 2, "b": 1}

    def test_empty(self, ctx):
        assert ctx.empty_bag().count_by_key().collect() == []


class TestTop:
    def test_largest_descending(self, ctx):
        assert ctx.bag_of([5, 3, 9, 1, 7]).top(3) == [9, 7, 5]

    def test_n_larger_than_bag(self, ctx):
        assert ctx.bag_of([2, 1]).top(10) == [2, 1]

    def test_with_key(self, ctx):
        bag = ctx.bag_of(["aa", "b", "cccc"])
        assert bag.top(2, key=len) == ["cccc", "aa"]

    def test_only_n_per_partition_collected(self, ctx):
        bag = ctx.bag_of(range(100), num_partitions=4)
        bag.top(2)
        assert ctx.trace.jobs[-1].collected_records <= 8


class TestMinMax:
    def test_min_max(self, ctx):
        bag = ctx.bag_of([5, 3, 9])
        assert bag.min() == 3
        assert bag.max() == 9

    def test_with_key(self, ctx):
        bag = ctx.bag_of([(1, "bbb"), (2, "a")])
        assert bag.min(key=lambda kv: len(kv[1])) == (2, "a")

    def test_empty_raises(self, ctx):
        with pytest.raises(PlanError):
            ctx.empty_bag().min()


class TestLiftedAggregations:
    def test_inner_bag_aggregate_by_key(self, ctx):
        from repro.core import group_by_key_into_nested_bag

        bag = ctx.bag_of(
            [("g1", ("a", 1)), ("g1", ("a", 2)), ("g2", ("a", 9))]
        )
        nested = group_by_key_into_nested_bag(bag)
        got = nested.inner.aggregate_by_key(
            (), lambda acc, v: acc + (v,), lambda x, y: x + y
        ).collect_nested()
        assert sorted(got["g1"][0][1]) == [1, 2]
        assert got["g2"] == [("a", (9,))]

    def test_inner_bag_count_by_key(self, ctx):
        from repro.core import group_by_key_into_nested_bag

        bag = ctx.bag_of(
            [("g1", ("a", 0)), ("g1", ("a", 0)), ("g1", ("b", 0)),
             ("g2", ("a", 0))]
        )
        nested = group_by_key_into_nested_bag(bag)
        got = nested.inner.count_by_key().collect_nested()
        assert dict(got["g1"]) == {"a": 2, "b": 1}
        assert dict(got["g2"]) == {"a": 1}

    def test_inner_bag_cogroup(self, ctx):
        from repro.core import group_by_key_into_nested_bag

        bag = ctx.bag_of([("g1", ("a", 1)), ("g2", ("a", 2))])
        nested = group_by_key_into_nested_bag(bag)
        left = nested.inner
        right = nested.inner.map_values(lambda v: v * 10)
        got = left.cogroup(right).collect_nested()
        assert got["g1"] == [("a", ([1], [10]))]
        assert got["g2"] == [("a", ([2], [20]))]

    def test_inner_bag_min_max(self, nested_fixture_free_ctx=None,
                               ctx=None):
        from repro.core import group_by_key_into_nested_bag
        from repro.engine import EngineContext, laptop_config

        local = EngineContext(laptop_config())
        bag = local.bag_of(
            [("g1", 4), ("g1", 9), ("g2", -1)]
        )
        nested = group_by_key_into_nested_bag(bag)
        assert nested.inner.min().as_dict() == {"g1": 4, "g2": -1}
        assert nested.inner.max().as_dict() == {"g1": 9, "g2": -1}

    def test_inner_bag_min_with_default(self):
        from repro.core import group_by_key_into_nested_bag
        from repro.engine import EngineContext, laptop_config

        local = EngineContext(laptop_config())
        nested = group_by_key_into_nested_bag(
            local.bag_of([("g1", 4), ("g2", 7)])
        )
        empty = nested.inner.filter(lambda x: x > 100)
        assert empty.min(default=None).as_dict() == {
            "g1": None, "g2": None,
        }

"""A DIQL-style comprehension-query baseline (paper Sec. 9, [21]).

DIQL (Fegaras & Noor 2018) compiles an embedded query language of monoid
comprehensions to Spark at compile time.  The paper compares against it
and observes two behaviours this re-implementation reproduces:

* **No inner control flow.**  DIQL cannot flatten programs with control
  flow statements at inner nesting levels, so it is only evaluated on
  Bounce Rate; we raise :class:`UnsupportedFeatureError` accordingly.
* **Group-wise holistic aggregation is not flattened.**  For the Bounce
  Rate program class (a non-homomorphic UDF over each group: it needs a
  per-group ``distinct`` and a count-of-counts), DIQL "applied the
  outer-parallel workaround instead, resulting in out-of-memory errors"
  (Sec. 9.4).  The compiler below flattens simple select/where/map
  comprehensions and *algebraic* (monoid) group aggregations, but
  materializes groups for holistic group UDFs -- exactly the observed
  plan.
* **No runtime optimization.**  All physical choices are fixed at
  compile time; there is no equivalent of Matryoshka's lowering phase.
"""

from ..engine.work import Weighted
from ..errors import UnsupportedFeatureError


class Monoid:
    """An algebraic aggregation: ``(zero, plus)`` over mapped values.

    DIQL expresses aggregations as monoid homomorphisms; these are the
    aggregations its compiler *can* flatten into ``reduceByKey``.
    """

    __slots__ = ("zero", "plus", "mapper")

    def __init__(self, zero, plus, mapper=None):
        self.zero = zero
        self.plus = plus
        self.mapper = mapper if mapper is not None else _identity

    @classmethod
    def sum(cls, mapper=None):
        return cls(0, lambda a, b: a + b, mapper)

    @classmethod
    def count(cls):
        return cls(0, lambda a, b: a + b, lambda _x: 1)


class DiqlQuery:
    """A fluent monoid-comprehension query over one input bag.

    Example (per-day visit counts -- algebraic, flattens fine)::

        DiqlQuery(visits).group_by(lambda v: v[0]) \\
                         .reduce(Monoid.count()).compile()

    Example (Bounce Rate -- holistic, falls back to group
    materialization)::

        DiqlQuery(visits).group_by(lambda v: v[0]) \\
                         .aggregate_groups(bounce_rate_fn).compile()
    """

    def __init__(self, bag):
        self._bag = bag
        self._clauses = []  # ordered ("where"|"select", fn) pairs
        self._group_key = None
        self._monoid = None
        self._group_udf = None
        self._has_inner_control_flow = False

    # -- comprehension clauses -------------------------------------------

    def where(self, predicate):
        self._check_open()
        self._clauses.append(("where", predicate))
        return self

    def select(self, mapper):
        self._check_open()
        self._clauses.append(("select", mapper))
        return self

    def group_by(self, key_fn):
        self._check_open()
        if self._group_key is not None:
            raise UnsupportedFeatureError(
                "DIQL baseline supports a single group_by per query"
            )
        self._group_key = key_fn
        return self

    def reduce(self, monoid):
        """Algebraic per-group aggregation (flattened to reduceByKey)."""
        self._require_grouped()
        self._monoid = monoid
        return self

    def aggregate_groups(self, group_udf, control_flow=False):
        """Holistic per-group aggregation (``group_udf(key, values)``).

        ``control_flow=True`` declares that the UDF contains loops or
        branches, which DIQL rejects.
        """
        self._require_grouped()
        self._group_udf = group_udf
        self._has_inner_control_flow = control_flow
        return self

    # -- compilation -------------------------------------------------------

    def explain(self):
        """The plan DIQL's compile-time translation commits to."""
        steps = ["scan"]
        steps.extend(
            "filter" if kind == "where" else "map"
            for kind, _fn in self._clauses
        )
        if self._group_key is not None:
            if self._monoid is not None:
                steps.append("map-side-combine reduceByKey (flattened)")
            elif self._group_udf is not None:
                steps.append(
                    "groupByKey materializing groups (outer-parallel "
                    "fallback: holistic UDF is not a monoid homomorphism)"
                )
            else:
                steps.append("groupByKey")
        return " -> ".join(steps)

    def compile(self):
        """Translate to an engine bag (the compile-time plan; no runtime
        re-optimization happens afterwards)."""
        if self._has_inner_control_flow:
            raise UnsupportedFeatureError(
                "DIQL does not support control flow statements at inner "
                "nesting levels (paper Sec. 9.1)"
            )
        bag = self._bag
        for kind, fn in self._clauses:
            bag = bag.filter(fn) if kind == "where" else bag.map(fn)
        if self._group_key is None:
            return bag
        keyed = bag.key_by(self._group_key)
        if self._monoid is not None:
            monoid = self._monoid
            return keyed.map_values(monoid.mapper).reduce_by_key(
                monoid.plus
            )
        if self._group_udf is not None:
            udf = self._group_udf
            grouped = keyed.group_by_key()
            # The holistic UDF makes (at least) two passes over its group
            # (aggregation + distinct); charge that work.
            return grouped.map(
                lambda kv: Weighted(
                    (kv[0], udf(kv[0], kv[1])), 2 * len(kv[1])
                )
            )
        return keyed.group_by_key()

    # -- internals -----------------------------------------------------------

    def _check_open(self):
        if self._monoid is not None or self._group_udf is not None:
            raise UnsupportedFeatureError(
                "no clauses may follow the aggregation"
            )

    def _require_grouped(self):
        self._check_open()
        if self._group_key is None:
            raise UnsupportedFeatureError(
                "reduce/aggregate_groups requires a group_by"
            )


def _identity(x):
    return x

"""Fig. 8: the lowering-phase optimizer's runtime choices (Sec. 8).

Left: broadcast vs. repartition for InnerBag-InnerScalar joins, grouped
PageRank at the 160 GB scale.  Expected: repartition fails/collapses at
few groups; broadcast degrades and finally OOMs at many; the optimizer
tracks the better strategy everywhere.

Right: the half-lifted mapWithClosure broadcast side, K-means with a
shared point bag.  Expected: broadcasting the primary input degrades
badly (parallelism capped at the InnerScalar's partition count plus a
per-iteration broadcast of the whole dataset); the optimizer always
matches the best fixed choice.
"""

from repro.bench import figures

import os

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


def test_fig8_left_join_strategies(figure_benchmark):
    sweep = figure_benchmark(figures.fig8_join_strategies, SCALE)
    for x in sweep.x_values():
        optimizer = sweep.seconds("optimizer", x)
        assert optimizer is not None, "the optimizer must never fail"
        fixed = [
            sweep.seconds("broadcast", x),
            sweep.seconds("repartition", x),
        ]
        survivors = [t for t in fixed if t is not None]
        assert optimizer <= min(survivors) * 1.05


def test_fig8_right_half_lifted(figure_benchmark):
    sweep = figure_benchmark(figures.fig8_half_lifted, SCALE)
    for x in sweep.x_values():
        optimizer = sweep.seconds("optimizer", x)
        assert optimizer is not None
        times = [
            sweep.seconds("broadcast-scalar", x),
            sweep.seconds("broadcast-primary", x),
        ]
        survivors = [t for t in times if t is not None]
        assert optimizer <= min(survivors) * 1.05
    # Somewhere the wrong side must hurt badly (the paper's 4.6x).
    worst_ratio = max(
        (sweep.seconds("broadcast-primary", x) or float("inf"))
        / sweep.seconds("optimizer", x)
        for x in sweep.x_values()
    )
    assert worst_ratio > 2

"""The paper's four evaluation tasks, in every system variant.

Each module provides a sequential reference, the Matryoshka (nested)
formulation, and the inner-/outer-parallel workaround implementations.
"""

from . import avg_distances, bounce_rate, graphs, kmeans, matrix, pagerank

__all__ = [
    "avg_distances",
    "bounce_rate",
    "graphs",
    "kmeans",
    "matrix",
    "pagerank",
]

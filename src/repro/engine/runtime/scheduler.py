"""The task scheduler: stage dispatch, retries, and straggler tracking.

The executor hands the scheduler one *task set* per stage evaluation --
the same task callable applied to each partition's arguments -- and the
scheduler owns everything a Spark ``TaskSchedulerImpl`` would: running
the set on the configured backend, retrying failed attempts within the
retry budget, re-raising permanent failures, and recording per-task
measured wall-clock (plus retry and straggler counts) into the stage's
metrics, next to the simulated counters.

Retry policy: only *transient* failures are retried -- injected faults
(:class:`~repro.engine.runtime.faults.FaultInjector`) and any error
whose ``retryable`` attribute is true.  Deterministic failures
(:class:`~repro.errors.UdfError`, simulated OOM, plan errors) fail the
job on first occurrence: rerunning a UDF bug ``max_task_attempts``
times would only repeat its side effects.
"""

import statistics
import time

from ...errors import TaskFailedError
from .backends import SerialBackend, make_backend
from .faults import FaultInjector
from .task import Invocation


class TaskScheduler:
    """Dispatches per-partition tasks for one engine context."""

    def __init__(self, config, fault_injector=None, backend=None):
        self.config = config
        self.fault_injector = (
            fault_injector if fault_injector is not None else FaultInjector()
        )
        self.backend = backend if backend is not None else make_backend(config)
        #: Task sets dispatched so far (the fault injector's stage
        #: addressing; deterministic given a deterministic plan).
        self.dispatch_count = 0
        #: Total task attempts ever run, split by outcome.
        self.tasks_launched = 0
        self.tasks_failed = 0
        self.tasks_retried = 0

    # ------------------------------------------------------------------

    def run_stage(self, task, args_list, stage=None):
        """Run ``task(*args)`` for every args tuple; return the values.

        Args:
            task: A picklable callable (see
                :mod:`repro.engine.runtime.task`), shared by the set.
            args_list: One argument tuple per task; task ``i`` is
                partition ``i`` of the stage.
            stage: Optional :class:`~repro.engine.metrics.StageMetrics`
                to credit measured seconds / retries / stragglers to.

        Returns:
            The task return values, in task order.

        Raises:
            The reconstructed task error after a non-retryable failure,
            or :class:`~repro.errors.TaskFailedError` when a task
            exhausts ``config.max_task_attempts``.
        """
        ordinal = self.dispatch_count
        self.dispatch_count += 1
        if not self.fault_injector.pending and isinstance(
            self.backend, SerialBackend
        ):
            # Hot path: a paper-scale stage dispatches >1000 tasks and
            # the serial backend runs them right here, so skip the
            # invocation/outcome machinery -- real failures are
            # non-retryable under the retry policy anyway, and raising
            # in place preserves the original traceback exactly.
            return self._run_serial_fast(task, args_list, stage)
        operator = getattr(task, "operator", type(task).__name__)
        max_attempts = self.config.max_task_attempts

        final = [None] * len(args_list)
        pending = [
            self._invocation(task, args_list[i], ordinal, operator, i, 1)
            for i in range(len(args_list))
        ]
        while pending:
            outcomes = self.backend.run_invocations(pending)
            self.tasks_launched += len(pending)
            pending = []
            for outcome in outcomes:
                if stage is not None:
                    stage.add_task_seconds(
                        outcome.task_index, outcome.seconds
                    )
                if outcome.ok:
                    final[outcome.task_index] = outcome
                    continue
                self.tasks_failed += 1
                if not outcome.retryable:
                    self._reraise(outcome)
                if outcome.attempt >= max_attempts:
                    raise TaskFailedError(
                        ordinal,
                        outcome.task_index,
                        outcome.attempt,
                        outcome.error,
                    )
                self.tasks_retried += 1
                if stage is not None:
                    stage.task_retries += 1
                pending.append(
                    self._invocation(
                        task,
                        args_list[outcome.task_index],
                        ordinal,
                        operator,
                        outcome.task_index,
                        outcome.attempt + 1,
                    )
                )
        if stage is not None:
            stage.straggler_tasks += self._count_stragglers(final)
        return [outcome.value for outcome in final]

    # ------------------------------------------------------------------

    def _run_serial_fast(self, task, args_list, stage):
        """Inline execution with per-task timing but no retry plumbing."""
        perf_counter = time.perf_counter
        values = []
        seconds = []
        for args in args_list:
            start = perf_counter()
            values.append(task(*args))
            seconds.append(perf_counter() - start)
        self.tasks_launched += len(args_list)
        if stage is not None:
            for index, value in enumerate(seconds):
                stage.add_task_seconds(index, value)
            stage.straggler_tasks += self._straggler_count(seconds)
        return values

    def _invocation(self, task, args, ordinal, operator, index, attempt):
        inject = self.fault_injector.should_fail(ordinal, operator, index)
        return Invocation(
            task=task,
            args=tuple(args),
            task_index=index,
            attempt=attempt,
            inject_fault=inject,
        )

    def _reraise(self, outcome):
        error = outcome.error
        if outcome.error_traceback and outcome.worker_pid != 0:
            # Cross-process errors lose their original traceback; keep
            # the worker-side rendering on the exception for debugging.
            error.worker_traceback = outcome.error_traceback
        raise error

    def _count_stragglers(self, outcomes):
        return self._straggler_count(
            [outcome.seconds for outcome in outcomes]
        )

    def _straggler_count(self, seconds):
        """Tasks that took disproportionately long within their set.

        A task is a straggler when it exceeds both the configured
        multiple of the set's median runtime and an absolute floor (so
        microsecond-scale jitter never counts).
        """
        if len(seconds) < 2:
            return 0
        median = statistics.median(seconds)
        threshold = max(
            self.config.straggler_min_task_seconds,
            self.config.straggler_factor * median,
        )
        return sum(1 for value in seconds if value > threshold)

    def close(self):
        self.backend.close()

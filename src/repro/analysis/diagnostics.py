"""Structured diagnostics for the static analysis passes.

Every finding is a :class:`Diagnostic` carrying a stable flake8-style
code, a severity, a human message, and a location -- either a source
position (``file:line:col``) or a plan-node path (``#id NodeName``).

Code families:

* ``NPL0xx`` -- tool-level notices (unreadable file, skipped module).
* ``NPL1xx`` -- UDF-level constructs the parsing phase cannot lift.
* ``NPL2xx`` -- closure / serialization problems the task runtime would
  hit at launch time.
* ``NPL3xx`` -- plan-level smells and predicted failures.
* ``NPL4xx`` -- partitioning-property findings from
  :mod:`repro.analysis.properties` (redundant or avoidable shuffles).
* ``NPL5xx`` -- effect & determinism findings from
  :mod:`repro.analysis.effects` (impure, nondeterministic, or
  I/O-performing UDFs, and auto-cache opportunities the optimizer had
  to pass up).
* ``NPL6xx`` -- record schema & shape findings from
  :mod:`repro.analysis.schema` (key-type mismatches, union arity
  mismatches, unhashable shuffle keys, refuted-columnar chains).
"""

import json
from dataclasses import asdict, dataclass

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: code -> (severity, one-line summary).  The catalogue is documented
#: with rationale in ``docs/analysis.md``; keep the two in sync.
CODES = {
    # -- tool level -----------------------------------------------------
    "NPL001": (INFO, "file or function skipped by the analyzer"),
    "NPL002": (INFO, "module import failed; closure checks skipped"),
    # -- UDF constructs (parsing phase) ---------------------------------
    "NPL101": (ERROR, "try/except cannot be lifted"),
    "NPL102": (ERROR, "yield makes the UDF a generator"),
    "NPL103": (ERROR, "async constructs cannot be lifted"),
    "NPL104": (ERROR, "global/nonlocal declaration (global mutation)"),
    "NPL105": (ERROR, "with-statement (context-manager side effects)"),
    "NPL106": (ERROR, "match-statement is not rewritten"),
    "NPL107": (ERROR, "break/continue cannot be lifted"),
    "NPL108": (ERROR, "return inside a lifted control-flow construct"),
    "NPL109": (ERROR, "while/else and for/else cannot be lifted"),
    "NPL110": (ERROR, "for-loop shape is not liftable"),
    "NPL111": (ERROR, "binds a reserved staged name (__mz_*)"),
    "NPL120": (WARNING, "mutation of a captured variable"),
    "NPL121": (WARNING, "rebinds range() used by loop desugaring"),
    "NPL122": (WARNING, "nested def/class contains unlifted control flow"),
    "NPL123": (WARNING, "del unthreads a variable from lifted state"),
    # -- closures / serialization ---------------------------------------
    "NPL201": (ERROR, "captured value cannot be serialized"),
    "NPL202": (ERROR, "captures an engine runtime object"),
    "NPL203": (WARNING, "shuffle key type hashes via its repr()"),
    # -- plans -----------------------------------------------------------
    "NPL301": (WARNING, "bag consumed >=2 times without cache()"),
    "NPL302": (WARNING, "key-only filter could be pushed below shuffle"),
    "NPL303": (ERROR, "broadcast build side exceeds executor memory"),
    "NPL304": (WARNING, "redundant back-to-back repartition"),
    # -- partitioning properties -----------------------------------------
    "NPL401": (WARNING, "redundant shuffle on already-partitioned input"),
    "NPL402": (WARNING, "key-rewriting map destroys co-partitioning"),
    "NPL403": (WARNING, "partition-count mismatch forces a reshuffle"),
    "NPL404": (INFO, "a preserves-partitioning hint could elide this "
                     "shuffle"),
    # -- effects & determinism -------------------------------------------
    "NPL501": (WARNING, "UDF provably mutates state that outlives the "
                        "call (impure)"),
    "NPL502": (WARNING, "UDF provably nondeterministic; retries and "
                        "speculation may observe different results"),
    "NPL503": (WARNING, "UDF performs external I/O"),
    "NPL504": (INFO, "auto-cache opportunity suppressed: subtree "
                     "purity not proven"),
    # -- record schemas & shapes ------------------------------------------
    "NPL601": (WARNING, "join/cogroup key types provably mismatch"),
    "NPL602": (WARNING, "union branches have mismatched record shapes"),
    "NPL603": (ERROR, "shuffle key is statically non-hashable"),
    "NPL604": (INFO, "fused chain schema refutes columnar encoding"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of an analysis pass.

    Attributes:
        code: Stable ``NPLxxx`` identifier (see :data:`CODES`).
        severity: ``"error"``, ``"warning"``, or ``"info"``.
        message: Human-readable description of this occurrence.
        file: Source file, when the finding has a source location.
        line / col: 1-based source position (0 when not applicable).
        node: Plan-node path (``#3 GroupByKey [label]``) for NPL3xx.
    """

    code: str
    severity: str
    message: str
    file: str = ""
    line: int = 0
    col: int = 0
    node: str = ""

    def __str__(self):
        if self.node:
            where = "plan %s" % self.node
        elif self.file:
            where = "%s:%d:%d" % (self.file, self.line, self.col)
        else:
            where = "<unknown>"
        return "%s: %s [%s] %s" % (where, self.code, self.severity,
                                   self.message)


def make_diagnostic(code, message, **location):
    """Build a :class:`Diagnostic`, deriving severity from the registry."""
    severity, _summary = CODES[code]
    return Diagnostic(code=code, severity=severity, message=message,
                      **location)


def sort_key(diagnostic):
    """Deterministic report order: by file, position, then code."""
    return (
        diagnostic.file,
        diagnostic.line,
        diagnostic.col,
        diagnostic.node,
        diagnostic.code,
    )


def filter_diagnostics(diagnostics, select=None, ignore=None):
    """flake8-style prefix filtering.

    Args:
        select: Iterable of code prefixes to keep (``["NPL1", "NPL301"]``);
            ``None`` keeps everything.
        ignore: Iterable of code prefixes to drop; applied after select.
    """
    result = []
    for diag in diagnostics:
        if select is not None and not any(
            diag.code.startswith(prefix) for prefix in select
        ):
            continue
        if ignore and any(
            diag.code.startswith(prefix) for prefix in ignore
        ):
            continue
        result.append(diag)
    return result


def count_by_severity(diagnostics):
    counts = {ERROR: 0, WARNING: 0, INFO: 0}
    for diag in diagnostics:
        counts[diag.severity] = counts.get(diag.severity, 0) + 1
    return counts


def render_text(diagnostics):
    """One flake8-style line per diagnostic."""
    return "\n".join(
        str(diag) for diag in sorted(diagnostics, key=sort_key)
    )


_GITHUB_LEVELS = {ERROR: "error", WARNING: "warning", INFO: "notice"}


def _github_escape(text, property_value=False):
    """Escape a string for a GitHub Actions workflow command."""
    text = text.replace("%", "%25")
    text = text.replace("\r", "%0D").replace("\n", "%0A")
    if property_value:
        text = text.replace(":", "%3A").replace(",", "%2C")
    return text


def render_github(diagnostics):
    """GitHub Actions annotation lines (``::warning file=...::...``).

    One workflow command per diagnostic: errors annotate as ``error``,
    warnings as ``warning``, info as ``notice``.  Source-located
    findings carry ``file``/``line``/``col`` so GitHub attaches them to
    the diff; plan-located findings annotate without a file.
    """
    lines = []
    for diag in sorted(diagnostics, key=sort_key):
        level = _GITHUB_LEVELS.get(diag.severity, "notice")
        params = []
        if diag.file:
            params.append("file=%s" % _github_escape(diag.file, True))
            if diag.line:
                params.append("line=%d" % diag.line)
            if diag.col:
                params.append("col=%d" % diag.col)
        params.append("title=%s" % _github_escape(diag.code, True))
        message = diag.message
        if diag.node:
            message = "plan %s: %s" % (diag.node, message)
        lines.append(
            "::%s %s::%s %s"
            % (level, ",".join(params), diag.code,
               _github_escape(message))
        )
    return "\n".join(lines)


def render_json(diagnostics):
    """A JSON document: the diagnostics plus a severity summary."""
    ordered = sorted(diagnostics, key=sort_key)
    return json.dumps(
        {
            "diagnostics": [asdict(diag) for diag in ordered],
            "summary": count_by_severity(ordered),
        },
        indent=2,
    )


__all__ = [
    "CODES",
    "Diagnostic",
    "ERROR",
    "INFO",
    "WARNING",
    "count_by_severity",
    "filter_diagnostics",
    "make_diagnostic",
    "render_github",
    "render_json",
    "render_text",
    "sort_key",
]

"""Closure handling: mapWithClosure and half-lifted ops (paper Sec. 5)."""

from collections import Counter

import pytest

from repro.core.closures import (
    half_lifted_filter_with_closure,
    half_lifted_map_with_closure,
    replicate_bag,
    replicate_scalar,
)
from repro.core.primitives import InnerScalar
from repro.errors import FlatteningError


class TestMapWithClosure:
    """Sec. 5.1: an unlifted UDF referring to an InnerScalar."""

    def test_each_tag_meets_its_own_closure_value(self, nested):
        init = nested.inner.count().map(lambda n: 1.0 / n)
        weighted = nested.inner.map_with_closure(
            init, lambda x, w: (x, w)
        )
        groups = weighted.collect_nested()
        assert all(w == pytest.approx(1 / 3) for _x, w in groups["fruit"])
        assert all(
            w == pytest.approx(1 / 2) for _x, w in groups["animal"]
        )

    def test_plain_constant_closure(self, nested):
        shifted = nested.inner.map_with_closure(
            5, lambda x, c: x + c
        )
        assert sorted(shifted.collect_nested()["fruit"]) == [6, 7, 8]

    def test_filter_with_closure(self, nested):
        threshold = nested.inner.sum().map(lambda s: s / 10)
        kept = nested.inner.filter_with_closure(
            threshold, lambda x, t: x > t
        )
        groups = kept.collect_nested()
        # fruit: threshold 0.6 keeps all; animal: threshold 3 keeps all.
        assert sorted(groups["fruit"]) == [1, 2, 3]
        assert sorted(groups["animal"]) == [10, 20]

    def test_cross_context_closure_rejected(self, ctx, nested):
        from repro.core.nestedbag import group_by_key_into_nested_bag

        other = group_by_key_into_nested_bag(ctx.bag_of([("z", 1)]))
        with pytest.raises(FlatteningError):
            nested.inner.map_with_closure(
                other.lctx.constant(1), lambda x, c: x
            )


class TestHalfLiftedMapWithClosure:
    """Sec. 5.2 / 8.3: the InnerScalar closure crossed with a plain bag."""

    def test_cross_product_semantics(self, ctx, lctx):
        points = ctx.bag_of([1, 2])
        offsets = lctx.scalars_from_pairs(
            [("fruit", 10), ("animal", 100)]
        )
        out = half_lifted_map_with_closure(
            points, offsets, lambda p, s: p + s
        )
        groups = out.collect_nested()
        assert sorted(groups["fruit"]) == [11, 12]
        assert sorted(groups["animal"]) == [101, 102]

    def test_forced_sides_agree(self, ctx, lctx):
        points = ctx.bag_of([1, 2, 3])
        offsets = lctx.constant(5)
        results = {
            side: Counter(
                half_lifted_map_with_closure(
                    points, offsets, lambda p, s: p * s, side=side
                ).repr.collect()
            )
            for side in ("scalar", "primary")
        }
        assert results["scalar"] == results["primary"]

    def test_rejects_plain_closure(self, ctx):
        with pytest.raises(FlatteningError):
            half_lifted_map_with_closure(
                ctx.bag_of([1]), 7, lambda p, s: p
            )

    def test_rejects_bad_side(self, ctx, lctx):
        with pytest.raises(FlatteningError):
            half_lifted_map_with_closure(
                ctx.bag_of([1]), lctx.constant(1), lambda p, s: p,
                side="both",
            )

    def test_half_lifted_filter(self, ctx, lctx):
        points = ctx.bag_of([1, 2, 3, 4])
        threshold = lctx.scalars_from_pairs(
            [("fruit", 2), ("animal", 3)]
        )
        kept = half_lifted_filter_with_closure(
            points, threshold, lambda p, t: p > t
        )
        groups = kept.collect_nested()
        assert sorted(groups["fruit"]) == [3, 4]
        assert sorted(groups["animal"]) == [4]


class TestHalfLiftedJoin:
    def test_join_with_plain_matches_replication(self, ctx, nested):
        """The half-lifted join (Sec. 5.2's three-liner) must produce the
        same result as naively replicating the outside bag per tag."""
        keyed = nested.inner.map(lambda x: (x % 2, x))
        plain = ctx.bag_of([(0, "even"), (1, "odd")])
        half_lifted = keyed.join_with_plain(plain)
        replicated = replicate_bag(plain, nested.lctx)
        naive = keyed.join(replicated)
        assert Counter(half_lifted.repr.collect()) == Counter(
            naive.repr.collect()
        )

    def test_join_with_plain_shape(self, nested, ctx):
        keyed = nested.inner.map(lambda x: (x % 2, x))
        plain = ctx.bag_of([(1, "odd")])
        got = keyed.join_with_plain(plain).collect_nested()
        assert sorted(got["fruit"]) == [
            (1, (1, "odd")), (1, (3, "odd")),
        ]


class TestReplication:
    def test_replicate_bag_copies_per_tag(self, ctx, lctx):
        replicated = replicate_bag(ctx.bag_of(["x", "y"]), lctx)
        nested_view = replicated.collect_nested()
        assert sorted(nested_view["fruit"]) == ["x", "y"]
        assert sorted(nested_view["animal"]) == ["x", "y"]

    def test_replicate_scalar(self, lctx):
        scalar = replicate_scalar(42, lctx)
        assert isinstance(scalar, InnerScalar)
        assert scalar.as_dict() == {"fruit": 42, "animal": 42}

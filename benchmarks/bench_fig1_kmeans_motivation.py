"""Fig. 1: K-means runtimes vs. the number of initial configurations.

Expected shape (paper Sec. 1): the ideal line is flat; Matryoshka hugs
it; inner-parallel grows with the configuration count (job-launch
overhead); outer-parallel starts orders of magnitude slow (parallelism
capped by the configuration count) and only approaches the ideal at many
configurations; the workarounds cross between 16 and 64.
"""

from repro.bench import figures

import os

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


def test_fig1_kmeans_motivation(figure_benchmark):
    sweep = figure_benchmark(figures.fig1_kmeans_motivation, SCALE)
    xs = sweep.x_values()
    assert sweep.speedup(
        figures.OUTER, figures.IDEAL, xs[0]
    ) > 30, "outer-parallel must be orders slower at one configuration"
    assert sweep.speedup(
        figures.INNER, figures.MATRYOSHKA, xs[-1]
    ) > 5, "inner-parallel must fall behind at many configurations"

"""The Bag: the engine's flat, distributed collection abstraction.

A ``Bag`` is the analog of a Spark RDD / Flink DataSet / Emma ``Bag``: an
immutable, partitioned, *unordered* collection with lazy, lineage-based
evaluation.  Transformations build plan nodes; actions (``collect``,
``count``, ``reduce`` ...) submit a job to the engine.

Keyed operators (``reduce_by_key``, ``join``, ``group_by_key`` ...) expect
elements to be ``(key, value)`` tuples, as in Spark's pair RDDs.
"""

from dataclasses import dataclass

from ..errors import PlanError
from . import plan as p


@dataclass(frozen=True)
class JoinHint:
    """Optimizer hints for ``Bag.join(strategy="auto")``.

    The paper suggests (Sec. 8.2) that instead of choosing join
    algorithms itself, Matryoshka could hand its extra knowledge --
    InnerScalar sizes known *before* they are computed, and the
    uniqueness of the tag key -- to the engine's optimizer as hints.
    This is that interface.

    Attributes:
        left_records / right_records: Known record counts of the inputs
            (at the records' own scale).
        unique_key: The join key is unique on the hinted side(s), so
            output cardinality is bounded by the larger input.
    """

    left_records: int = None
    right_records: int = None
    unique_key: bool = False


class Bag:
    """A lazy, partitioned collection bound to an
    :class:`~repro.engine.context.EngineContext`."""

    __slots__ = ("context", "node", "num_partitions")

    def __init__(self, context, node, num_partitions):
        self.context = context
        self.node = node
        self.num_partitions = num_partitions

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _derive(self, node, num_partitions=None):
        if num_partitions is None:
            num_partitions = self.num_partitions
        if node.children:
            node.meta = all(child.meta for child in node.children)
        return Bag(self.context, node, num_partitions)

    def _default_partitions(self, num_partitions):
        if num_partitions is not None:
            if num_partitions < 1:
                raise PlanError("num_partitions must be >= 1")
            return num_partitions
        return self.context.config.default_parallelism

    def _same_context(self, other):
        if other.context is not self.context:
            raise PlanError("cannot combine bags from different contexts")

    # ------------------------------------------------------------------
    # Narrow transformations
    # ------------------------------------------------------------------

    def map(self, fn, preserves_partitioning=False):
        """Apply ``fn`` to every element.

        ``preserves_partitioning=True`` asserts that ``fn`` never
        rewrites the key slot of keyed records, letting the optimizer
        keep the input's partitioning property when the automatic AST
        proof is inconclusive (see :mod:`repro.analysis.properties`).
        """
        return self._derive(p.Map(self.node, fn, preserves_partitioning))

    def filter(self, fn):
        """Keep the elements for which ``fn`` is truthy."""
        return self._derive(p.Filter(self.node, fn))

    def flat_map(self, fn, preserves_partitioning=False):
        """Apply ``fn`` (returning an iterable) and flatten the results.

        See :meth:`map` for ``preserves_partitioning``.
        """
        return self._derive(
            p.FlatMap(self.node, fn, preserves_partitioning)
        )

    def map_partitions(self, fn, preserves_partitioning=False):
        """Apply ``fn(items, partition_index)`` to each whole partition.

        See :meth:`map` for ``preserves_partitioning``.
        """
        return self._derive(
            p.MapPartitions(self.node, fn, preserves_partitioning)
        )

    def map_values(self, fn):
        """Apply ``fn`` to the value of each ``(key, value)`` pair."""
        return self.map(lambda kv: (kv[0], fn(kv[1])))

    def key_by(self, fn):
        """Turn each element ``x`` into ``(fn(x), x)``."""
        return self.map(lambda x: (fn(x), x))

    def keys(self):
        return self.map(lambda kv: kv[0])

    def values(self):
        return self.map(lambda kv: kv[1])

    def swap(self):
        """Swap keys and values."""
        return self.map(lambda kv: (kv[1], kv[0]))

    def zip_with_unique_id(self):
        """Pair every element with a unique integer: ``(element, id)``."""
        return self._derive(p.ZipWithUniqueId(self.node))

    def sample(self, fraction, seed=0):
        """A reproducible Bernoulli sample of the bag.

        Each element is kept independently with probability
        ``fraction``; the decision depends only on the element's
        identity and the seed, so repeated evaluations (lineage
        recomputation) sample consistently.
        """
        if not 0.0 <= fraction <= 1.0:
            raise PlanError("sample fraction must be in [0, 1]")
        if fraction == 1.0:
            return self
        from .partitioner import stable_hash

        threshold = int(fraction * (2 ** 32))

        def keep(item):
            return stable_hash((seed, item)) % (2 ** 32) < threshold

        return self.filter(keep)

    def coalesce(self, num_partitions):
        """Reduce the partition count without a shuffle (narrow)."""
        if num_partitions >= self.num_partitions:
            return self
        node = p.Coalesce(self.node, num_partitions)
        node.meta = self.node.meta
        return Bag(self.context, node, num_partitions)

    def union(self, *others):
        """Bag union (duplicates preserved)."""
        for other in others:
            self._same_context(other)
        inputs = p.flatten_union_inputs(
            [self.node] + [other.node for other in others]
        )
        total = self.num_partitions + sum(o.num_partitions for o in others)
        return self._derive(p.Union(inputs), num_partitions=total)

    # ------------------------------------------------------------------
    # Wide (shuffling) transformations
    # ------------------------------------------------------------------

    def reduce_by_key(self, fn, num_partitions=None):
        """Combine values sharing a key with the associative ``fn``."""
        n = self._default_partitions(num_partitions)
        return self._derive(p.ReduceByKey(self.node, fn, n), n)

    def group_by_key(self, num_partitions=None):
        """Shuffle into ``(key, [values])`` groups.

        Each group is materialized as one in-memory list, so a group larger
        than executor memory raises a simulated OOM -- by design: this is
        the nested collection the outer-parallel workaround has to build.
        """
        n = self._default_partitions(num_partitions)
        return self._derive(p.GroupByKey(self.node, n), n)

    def group_by(self, key_fn, num_partitions=None):
        """``group_by_key`` with a key extractor (paper Sec. 4.6 split)."""
        return self.key_by(key_fn).group_by_key(num_partitions)

    def aggregate_by_key(self, zero, seq_fn, comb_fn,
                         num_partitions=None):
        """Spark's ``aggregateByKey``: fold values into per-key
        accumulators of a different type.

        Args:
            zero: Initial accumulator (must be immutable or cheap to
                rebuild; it is used by value).
            seq_fn: ``(accumulator, value) -> accumulator``.
            comb_fn: ``(accumulator, accumulator) -> accumulator``.
        """
        marked = self.map_values(lambda v: ("v", v))

        def merge(a, b):
            a_acc = a[1] if a[0] == "a" else seq_fn(zero, a[1])
            if b[0] == "a":
                return ("a", comb_fn(a_acc, b[1]))
            return ("a", seq_fn(a_acc, b[1]))

        reduced = marked.reduce_by_key(merge, num_partitions)
        return reduced.map_values(
            lambda tagged: tagged[1] if tagged[0] == "a" else seq_fn(
                zero, tagged[1]
            )
        )

    def count_by_key(self, num_partitions=None):
        """Per-key record counts: ``Bag[(key, int)]``."""
        ones = self.map(lambda kv: (kv[0], 1))
        return ones.reduce_by_key(lambda a, b: a + b, num_partitions)

    def cogroup(self, other, num_partitions=None):
        """Shuffle both bags by key into ``(k, ([lvals], [rvals]))``."""
        self._same_context(other)
        n = self._default_partitions(num_partitions)
        return self._derive(p.CoGroup(self.node, other.node, n), n)

    def join(self, other, strategy="repartition", num_partitions=None,
             hints=None):
        """Equi-join two keyed bags into ``(k, (v, w))`` pairs.

        Args:
            strategy: ``"repartition"`` shuffles both sides;
                ``"broadcast"`` ships the *other* bag to every executor
                (fails with simulated OOM when it does not fit);
                ``"broadcast_left"`` ships *this* bag instead (the build
                side is the left input); ``"auto"`` lets the engine's
                optimizer decide from known sizes (driver-provided data)
                and :class:`JoinHint`s -- the smaller side below the
                config's broadcast threshold is broadcast, with
                unknown-size sides treated as large.
            hints: Optional :class:`JoinHint` for ``"auto"``.
        """
        self._same_context(other)
        if strategy == "auto":
            strategy = self._choose_join_strategy(other, hints)
        if strategy == "broadcast":
            return self._derive(p.BroadcastJoin(self.node, other.node))
        if strategy == "broadcast_left":
            # BroadcastJoin always builds its hash table from the right
            # child, so stream `other` against a broadcast of this bag
            # and swap the value pairs back into (left, right) order.
            flipped = other._derive(
                p.BroadcastJoin(other.node, self.node)
            )
            return flipped.map_values(_swap_pair)
        if strategy != "repartition":
            raise PlanError("unknown join strategy: %r" % (strategy,))
        cogrouped = self.cogroup(other, num_partitions)
        return cogrouped.flat_map(_join_pairs)

    def _choose_join_strategy(self, other, hints):
        """The engine optimizer's broadcast decision (Catalyst-style).

        Either side may be the build side: a hinted or statically known
        left input below the threshold is broadcast just like a right
        one, and when both fit the smaller wins (ties go right, the
        cheaper plan -- no pair swap).
        """
        left_bytes = self._estimated_build_bytes(
            hints.left_records if hints else None, self
        )
        right_bytes = self._estimated_build_bytes(
            hints.right_records if hints else None, other
        )
        threshold = self.context.config.auto_broadcast_threshold_bytes
        left_fits = left_bytes is not None and left_bytes <= threshold
        right_fits = right_bytes is not None and right_bytes <= threshold
        if right_fits and (not left_fits or right_bytes <= left_bytes):
            return "broadcast"
        if left_fits:
            return "broadcast_left"
        return "repartition"

    def _estimated_build_bytes(self, hinted_records, side):
        """Estimated size of one join side, or None when unknown."""
        records = hinted_records
        if records is None:
            records = _known_count(side.node)
        if records is None:
            return None
        rate = (
            self.context.config.result_record_bytes
            if side.is_meta
            else self.context.config.bytes_per_record
        )
        return records * rate

    def left_outer_join(self, other, num_partitions=None):
        """Join keeping left records without a match: ``(k, (v, None))``."""
        self._same_context(other)
        cogrouped = self.cogroup(other, num_partitions)
        return cogrouped.flat_map(_left_outer_pairs)

    def subtract_by_key(self, other, num_partitions=None):
        """Keep left pairs whose key does not occur in ``other``."""
        self._same_context(other)
        cogrouped = self.cogroup(other, num_partitions)
        return cogrouped.flat_map(_subtract_pairs)

    def distinct(self, num_partitions=None):
        """Remove duplicate elements."""
        marked = self.map(lambda x: (x, None))
        reduced = marked.reduce_by_key(lambda a, _b: a, num_partitions)
        return reduced.keys()

    def cross(self, other, broadcast_side="right"):
        """Cross product, broadcasting one side (paper Sec. 8.3)."""
        self._same_context(other)
        node = p.CrossBroadcast(self.node, other.node, broadcast_side)
        if broadcast_side == "right":
            n = self.num_partitions
        else:
            n = other.num_partitions
        return self._derive(node, n)

    # ------------------------------------------------------------------
    # Persistence / labeling
    # ------------------------------------------------------------------

    def cache(self):
        """Materialize this bag on first use and reuse it afterwards."""
        self.node.cached = True
        return self

    def uncache(self):
        """Release this bag's cached partitions and adoptable layouts.

        Beyond un-flagging the node, this drops the materialized
        partitions *and* every origin->layout registry entry the bag's
        subtree registered with the executor (see
        :meth:`repro.engine.executor.Executor.release_plan`) -- a
        long-lived context would otherwise retain both forever, and a
        later job could adopt a shuffle layout whose backing partitions
        no longer exist.  Subsequent jobs recompute (and re-register)
        from lineage as usual.
        """
        self.node.cached = False
        self.node.materialized = None
        self.context.executor.release_plan(self.node)
        return self

    def as_meta(self):
        """Mark this bag's records as meta-scale for cost accounting.

        Meta records (per-group scalars, tags, trained models) are
        summary-sized in the real system regardless of the input record
        scale; marking them prevents the simulation from charging them as
        if each stood for gigabytes of data.
        """
        self.node.meta = True
        return self

    @property
    def is_meta(self):
        return self.node.meta

    def with_label(self, label):
        """Attach a label shown by ``explain()`` and in job traces."""
        self.node.label = label
        return self

    def explain(self, compact=False, properties=False, effects=False,
                compile=False, schema=False):
        """Textual rendering of this bag's plan tree.

        Every node carries a stable ``#id`` and an inferred partition
        count; ``compact=True`` renders one line per node with child
        references instead of the indented tree.  The same ids appear
        in ``repro.analysis`` plan diagnostics.

        ``properties=True`` additionally annotates nodes with their
        inferred partitioning property (:mod:`repro.analysis
        .properties`): ``[hash(k0)]`` for a fresh shuffle layout,
        ``[hash(k0) via #N]`` for a layout inherited from the shuffle
        with id ``N`` (an elided or adoptable shuffle), and
        ``[drops hash(k0)]`` on the node that destroyed a provable
        layout.

        ``effects=True`` annotates every UDF-carrying node with its
        effect verdicts (:mod:`repro.analysis.effects`): three
        tokens for purity, determinism, and I/O -- e.g.
        ``[pure det io-free]`` when all proven, ``[pure? nondet io?]``
        with ``?`` marking unknown and the bare negative a refutation.

        ``compile=True`` annotates the top of every fused elementwise
        chain with ``compiled=yes(<fingerprint>)`` or
        ``compiled=no(<reason>)`` -- whether the chain would run as a
        generated specialized loop under
        ``ClusterConfig(compile_pipelines=True)``, and if not, why it
        falls back to the interpreter (see
        :mod:`repro.engine.codegen`).

        ``schema=True`` annotates every node with its inferred record
        schema (:mod:`repro.analysis.schema`): ``schema=(int, float)``
        for a proven fixed-arity tuple, ``schema=int`` for a proven
        scalar, ``schema=?`` where inference gave up.  Flags compose;
        a node's annotations always render in the fixed order
        properties, effects, compile, schema.
        """
        notes = None
        if properties:
            from ..analysis.properties import partitioning_notes

            notes = partitioning_notes(self.node)

        def _merge(extra):
            nonlocal notes
            if notes is None:
                notes = extra
                return
            for key, text in extra.items():
                notes[key] = (
                    "%s; %s" % (notes[key], text)
                    if notes.get(key) else text
                )

        if effects:
            from ..analysis.effects import effects_notes

            _merge(effects_notes(self.node))
        if compile:
            from .codegen import compile_notes

            _merge(compile_notes(self.node))
        if schema:
            from ..analysis.schema import schema_notes

            _merge(schema_notes(self.node))
        if compact:
            return p.explain_compact(self.node, notes=notes)
        ids = p.assign_node_ids(self.node)
        parts = p.partition_counts(self.node)
        return self.node.explain(ids=ids, parts=parts, notes=notes)

    # ------------------------------------------------------------------
    # Actions (each runs one job)
    # ------------------------------------------------------------------

    def collect(self, label="", lint=None):
        """Materialize all elements to the driver as a list.

        Args:
            label: Optional job label for traces.
            lint: Run the ``repro.analysis`` plan lint before
                submitting.  ``"warn"`` emits findings as warnings;
                ``"error"`` (or ``True``) additionally raises
                :class:`~repro.errors.AnalysisError` on error-severity
                findings; ``"strict"`` raises on any finding.  Default
                ``None`` skips the lint.
        """
        if lint:
            self._lint_plan(lint)
        return self.context.executor.collect(self.node, label)

    def _lint_plan(self, mode):
        import warnings

        from ..analysis import analyze_bag
        from ..analysis.diagnostics import ERROR
        from ..errors import AnalysisError

        if mode is True:
            mode = "error"
        if mode not in ("warn", "error", "strict"):
            raise PlanError(
                "lint must be 'warn', 'error', 'strict', or True; "
                "got %r" % (mode,)
            )
        diags = analyze_bag(self)
        if not diags:
            return
        fatal = (
            diags if mode == "strict"
            else [d for d in diags if d.severity == ERROR]
        )
        if mode != "strict":
            for diag in diags:
                if diag.severity != ERROR:
                    warnings.warn(str(diag), stacklevel=3)
        if fatal and mode != "warn":
            raise AnalysisError(fatal)
        if mode == "warn":
            for diag in fatal:
                warnings.warn(str(diag), stacklevel=3)

    def collect_as_map(self, label=""):
        """Collect a keyed bag into a ``dict`` (last write wins)."""
        return dict(self.collect(label))

    def count(self, label=""):
        """Number of elements."""
        return self.context.executor.count(self.node, label)

    def save(self, label=""):
        """Write to distributed storage (no driver round-trip).

        This is the paper's *output operation*; returns the record count
        written.
        """
        return self.context.executor.save(self.node, label)

    def is_empty(self, label=""):
        return self.count(label) == 0

    def reduce(self, fn, label=""):
        """Reduce all elements with ``fn`` (errors on an empty bag)."""
        return self.context.executor.reduce(self.node, fn, label)

    def fold(self, zero, fn, label=""):
        """Fold all elements starting from ``zero``."""
        return self.context.executor.fold(self.node, zero, fn, label)

    def sum(self, label=""):
        return self.fold(0, lambda acc, x: acc + x, label)

    def take(self, n, label=""):
        """Up to ``n`` elements.

        Truncates each partition to its first ``n`` records before
        collecting (as Spark's ``take`` scans a bounded prefix), so only
        ``n x partitions`` records ever reach the driver -- taking a few
        elements of a bag far larger than driver memory must not OOM.
        """
        if n <= 0:
            return []

        def head(items, _index):
            return items[:n]

        return self.map_partitions(head).collect(label)[:n]

    def top(self, n, key=None, label=""):
        """The ``n`` largest elements, descending.

        Computed with per-partition heaps followed by a driver merge
        (Spark's ``top``), so only ``n`` records per partition move.
        """
        import heapq

        def partials(items, _index):
            return heapq.nlargest(n, items, key=key)

        candidates = self.map_partitions(partials).collect(label)
        return heapq.nlargest(n, candidates, key=key)

    def min(self, key=None, label=""):
        return self.reduce(
            lambda a, b: a if (key or _identity)(a) <= (
                key or _identity
            )(b) else b,
            label,
        )

    def max(self, key=None, label=""):
        return self.reduce(
            lambda a, b: a if (key or _identity)(a) >= (
                key or _identity
            )(b) else b,
            label,
        )


def _identity(x):
    return x


def _known_count(node):
    """Record count of a plan node when statically known, else None.

    Driver-provided data has an exact count; size-preserving narrow
    chains propagate it.  Shared with the plan lint's broadcast-size
    prediction (:func:`repro.engine.plan.static_record_count`).
    """
    return p.static_record_count(node)


def _swap_pair(vw):
    return (vw[1], vw[0])


def _join_pairs(record):
    _key, (left_values, right_values) = record
    return [
        (_key, (v, w)) for v in left_values for w in right_values
    ]


def _left_outer_pairs(record):
    key, (left_values, right_values) = record
    if not right_values:
        return [(key, (v, None)) for v in left_values]
    return [(key, (v, w)) for v in left_values for w in right_values]


def _subtract_pairs(record):
    key, (left_values, right_values) = record
    if right_values:
        return []
    return [(key, v) for v in left_values]

"""NestedBag, groupByKeyIntoNestedBag, and nested_map (Sec. 4.5)."""

import pytest

from repro.core.nestedbag import (
    NestedBag,
    group_by_key_into_nested_bag,
    nested_map,
)
from repro.core.primitives import InnerBag, InnerScalar
from repro.errors import FlatteningError


class TestGroupByKeyIntoNestedBag:
    def test_no_shuffle_happens(self, ctx):
        """The whole point of flattening: the nested bag's inner
        representation *is* the input bag -- no groups materialize."""
        bag = ctx.bag_of([("a", 1), ("b", 2)])
        nested = group_by_key_into_nested_bag(bag)
        assert nested.inner.repr.node is bag.node

    def test_keys_are_the_tags(self, nested):
        assert nested.keys.as_dict() == {
            "fruit": "fruit", "animal": "animal",
        }

    def test_num_groups(self, nested):
        assert nested.num_groups == 2
        assert nested.count() == 2

    def test_collect_nested(self, nested):
        groups = nested.collect_nested()
        assert sorted(groups["fruit"]) == [1, 2, 3]
        assert sorted(groups["animal"]) == [10, 20]

    def test_flatten_roundtrip(self, ctx):
        records = [("a", 1), ("b", 2), ("a", 3)]
        nested = group_by_key_into_nested_bag(ctx.bag_of(records))
        assert sorted(nested.flatten().collect()) == sorted(records)

    def test_component_contexts_must_match(self, nested, ctx):
        other = group_by_key_into_nested_bag(ctx.bag_of([("x", 1)]))
        with pytest.raises(FlatteningError):
            NestedBag(nested.keys, other.inner)


class TestMapGroups:
    def test_udf_called_exactly_once(self, nested):
        """mapWithLiftedUDF calls its UDF once, not once per group."""
        calls = []

        def udf(keys, inner):
            calls.append(1)
            return inner.count()

        nested.map_groups(udf)
        assert calls == [1]

    def test_scalar_result(self, nested):
        sums = nested.map_groups(
            lambda _keys, inner: inner.sum()
        )
        assert sums.as_dict() == {"fruit": 6, "animal": 30}

    def test_bag_result(self, nested):
        doubled = nested.map_inner(lambda inner: inner.map(
            lambda x: x * 2
        ))
        assert isinstance(doubled, InnerBag)

    def test_tuple_result(self, nested):
        count, total = nested.map_groups(
            lambda _keys, inner: (inner.count(), inner.sum())
        )
        assert count.as_dict() == {"fruit": 3, "animal": 2}
        assert total.as_dict() == {"fruit": 6, "animal": 30}

    def test_udf_can_use_the_keys(self, nested):
        labelled = nested.map_groups(
            lambda keys, inner: keys.binary(
                inner.count(), lambda k, n: "%s=%d" % (k, n)
            )
        )
        assert labelled.as_dict() == {
            "fruit": "fruit=3", "animal": "animal=2",
        }


class TestFilterGroups:
    def test_keeps_matching_groups_only(self, nested):
        kept = nested.filter_groups(lambda key: key == "fruit")
        assert kept.num_groups == 1
        assert sorted(kept.collect_nested()["fruit"]) == [1, 2, 3]


class TestNestedMap:
    def test_assigns_unique_tags(self, ctx):
        result = nested_map(
            ctx.bag_of([10, 20, 30]), lambda x: x * 2
        )
        assert sorted(result.collect_values()) == [20, 40, 60]

    def test_udf_runs_once(self, ctx):
        calls = []

        def udf(x):
            calls.append(1)
            return x

        nested_map(ctx.bag_of([1, 2, 3]), udf)
        assert calls == [1]

    def test_duplicate_elements_get_distinct_tags(self, ctx):
        result = nested_map(ctx.bag_of([5, 5, 5]), lambda x: x + 1)
        assert result.collect_values() == [6, 6, 6]

    def test_single_element(self, ctx):
        result = nested_map(ctx.bag_of([9]), lambda x: x)
        assert result.collect_values() == [9]


class TestTagCountJob:
    def test_nested_bag_creation_is_constant_jobs(self, ctx):
        """Job count for building a NestedBag does not depend on the
        number of groups (the paper's core scaling property)."""
        jobs = []
        for groups in (2, 16):
            ctx.reset_trace()
            bag = ctx.bag_of([(g, 1) for g in range(groups)])
            group_by_key_into_nested_bag(bag)
            jobs.append(ctx.trace.num_jobs)
        assert jobs[0] == jobs[1]

"""Stage-graph scheduling: evaluation units and the two run loops.

The executor evaluates a plan as a sequence of **evaluation units** --
one fused elementwise chain or one non-fusable node each.  This module
derives the units (:func:`plan_units`), their dependency graph, and
their dispatch-ordinal reservations *before anything runs*, then
executes them under one of two schedules:

* :func:`run_serial` -- one unit at a time, in plan order, on the
  calling thread.  This is exactly the schedule the old linear
  ``_eval`` walk produced, stage for stage.
* :func:`run_dag` -- a ready-set loop: every unit whose inputs are
  complete is dispatched onto the task scheduler's bounded thread pool
  immediately, so independent plan branches (and their shuffle writes
  and downstream reads) overlap on the shared worker pool.

**Ready-set rule**: a unit is *ready* when every distinct plan node it
consumes has a completed result.  Ready units are submitted the moment
the completion that unblocked them is processed; at most
``TaskScheduler.dispatch_slots`` run concurrently (the in-flight
bound), and further ready units queue in submission order.

**Determinism contract**: both schedules produce bit-identical
results, trace signatures, and shuffle accounting.  Three mechanisms
enforce it:

* *Planner-fixed dispatch ordinals.*  Every unit reserves its maximum
  dispatch count at planning time (in plan order), and stage
  evaluation consumes explicit ordinals from that reservation -- so
  fault-injection addressing (``kill_task(stage=...)``) and task-set
  identity are properties of the plan, not of runtime dispatch order.
* *Per-unit job slices.*  Units record freshly opened stages into a
  private :class:`JobSlice`; slices are merged into the job in *plan
  order* as units complete, and stage ids are renumbered consecutively
  at merge time.  The assembled trace is therefore independent of
  completion order.  (Mutations of *shared* stages -- a child stage
  credited by several consumers -- commute because every credited
  quantity is a sum; see :mod:`repro.engine.metrics`.)
* *Pure unit bodies.*  A unit's outputs depend only on its inputs'
  partitions, so overlapping execution cannot change any value.

Error handling: when a unit fails under the DAG schedule, no further
units are submitted, in-flight units are drained, every slice produced
so far is still merged (partial stages stay inspectable in the trace),
and the failure of the earliest unit in plan order is re-raised --
matching the serial schedule whenever the units that failed there had
been submitted here.
"""

import queue

from . import plan as p

__all__ = [
    "EvalUnit",
    "JobSlice",
    "OrdinalCursor",
    "plan_units",
    "run_serial",
    "run_dag",
    "snapshot_plan_state",
]

#: Provisional stage-id stride per unit under the DAG schedule: wide
#: enough that no unit's slice can collide with another's before merge
#: renumbers them (a single unit opens at most three stages).
_STAGE_ID_STRIDE = 8


class EvalUnit:
    """One schedulable step of plan evaluation.

    Attributes:
        index: Position in plan (= serial execution) order.
        node: The plan node the unit produces a result for (for fused
            chains, the top of the chain).
        chain: The fused elementwise chain bottom-up, or ``None``.
        cached: True when the node was already materialized at planning
            time (the unit just re-registers the cached partitions).
        deps: ``id()`` keys of the distinct plan nodes whose results
            this unit consumes.
        ordinal_offset: First dispatch ordinal reserved for this unit,
            relative to the job's reservation base.
        ordinal_budget: Dispatch ordinals reserved (the unit's maximum
            possible task-set count; an elided shuffle may use fewer,
            leaving a deterministic gap).
    """

    __slots__ = ("index", "node", "chain", "cached", "deps",
                 "ordinal_offset", "ordinal_budget")

    def __init__(self, index, node, chain, cached, deps):
        self.index = index
        self.node = node
        self.chain = chain
        self.cached = cached
        self.deps = deps
        self.ordinal_offset = 0
        self.ordinal_budget = 0

    @property
    def key(self):
        """Identity of the result this unit produces."""
        return id(self.node)

    @property
    def label(self):
        name = self.node.name
        if self.node.label:
            name += "[%s]" % self.node.label
        return name


# ----------------------------------------------------------------------
# Plan walk helpers (shared by the planner and nothing else: the
# executor consumes units, never raw nodes)
# ----------------------------------------------------------------------


def snapshot_plan_state(root):
    """One consistent read of every node's mutable planning inputs.

    ``cached`` and ``materialized`` are the only plan-node attributes
    that change after construction: ``Bag.cache()``, the auto-cache
    optimizer pass, and a concurrently gathered job materializing a
    shared cached subtree all flip them while other jobs may be
    planning over the same nodes.  The planning walk consults both
    attributes several times per node (refcounts, fusion, the unit
    emit), so reading them live would let one walk observe *different*
    values for the same node -- making the unit graph, the stage
    layout, and with them the plan's stable node ids depend on thread
    interleaving.  Snapshotting once up front pins one consistent view
    for the whole walk; whether a concurrent flip lands before or
    after the snapshot, the resulting unit graph is one of the two
    valid serial outcomes, never a hybrid.

    Returns ``{id(node): (cached, materialized)}``.
    """
    return {
        id(node): (node.cached, node.materialized)
        for node in p.iter_nodes(root)
    }


def compute_refcounts(root, state):
    """Number of evaluated parents per node (by id).

    Only edges that evaluation will actually traverse count: children
    below an already-materialized node are never evaluated.  ``state``
    is the :func:`snapshot_plan_state` of the walk.
    """
    counts = {}
    seen = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if state[id(node)][1] is not None:
            continue
        for child in node.children:
            counts[id(child)] = counts.get(id(child), 0) + 1
            stack.append(child)
    return counts


def dep_order(node):
    """Children in the order their side effects must occur.

    Broadcast operators evaluate (and size-check) the build side
    before the stream side, mirroring a real driver's submission
    order.
    """
    if isinstance(node, p.BroadcastJoin):
        return (node.right, node.left)
    if isinstance(node, p.CrossBroadcast):
        if node.broadcast_side == "right":
            return (node.right, node.left)
        return (node.left, node.right)
    return tuple(node.children)


def fused_chain(node, refcounts, state):
    """The maximal fusable elementwise chain ending at ``node``.

    Returns the chain bottom-up (``chain[0]`` closest to the data)
    or ``None`` when ``node`` is not elementwise.  Fusion never
    crosses a node that is cached, already materialized, or shared
    by another parent (those must produce a memoized result of
    their own).  ``cached`` / ``materialized`` come from the walk's
    :func:`snapshot_plan_state`, never from the live node.
    """
    if not node.fusable:
        return None
    chain = [node]
    child = node.child
    while True:
        cached, materialized = state[id(child)]
        if not (
            child.fusable
            and not cached
            and materialized is None
            and refcounts.get(id(child), 0) == 1
        ):
            break
        chain.append(child)
        child = child.child
    chain.reverse()
    return chain


def _dispatch_budget(unit):
    """Maximum task sets this unit can dispatch through the scheduler.

    Must cover every evaluation path: ``ReduceByKey`` dispatches twice
    (map-side combine + reduce) unless its shuffle is elided, so it
    reserves two either way -- runtime elision then leaves an unused
    ordinal rather than shifting every later stage's address.
    """
    if unit.cached or unit.chain is None and isinstance(
        unit.node,
        (p.Parallelize, p.ZipWithUniqueId, p.Union, p.Coalesce),
    ):
        return 0
    if unit.chain is not None:
        return 1
    if isinstance(unit.node, p.ReduceByKey):
        return 2
    return 1


def plan_units(root):
    """Linearize ``root``'s lineage into units, in plan order.

    This walk is the exact simulation of the serial evaluation stack
    (children before parents, broadcast build sides before stream
    sides, fused chains collapsed into their top node), so
    ``units[i]`` is precisely the ``i``-th step the serial schedule
    runs.  Dispatch ordinals are reserved cumulatively over that
    order.
    """
    state = snapshot_plan_state(root)
    refcounts = compute_refcounts(root, state)
    units = []
    done = set()
    stack = [root]
    while stack:
        node = stack[-1]
        key = id(node)
        if key in done:
            stack.pop()
            continue
        if state[key][1] is not None:
            units.append(
                EvalUnit(len(units), node, None, True, ())
            )
            done.add(key)
            stack.pop()
            continue
        chain = fused_chain(node, refcounts, state)
        if chain is not None:
            deps = (chain[0].child,)
        else:
            deps = dep_order(node)
        pending = [dep for dep in deps if id(dep) not in done]
        if pending:
            stack.extend(reversed(pending))
            continue
        stack.pop()
        dep_keys = []
        for dep in deps:
            if id(dep) not in dep_keys:
                dep_keys.append(id(dep))
        units.append(
            EvalUnit(len(units), node, chain, False, tuple(dep_keys))
        )
        done.add(key)
    offset = 0
    for unit in units:
        unit.ordinal_offset = offset
        unit.ordinal_budget = _dispatch_budget(unit)
        offset += unit.ordinal_budget
    return units


def total_ordinal_budget(units):
    """Dispatch ordinals one job's units reserve in total."""
    return sum(unit.ordinal_budget for unit in units)


class OrdinalCursor:
    """Hands a unit its reserved dispatch ordinals, in order."""

    __slots__ = ("_next",)

    def __init__(self, base):
        self._next = base

    def take(self):
        value = self._next
        self._next += 1
        return value


class JobSlice:
    """One unit's private view of the job it contributes stages to.

    Exposes the subset of :class:`~repro.engine.metrics.JobMetrics`
    that unit evaluation touches -- ``new_stage`` and the broadcast
    counters -- but records everything locally.  ``merge_into``
    transfers the slice onto the real job; calling it for completed
    units in plan order makes the assembled stage list (and the
    consecutive stage-id renumbering) independent of unit completion
    order.
    """

    __slots__ = ("start_id", "stages", "broadcast_records",
                 "broadcast_meta_records")

    def __init__(self, start_id):
        self.start_id = start_id
        self.stages = []
        self.broadcast_records = 0
        self.broadcast_meta_records = 0

    def new_stage(self, kind, meta=False, origin=""):
        from .metrics import StageMetrics

        stage = StageMetrics(
            stage_id=self.start_id + len(self.stages), kind=kind,
            meta=meta, origin=origin,
        )
        self.stages.append(stage)
        return stage

    def merge_into(self, job):
        """Append this slice's stages (renumbered) and counter deltas."""
        for stage in self.stages:
            stage.stage_id = len(job.stages)
            job.stages.append(stage)
        job.broadcast_records += self.broadcast_records
        job.broadcast_meta_records += self.broadcast_meta_records


# ----------------------------------------------------------------------
# The two schedules
# ----------------------------------------------------------------------


def run_serial(executor, units, job, elisions, ordinal_base):
    """Run units one at a time in plan order, on the calling thread.

    Byte-compatible with the pre-DAG linear walk: each unit's slice
    starts at the job's current stage count, so provisional stage ids
    (and with them the traced span names) equal the final ids.  A
    failing unit still merges its partial slice before the error
    propagates, leaving the trace inspectable.
    """
    results = {}
    result = None
    for unit in units:
        job_slice = JobSlice(len(job.stages))
        ordinals = OrdinalCursor(ordinal_base + unit.ordinal_offset)
        try:
            result = executor.run_unit(
                unit, job_slice, results, elisions, ordinals
            )
        finally:
            job_slice.merge_into(job)
        results[unit.key] = result
    return result


def run_dag(executor, units, job, elisions, ordinal_base):
    """Run units with ready-set dispatch over the scheduler's pool.

    The calling thread is the coordinator: it submits ready units,
    consumes completions from a queue (fed by future callbacks),
    publishes each result before submitting the dependents it
    unblocked (the happens-before edge that lets unit bodies read
    ``results`` without locking), and finally assembles the slices in
    plan order.
    """
    scheduler = executor.scheduler
    results = {}
    slices = {}
    errors = {}
    key_owner = {unit.key: unit for unit in units}
    dependents = {}
    blockers = {}
    for unit in units:
        blockers[unit.index] = len(unit.deps)
        for dep_key in unit.deps:
            dependents.setdefault(dep_key, []).append(unit)

    completions = queue.Queue()
    in_flight = 0

    def submit(unit):
        job_slice = JobSlice(unit.index * _STAGE_ID_STRIDE)
        slices[unit.index] = job_slice
        ordinals = OrdinalCursor(ordinal_base + unit.ordinal_offset)
        future = scheduler.submit(
            executor.run_unit, unit, job_slice, results, elisions,
            ordinals,
        )
        future.add_done_callback(
            lambda f, u=unit: completions.put((u, f))
        )

    for unit in units:
        if blockers[unit.index] == 0:
            submit(unit)
            in_flight += 1

    while in_flight:
        unit, future = completions.get()
        in_flight -= 1
        error = future.exception()
        if error is not None:
            errors[unit.index] = error
            continue
        results[unit.key] = future.result()
        if errors:
            # Drain only: something already failed, so completions are
            # recorded (their slices merge below) but unblock nothing.
            continue
        for dependent in dependents.get(unit.key, ()):
            blockers[dependent.index] -= 1
            if blockers[dependent.index] == 0:
                submit(dependent)
                in_flight += 1

    for unit in units:
        job_slice = slices.get(unit.index)
        if job_slice is not None:
            job_slice.merge_into(job)
    if errors:
        raise errors[min(errors)]
    return results[key_owner[units[-1].key].key] if units else None

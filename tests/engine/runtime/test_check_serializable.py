"""check_serializable: the shared closure-probing primitive."""

import threading

import pytest

from repro.engine.runtime import check_serializable
from repro.engine.runtime.serde import ensure_serializable
from repro.errors import SerializationError


def _closure_over(value):
    def fn(x):
        return (value, x)

    return fn


def test_clean_closure_returns_empty():
    assert check_serializable(_closure_over(41)) == []


def test_plain_lambda_is_clean():
    assert check_serializable(lambda x: x + 1) == []


def test_unpicklable_capture_names_the_variable():
    problems = check_serializable(_closure_over(threading.Lock()))
    assert len(problems) == 1
    assert "captured variable 'value'" in problems[0]
    assert "lock" in problems[0]


def test_multiple_bad_captures_all_reported():
    lock = threading.Lock()
    event = threading.Event()

    def fn(x):
        return (lock, event, x)

    problems = check_serializable(fn)
    text = "\n".join(problems)
    assert "'lock'" in text
    assert "'event'" in text


def test_unpicklable_default_argument():
    def fn(x, out=threading.Lock()):
        return (x, out)

    problems = check_serializable(fn)
    assert any("default argument 0" in p for p in problems)


def test_ensure_serializable_message_includes_details():
    fn = _closure_over(threading.Lock())
    with pytest.raises(SerializationError) as err:
        ensure_serializable(fn, "map")
    assert "captured variable 'value'" in str(err.value)
    assert "'map'" in str(err.value)

"""The engine baseline matrix: the service-mode cold/warm cells.

The ``serve-pagerank-*`` pair runs repeated PageRank jobs through one
long-lived :class:`repro.serve.JobService`; the only difference between
the rows is the artifact budget, so warm must beat cold by exactly the
cost the cache removes -- and the committed ``BENCH_engine.json``
snapshot must show the same advantage, since ``--check-regressions``
gates it.
"""

import json
from pathlib import Path

from repro.bench.baseline import (
    _GROUP_COUNTS,
    _SCHEDULERS,
    _serve_pagerank_cell,
    BASELINE_FILENAME,
    CELLS,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestServeCells:
    def test_matrix_includes_service_mode(self):
        assert "serve-pagerank-cold" in CELLS
        assert "serve-pagerank-warm" in CELLS

    def test_warm_cache_beats_cold(self):
        cold = _serve_pagerank_cell("serve-pagerank-cold", 4)
        warm = _serve_pagerank_cell("serve-pagerank-warm", 4)
        assert cold.status == "ok"
        assert warm.status == "ok"
        assert warm.seconds < cold.seconds
        # The warm repeats read the cached graph artifacts instead of
        # re-parsing and re-shuffling the edge list every time.
        assert (
            warm.entry["totals"]["shuffle_records"]
            < cold.entry["totals"]["shuffle_records"]
        )
        assert (
            warm.entry["totals"]["records"]
            < cold.entry["totals"]["records"]
        )

    def test_warm_cell_is_deterministic(self):
        a = _serve_pagerank_cell("serve-pagerank-warm", 4)
        b = _serve_pagerank_cell("serve-pagerank-warm", 4)
        assert a.seconds == b.seconds

    def test_committed_snapshot_has_warm_advantage(self):
        data = json.loads((REPO_ROOT / BASELINE_FILENAME).read_text())
        rows = {
            (entry["system"], entry["x"]): entry["simulated_seconds"]
            for entry in data["entries"]
        }
        for groups in _GROUP_COUNTS:
            for scheduler in _SCHEDULERS:
                suffix = "" if scheduler == "serial" else "+dag"
                cold = rows["serve-pagerank-cold" + suffix, groups]
                warm = rows["serve-pagerank-warm" + suffix, groups]
                assert warm < cold

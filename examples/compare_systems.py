"""Compare Matryoshka against the workarounds on one workload.

A miniature of the paper's Fig. 1 experiment you can dial: run per-day
Bounce Rate under every execution strategy on the simulated 25-machine
cluster and print the measured table, the job counts (the structural
story), and the optimizer's decisions.

Run:  python examples/compare_systems.py [num_days]
"""

import sys

import repro
from repro.baselines.inner_parallel import group_locally
from repro.bench.harness import Sweep, run_measured
from repro.data import visits_log
from repro.tasks import bounce_rate as br

TOTAL_VISITS = 2048
TOTAL_GB = 48.0

def cluster():
    return repro.paper_cluster_config(
        bytes_per_record=TOTAL_GB * (1024 ** 3) / TOTAL_VISITS,
        memory_overhead_factor=8.0,
    )

def main():
    day_counts = [int(arg) for arg in sys.argv[1:]] or [4, 32, 256]
    sweep = Sweep(
        title="Bounce Rate, %.0f GB analog input" % TOTAL_GB,
        x_label="days",
        systems=["matryoshka", "inner-parallel", "outer-parallel",
                 "diql"],
    )
    jobs = {}
    for days in day_counts:
        records = visits_log(days, TOTAL_VISITS, seed=99)
        groups = group_locally(records)
        runs = {
            "matryoshka": lambda ctx: br.bounce_rate_nested(
                ctx.bag_of(records)
            ).save(),
            "inner-parallel": lambda ctx: br.bounce_rate_inner(
                ctx, groups
            ),
            "outer-parallel": lambda ctx: br.bounce_rate_outer(
                ctx.bag_of(records)
            ).save(),
            "diql": lambda ctx: br.bounce_rate_diql(
                ctx.bag_of(records)
            ).save(),
        }
        for system, fn in runs.items():
            result = run_measured(cluster(), system, days, fn)
            sweep.add(result)
            jobs[(system, days)] = result.jobs

    sweep.print_table()
    print()
    print("Jobs launched (the structural story):")
    for days in day_counts:
        print(
            "  %4d days: matryoshka=%d  inner-parallel=%d"
            % (
                days,
                jobs[("matryoshka", days)],
                jobs[("inner-parallel", days)],
            )
        )
    print()
    print(
        "Matryoshka's job count is constant; inner-parallel's grows "
        "linearly\nwith the day count -- multiply by the iteration "
        "count for iterative tasks\nand the whole Fig. 3 follows."
    )
    print()
    print("CSV (for plotting):")
    print(sweep.to_csv())

if __name__ == "__main__":
    main()

"""Sampling, trace description, measurement scopes, CSV export."""

import pytest

from repro.bench.harness import RunResult, Sweep
from repro.errors import PlanError


class TestSample:
    def test_fraction_bounds(self, ctx):
        with pytest.raises(PlanError):
            ctx.bag_of([1]).sample(1.5)
        with pytest.raises(PlanError):
            ctx.bag_of([1]).sample(-0.1)

    def test_full_fraction_is_identity(self, ctx):
        bag = ctx.bag_of(range(10))
        assert sorted(bag.sample(1.0).collect()) == list(range(10))

    def test_zero_fraction_is_empty(self, ctx):
        assert ctx.bag_of(range(100)).sample(0.0).collect() == []

    def test_roughly_proportional(self, ctx):
        kept = ctx.bag_of(range(2000)).sample(0.3, seed=1).count()
        assert 450 < kept < 750

    def test_deterministic_per_seed(self, ctx):
        bag = ctx.bag_of(range(100))
        first = sorted(bag.sample(0.5, seed=7).collect())
        second = sorted(bag.sample(0.5, seed=7).collect())
        assert first == second

    def test_different_seeds_differ(self, ctx):
        bag = ctx.bag_of(range(200))
        assert sorted(bag.sample(0.5, seed=1).collect()) != sorted(
            bag.sample(0.5, seed=2).collect()
        )

    def test_sample_is_subset(self, ctx):
        data = list(range(50))
        kept = ctx.bag_of(data).sample(0.4, seed=3).collect()
        assert set(kept) <= set(data)


class TestLiftedSample:
    def test_uniform_fraction(self, ctx):
        from repro.core import group_by_key_into_nested_bag

        records = [("g%d" % (i % 2), i) for i in range(400)]
        nested = group_by_key_into_nested_bag(ctx.bag_of(records))
        counts = nested.inner.sample(0.25, seed=5).count().as_dict()
        for count in counts.values():
            assert 25 < count < 75

    def test_per_tag_fractions(self, ctx):
        """Sec. 2.3: different inner computations draw different sample
        sizes inside one flat program."""
        from repro.core import group_by_key_into_nested_bag

        records = [("g%d" % (i % 2), i) for i in range(400)]
        nested = group_by_key_into_nested_bag(ctx.bag_of(records))
        fractions = nested.lctx.scalars_from_pairs(
            [("g0", 0.05), ("g1", 0.8)]
        )
        counts = nested.inner.sample_with_closure(
            fractions, seed=5
        ).count().as_dict()
        assert counts["g0"] < counts["g1"]
        assert counts["g0"] < 40
        assert counts["g1"] > 120


class TestTraceDescribe:
    def test_describe_lists_jobs_and_stages(self, ctx):
        bag = ctx.bag_of([("a", 1), ("b", 2)]).with_label("visits")
        bag.reduce_by_key(lambda a, b: a + b).collect()
        text = ctx.trace.describe()
        assert "job 0: collect" in text
        assert "stage 0 (input)" in text
        assert "shuffle=" in text
        assert "Parallelize[visits]" in text

    def test_max_jobs_limits_output(self, ctx):
        for _ in range(3):
            ctx.bag_of([1]).count()
        text = ctx.trace.describe(max_jobs=1)
        assert "job 2" in text
        assert "job 0" not in text


class TestMeasure:
    def test_measures_only_the_block(self, ctx):
        ctx.bag_of([1]).count()  # outside the window
        with ctx.measure() as inner:
            ctx.bag_of([1]).count()
            ctx.bag_of([1]).count()
        two_jobs = 2 * ctx.config.job_launch_overhead_s
        assert inner.seconds >= two_jobs
        assert inner.seconds < ctx.simulated_seconds()

    def test_empty_block_costs_nothing(self, ctx):
        with ctx.measure() as inner:
            pass
        assert inner.seconds == 0.0

    def test_trace_preserved(self, ctx):
        ctx.bag_of([1]).count()
        with ctx.measure():
            ctx.bag_of([1]).count()
        assert ctx.trace.num_jobs == 2


class TestSweepCsv:
    def test_csv_round_trip(self):
        sweep = Sweep(title="T", x_label="x", systems=["a", "b"])
        sweep.add(RunResult(system="a", x=1, seconds=2.5))
        sweep.add(RunResult(system="b", x=1, status="oom"))
        sweep.add(RunResult(system="a", x=2, seconds=4.0))
        lines = sweep.to_csv().strip().splitlines()
        assert lines[0] == "x,a,b"
        assert lines[1] == "1,2.500,OOM"
        assert lines[2] == "2,4.000,"

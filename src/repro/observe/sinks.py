"""Trace sinks: where emitted events go.

Three implementations of the one-method contract
(``emit(event)``, plus ``close()``):

* :class:`MemorySink` -- a bounded ring buffer; the default for
  ``REPRO_TRACE=1`` and for programmatic inspection in tests.
* :class:`JsonlSink` -- one JSON object per line, append-mode, so
  several contexts (e.g. every run of a benchmark sweep) can share one
  timeline file.  :func:`read_events` loads it back.
* :class:`NullSink` -- drops everything; exists so the full tracing
  code path can be exercised (and its overhead measured) without
  retaining or writing anything.

Sinks never see engine objects, only :class:`~repro.observe.events.
TraceEvent`; the :class:`~repro.observe.tracer.Tracer` serializes access,
so sinks themselves need no locking.
"""

import collections
import json

from .events import TraceEvent

#: Default ring-buffer capacity: enough for a full quick-scale figure
#: sweep (tens of thousands of task spans) without unbounded growth.
DEFAULT_CAPACITY = 100_000


class NullSink:
    """Discard every event (the tracing analog of ``/dev/null``)."""

    def emit(self, event):
        pass

    def close(self):
        pass


class MemorySink:
    """Keep the last ``capacity`` events in memory.

    Args:
        capacity: Ring size; ``None`` keeps everything (use only for
            short runs).
    """

    def __init__(self, capacity=DEFAULT_CAPACITY):
        self._buffer = collections.deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, event):
        if (
            self._buffer.maxlen is not None
            and len(self._buffer) == self._buffer.maxlen
        ):
            self.dropped += 1
        self._buffer.append(event)

    def events(self):
        """The retained events, oldest first."""
        return list(self._buffer)

    def clear(self):
        self._buffer.clear()
        self.dropped = 0

    def __len__(self):
        return len(self._buffer)

    def close(self):
        pass


class JsonlSink:
    """Append events to a JSON-lines file, one event per line.

    Args:
        path: Target file; parent directory must exist.
        append: Open in append mode (default) so sequential contexts
            extend one shared timeline; pass ``False`` to truncate.
    """

    def __init__(self, path, append=True):
        self.path = path
        self._file = open(path, "a" if append else "w")
        self.emitted = 0

    def emit(self, event):
        json.dump(event.to_dict(), self._file, separators=(",", ":"))
        self._file.write("\n")
        self.emitted += 1

    def flush(self):
        if not self._file.closed:
            self._file.flush()

    def close(self):
        if not self._file.closed:
            self._file.close()


def read_events(path):
    """Load a JSON-lines trace back into :class:`TraceEvent` objects.

    Blank lines are skipped, so concatenated or hand-edited files load
    fine.
    """
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            events.append(TraceEvent.from_dict(json.loads(line)))
    return events

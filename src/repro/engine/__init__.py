"""A flat-parallel dataflow engine (the Spark-analog substrate).

Public surface:

* :class:`~repro.engine.context.EngineContext` -- create bags, run jobs,
  read simulated runtimes.
* :class:`~repro.engine.bag.Bag` -- the distributed collection.
* :class:`~repro.engine.config.ClusterConfig` and the preset factories.
* :class:`~repro.engine.work.Weighted` -- report UDF-internal work.
* The task runtime (:mod:`repro.engine.runtime`): pluggable serial /
  process-pool execution backends behind the simulated clock.
"""

from .bag import Bag, JoinHint
from .broadcast import Broadcast
from .columnar import ColumnarPartition
from .config import (
    GB,
    MB,
    ClusterConfig,
    laptop_config,
    large_cluster_config,
    paper_cluster_config,
)
from .context import EngineContext
from .costmodel import CostBreakdown, CostModel
from .metrics import ExecutionTrace, JobMetrics, StageMetrics
from .partitioner import HashPartitioner, stable_hash
from .runtime import (
    FaultInjector,
    ProcessPoolBackend,
    SerialBackend,
    TaskScheduler,
)
from .sizing import estimate_record_size, estimate_size
from .validate import (
    BackendParityError,
    TraceInvariantError,
    assert_backend_parity,
    trace_signature,
    validate_job,
    validate_trace,
)
from .work import Weighted

__all__ = [
    "BackendParityError",
    "Bag",
    "Broadcast",
    "ClusterConfig",
    "ColumnarPartition",
    "CostBreakdown",
    "CostModel",
    "EngineContext",
    "ExecutionTrace",
    "FaultInjector",
    "GB",
    "HashPartitioner",
    "JobMetrics",
    "JoinHint",
    "MB",
    "ProcessPoolBackend",
    "SerialBackend",
    "StageMetrics",
    "TaskScheduler",
    "TraceInvariantError",
    "Weighted",
    "assert_backend_parity",
    "estimate_record_size",
    "estimate_size",
    "laptop_config",
    "large_cluster_config",
    "paper_cluster_config",
    "stable_hash",
    "trace_signature",
    "validate_job",
    "validate_trace",
]

"""Synthetic data generation for tasks and benchmarks."""

from .generators import (
    clustered_points,
    component_graph,
    grouped_edges,
    grouped_points,
    initial_centroids,
    visits_log,
)
from .zipf import sample_zipf_keys, zipf_sizes, zipf_weights

__all__ = [
    "clustered_points",
    "component_graph",
    "grouped_edges",
    "grouped_points",
    "initial_centroids",
    "sample_zipf_keys",
    "visits_log",
    "zipf_sizes",
    "zipf_weights",
]

"""Event schema and sinks: round-trips, ring buffer, JSONL files."""

import json

import pytest

from repro.observe import JsonlSink, MemorySink, NullSink, TraceEvent
from repro.observe.events import ALL_KINDS, DRIVER_LANE, worker_lane
from repro.observe.sinks import read_events


def sample_event(kind, index=0):
    """A representative event of ``kind`` with a non-trivial payload."""
    span = kind in ("driver", "job", "stage", "task_set", "task", "serde")
    return TraceEvent(
        name="%s#%d" % (kind, index),
        kind=kind,
        ts=1000.0 + index,
        dur=0.25 if span else None,
        lane=DRIVER_LANE if index % 2 == 0 else worker_lane(4242),
        args={"index": index, "label": "x" * index} if index else {},
    )


class TestTraceEvent:
    def test_span_vs_instant(self):
        span = TraceEvent("s", "stage", 1.0, dur=2.0)
        instant = TraceEvent("i", "fault", 1.0)
        assert span.is_span and span.end == 3.0
        assert not instant.is_span and instant.end == 1.0

    def test_dict_round_trip_drops_nothing(self):
        event = sample_event("task", 3)
        again = TraceEvent.from_dict(event.to_dict())
        assert again == event

    def test_instant_round_trip(self):
        event = sample_event("shuffle", 2)
        again = TraceEvent.from_dict(event.to_dict())
        assert again == event
        assert again.dur is None

    def test_to_dict_is_json_serializable(self):
        event = sample_event("broadcast", 1)
        text = json.dumps(event.to_dict())
        assert TraceEvent.from_dict(json.loads(text)) == event

    def test_worker_lane_naming(self):
        assert worker_lane(17) == "worker-17"


class TestJsonlRoundTrip:
    def test_every_event_kind_round_trips(self, tmp_path):
        """The JSONL sink must persist all kinds the engine can emit."""
        path = str(tmp_path / "trace.jsonl")
        events = [
            sample_event(kind, index)
            for index, kind in enumerate(ALL_KINDS)
        ]
        sink = JsonlSink(path)
        for event in events:
            sink.emit(event)
        sink.close()
        assert sink.emitted == len(ALL_KINDS)
        loaded = read_events(path)
        assert loaded == events

    def test_append_mode_extends_existing_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        first = JsonlSink(path)
        first.emit(sample_event("job", 0))
        first.close()
        second = JsonlSink(path)
        second.emit(sample_event("job", 1))
        second.close()
        assert len(read_events(path)) == 2

    def test_truncate_mode(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        JsonlSink(path).emit(sample_event("job", 0))
        sink = JsonlSink(path, append=False)
        sink.emit(sample_event("job", 1))
        sink.close()
        events = read_events(path)
        assert [e.name for e in events] == ["job#1"]

    def test_read_events_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        event = sample_event("stage", 1)
        path.write_text(
            "\n" + json.dumps(event.to_dict()) + "\n\n"
        )
        assert read_events(str(path)) == [event]


class TestMemorySink:
    def test_keeps_events_in_order(self):
        sink = MemorySink()
        events = [sample_event("task", i) for i in range(5)]
        for event in events:
            sink.emit(event)
        assert sink.events() == events
        assert sink.dropped == 0

    def test_ring_buffer_drops_oldest(self):
        sink = MemorySink(capacity=3)
        for i in range(5):
            sink.emit(sample_event("task", i))
        kept = sink.events()
        assert [e.name for e in kept] == ["task#2", "task#3", "task#4"]
        assert sink.dropped == 2

    def test_clear(self):
        sink = MemorySink(capacity=2)
        for i in range(4):
            sink.emit(sample_event("task", i))
        sink.clear()
        assert sink.events() == []
        assert sink.dropped == 0


class TestNullSink:
    def test_discards_everything(self):
        sink = NullSink()
        sink.emit(sample_event("task", 0))
        sink.close()
        assert not hasattr(sink, "events") or sink.events() == []

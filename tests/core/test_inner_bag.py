"""InnerBag: lifted bag operations (paper Sec. 4.4)."""

from collections import Counter

import pytest

from repro.core.primitives import InnerBag, InnerScalar
from repro.errors import FlatteningError


class TestStatelessOps:
    def test_map_forwards_tags(self, nested):
        doubled = nested.inner.map(lambda x: x * 2)
        assert doubled.collect_nested() == {
            "fruit": [2, 4, 6], "animal": [20, 40],
        }

    def test_filter(self, nested):
        kept = nested.inner.filter(lambda x: x >= 3)
        assert kept.collect_nested() == {"fruit": [3], "animal": [10, 20]}

    def test_flat_map(self, nested):
        repeated = nested.inner.filter(lambda x: x <= 2).flat_map(
            lambda x: [x] * x
        )
        assert Counter(repeated.collect_nested()["fruit"]) == Counter(
            {1: 1, 2: 2}
        )

    def test_key_by_and_values(self, nested):
        keyed = nested.inner.key_by(lambda x: x % 2)
        assert Counter(keyed.values().collect_nested()["fruit"]) == (
            Counter([1, 2, 3])
        )


class TestIdenticalOps:
    def test_distinct_is_per_tag(self, ctx):
        from repro.core.nestedbag import group_by_key_into_nested_bag

        bag = ctx.bag_of([("a", 1), ("a", 1), ("b", 1), ("b", 2)])
        nested = group_by_key_into_nested_bag(bag)
        groups = nested.inner.distinct().collect_nested()
        assert {k: sorted(v) for k, v in groups.items()} == {
            "a": [1], "b": [1, 2],
        }

    def test_union(self, nested):
        ones = nested.inner.map(lambda _x: 1)
        both = ones.union(ones)
        assert Counter(both.collect_nested()["animal"]) == Counter(
            {1: 4}
        )


class TestPerKeyStatefulOps:
    def test_reduce_by_key_uses_composite_keys(self, nested):
        keyed = nested.inner.map(lambda x: (x % 2, x))
        summed = keyed.reduce_by_key(lambda a, b: a + b)
        assert dict(summed.collect_nested()["fruit"]) == {0: 2, 1: 4}
        assert dict(summed.collect_nested()["animal"]) == {0: 30}

    def test_same_key_in_different_tags_kept_apart(self, ctx):
        """The heart of lifting: identical keys under different tags must
        not be merged -- this is why keys become (tag, key)."""
        from repro.core.nestedbag import group_by_key_into_nested_bag

        bag = ctx.bag_of([("g1", ("k", 1)), ("g2", ("k", 100))])
        nested = group_by_key_into_nested_bag(bag)
        summed = nested.inner.reduce_by_key(lambda a, b: a + b)
        assert summed.collect_nested() == {
            "g1": [("k", 1)], "g2": [("k", 100)],
        }

    def test_group_by_key(self, nested):
        keyed = nested.inner.map(lambda x: (x % 2, x))
        grouped = keyed.group_by_key()
        fruit = dict(grouped.collect_nested()["fruit"])
        assert sorted(fruit[1]) == [1, 3]

    def test_join_within_tags_only(self, nested):
        left = nested.inner.map(lambda x: (x % 2, x))
        right = nested.inner.map(lambda x: (x % 2, x * 10))
        joined = left.join(right)
        animal_pairs = joined.collect_nested()["animal"]
        # Animal values are 10 and 20, both with key 0: 2x2 pairs.
        assert len(animal_pairs) == 4
        fruit_keys = {k for k, _v in joined.collect_nested()["fruit"]}
        assert fruit_keys == {0, 1}

    def test_subtract_by_key(self, nested):
        left = nested.inner.map(lambda x: (x, x))
        right = nested.inner.filter(lambda x: x < 3).map(
            lambda x: (x, None)
        )
        remaining = left.subtract_by_key(right)
        groups = remaining.collect_nested()
        assert sorted(groups["fruit"]) == [(3, 3)]
        assert sorted(groups["animal"]) == [(10, 10), (20, 20)]

    def test_left_outer_join(self, nested):
        left = nested.inner.map(lambda x: (x, x))
        right = nested.inner.filter(lambda x: x == 1).map(
            lambda x: (x, "hit")
        )
        joined = left.left_outer_join(right)
        fruit = dict(joined.collect_nested()["fruit"])
        assert fruit[1] == (1, "hit")
        assert fruit[2] == (2, None)

    def test_cross_context_join_rejected(self, ctx, nested):
        from repro.core.nestedbag import group_by_key_into_nested_bag

        other = group_by_key_into_nested_bag(ctx.bag_of([("x", (1, 1))]))
        with pytest.raises(FlatteningError):
            nested.inner.map(lambda x: (x, x)).join(other.inner)


class TestAggregations:
    def test_reduce_returns_inner_scalar(self, nested):
        total = nested.inner.reduce(lambda a, b: a + b)
        assert isinstance(total, InnerScalar)
        assert total.as_dict() == {"fruit": 6, "animal": 30}

    def test_reduce_missing_tags_without_default(self, nested):
        only_big = nested.inner.filter(lambda x: x > 5)
        total = only_big.reduce(lambda a, b: a + b)
        assert total.as_dict() == {"animal": 30}

    def test_reduce_with_default_fills_empty_tags(self, nested):
        only_big = nested.inner.filter(lambda x: x > 5)
        total = only_big.reduce(lambda a, b: a + b, default=0)
        assert total.as_dict() == {"fruit": 0, "animal": 30}

    def test_count_produces_zero_for_empty_bags(self, nested):
        """Paper Sec. 4.4: count must output 0 for empty inner bags,
        which requires the stored tags bag."""
        none_match = nested.inner.filter(lambda x: x > 1000)
        assert none_match.count().as_dict() == {"fruit": 0, "animal": 0}

    def test_count(self, nested):
        assert nested.inner.count().as_dict() == {
            "fruit": 3, "animal": 2,
        }

    def test_sum(self, nested):
        assert nested.inner.sum().as_dict() == {"fruit": 6, "animal": 30}

    def test_sum_of_empty_is_zero(self, nested):
        empty = nested.inner.filter(lambda _x: False)
        assert empty.sum().as_dict() == {"fruit": 0, "animal": 0}

    def test_collect_per_tag(self, nested):
        gathered = nested.inner.collect_per_tag()
        assert sorted(gathered.as_dict()["fruit"]) == [1, 2, 3]

    def test_collect_per_tag_empty_is_empty_tuple(self, nested):
        empty = nested.inner.filter(lambda _x: False)
        assert empty.collect_per_tag().as_dict() == {
            "fruit": (), "animal": (),
        }

    def test_is_empty(self, nested):
        empty = nested.inner.filter(lambda _x: False)
        assert empty.is_empty().as_dict() == {
            "fruit": True, "animal": True,
        }


class TestFlatten:
    def test_flatten_drops_tags(self, nested):
        """Sec. 4.6: flatten's implementation simply removes the tags."""
        assert sorted(nested.inner.flatten().collect()) == [
            1, 2, 3, 10, 20,
        ]

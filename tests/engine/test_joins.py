"""Join strategies: repartition (cogroup-based) and broadcast."""

from collections import Counter

import pytest

from repro.errors import PlanError


def reference_join(left, right):
    """Nested-loop join ground truth."""
    out = []
    for lk, lv in left:
        for rk, rv in right:
            if lk == rk:
                out.append((lk, (lv, rv)))
    return Counter(out)


LEFT = [("a", 1), ("a", 2), ("b", 3), ("d", 9)]
RIGHT = [("a", "x"), ("b", "y"), ("b", "z"), ("c", "w")]


class TestRepartitionJoin:
    def test_matches_nested_loop_reference(self, ctx):
        got = ctx.bag_of(LEFT).join(ctx.bag_of(RIGHT)).collect()
        assert Counter(got) == reference_join(LEFT, RIGHT)

    def test_empty_left(self, ctx):
        got = ctx.bag_of([]).join(ctx.bag_of(RIGHT)).collect()
        assert got == []

    def test_empty_right(self, ctx):
        got = ctx.bag_of(LEFT).join(ctx.bag_of([])).collect()
        assert got == []

    def test_multiplicity(self, ctx):
        left = ctx.bag_of([("k", 1), ("k", 2)])
        right = ctx.bag_of([("k", "x"), ("k", "y"), ("k", "z")])
        assert len(left.join(right).collect()) == 6


class TestBroadcastJoin:
    def test_matches_nested_loop_reference(self, ctx):
        got = ctx.bag_of(LEFT).join(
            ctx.bag_of(RIGHT), strategy="broadcast"
        ).collect()
        assert Counter(got) == reference_join(LEFT, RIGHT)

    def test_agrees_with_repartition(self, ctx):
        broadcast = ctx.bag_of(LEFT).join(
            ctx.bag_of(RIGHT), strategy="broadcast"
        ).collect()
        repartition = ctx.bag_of(LEFT).join(ctx.bag_of(RIGHT)).collect()
        assert Counter(broadcast) == Counter(repartition)

    def test_records_broadcast_volume(self, ctx):
        ctx.bag_of(LEFT).join(
            ctx.bag_of(RIGHT), strategy="broadcast"
        ).collect()
        job = ctx.trace.jobs[-1]
        assert job.broadcast_records == len(RIGHT)

    def test_unknown_strategy_rejected(self, ctx):
        with pytest.raises(PlanError):
            ctx.bag_of(LEFT).join(ctx.bag_of(RIGHT), strategy="magic")


class TestCross:
    def test_cross_product_size(self, ctx):
        a = ctx.bag_of([1, 2, 3])
        b = ctx.bag_of(["x", "y"])
        got = a.cross(b).collect()
        assert Counter(got) == Counter(
            [(i, s) for i in (1, 2, 3) for s in ("x", "y")]
        )

    def test_cross_broadcast_left_same_result(self, ctx):
        a = ctx.bag_of([1, 2])
        b = ctx.bag_of(["x"])
        right_bcast = a.cross(b, broadcast_side="right").collect()
        a2 = ctx.bag_of([1, 2])
        b2 = ctx.bag_of(["x"])
        left_bcast = a2.cross(b2, broadcast_side="left").collect()
        assert Counter(right_bcast) == Counter(left_bcast)

    def test_cross_with_empty_is_empty(self, ctx):
        assert ctx.bag_of([1]).cross(ctx.empty_bag()).collect() == []

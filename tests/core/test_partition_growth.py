"""Regression: partition counts must stay bounded across lifted control
flow.

A lifted if merges its branch results with a union, which concatenates
partitions; without the coalesce after the merge, an if inside a lifted
loop doubled the state's partition count every iteration (exponential
plan blow-up)."""

from repro.core import cond, nested_map, while_loop
from repro.engine import EngineContext, laptop_config


def collatz(x):
    def body(state):
        branched = cond(
            state["x"] % 2 == 0,
            lambda s: {"x": s["x"] // 2},
            lambda s: {"x": s["x"] * 3 + 1},
            {"x": state["x"]},
        )
        return {"x": branched["x"], "steps": state["steps"] + 1}

    return while_loop(
        {"x": x, "steps": x.map(lambda _v: 0)},
        cond_fn=lambda s: s["x"] != 1,
        body_fn=body,
    )


class TestPartitionGrowth:
    def test_cond_merge_keeps_partition_count(self, ctx):
        from repro.core import group_by_key_into_nested_bag

        nested = group_by_key_into_nested_bag(
            ctx.bag_of([("a", 1), ("b", 2)])
        )
        scalar = nested.inner.sum()
        before = scalar.repr.num_partitions
        merged = cond(
            scalar > 1,
            lambda s: {"y": s["y"] * 2},
            lambda s: {"y": s["y"]},
            {"y": scalar},
        )["y"]
        assert merged.repr.num_partitions <= 2 * before

    def test_deep_lifted_loop_with_branches_stays_fast(self, ctx):
        """23 iterations with a lifted if each: must be linear, not
        exponential, in partitions (and therefore in wall time)."""
        seeds = ctx.bag_of([1, 6, 7, 9, 25])
        result = nested_map(seeds, collatz)
        steps = dict(result["steps"].collect())
        assert max(steps.values()) == 23
        assert result["x"].repr.num_partitions < 10_000

    def test_loop_result_partitions_bounded(self, ctx):
        seeds = ctx.bag_of(list(range(1, 8)))
        result = nested_map(seeds, collatz)
        # Finished parts accumulate one bag per iteration; the assembly
        # coalesces them back to a bounded count.
        assert result["x"].repr.num_partitions <= (
            2 * ctx.config.default_parallelism
        )

"""Reporting extra CPU work done inside UDFs.

The engine's cost model counts records flowing through operators.  A UDF
that loops internally (for example the outer-parallel workaround running a
whole sequential K-means on one group inside a single ``map`` call) does
work the operator counts cannot see.  Such UDFs wrap their result in
:class:`Weighted`, and the executor credits the declared work units (in
records processed) to the running task before unwrapping.
"""


class Weighted:
    """A UDF result annotated with the records of work spent producing it.

    Attributes:
        value: The actual result the operator should emit.
        work: Number of record-equivalents of CPU work the UDF performed.
    """

    __slots__ = ("value", "work")

    def __init__(self, value, work):
        if work < 0:
            raise ValueError("work must be non-negative")
        self.value = value
        self.work = work

    def __repr__(self):
        return "Weighted(%r, work=%d)" % (self.value, self.work)


def unwrap(result, task_work):
    """Unwrap a possibly-:class:`Weighted` result, crediting its work.

    Args:
        result: The raw UDF return value.
        task_work: A single-element list accumulating extra work for the
            current task (mutated in place).
    """
    if isinstance(result, Weighted):
        task_work[0] += result.work
        return result.value
    return result

"""The `python -m repro.bench` command-line runner."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "fig8-left" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "Available experiments" in capsys.readouterr().out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_runs_an_experiment(self, capsys):
        assert main(["fig7-bounce", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "data skew" in out
        assert "matryoshka" in out

    def test_registry_covers_every_paper_figure(self):
        names = set(EXPERIMENTS)
        for expected in (
            "fig1", "fig3a", "fig3b", "fig3c", "fig5", "fig6",
            "fig8-left", "fig8-right", "fig9a", "fig9b",
        ):
            assert expected in names

"""Tenants: identity, fair-share weight, admission quota, and stats.

A *tenant* is the service's unit of isolation and accounting: every
submitted job belongs to exactly one tenant, the fair scheduler divides
engine capacity between tenants in proportion to their weights, and
admission control bounds how much queue each tenant may occupy.  See
``docs/serving.md`` for the policy and its caveats.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class TenantConfig:
    """Static description of one tenant.

    Attributes:
        name: Tenant identity; keys the queue, stats, and report files.
        weight: Fair-share weight.  The deficit-round-robin scheduler
            grants each tenant ``weight`` quanta of service per round,
            so a weight-2 tenant drains jobs twice as fast as a
            weight-1 tenant under contention.  Must be positive.
        max_pending: Admission quota: the most jobs this tenant may
            have *queued* (not yet running) at once.  Submissions
            beyond it are rejected with
            :class:`~repro.serve.queue.AdmissionRejected` rather than
            letting one tenant bury the queue.
    """

    name: str
    weight: float = 1.0
    max_pending: int = 16

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.max_pending < 1:
            raise ValueError("tenant max_pending must be >= 1")


class TenantStats:
    """Mutable per-tenant counters (guarded by the service's lock).

    Queue-wait seconds measure submission to dequeue; execution
    seconds come from each job's
    :class:`~repro.engine.context.JobAccounting`.
    """

    __slots__ = (
        "submitted", "rejected", "completed", "failed",
        "queue_wait_seconds", "max_queue_wait_seconds",
        "simulated_seconds", "measured_task_seconds", "wall_seconds",
        "cache_hits", "cache_misses",
    )

    def __init__(self):
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.queue_wait_seconds = 0.0
        self.max_queue_wait_seconds = 0.0
        self.simulated_seconds = 0.0
        self.measured_task_seconds = 0.0
        self.wall_seconds = 0.0
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def finished(self):
        return self.completed + self.failed

    def mean_queue_wait_seconds(self):
        if not self.finished:
            return 0.0
        return self.queue_wait_seconds / self.finished

    def throughput(self, elapsed_seconds):
        """Completed jobs per second over ``elapsed_seconds``."""
        if elapsed_seconds <= 0:
            return 0.0
        return self.completed / elapsed_seconds

    def record_submit(self):
        self.submitted += 1

    def record_rejection(self):
        self.rejected += 1

    def record_finished(self, queue_wait, wall, accounting, failed):
        self.queue_wait_seconds += queue_wait
        self.max_queue_wait_seconds = max(
            self.max_queue_wait_seconds, queue_wait
        )
        self.wall_seconds += wall
        if accounting is not None:
            self.simulated_seconds += accounting.simulated_seconds
            self.measured_task_seconds += (
                accounting.measured_task_seconds
            )
        if failed:
            self.failed += 1
        else:
            self.completed += 1

    def record_cache(self, hit):
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def to_dict(self):
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "queue_wait_seconds": self.queue_wait_seconds,
            "mean_queue_wait_seconds": self.mean_queue_wait_seconds(),
            "max_queue_wait_seconds": self.max_queue_wait_seconds,
            "simulated_seconds": self.simulated_seconds,
            "measured_task_seconds": self.measured_task_seconds,
            "wall_seconds": self.wall_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

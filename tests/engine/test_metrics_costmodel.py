"""Trace recording and the analytical cost model."""

import pytest

from repro.engine import ClusterConfig, CostModel, EngineContext
from repro.engine.costmodel import _makespan
from repro.engine.metrics import ExecutionTrace


@pytest.fixture
def cluster():
    return ClusterConfig(
        machines=4,
        cores_per_machine=4,
        bytes_per_record=1000.0,
        job_launch_overhead_s=1.0,
        stage_overhead_s=0.1,
        task_overhead_s=0.01,
    )


class TestTraceRecording:
    def test_jobs_counted(self, ctx):
        bag = ctx.bag_of([1, 2, 3])
        bag.count()
        bag.count()
        assert ctx.trace.num_jobs == 2

    def test_shuffle_records_recorded(self, ctx):
        bag = ctx.bag_of([(i % 4, i) for i in range(100)])
        bag.group_by_key().collect()
        assert ctx.trace.jobs[-1].total_shuffle_records == 100

    def test_map_side_combine_reduces_shuffle_volume(self, ctx):
        records = [(i % 2, 1) for i in range(100)]
        bag = ctx.bag_of(records, num_partitions=4)
        bag.reduce_by_key(lambda a, b: a + b).collect()
        # At most partitions x keys combined records cross the network.
        assert ctx.trace.jobs[-1].total_shuffle_records <= 8

    def test_narrow_chain_is_single_stage(self, ctx):
        bag = ctx.bag_of(range(10))
        bag.map(lambda x: x).filter(bool).map(lambda x: -x).collect()
        job = ctx.trace.jobs[-1]
        assert len(job.stages) == 1

    def test_shuffle_starts_new_stage(self, ctx):
        bag = ctx.bag_of([(1, 1)])
        bag.reduce_by_key(lambda a, b: a + b).collect()
        kinds = [stage.kind for stage in ctx.trace.jobs[-1].stages]
        assert kinds == ["input", "shuffle"]

    def test_reset_clears_jobs(self, ctx):
        ctx.bag_of([1]).count()
        ctx.reset_trace()
        assert ctx.trace.num_jobs == 0

    def test_summary_format(self, ctx):
        ctx.bag_of([1]).count()
        assert "jobs=1" in ctx.trace.summary()


class TestCostModel:
    def test_every_job_pays_launch_overhead(self, cluster):
        ctx = EngineContext(cluster)
        bag = ctx.bag_of([1])
        bag.count()
        bag.count()
        cost = ctx.cost_breakdown()
        assert cost.job_launch_s == pytest.approx(2.0)

    def test_total_is_sum_of_components(self, cluster):
        ctx = EngineContext(cluster)
        ctx.bag_of([(1, 1), (2, 2)]).reduce_by_key(
            lambda a, b: a + b
        ).collect()
        cost = ctx.cost_breakdown()
        parts = (
            cost.job_launch_s + cost.stage_overhead_s
            + cost.task_overhead_s + cost.compute_s + cost.shuffle_s
            + cost.spill_s + cost.broadcast_s + cost.collect_s
        )
        assert cost.total_s == pytest.approx(parts)

    def test_empty_trace_costs_nothing(self, cluster):
        model = CostModel(cluster)
        assert model.simulated_seconds(ExecutionTrace()) == 0.0

    def test_more_records_cost_more_compute(self, cluster):
        small = EngineContext(cluster)
        small.bag_of(range(10)).map(lambda x: x).collect()
        large = EngineContext(cluster)
        large.bag_of(range(10000)).map(lambda x: x).collect()
        assert (
            large.cost_breakdown().compute_s
            > small.cost_breakdown().compute_s
        )

    def test_meta_stages_cost_less_than_data_stages(self, cluster):
        data = EngineContext(cluster)
        data.bag_of([(i, i) for i in range(500)]).reduce_by_key(
            lambda a, b: a + b, num_partitions=1
        ).collect()
        meta = EngineContext(cluster)
        meta.bag_of([(i, i) for i in range(500)]).as_meta(
        ).reduce_by_key(lambda a, b: a + b, num_partitions=1).collect()
        assert (
            meta.cost_breakdown().compute_s
            < data.cost_breakdown().compute_s
        )

    def test_weighted_work_charged_at_sequential_rate(self, cluster):
        from repro.engine import Weighted

        plain = EngineContext(cluster)
        plain.bag_of(range(100)).map(lambda x: x).collect()
        heavy = EngineContext(cluster)
        heavy.bag_of(range(100)).map(
            lambda x: Weighted(x, 10)
        ).collect()
        ratio = (
            heavy.cost_breakdown().compute_s
            / plain.cost_breakdown().compute_s
        )
        assert ratio > 5


class TestMakespan:
    def test_empty(self):
        assert _makespan([], 4) == 0

    def test_fewer_tasks_than_slots_is_max(self):
        assert _makespan([10, 3, 7], 8) == 10

    def test_balanced_tasks_divide_evenly(self):
        assert _makespan([1] * 8, 4) == 2

    def test_skewed_task_dominates(self):
        assert _makespan([100, 1, 1, 1], 4) == 100

    def test_zero_record_tasks_ignored(self):
        assert _makespan([0, 0, 5], 2) == 5

    def test_lpt_packing(self):
        # 6 tasks on 2 slots: LPT gives 9 (5+4, 3+3+2+1).
        assert _makespan([5, 4, 3, 3, 2, 1], 2) == 9

"""Auto join strategy and JoinHint (the engine's own optimizer)."""

from collections import Counter

from repro.engine import (
    ClusterConfig,
    EngineContext,
    JoinHint,
)

LEFT = [("a", 1), ("b", 2), ("b", 3)]
RIGHT = [("a", "x"), ("b", "y")]


def context(threshold_bytes, bytes_per_record=100.0):
    return EngineContext(
        ClusterConfig(
            machines=2,
            cores_per_machine=4,
            bytes_per_record=bytes_per_record,
            auto_broadcast_threshold_bytes=threshold_bytes,
        )
    )


def broadcast_volume(ctx):
    return sum(
        job.broadcast_records + job.broadcast_meta_records
        for job in ctx.trace.jobs
    )


class TestAutoStrategy:
    def test_small_known_side_broadcasts(self):
        ctx = context(threshold_bytes=10_000)
        got = ctx.bag_of(LEFT).join(
            ctx.bag_of(RIGHT), strategy="auto"
        ).collect()
        assert len(got) == 3
        assert broadcast_volume(ctx) == len(RIGHT)

    def test_large_known_side_repartitions(self):
        ctx = context(threshold_bytes=50)  # below one record
        ctx.bag_of(LEFT).join(
            ctx.bag_of(RIGHT), strategy="auto"
        ).collect()
        assert broadcast_volume(ctx) == 0

    def test_both_sides_unknown_defaults_to_repartition(self):
        ctx = context(threshold_bytes=10 ** 12)
        # Shuffle outputs have no statically known count.
        left = ctx.bag_of(LEFT).reduce_by_key(lambda a, _b: a)
        right = ctx.bag_of(RIGHT).reduce_by_key(lambda a, _b: a)
        left.join(right, strategy="auto").collect()
        assert broadcast_volume(ctx) == 0

    def test_small_known_left_side_broadcasts(self):
        # The right side is a shuffle output of unknown size; the left
        # side is small and statically known, so *it* is the build side.
        ctx = context(threshold_bytes=10_000)
        right = ctx.bag_of(RIGHT).reduce_by_key(lambda a, _b: a)
        got = ctx.bag_of(LEFT).join(right, strategy="auto").collect()
        assert Counter(got) == Counter(
            [("a", (1, "x")), ("b", (2, "y")), ("b", (3, "y"))]
        )
        assert broadcast_volume(ctx) == len(LEFT)

    def test_left_hint_enables_left_broadcast(self):
        ctx = context(threshold_bytes=10_000)
        left = ctx.bag_of(LEFT).reduce_by_key(lambda a, b: a + b)
        right = ctx.bag_of(RIGHT).reduce_by_key(lambda a, _b: a)
        left.join(
            right,
            strategy="auto",
            hints=JoinHint(left_records=2),
        ).collect()
        assert broadcast_volume(ctx) == 2

    def test_smaller_of_two_known_sides_is_broadcast(self):
        ctx = context(threshold_bytes=10_000)
        ctx.bag_of(LEFT).join(
            ctx.bag_of(RIGHT), strategy="auto"
        ).collect()
        # Both fit below the threshold; RIGHT (2 records) < LEFT (3).
        assert broadcast_volume(ctx) == len(RIGHT)

    def test_explicit_broadcast_left_strategy(self):
        ctx = context(threshold_bytes=10_000)
        got = ctx.bag_of(LEFT).join(
            ctx.bag_of(RIGHT), strategy="broadcast_left"
        ).collect()
        repartition = ctx.bag_of(LEFT).join(ctx.bag_of(RIGHT)).collect()
        assert Counter(got) == Counter(repartition)
        assert broadcast_volume(ctx) == len(LEFT)

    def test_known_count_propagates_through_maps(self):
        ctx = context(threshold_bytes=10_000)
        right = ctx.bag_of(RIGHT).map(lambda kv: kv)
        ctx.bag_of(LEFT).join(right, strategy="auto").collect()
        assert broadcast_volume(ctx) == len(RIGHT)

    def test_hint_overrides_unknown_size(self):
        ctx = context(threshold_bytes=10_000)
        right = ctx.bag_of(RIGHT).reduce_by_key(lambda a, _b: a)
        ctx.bag_of(LEFT).join(
            right,
            strategy="auto",
            hints=JoinHint(right_records=2),
        ).collect()
        assert broadcast_volume(ctx) == len(RIGHT)

    def test_results_identical_across_strategies(self):
        results = []
        for threshold in (50, 10_000):
            ctx = context(threshold_bytes=threshold)
            results.append(
                Counter(
                    ctx.bag_of(LEFT).join(
                        ctx.bag_of(RIGHT), strategy="auto"
                    ).collect()
                )
            )
        assert results[0] == results[1]

    def test_meta_side_measured_at_meta_rate(self):
        # 2 records x 5 MB data rate exceed a 1 MB threshold, but the
        # same records marked meta (256 B each) fall below it.
        ctx = context(
            threshold_bytes=1_000_000, bytes_per_record=5e6
        )
        ctx.bag_of(LEFT).join(
            ctx.bag_of(RIGHT).as_meta(), strategy="auto"
        ).collect()
        assert broadcast_volume(ctx) == len(RIGHT)


class TestHintsLoweringMode:
    """The Sec. 8.2 'closer integration' mode end to end."""

    def test_matches_matryoshka_decisions(self):
        from repro.core import (
            LoweringConfig,
            group_by_key_into_nested_bag,
        )

        records = [("g%d" % (i % 4), i) for i in range(40)]
        outputs = {}
        for mode in ("auto", "hints"):
            ctx = EngineContext(
                ClusterConfig(machines=2, cores_per_machine=4)
            )
            nested = group_by_key_into_nested_bag(
                ctx.bag_of(records), LoweringConfig(join_strategy=mode)
            )
            counts = nested.inner.count()
            doubled = nested.inner.map_with_closure(
                counts, lambda x, n: (x, n)
            )
            outputs[mode] = Counter(doubled.repr.collect())
        assert outputs["auto"] == outputs["hints"]

    def test_hint_decision_recorded(self):
        from repro.core import LoweringConfig, Optimizer

        ctx = EngineContext(
            ClusterConfig(machines=2, cores_per_machine=4)
        )
        from repro.core import group_by_key_into_nested_bag

        nested = group_by_key_into_nested_bag(ctx.bag_of([("a", 1)]))
        optimizer = Optimizer(ctx, LoweringConfig(join_strategy="hints"))
        optimizer.join_with_scalar(
            nested.inner.repr, nested.inner.count()
        ).collect()
        assert optimizer.decisions_of_kind("scalar-join")[0].choice == (
            "hints"
        )

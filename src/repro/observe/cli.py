"""``python -m repro.observe`` -- inspect traces and reports.

Subcommands::

    render TRACE.jsonl [-o OUT.json]      # Chrome trace JSON (Perfetto)
    summarize PATH [--top N]              # trace .jsonl or report .json
    diff BASELINE.json CANDIDATE.json     # per-stage deltas + verdict

``diff`` exits with status 2 when the candidate regresses past the
threshold, so it can gate CI directly.
"""

import argparse
import json
import sys

from .chrome import write_chrome
from .render import summarize_events, summarize_report
from .report import (
    DEFAULT_MIN_SECONDS,
    DEFAULT_THRESHOLD,
    RunReport,
)
from .sinks import read_events

#: ``diff`` exit status when a regression is detected.
EXIT_REGRESSION = 2


def _load_report_or_events(path):
    """Return ``("report", RunReport)`` or ``("events", [TraceEvent])``.

    A run report is a single JSON object carrying ``schema_version``;
    anything else is treated as a JSON-lines trace.
    """
    with open(path) as handle:
        head = handle.read(4096).lstrip()
    if head.startswith("{"):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except json.JSONDecodeError:
            data = None
        if isinstance(data, dict) and "schema_version" in data:
            return "report", RunReport.from_dict(data)
    return "events", read_events(path)


def cmd_render(args):
    events = read_events(args.trace)
    if not events:
        print("no events in %s" % args.trace, file=sys.stderr)
        return 1
    out = args.output or (args.trace.rsplit(".", 1)[0] + ".chrome.json")
    write_chrome(events, out, label=args.label)
    print(
        "wrote %s (%d events; load it at https://ui.perfetto.dev "
        "or chrome://tracing)" % (out, len(events))
    )
    return 0


def cmd_summarize(args):
    what, payload = _load_report_or_events(args.path)
    if what == "report":
        print(summarize_report(payload, top=args.top))
    else:
        print(
            summarize_events(payload, top=args.top, width=args.width)
        )
    return 0


def cmd_diff(args):
    baseline = RunReport.load(args.baseline)
    candidate = RunReport.load(args.candidate)
    diff = RunReport.compare(
        baseline,
        candidate,
        threshold=args.threshold,
        min_seconds=args.min_seconds,
        metric=args.metric,
    )
    print(diff.render(show_ok_stages=args.show_ok))
    return EXIT_REGRESSION if diff.has_regressions else 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe",
        description="Render, summarize, and diff engine traces/reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    render = sub.add_parser(
        "render", help="export a JSON-lines trace to Chrome trace JSON"
    )
    render.add_argument("trace", help="trace .jsonl file")
    render.add_argument(
        "-o", "--output", help="output path (default: <trace>.chrome.json)"
    )
    render.add_argument(
        "--label", default="repro", help="process name in the viewer"
    )
    render.set_defaults(fn=cmd_render)

    summarize = sub.add_parser(
        "summarize",
        help="terminal summary of a trace .jsonl or a report .json",
    )
    summarize.add_argument("path")
    summarize.add_argument("--top", type=int, default=10)
    summarize.add_argument("--width", type=int, default=64)
    summarize.set_defaults(fn=cmd_summarize)

    diff = sub.add_parser(
        "diff", help="compare two run reports; exit 2 on regression"
    )
    diff.add_argument("baseline", help="reference report .json")
    diff.add_argument("candidate", help="report .json under test")
    diff.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative growth that counts as a regression "
             "(default: %(default)s)",
    )
    diff.add_argument(
        "--min-seconds", type=float, default=DEFAULT_MIN_SECONDS,
        help="absolute growth floor in seconds (default: %(default)s)",
    )
    diff.add_argument(
        "--metric", choices=["simulated", "measured", "wall"],
        default="simulated",
    )
    diff.add_argument(
        "--show-ok", action="store_true",
        help="also print unchanged per-stage rows",
    )
    diff.set_defaults(fn=cmd_diff)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream pager/`head` closed the pipe; not an error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0

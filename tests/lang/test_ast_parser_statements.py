"""Statement-level coverage: tuple assignment, asserts, docstrings."""

import pytest

from repro.core import nested_map
from repro.engine import EngineContext, laptop_config
from repro.lang import nested_udf


@nested_udf
def swapping(a):
    b = 1
    while a < 100:
        a, b = b, a + b
    return a


@nested_udf
def with_docstring(x):
    """The docstring must survive rewriting."""
    if x > 0:
        x = x * 2
    return x


@nested_udf
def with_assert(x):
    assert isinstance(x, object)  # noqa: S101 -- passthrough check
    total = 0
    while total < x:
        total += 2
    return total


@pytest.fixture
def ctx():
    return EngineContext(laptop_config())


class TestStatements:
    def test_tuple_assignment_in_loop_plain(self):
        assert swapping(1) == swapping.original(1)
        assert swapping(150) == 150

    def test_tuple_assignment_in_loop_lifted(self, ctx):
        seeds = [1, 50, 150]
        got = nested_map(ctx.bag_of(seeds), swapping)
        assert sorted(got.collect_values()) == sorted(
            swapping.original(s) for s in seeds
        )

    def test_docstring_preserved(self):
        assert "must survive" in with_docstring.__doc__

    def test_assert_passes_through_plain(self):
        assert with_assert(5) == 6

    def test_assert_passes_through_lifted(self, ctx):
        got = nested_map(ctx.bag_of([3, 8]), with_assert)
        assert sorted(got.collect_values()) == [4, 8]

    def test_transformed_source_attribute(self):
        assert isinstance(swapping.transformed_source, str)
        assert "__mz_while_loop" in swapping.transformed_source

    def test_original_attribute_round_trips(self):
        assert swapping.original.__name__ == "swapping"

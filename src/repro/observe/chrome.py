"""Export a trace to the Chrome trace-event JSON format.

The output loads in Perfetto (https://ui.perfetto.dev) and in
``chrome://tracing``: one process row for the engine, one thread row
per lane (the driver plus each worker pid), spans as complete (``"X"``)
events and instants as ``"i"`` events.  Nesting needs no explicit
parent pointers -- the trace viewers nest complete events on a thread
by time containment, which our driver -> job -> stage -> task set ->
task spans satisfy by construction.

Reference: the Trace Event Format document (the ``ph``/``ts``/``dur``
field names below are its vocabulary).
"""

import json

from .events import DRIVER_LANE

#: Synthetic pid for the one "process" row all lanes live under.
ENGINE_PID = 1

#: Chrome sorts thread rows by ``thread_sort_index``; the driver lane
#: goes on top, workers below in pid order.
_DRIVER_TID = 0


def _lane_tids(events):
    """Stable lane -> tid mapping with the driver first."""
    lanes = {DRIVER_LANE: _DRIVER_TID}
    for event in events:
        if event.lane not in lanes:
            lanes[event.lane] = len(lanes)
    return lanes


def to_chrome(events, label="repro"):
    """Convert events to a Chrome trace dict (``json.dump``-able).

    Args:
        events: Iterable of :class:`~repro.observe.events.TraceEvent`.
        label: Process name shown in the viewer.
    """
    events = sorted(events, key=lambda e: (e.ts, -(e.dur or 0.0)))
    origin = events[0].ts if events else 0.0
    lanes = _lane_tids(events)

    trace_events = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": ENGINE_PID,
            "tid": _DRIVER_TID,
            "args": {"name": label},
        }
    ]
    for lane, tid in lanes.items():
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": ENGINE_PID,
                "tid": tid,
                "args": {"name": lane},
            }
        )
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": ENGINE_PID,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )

    for event in events:
        record = {
            "name": event.name,
            "cat": event.kind,
            "pid": ENGINE_PID,
            "tid": lanes[event.lane],
            "ts": round((event.ts - origin) * 1e6, 3),
            "args": event.args,
        }
        if event.is_span:
            record["ph"] = "X"
            record["dur"] = round(event.dur * 1e6, 3)
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.observe"},
    }


def write_chrome(events, path, label="repro"):
    """Write the Chrome trace JSON for ``events`` to ``path``."""
    with open(path, "w") as handle:
        json.dump(to_chrome(events, label=label), handle)
    return path

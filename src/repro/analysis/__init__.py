"""Static diagnostics for nested UDFs and dataflow plans.

The analysis layer moves failures that used to surface mid-job (or not
at all) to decoration / plan-build time, as flake8-style diagnostics:

* **NPL1xx** (:mod:`udf_lint`) -- constructs in ``@nested_udf`` bodies
  the parsing phase cannot lift (try/except, yield, global mutation,
  captured-state mutation, staged-name shadowing), with precise source
  locations.
* **NPL2xx** (:mod:`closure_lint`) -- captured values the task
  runtime's serde layer cannot ship: the launch-time
  ``SerializationError`` reported at import time instead.
* **NPL3xx** (:mod:`plan_lint`) -- plan smells and predicted failures:
  uncached reuse, pushable filters, oversized broadcasts (simulated-OOM
  prediction), redundant repartitions.
* **NPL5xx** (:mod:`effects`) -- proven effects in UDFs: mutation of
  state that outlives the call (NPL501), nondeterminism that retries
  or speculation would observe (NPL502), external I/O (NPL503), and
  auto-cache rewrites suppressed by unproven purity (NPL504).
* **NPL6xx** (:mod:`schema`) -- record schema & shape findings from
  whole-plan type inference: join/cogroup key-type mismatch (NPL601),
  union shape mismatch (NPL602), statically non-hashable shuffle keys
  (NPL603), and refuted-columnar fused chains (NPL604).

Entry points::

    python -m repro.analysis src/repro/tasks examples   # CLI / CI
    nested_udf(strict=True)                             # at decoration
    bag.collect(lint="error")                           # before a job
    analyze_udf(fn); analyze_plan(bag.node, config)     # as a library
"""

import ast
import inspect
import textwrap

from .closure_lint import analyze_closure
from .effects import (
    EffectReason,
    EffectReport,
    analyze_effects,
    effect_diagnostics,
    effects_notes,
    fingerprint_function,
    plan_effects,
    plan_fingerprint,
    runtime_resolver,
    scan_effects,
    static_resolver,
    subtree_effects,
    task_effects,
)
from .diagnostics import (
    CODES,
    Diagnostic,
    ERROR,
    INFO,
    WARNING,
    count_by_severity,
    filter_diagnostics,
    make_diagnostic,
    render_github,
    render_json,
    render_text,
    sort_key,
)
from .plan_lint import analyze_bag, analyze_plan
from .properties import (
    PlanProperties,
    infer_properties,
    partitioning_notes,
    udf_preserves_key,
)
from .schema import (
    ChainSchema,
    PlanSchemas,
    chain_schema,
    columnar_verdict,
    hashable_verdict,
    infer_schemas,
    infer_udf_schema,
    schema_diagnostics,
    schema_notes,
)
from .udf_lint import first_unsupported, scan_function

__all__ = [
    "CODES",
    "Diagnostic",
    "ERROR",
    "EffectReason",
    "EffectReport",
    "INFO",
    "PlanProperties",
    "WARNING",
    "analyze_bag",
    "analyze_closure",
    "analyze_effects",
    "analyze_plan",
    "analyze_source",
    "analyze_udf",
    "chain_schema",
    "ChainSchema",
    "columnar_verdict",
    "count_by_severity",
    "effect_diagnostics",
    "effects_notes",
    "filter_diagnostics",
    "fingerprint_function",
    "first_unsupported",
    "hashable_verdict",
    "infer_properties",
    "infer_schemas",
    "infer_udf_schema",
    "make_diagnostic",
    "partitioning_notes",
    "PlanSchemas",
    "plan_effects",
    "plan_fingerprint",
    "render_github",
    "render_json",
    "render_text",
    "scan_effects",
    "scan_function",
    "schema_diagnostics",
    "schema_notes",
    "sort_key",
    "static_resolver",
    "subtree_effects",
    "task_effects",
    "udf_preserves_key",
]


def analyze_udf(fn, closure=True):
    """All UDF-level diagnostics (NPL1xx + NPL2xx + NPL5xx effect
    refutations) for one function.

    Accepts either a plain function or one already decorated with
    ``@nested_udf`` (the pre-rewrite original is analyzed).  Locations
    point at the defining file.
    """
    original = getattr(fn, "original", fn)
    diags = []
    located = _function_ast(original)
    if located is None:
        diags.append(
            make_diagnostic(
                "NPL001",
                "source of %r is unavailable (lambda or interactively "
                "defined); UDF construct checks skipped"
                % getattr(original, "__name__", original),
            )
        )
    else:
        fndef, filename, line_offset, col_offset = located
        diags.extend(
            scan_function(fndef, filename, line_offset, col_offset)
        )
        report = scan_effects(
            fndef,
            resolver=runtime_resolver(original),
            line_offset=line_offset,
            col_offset=col_offset,
        )
        diags.extend(effect_diagnostics(
            report,
            filename=filename,
            udf_name=getattr(original, "__name__", "<udf>"),
        ))
    if closure:
        diags.extend(analyze_closure(original))
    return sorted(diags, key=sort_key)


def analyze_source(source, filename="<source>"):
    """NPL1xx diagnostics for every decorated UDF in a source string.

    Scans the module AST for functions decorated with ``nested_udf`` /
    ``lifted`` (bare, attribute, or called form) and lints each body.
    Line numbers are file-absolute.  Also the CLI's static pass.
    """
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            make_diagnostic(
                "NPL001",
                "file could not be parsed: %s" % exc,
                file=filename,
                line=exc.lineno or 0,
                col=exc.offset or 0,
            )
        ]
    diags = []
    resolver = static_resolver(tree)
    for fndef in _decorated_functions(tree):
        diags.extend(scan_function(fndef, filename))
        report = scan_effects(fndef, resolver=resolver)
        diags.extend(effect_diagnostics(
            report, filename=filename, udf_name=fndef.name
        ))
    return sorted(diags, key=sort_key)


_DECORATOR_NAMES = frozenset({"nested_udf", "lifted"})


def _decorated_functions(tree):
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for decorator in node.decorator_list:
            if _is_udf_decorator(decorator):
                yield node
                break


def _is_udf_decorator(node):
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id in _DECORATOR_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _DECORATOR_NAMES
    return False


def _function_ast(fn):
    """``(fndef, filename, line_offset, col_offset)`` or None.

    The offsets map positions in the dedented snippet back onto the
    defining file, so diagnostics carry real file locations.
    """
    try:
        lines, start_line = inspect.getsourcelines(fn)
    except (OSError, TypeError):
        return None
    raw = "".join(lines)
    source = textwrap.dedent(raw)
    col_offset = _dedent_width(raw, source)
    try:
        tree = ast.parse(source)
    except SyntaxError:  # pragma: no cover - getsource returned garbage
        return None
    fndef = tree.body[0] if tree.body else None
    if not isinstance(fndef, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    code = getattr(fn, "__code__", None)
    # Snippet line L is file line L + start_line - 1; getsourcelines
    # reports where the snippet (decorators included) begins.
    line_offset = start_line - 1
    filename = code.co_filename if code is not None else "<unknown>"
    return fndef, filename, line_offset, col_offset


def _dedent_width(raw, dedented):
    for raw_line, ded_line in zip(
        raw.splitlines(), dedented.splitlines()
    ):
        if ded_line.strip():
            return len(raw_line) - len(ded_line)
    return 0

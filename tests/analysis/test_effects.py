"""Effect & determinism analysis: EffectReport verdicts, NPL5xx
diagnostics, interprocedural resolution, fingerprints, plan-level
combination.

Every NPL5xx dimension gets a positive (refuted -> diagnostic) and
negative (proven -> clean) case, plus conservativeness checks: the
analysis must never answer ``proven`` for code with an actual effect --
unknown is always the acceptable fallback, a wrong proof never is.
"""

import ast
import functools
import random
import textwrap

from repro.analysis.effects import (
    DETERMINISM,
    IO,
    PURITY,
    EffectReport,
    analyze_effects,
    combine_reports,
    effect_diagnostics,
    effects_notes,
    fingerprint_function,
    plan_effects,
    scan_effects,
    static_resolver,
    subtree_effects,
    task_effects,
    verdict,
)

_SINK = []


# ---------------------------------------------------------------------------
# module-level subjects (runtime resolver needs real source)
# ---------------------------------------------------------------------------


def _clean(x):
    return x * 2 + len(str(x))


def _mutates_global(x):
    _SINK.append(x)
    return x


def _calls_mutator(x):
    return _mutates_global(x) + 1


def _rolls_dice(x):
    return x + random.random()


def _seeded(x):
    rng = random.Random(42)
    return x + rng.random()


def _opens_file(path):
    with open(path) as handle:
        return handle.read()


def _prints(x):
    print(x)
    return x


def _fresh_copy(xs):
    out = list(xs)
    out.append(1)
    return out


def _recurses_a(x):
    return _recurses_b(x)


def _recurses_b(x):
    if x <= 0:
        return 0
    return _recurses_a(x - 1)


def _unknown_callee(x):
    return ast.walk(x)


# ---------------------------------------------------------------------------
# verdicts and report algebra
# ---------------------------------------------------------------------------


def test_verdict_names():
    assert verdict(True) == "proven"
    assert verdict(False) == "refuted"
    assert verdict(None) == "unknown"


def test_proven_requires_all_three():
    assert EffectReport().proven
    assert not EffectReport(pure=None).proven
    assert not EffectReport(deterministic=False).proven


def test_summary_tokens():
    assert EffectReport().summary() == "pure det io-free"
    report = EffectReport(pure=None, deterministic=False, io_free=None)
    assert report.summary() == "pure? nondet io?"


def test_combine_refuted_beats_unknown_beats_proven():
    combined = combine_reports([
        EffectReport(),
        EffectReport(pure=None, deterministic=False),
    ])
    assert combined.pure is None
    assert combined.deterministic is False
    assert combined.io_free is True


def test_combine_empty_is_proven():
    assert combine_reports([]).proven
    assert task_effects(()).proven


# ---------------------------------------------------------------------------
# NPL501 purity
# ---------------------------------------------------------------------------


def test_clean_udf_proven_pure():
    report = analyze_effects(_clean)
    assert report.pure is True
    assert report.proven


def test_global_mutation_refutes_purity():
    report = analyze_effects(_mutates_global)
    assert report.pure is False
    assert any(
        r.dimension == PURITY and r.refuting for r in report.reasons
    )


def test_purity_refutation_is_interprocedural():
    assert analyze_effects(_calls_mutator).pure is False


def test_fresh_object_mutation_stays_pure():
    assert analyze_effects(_fresh_copy).pure is True


def test_captured_mutation_refutes_purity():
    acc = []

    def udf(x):
        acc.append(x)
        return x

    assert analyze_effects(udf).pure is False


# ---------------------------------------------------------------------------
# NPL502 determinism
# ---------------------------------------------------------------------------


def test_module_random_refutes_determinism():
    report = analyze_effects(_rolls_dice)
    assert report.deterministic is False
    assert any(
        r.dimension == DETERMINISM and r.refuting for r in report.reasons
    )


def test_seeded_local_rng_is_deterministic():
    report = analyze_effects(_seeded)
    assert report.deterministic is True
    assert report.proven


# ---------------------------------------------------------------------------
# NPL503 external I/O
# ---------------------------------------------------------------------------


def test_open_refutes_io_freedom():
    report = analyze_effects(_opens_file)
    assert report.io_free is False
    assert any(r.dimension == IO and r.refuting for r in report.reasons)


def test_print_refutes_io_freedom():
    assert analyze_effects(_prints).io_free is False


def test_pure_arithmetic_proven_io_free():
    assert analyze_effects(_clean).io_free is True


# ---------------------------------------------------------------------------
# conservativeness: unresolvable constructs degrade to unknown, never
# to a wrong proof
# ---------------------------------------------------------------------------


def test_unknown_callee_is_unknown_not_proven():
    report = analyze_effects(_unknown_callee)
    assert report.pure is not True
    assert report.pure is not False  # no effect was demonstrated either


def test_recursion_terminates_and_stays_sound():
    report = analyze_effects(_recurses_a)
    # cycle-safe: must terminate; the verdict may be unknown but must
    # not be refuted (there is no actual effect in the cycle).
    assert report.pure is not False
    assert report.io_free is not False


def test_sourceless_builtin_is_all_unknown():
    report = analyze_effects(len)
    assert report.pure is None
    assert report.deterministic is None
    assert report.io_free is None


def test_partial_and_bound_methods_analyzed():
    assert analyze_effects(functools.partial(_clean)).proven
    assert (
        analyze_effects(functools.partial(_rolls_dice)).deterministic
        is False
    )


# ---------------------------------------------------------------------------
# NPL5xx diagnostics
# ---------------------------------------------------------------------------


def test_refuted_dimensions_emit_npl5_codes():
    def udf(x):
        _SINK.append(x)
        print(x + random.random())
        return x

    report = analyze_effects(udf)
    codes = {d.code for d in effect_diagnostics(report, udf_name="udf")}
    assert codes == {"NPL501", "NPL502", "NPL503"}


def test_unknown_dimensions_emit_no_diagnostics():
    report = analyze_effects(_unknown_callee)
    assert report.pure is None
    assert effect_diagnostics(report) == []


def test_proven_report_emits_no_diagnostics():
    assert effect_diagnostics(analyze_effects(_clean)) == []


def test_diagnostic_messages_name_the_udf():
    diags = effect_diagnostics(
        analyze_effects(_opens_file), udf_name="loader"
    )
    assert any("'loader'" in d.message for d in diags)
    assert all(d.severity == "warning" for d in diags)


# ---------------------------------------------------------------------------
# static resolver (no-import CLI path)
# ---------------------------------------------------------------------------


def test_static_resolver_follows_module_helpers():
    source = textwrap.dedent(
        """
        def helper(x):
            print(x)
            return x

        def udf(x):
            return helper(x) + 1
        """
    )
    tree = ast.parse(source)
    resolver = static_resolver(tree)
    udf_def = tree.body[1]
    report = scan_effects(udf_def, resolver=resolver)
    assert report.io_free is False


def test_static_resolver_unresolved_call_is_unknown():
    tree = ast.parse("def udf(x):\n    return mystery(x)\n")
    report = scan_effects(tree.body[0], resolver=static_resolver(tree))
    assert report.pure is None
    assert report.pure is not False


# ---------------------------------------------------------------------------
# plan-level combination
# ---------------------------------------------------------------------------


def test_plan_effects_combines_subtree(ctx):
    bag = ctx.bag_of([1, 2, 3]).map(_rolls_dice).filter(lambda x: x > 0)
    reports = plan_effects(bag.node)
    root_report = reports[id(bag.node)]
    assert root_report.deterministic is False
    assert subtree_effects(bag.node).deterministic is False


def test_plan_effects_proven_for_clean_chain(ctx):
    bag = ctx.bag_of([1, 2, 3]).map(_clean)
    assert subtree_effects(bag.node).proven


def test_effects_notes_only_on_udf_nodes(ctx):
    bag = ctx.bag_of([1, 2, 3]).map(_clean)
    notes = effects_notes(bag.node)
    assert notes == {id(bag.node): "pure det io-free"}


def test_bag_explain_effects(ctx):
    bag = ctx.bag_of([1, 2, 3]).map(_rolls_dice)
    text = bag.explain(effects=True)
    assert "nondet" in text


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------


def test_fingerprint_is_stable():
    assert fingerprint_function(_clean) == fingerprint_function(_clean)


def test_fingerprint_distinguishes_bodies():
    assert fingerprint_function(_clean) != fingerprint_function(_prints)


def test_fingerprint_covers_called_helpers():
    assert fingerprint_function(_calls_mutator) != fingerprint_function(
        _clean
    )


def test_fingerprint_unwraps_partials():
    assert fingerprint_function(
        functools.partial(_clean)
    ) == fingerprint_function(_clean)


def test_fingerprint_none_without_source():
    assert fingerprint_function(len) is None

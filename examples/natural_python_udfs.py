"""The parsing phase on natural Python: @nested_udf (paper Sec. 4-6).

UDFs written with plain ``while`` loops, ``if`` statements, and
arithmetic are rewritten at decoration time into the lifted combinator
form -- the Python rendering of Matryoshka's compile-time
metaprogramming.  The same function still works on plain values.

Run:  python examples/natural_python_udfs.py
"""

import repro
from repro.core import nested_map
from repro.lang import nested_udf

@nested_udf
def collatz_steps(n):
    """Steps of the Collatz iteration until reaching 1."""
    steps = 0
    while n != 1 and steps < 200:
        if n % 2 == 0:
            n = n // 2
        else:
            n = 3 * n + 1
        steps = steps + 1
    return steps

def main():
    # The function still behaves normally on plain ints:
    print("collatz_steps(27) =", collatz_steps(27))

    print()
    print("What the parsing phase produced:")
    print("-" * 60)
    for line in collatz_steps.transformed_source.splitlines()[:16]:
        print(" ", line)
    print("  ...")
    print("-" * 60)

    # And lifted: one dataflow program computes all seeds at once, with
    # seeds exiting the lifted loop at their own iteration counts.
    ctx = repro.EngineContext(repro.laptop_config())
    seeds = ctx.bag_of([1, 6, 7, 9, 25])
    steps = nested_map(seeds, collatz_steps)

    print()
    print("Lifted execution over a bag of seeds:")
    pairs = sorted(
        (tag, value) for tag, value in steps.collect()
    )
    for tag, value in pairs:
        print("  seed tag %-3s -> %3d steps" % (tag, value))
    print()
    print("Jobs launched:", ctx.trace.num_jobs,
          "(grows with the max step count, not with the seed count)")

if __name__ == "__main__":
    main()

"""Closure serialization: the cloudpickle path and the built-in fallback.

Every roundtrip runs under both picklers (``force_fallback=True``
exercises the marshal-based function pickler even when cloudpickle is
installed), because a worker only ever sees the bytes.
"""

import threading

import pytest

from repro.engine.runtime import serde
from repro.engine.runtime.task import (
    STEP_FILTER,
    STEP_MAP,
    FusedPipelineTask,
    Invocation,
)
from repro.errors import SerializationError

MODULE_CONSTANT = 17


def top_level_double(x):
    return x * 2


def make_adder(n):
    def add(x):
        return x + n

    return add


BOTH_PICKLERS = pytest.mark.parametrize(
    "force_fallback", [False, True], ids=["cloudpickle-or-fallback",
                                          "fallback"]
)


def roundtrip(obj, force_fallback):
    return serde.loads(serde.dumps(obj, force_fallback=force_fallback))


class TestRoundtrips:
    @BOTH_PICKLERS
    def test_lambda(self, force_fallback):
        fn = roundtrip(lambda x: x * 3, force_fallback)
        assert fn(4) == 12

    @BOTH_PICKLERS
    def test_closure_over_local(self, force_fallback):
        fn = roundtrip(make_adder(5), force_fallback)
        assert fn(10) == 15

    @BOTH_PICKLERS
    def test_nested_closures(self, force_fallback):
        inner = lambda x: x + 1  # noqa: E731
        outer = lambda x: inner(x) * 2  # noqa: E731
        fn = roundtrip(outer, force_fallback)
        assert fn(3) == 8

    @BOTH_PICKLERS
    def test_defaults_and_kwdefaults(self, force_fallback):
        def fn(x, y=3, *, z=4):
            return x + y + z

        rebuilt = roundtrip(fn, force_fallback)
        assert rebuilt(1) == 8
        assert rebuilt(1, 2, z=0) == 3

    def test_module_global_resolves_on_fallback(self):
        fn = roundtrip(lambda x: x + MODULE_CONSTANT, True)
        assert fn(1) == 18

    def test_importable_function_goes_by_name(self):
        # Top-level defs take pickle's default by-name path even under
        # the fallback pickler, so they come back as the same object.
        assert roundtrip(top_level_double, True) is top_level_double

    @BOTH_PICKLERS
    def test_fused_pipeline_task(self, force_fallback):
        task = FusedPipelineTask(
            [
                (STEP_MAP, lambda x: x + 1, "Map[a]"),
                (STEP_FILTER, lambda x: x % 2 == 0, "Filter[b]"),
            ]
        )
        rebuilt = roundtrip(task, force_fallback)
        out, counts, _works = rebuilt([1, 2, 3, 4])
        assert out == [2, 4]
        assert counts == [4, 4]
        assert rebuilt.operator == "Map[a]+Filter[b]"

    @BOTH_PICKLERS
    def test_invocation_roundtrip(self, force_fallback):
        offset = 100
        task = FusedPipelineTask(
            [(STEP_MAP, lambda x: x + offset, "Map[c]")]
        )
        invocation = Invocation(task, ([1, 2],), 7, attempt=2,
                                inject_fault=True)
        rebuilt = roundtrip(invocation, force_fallback)
        assert rebuilt.task_index == 7
        assert rebuilt.attempt == 2
        assert rebuilt.inject_fault is True
        out, _counts, _works = rebuilt.task(*rebuilt.args)
        assert out == [101, 102]


class TestEnsureSerializable:
    def test_success_returns_bytes(self):
        payload = serde.ensure_serializable(lambda x: x, "Map[ok]")
        assert isinstance(payload, bytes)
        assert serde.loads(payload)(9) == 9

    def test_failure_names_operator(self):
        lock = threading.Lock()
        with pytest.raises(SerializationError, match=r"Map\[locked\]"):
            serde.ensure_serializable(
                lambda x: lock.acquire() and x, "Map[locked]"
            )

    def test_failure_chains_original_error(self):
        lock = threading.Lock()
        with pytest.raises(SerializationError) as info:
            serde.ensure_serializable(lambda x: (lock, x), "Map[l]")
        assert info.value.__cause__ is not None

    def test_fallback_also_rejects_unpicklable_closures(self):
        lock = threading.Lock()
        with pytest.raises(Exception):
            serde.dumps(lambda x: (lock, x), force_fallback=True)

"""The task runtime: real multi-process execution behind the engine.

The engine's clock is simulated (the cost model turns traces into the
paper's seconds), but its *execution* is real -- and this package is
where it runs.  A :class:`TaskScheduler` dispatches each stage's
per-partition tasks to a pluggable backend:

* :class:`SerialBackend` -- inline on the driver thread (default).
* :class:`ProcessPoolBackend` -- pickled task closures + partitions
  fanned out over a pool of worker processes, with per-task measured
  wall-clock, bounded retries, deterministic fault injection
  (:class:`FaultInjector`), and straggler detection.

Select a backend via :class:`~repro.engine.config.ClusterConfig`::

    ClusterConfig(backend="process", num_workers=4)

or the ``REPRO_BACKEND`` / ``REPRO_NUM_WORKERS`` environment variables.
"""

from .backends import (
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
    shutdown_pools,
)
from .faults import FaultInjector
from .scheduler import TaskScheduler
from .serde import check_serializable, dumps, ensure_serializable, loads
from .task import Invocation, TaskOutcome

__all__ = [
    "FaultInjector",
    "Invocation",
    "ProcessPoolBackend",
    "SerialBackend",
    "TaskOutcome",
    "TaskScheduler",
    "check_serializable",
    "dumps",
    "ensure_serializable",
    "loads",
    "make_backend",
    "shutdown_pools",
]

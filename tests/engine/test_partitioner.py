"""Stable hashing and hash partitioning."""

import subprocess
import sys

import pytest

from repro.engine.partitioner import HashPartitioner, stable_hash


class TestStableHash:
    def test_deterministic_within_process(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_stable_across_processes(self):
        code = (
            "from repro.engine.partitioner import stable_hash; "
            "print(stable_hash(('day1', 42)))"
        )
        runs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(runs) == 1
        assert runs == {str(stable_hash(("day1", 42)))}

    def test_distinct_types_do_not_collide_trivially(self):
        assert stable_hash("1") != stable_hash(1)
        assert stable_hash(1.0) != stable_hash(1)

    def test_handles_nested_tuples(self):
        assert stable_hash((("a", 1), ("b", (2, 3)))) == stable_hash(
            (("a", 1), ("b", (2, 3)))
        )

    def test_handles_none_bool_bytes(self):
        for key in (None, True, False, b"xyz"):
            assert stable_hash(key) == stable_hash(key)


class TestHashPartitioner:
    def test_partition_in_range(self):
        partitioner = HashPartitioner(7)
        for key in ("a", 1, (2, "b"), None):
            assert 0 <= partitioner.partition_for(key) < 7

    def test_split_preserves_all_records(self):
        partitioner = HashPartitioner(4)
        records = [(i % 10, i) for i in range(100)]
        buckets = partitioner.split(records)
        assert sum(len(b) for b in buckets) == 100

    def test_same_key_same_bucket(self):
        partitioner = HashPartitioner(4)
        buckets = partitioner.split([("k", 1), ("k", 2), ("k", 3)])
        non_empty = [b for b in buckets if b]
        assert len(non_empty) == 1

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_equality(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)

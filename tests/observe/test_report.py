"""Run reports: building from contexts, persistence, and comparison."""

import pytest

from repro.engine import EngineContext, laptop_config
from repro.observe import RunReport, entry_from_context
from repro.observe.report import SCHEMA_VERSION


def run_small_job(ctx, points=60):
    (
        ctx.bag_of(range(points))
        .map(lambda x: (x % 5, x))
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )


@pytest.fixture
def entry():
    with EngineContext(laptop_config()) as ctx:
        run_small_job(ctx)
        return entry_from_context(
            ctx, "engine", 60, measured_wall_seconds=0.5
        )


class TestEntryFromContext:
    def test_totals_match_trace(self, entry):
        assert entry["system"] == "engine"
        assert entry["x"] == 60
        assert entry["status"] == "ok"
        assert entry["simulated_seconds"] > 0
        assert entry["totals"]["jobs"] == 1
        assert entry["totals"]["stages"] == len(
            entry["jobs"][0]["stages"]
        )
        assert entry["totals"]["records"] > 0
        assert entry["totals"]["retries"] == 0

    def test_stage_entries_carry_all_views(self, entry):
        stage = entry["jobs"][0]["stages"][0]
        for key in (
            "kind", "tasks", "records", "shuffle_records",
            "shuffle_bytes", "measured_seconds", "simulated_seconds",
            "failed_attempt_seconds", "retries", "stragglers",
        ):
            assert key in stage
        assert stage["simulated_seconds"] > 0

    def test_per_stage_simulated_sums_close_to_job(self, entry):
        """Stage costs are the per-stage terms of the job cost; the job
        adds only job-level overheads on top, so the stage sum must not
        exceed the job figure."""
        job = entry["jobs"][0]
        stage_sum = sum(
            stage["simulated_seconds"] for stage in job["stages"]
        )
        assert 0 < stage_sum <= job["simulated_seconds"] + 1e-9


class TestPersistence:
    def test_save_load_round_trip(self, entry, tmp_path):
        path = str(tmp_path / "report.json")
        report = RunReport("baseline", entries=[entry],
                           meta={"note": "x"})
        report.save(path)
        loaded = RunReport.load(path)
        assert loaded.label == "baseline"
        assert loaded.meta == {"note": "x"}
        assert loaded.entries == [entry]

    def test_schema_version_checked(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text('{"schema_version": %d, "entries": []}'
                        % (SCHEMA_VERSION + 1))
        with pytest.raises(ValueError, match="schema_version"):
            RunReport.load(str(path))

    def test_entry_for(self, entry):
        report = RunReport("r", entries=[entry])
        assert report.entry_for("engine", 60) is entry
        assert report.entry_for("engine", 61) is None


def synthetic_entry(system, x, seconds, stage_seconds=None):
    stages = [
        {
            "stage_id": i,
            "kind": "narrow",
            "origin": "",
            "meta": False,
            "simulated_seconds": s,
            "measured_seconds": s / 10.0,
        }
        for i, s in enumerate(stage_seconds or [seconds])
    ]
    return {
        "system": system,
        "x": x,
        "status": "ok",
        "simulated_seconds": seconds,
        "measured_task_seconds": seconds / 10.0,
        "measured_wall_seconds": seconds / 5.0,
        "jobs": [{"stages": stages}],
    }


class TestCompare:
    def test_identical_reports_are_ok(self):
        a = RunReport("a", entries=[synthetic_entry("s", 1, 10.0)])
        b = RunReport("b", entries=[synthetic_entry("s", 1, 10.0)])
        diff = RunReport.compare(a, b)
        assert not diff.has_regressions
        assert [d.verdict() for d in diff.entry_deltas] == ["ok"]

    def test_regression_flagged_past_threshold(self):
        a = RunReport("a", entries=[synthetic_entry("s", 1, 10.0)])
        b = RunReport("b", entries=[synthetic_entry("s", 1, 14.0)])
        diff = RunReport.compare(a, b, threshold=0.25)
        assert diff.has_regressions
        (delta,) = diff.regressions
        assert delta.key == "s@1"
        assert delta.verdict() == "REGRESSION"
        assert "REGRESSION" in diff.render()

    def test_growth_below_threshold_is_ok(self):
        a = RunReport("a", entries=[synthetic_entry("s", 1, 10.0)])
        b = RunReport("b", entries=[synthetic_entry("s", 1, 11.0)])
        assert not RunReport.compare(a, b, threshold=0.25).has_regressions

    def test_improvement_flagged(self):
        a = RunReport("a", entries=[synthetic_entry("s", 1, 10.0)])
        b = RunReport("b", entries=[synthetic_entry("s", 1, 5.0)])
        diff = RunReport.compare(a, b)
        (delta,) = diff.entry_deltas
        assert delta.improvement
        assert not diff.has_regressions

    def test_min_seconds_floor_suppresses_noise(self):
        """A 10x blowup of a microsecond-scale stage is not a
        regression."""
        a = RunReport("a", entries=[synthetic_entry("s", 1, 1e-5)])
        b = RunReport("b", entries=[synthetic_entry("s", 1, 1e-4)])
        assert not RunReport.compare(a, b).has_regressions

    def test_stage_level_regression_detected(self):
        a = RunReport(
            "a",
            entries=[synthetic_entry("s", 1, 10.0, [5.0, 5.0])],
        )
        b = RunReport(
            "b",
            entries=[synthetic_entry("s", 1, 10.5, [5.0, 5.5])],
        )
        diff = RunReport.compare(a, b, threshold=0.05)
        assert diff.stage_regressions
        assert "job0/stage1" in diff.stage_regressions[0].key

    def test_missing_and_added_entries(self):
        a = RunReport("a", entries=[synthetic_entry("s", 1, 10.0)])
        b = RunReport("b", entries=[synthetic_entry("s", 2, 10.0)])
        diff = RunReport.compare(a, b)
        assert diff.missing == ["s@1"]
        assert diff.added == ["s@2"]
        assert not diff.entry_deltas

    def test_metric_selection(self):
        a = RunReport("a", entries=[synthetic_entry("s", 1, 10.0)])
        b = RunReport("b", entries=[synthetic_entry("s", 1, 10.0)])
        # Same simulated, but hand-tweak the candidate's wall clock.
        b.entries[0]["measured_wall_seconds"] = 100.0
        assert not RunReport.compare(a, b, metric="simulated")\
            .has_regressions
        assert RunReport.compare(a, b, metric="wall").has_regressions
        with pytest.raises(ValueError):
            RunReport.compare(a, b, metric="bogus").has_regressions

    def test_oom_entries_compare_without_crashing(self):
        oom = synthetic_entry("s", 1, 10.0)
        oom["status"] = "oom"
        oom["simulated_seconds"] = None
        a = RunReport("a", entries=[synthetic_entry("s", 1, 10.0)])
        b = RunReport("b", entries=[oom])
        diff = RunReport.compare(a, b)
        assert not diff.has_regressions
        (delta,) = diff.entry_deltas
        assert delta.after is None

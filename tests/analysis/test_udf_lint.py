"""NPL1xx construct lint: one positive and one clean case per code."""

import pytest

from repro.analysis import analyze_source

HEADER = "from repro.lang import nested_udf\n\n\n"

MARK = "# !"


def lint(body):
    return analyze_source(HEADER + body, filename="case.py")


def marked_line(body):
    """1-based line (in the full source) of the statement under test."""
    for index, text in enumerate((HEADER + body).splitlines(), start=1):
        if MARK in text:
            return index
    raise AssertionError("no marked line in case body")


POSITIVE_CASES = {
    "NPL101-try": (
        "NPL101",
        """\
@nested_udf
def f(x):
    try:  # !
        y = x
    except ValueError:
        y = 0
    return y
""",
    ),
    "NPL102-yield": (
        "NPL102",
        """\
@nested_udf
def f(x):
    yield x  # !
""",
    ),
    "NPL103-await": (
        "NPL103",
        """\
@nested_udf
async def f(x):
    return await x  # !
""",
    ),
    "NPL103-async-for": (
        "NPL103",
        """\
@nested_udf
async def f(xs):
    y = 0
    async for x in xs:  # !
        y = x
    return y
""",
    ),
    "NPL104-global": (
        "NPL104",
        """\
COUNTER = 0

@nested_udf
def f(x):
    global COUNTER  # !
    COUNTER = x
    return x
""",
    ),
    "NPL104-nonlocal": (
        "NPL104",
        """\
def outer():
    total = 0

    @nested_udf
    def f(x):
        nonlocal total  # !
        total = x
        return x

    return f
""",
    ),
    "NPL105-with": (
        "NPL105",
        """\
@nested_udf
def f(path):
    with open(path) as handle:  # !
        data = handle.read()
    return data
""",
    ),
    "NPL106-match": (
        "NPL106",
        """\
@nested_udf
def f(x):
    match x:  # !
        case 0:
            y = 1
        case _:
            y = 2
    return y
""",
    ),
    "NPL107-break": (
        "NPL107",
        """\
@nested_udf
def f(x):
    while x > 0:
        x = x - 1
        break  # !
    return x
""",
    ),
    "NPL107-continue": (
        "NPL107",
        """\
@nested_udf
def f(x):
    total = 0
    for i in range(3):
        continue  # !
    return total
""",
    ),
    "NPL108-return-in-if": (
        "NPL108",
        """\
@nested_udf
def f(x):
    if x > 0:
        return x  # !
    return 0
""",
    ),
    "NPL109-while-else": (
        "NPL109",
        """\
@nested_udf
def f(x):
    while x > 0:  # !
        x = x - 1
    else:
        x = -1
    return x
""",
    ),
    "NPL109-for-else": (
        "NPL109",
        """\
@nested_udf
def f(x):
    for i in range(3):  # !
        x = x + i
    else:
        x = -1
    return x
""",
    ),
    "NPL110-non-range": (
        "NPL110",
        """\
@nested_udf
def f(xs):
    total = 0
    for x in xs:  # !
        total = total + x
    return total
""",
    ),
    "NPL110-zero-step": (
        "NPL110",
        """\
@nested_udf
def f(x):
    total = 0
    for i in range(0, 10, 0):  # !
        total = total + i
    return total
""",
    ),
    "NPL110-tuple-target": (
        "NPL110",
        """\
@nested_udf
def f(x):
    total = 0
    for a, b in range(3):  # !
        total = total + a
    return total
""",
    ),
    "NPL111-staged-name": (
        "NPL111",
        """\
@nested_udf
def f(x):
    __mz_s = x  # !
    return __mz_s
""",
    ),
    "NPL120-captured-method": (
        "NPL120",
        """\
@nested_udf
def f(x):
    seen.add(x)  # !
    return x
""",
    ),
    "NPL120-captured-subscript": (
        "NPL120",
        """\
@nested_udf
def f(x):
    table[x] = 1  # !
    return x
""",
    ),
    "NPL121-range-rebind": (
        "NPL121",
        """\
@nested_udf
def f(x):
    range = x  # !
    total = 0
    for i in range(3):
        total = total + i
    return total
""",
    ),
    "NPL122-nested-def-flow": (
        "NPL122",
        """\
@nested_udf
def f(x):
    def countdown(y):  # !
        while y > 0:
            y = y - 1
        return y
    return countdown(x)
""",
    ),
    "NPL123-del": (
        "NPL123",
        """\
@nested_udf
def f(x):
    y = x
    del y  # !
    return x
""",
    ),
}


@pytest.mark.parametrize(
    "expected_code,body",
    list(POSITIVE_CASES.values()),
    ids=list(POSITIVE_CASES),
)
def test_positive_case_reports_code_at_marked_line(expected_code, body):
    diags = lint(body)
    matching = [d for d in diags if d.code == expected_code]
    assert matching, "expected %s, got %r" % (expected_code, diags)
    diag = matching[0]
    assert diag.line == marked_line(body)
    assert diag.col >= 1
    assert diag.file == "case.py"


CLEAN_CASES = {
    "while-accumulation": """\
@nested_udf
def f(x):
    total = 0
    while total < x:
        total = total + 1
    return total
""",
    "if-both-branches": """\
@nested_udf
def f(x):
    if x > 0:
        y = x
    else:
        y = -x
    return y
""",
    "for-range-with-step": """\
@nested_udf
def f(x):
    total = 0
    for i in range(0, x, 2):
        total = total + i
    return total
""",
    "lambda-is-own-scope": """\
@nested_udf
def f(x):
    double = lambda y: y * 2
    return double(x)
""",
    "local-list-mutation": """\
@nested_udf
def f(x):
    acc = []
    acc.append(x)
    return acc
""",
    "nested-def-without-flow": """\
@nested_udf
def f(x):
    def double(y):
        return y * 2
    return double(x)
""",
    "undecorated-function-not-scanned": """\
def helper(x):
    try:
        return x
    except ValueError:
        return 0
""",
}


@pytest.mark.parametrize(
    "body", list(CLEAN_CASES.values()), ids=list(CLEAN_CASES)
)
def test_clean_case_has_no_diagnostics(body):
    assert lint(body) == []


def test_multiple_findings_are_sorted_by_position():
    body = """\
@nested_udf
def f(x):
    global x  # first
    yield x  # second
"""
    diags = lint(body)
    # the global declaration also refutes purity (NPL501 at the same
    # line); position ordering puts it between the construct findings
    assert [d.code for d in diags] == ["NPL104", "NPL501", "NPL102"]
    assert diags[0].line < diags[-1].line


def test_syntax_error_degrades_to_npl001():
    diags = analyze_source("def broken(:\n", filename="bad.py")
    assert [d.code for d in diags] == ["NPL001"]
    assert diags[0].severity == "info"


# ---------------------------------------------------------------------------
# analyze_udf on a live function: locations must be file-absolute.
# ---------------------------------------------------------------------------


def _udf_with_try(x):
    try:  # npl101-live-marker
        return x
    except ValueError:
        return 0


def test_analyze_udf_reports_absolute_file_positions():
    import inspect

    from repro.analysis import analyze_udf

    diags = analyze_udf(_udf_with_try, closure=False)
    assert [d.code for d in diags] == ["NPL101"]
    lines, start = inspect.getsourcelines(_udf_with_try)
    marker_offset = next(
        index for index, text in enumerate(lines)
        if "npl101-live" + "-marker" in text
    )
    assert diags[0].line == start + marker_offset
    assert diags[0].file.endswith("test_udf_lint.py")

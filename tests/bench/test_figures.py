"""Figure experiments: structural smoke tests and shape assertions.

These run the ``quick`` variants and assert the *qualitative* properties
EXPERIMENTS.md records: who wins, who fails, and how curves move.  They
are the regression net for the reproduction itself.
"""

import pytest

from repro.bench import figures


@pytest.fixture(scope="module")
def fig1():
    return figures.fig1_kmeans_motivation("quick")


@pytest.fixture(scope="module")
def fig5():
    return figures.fig5_bounce_rate_weak_scaling("quick")


class TestFig1Shape:
    def test_ideal_is_constant(self, fig1):
        xs = fig1.x_values()
        times = [fig1.seconds(figures.IDEAL, x) for x in xs]
        assert max(times) / min(times) < 1.05

    def test_matryoshka_tracks_ideal(self, fig1):
        for x in fig1.x_values():
            ratio = (
                fig1.seconds(figures.MATRYOSHKA, x)
                / fig1.seconds(figures.IDEAL, x)
            )
            assert ratio < 2.0

    def test_inner_parallel_grows_with_configs(self, fig1):
        xs = fig1.x_values()
        first = fig1.seconds(figures.INNER, xs[0])
        last = fig1.seconds(figures.INNER, xs[-1])
        assert last > 5 * first

    def test_outer_parallel_shrinks_with_configs(self, fig1):
        xs = fig1.x_values()
        first = fig1.seconds(figures.OUTER, xs[0])
        last = fig1.seconds(figures.OUTER, xs[-1])
        assert first > 5 * last

    def test_outer_is_orders_slower_at_one_config(self, fig1):
        assert fig1.speedup(figures.OUTER, figures.IDEAL, 1) > 30

    def test_matryoshka_beats_both_at_the_crossover(self, fig1):
        """The paper's 'gray area': even the better workaround stays
        well above Matryoshka in the middle of the sweep."""
        xs = fig1.x_values()
        mid = xs[len(xs) // 2]
        best_workaround = min(
            fig1.seconds(figures.INNER, mid),
            fig1.seconds(figures.OUTER, mid),
        )
        assert best_workaround > 1.5 * fig1.seconds(
            figures.MATRYOSHKA, mid
        )


class TestFig5Shape:
    def test_outer_and_diql_oom_everywhere(self, fig5):
        for x in fig5.x_values():
            assert fig5.result_for(figures.OUTER, x).status == "oom"
            assert fig5.result_for(figures.DIQL, x).status == "oom"

    def test_matryoshka_nearly_constant(self, fig5):
        times = [
            fig5.seconds(figures.MATRYOSHKA, x)
            for x in fig5.x_values()
        ]
        assert max(times) / min(times) < 1.3

    def test_matryoshka_wins_at_many_groups(self, fig5):
        x = fig5.x_values()[-1]
        assert fig5.speedup(figures.INNER, figures.MATRYOSHKA, x) > 3

    def test_inner_competitive_at_few_groups(self, fig5):
        """Sec. 9.4: inner-parallel is slightly *faster* at 4-32 groups
        because Matryoshka pays memory pressure on the full input."""
        x = fig5.x_values()[0]
        ratio = fig5.speedup(figures.INNER, figures.MATRYOSHKA, x)
        assert ratio < 1.5


class TestFig6Shape:
    def test_matryoshka_never_loses_to_diql(self):
        sweep = figures.fig6_diql_comparison("quick")
        for x in sweep.x_values():
            diql = sweep.seconds(figures.DIQL, x)
            ours = sweep.seconds(figures.MATRYOSHKA, x)
            assert ours is not None
            if diql is not None:
                assert ours <= diql * 1.05


class TestFig7Shape:
    def test_skew_barely_affects_matryoshka(self):
        sweep = figures.fig7_skew("quick")
        xs = sweep.x_values()
        base = sweep.seconds(figures.MATRYOSHKA, xs[0])
        skewed = sweep.seconds(figures.MATRYOSHKA, xs[-1])
        assert skewed <= base * 1.15

    def test_outer_parallel_fails_under_this_load(self):
        sweep = figures.fig7_skew("quick")
        for x in sweep.x_values():
            assert sweep.result_for(figures.OUTER, x).status == "oom"


class TestFig8Shape:
    def test_optimizer_always_tracks_best_join_strategy(self):
        sweep = figures.fig8_join_strategies("quick")
        for x in sweep.x_values():
            fixed = [
                sweep.seconds("broadcast", x),
                sweep.seconds("repartition", x),
            ]
            survivors = [t for t in fixed if t is not None]
            optimizer = sweep.seconds("optimizer", x)
            assert optimizer is not None
            assert optimizer <= min(survivors) * 1.05

    def test_each_fixed_strategy_fails_somewhere(self):
        sweep = figures.fig8_join_strategies("quick")
        assert any(
            sweep.result_for("broadcast", x).status == "oom"
            for x in sweep.x_values()
        )
        assert any(
            sweep.result_for("repartition", x).status == "oom"
            for x in sweep.x_values()
        )

    def test_half_lifted_optimizer_is_optimal(self):
        sweep = figures.fig8_half_lifted("quick")
        for x in sweep.x_values():
            times = [
                sweep.seconds("broadcast-scalar", x),
                sweep.seconds("broadcast-primary", x),
            ]
            survivors = [t for t in times if t is not None]
            assert sweep.seconds("optimizer", x) <= min(
                survivors
            ) * 1.05


class TestAblationShape:
    def test_partition_sizing_helps(self):
        sweep = figures.ablation_partition_counts("quick")
        for x in sweep.x_values():
            assert sweep.seconds("auto (Sec. 8.1)", x) < sweep.seconds(
                "engine default", x
            )

"""Trace invariants: the structural contract between executor and cost model.

The cost model trusts the execution trace blindly, so the executor must
produce traces shaped like what a Spark scheduler would report.  This
module states that contract as checkable invariants and verifies them --
the executor runs :func:`validate_job` after every completed job (see
``ClusterConfig.validate_traces``), and the bench harness re-validates
whole traces before converting them to simulated seconds.

Invariants checked per job:

* **Stage kinds** come from the known vocabulary (``input``, ``shuffle``,
  ``union``, ``coalesce``, ``cached``) and stage ids are consecutive.
* **Counts are non-negative**: task records, shuffle reads/writes, spills.
* **Narrow stages do not shuffle**: only ``shuffle`` stages may carry
  shuffle read/write volumes.
* **Every shuffled record is credited exactly once**: a shuffle stage
  reads exactly what the map side wrote for it
  (``shuffle_read_records == shuffle_write_records``), and its tasks
  process at least every record read.  A wide operator therefore
  schedules exactly one reduce stage -- the cogroup double-count this
  guards against left a second, already-folded stage in the job.
* **Shuffle reads never exceed upstream writes**: a stage cannot read
  more records over the network than earlier stages of the job produced.
* **Shuffle stages name their origin**: every scheduled reduce stage
  records the wide plan node that opened it.
* **Runtime measurements are sane**: measured per-task seconds, retry
  counts, and straggler counts are non-negative.

This module also hosts the parity invariants: the serial and
process-pool task runtimes (:func:`assert_backend_parity`) and the
serial and DAG stage schedules (:func:`assert_schedule_parity`) must
each be observationally identical -- same results, same trace shape --
for any program.  The job invariants themselves are schedule-agnostic:
under the DAG schedule, stages are recorded into per-unit slices and
merged in plan order, so consecutive stage ids and in-job upstream
ordering hold exactly as they do serially (overlap never reorders the
*recorded* trace).
"""

from ..errors import PlanError

#: Stage kinds the executor may emit.  ``input``/``shuffle`` stages are
#: scheduled task sets; ``union``/``coalesce``/``cached`` are narrow
#: continuations whose work is credited to consuming stages.
VALID_STAGE_KINDS = frozenset(
    {"input", "shuffle", "union", "coalesce", "cached"}
)

SCHEDULED_STAGE_KINDS = frozenset({"input", "shuffle"})


class TraceInvariantError(PlanError):
    """A recorded trace violates the executor/cost-model contract."""


def _fail(job, stage, message):
    where = "job %d" % job.job_id
    if stage is not None:
        where += ", stage %d (%s)" % (stage.stage_id, stage.kind)
    raise TraceInvariantError("%s: %s" % (where, message))


def validate_stage(job, stage, upstream_records):
    """Check one stage; ``upstream_records`` is the total record count of
    the job's earlier stages."""
    if stage.kind not in VALID_STAGE_KINDS:
        _fail(job, stage, "unknown stage kind %r" % stage.kind)
    for count in stage.task_records:
        if count < 0:
            _fail(job, stage, "negative task record count %d" % count)
    if stage.shuffle_read_records < 0:
        _fail(job, stage, "negative shuffle read volume")
    if stage.shuffle_write_records < 0:
        _fail(job, stage, "negative shuffle write volume")
    if stage.spilled_records < 0:
        _fail(job, stage, "negative spill volume")
    if stage.shuffle_records_saved < 0:
        _fail(job, stage, "negative elided-shuffle volume")
    for seconds in stage.task_seconds:
        if seconds < 0:
            _fail(job, stage, "negative measured task seconds")
    if stage.task_retries < 0:
        _fail(job, stage, "negative task retry count")
    if stage.straggler_tasks < 0:
        _fail(job, stage, "negative straggler count")
    if stage.kind != "shuffle":
        if stage.shuffle_read_records or stage.shuffle_write_records:
            _fail(
                job, stage,
                "narrow %r stage carries shuffle volume" % stage.kind,
            )
        if stage.shuffle_records_saved:
            _fail(
                job, stage,
                "narrow %r stage claims elided-shuffle savings"
                % stage.kind,
            )
        return
    if not stage.origin:
        _fail(
            job, stage,
            "shuffle stage does not name the wide operator that "
            "opened it",
        )
    if stage.shuffle_read_records != stage.shuffle_write_records:
        _fail(
            job, stage,
            "reads %d records but the map side wrote %d -- each "
            "shuffled record must be credited exactly once"
            % (stage.shuffle_read_records, stage.shuffle_write_records),
        )
    if stage.total_records < stage.shuffle_read_records:
        _fail(
            job, stage,
            "tasks process %d records but read %d from the shuffle"
            % (stage.total_records, stage.shuffle_read_records),
        )
    if stage.shuffle_read_records > upstream_records:
        _fail(
            job, stage,
            "reads %d records but upstream stages only produced %d"
            % (stage.shuffle_read_records, upstream_records),
        )


def validate_job(job):
    """Check every invariant for one completed job."""
    upstream = 0
    for index, stage in enumerate(job.stages):
        if stage.stage_id != index:
            _fail(
                job, stage,
                "stage ids not consecutive (expected %d)" % index,
            )
        validate_stage(job, stage, upstream)
        upstream += stage.total_records
    for name in ("broadcast_records", "broadcast_meta_records",
                 "collected_records", "saved_records",
                 "saved_meta_records"):
        if getattr(job, name) < 0:
            _fail(job, None, "negative %s" % name)


def validate_trace(trace):
    """Check every job of an :class:`~repro.engine.metrics.ExecutionTrace`."""
    for job in trace.jobs:
        validate_job(job)
    return trace


# ----------------------------------------------------------------------
# Backend parity
# ----------------------------------------------------------------------


class BackendParityError(PlanError):
    """Two task-runtime backends disagreed on the same program."""


def trace_signature(trace):
    """The backend-independent shape of a trace.

    Everything the cost model consumes -- stage kinds, per-task record
    counts, shuffle/spill volumes, broadcast and action counters -- but
    none of the measured quantities (wall-clock, retries, stragglers),
    which legitimately differ between backends and runs.
    """
    signature = []
    for job in trace.jobs:
        stages = tuple(
            (
                stage.kind,
                stage.meta,
                stage.origin,
                tuple(stage.task_records),
                stage.shuffle_read_records,
                stage.shuffle_write_records,
                stage.shuffle_records_saved,
                stage.spilled_records,
            )
            for stage in job.stages
        )
        signature.append(
            (
                job.action,
                job.label,
                stages,
                job.broadcast_records,
                job.broadcast_meta_records,
                job.collected_records,
                job.saved_records,
                job.saved_meta_records,
            )
        )
    return tuple(signature)


def assert_backend_parity(program, config=None, backends=("serial",
                                                          "process"),
                          num_workers=2):
    """Run ``program(ctx)`` under each backend and demand identity.

    The invariant: a plan's collected results and its trace's record
    accounting are properties of the *plan*, not of where tasks run.
    Any divergence between backends is a runtime bug.

    Args:
        program: Callable taking a fresh ``EngineContext`` and
            returning the value to compare (typically collected
            results).
        config: Base :class:`~repro.engine.config.ClusterConfig`
            (default: ``laptop_config()``); its ``backend`` field is
            overridden per run.
        backends: Backend names to compare.
        num_workers: Worker count for process-pool runs.

    Returns:
        The result from the first backend, for further assertions.

    Raises:
        BackendParityError: On any mismatch in results or trace shape.
    """
    from dataclasses import replace

    from .config import laptop_config
    from .context import EngineContext

    if config is None:
        config = laptop_config()
    outputs = []
    for backend in backends:
        ctx = EngineContext(
            replace(config, backend=backend, num_workers=num_workers)
        )
        result = program(ctx)
        outputs.append((backend, result, trace_signature(ctx.trace)))
    reference_backend, reference_result, reference_trace = outputs[0]
    for backend, result, trace in outputs[1:]:
        if result != reference_result:
            raise BackendParityError(
                "backends %r and %r returned different results:\n"
                "%r\nvs\n%r"
                % (reference_backend, backend, reference_result, result)
            )
        if trace != reference_trace:
            raise BackendParityError(
                "backends %r and %r produced different traces:\n"
                "%r\nvs\n%r"
                % (reference_backend, backend, reference_trace, trace)
            )
    return reference_result


# ----------------------------------------------------------------------
# Schedule parity
# ----------------------------------------------------------------------


class ScheduleParityError(PlanError):
    """Two stage schedules disagreed on the same program."""


def assert_schedule_parity(program, config=None,
                           schedulers=("serial", "dag"),
                           num_workers=2):
    """Run ``program(ctx)`` under each stage schedule and demand identity.

    The invariant: *when* stages run -- one at a time in plan order, or
    overlapped as their inputs complete -- must not change collected
    results, record accounting, or shuffle volumes.  Any divergence
    between the serial and DAG schedules is a scheduling bug.

    Args:
        program: Callable taking a fresh ``EngineContext`` and
            returning the value to compare.
        config: Base :class:`~repro.engine.config.ClusterConfig`
            (default: ``laptop_config()``); its ``scheduler`` field is
            overridden per run.
        schedulers: Schedule names to compare.
        num_workers: Worker count when ``config`` uses the process
            backend.

    Returns:
        The result from the first schedule, for further assertions.

    Raises:
        ScheduleParityError: On any mismatch in results or trace shape.
    """
    from dataclasses import replace

    from .config import laptop_config
    from .context import EngineContext

    if config is None:
        config = laptop_config()
    outputs = []
    for scheduler in schedulers:
        ctx = EngineContext(
            replace(config, scheduler=scheduler, num_workers=num_workers)
        )
        try:
            result = program(ctx)
            outputs.append(
                (scheduler, result, trace_signature(ctx.trace))
            )
        finally:
            ctx.close()
    reference_scheduler, reference_result, reference_trace = outputs[0]
    for scheduler, result, trace in outputs[1:]:
        if result != reference_result:
            raise ScheduleParityError(
                "schedulers %r and %r returned different results:\n"
                "%r\nvs\n%r"
                % (reference_scheduler, scheduler, reference_result,
                   result)
            )
        if trace != reference_trace:
            raise ScheduleParityError(
                "schedulers %r and %r produced different traces:\n"
                "%r\nvs\n%r"
                % (reference_scheduler, scheduler, reference_trace,
                   trace)
            )
    return reference_result

"""The job service: a long-lived multi-tenant daemon over one engine.

:class:`JobService` keeps a single :class:`~repro.engine.context.
EngineContext` alive across an unbounded stream of jobs from many
tenants.  The pieces:

* **Submission** (:meth:`JobService.submit`): a *program* -- any
  callable taking a :class:`JobContext` -- is queued under a tenant and
  returns a :class:`JobHandle` future immediately; admission control
  (:class:`~repro.serve.queue.JobQueue`) rejects it instead when the
  tenant's quota or the global queue depth is exhausted.
* **Scheduling**: a pool of worker-slot threads pulls jobs off the
  queue under deficit round-robin, so under contention tenants drain
  in proportion to their weights.  With ``num_slots=1`` the execution
  order *is* the DRR order and therefore deterministic for a given
  seed; the recent dequeue order is exposed as :meth:`schedule` so
  tests can assert it.
* **Execution**: each job runs inside ``ctx.begin_job()`` /
  ``ctx.end_job()``, so its engine jobs are extracted from the trace
  as they finish (:class:`~repro.engine.context.JobAccounting`) and
  the shared context's retained state stays bounded no matter how many
  jobs the daemon serves.
* **Artifacts**: programs resolve shared inputs through
  :meth:`JobContext.dataset` / :meth:`JobContext.broadcast`, backed by
  the memory-bounded :class:`~repro.serve.artifacts.ArtifactCache`.
  Artifacts a job resolves stay pinned until the job ends; eviction of
  a bag artifact calls :meth:`~repro.engine.bag.Bag.uncache`, which
  also invalidates the subtree's adoptable shuffle layouts.
* **Reporting**: per-tenant counters (:class:`~repro.serve.tenants.
  TenantStats`), a bounded window of recent per-job metrics for
  :func:`~repro.observe.report.entry_from_jobs`, and -- when
  ``report_dir`` is set -- one JSONL job log plus one ``RunReport``
  JSON per tenant.
"""

import collections
import json
import os
import threading
import time

from ..engine.broadcast import Broadcast
from ..engine.context import EngineContext
from ..observe.report import RunReport, entry_from_jobs
from .artifacts import KIND_BAG, KIND_BROADCAST, ArtifactCache
from .queue import (
    REJECT_SHUTDOWN,
    AdmissionRejected,
    JobQueue,
    PendingJob,
)
from .tenants import TenantConfig, TenantStats

__all__ = ["JobHandle", "JobContext", "JobService"]

#: How many recent dequeues :meth:`JobService.schedule` retains.
SCHEDULE_WINDOW = 1024
#: How many recent engine-job metrics each tenant retains for reports.
REPORT_WINDOW = 256


class JobHandle:
    """Future for one submitted job.

    States: ``"pending"`` -> ``"running"`` -> ``"done"`` | ``"failed"``.
    """

    __slots__ = ("tenant", "label", "state", "accounting",
                 "queue_wait_seconds", "wall_seconds", "_value",
                 "_error", "_event")

    def __init__(self, tenant, label=""):
        self.tenant = tenant
        self.label = label
        self.state = "pending"
        self.accounting = None
        self.queue_wait_seconds = None
        self.wall_seconds = None
        self._value = None
        self._error = None
        self._event = threading.Event()

    def done(self):
        return self._event.is_set()

    def result(self, timeout=None):
        """Block for the program's return value.

        Re-raises the program's exception if it failed; raises
        :class:`TimeoutError` if the job has not finished in time.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                "job %r (tenant %r) not finished within %rs"
                % (self.label, self.tenant, timeout)
            )
        if self._error is not None:
            raise self._error
        return self._value

    def _mark_running(self):
        self.state = "running"

    def _complete(self, value, error, accounting, queue_wait, wall):
        self._value = value
        self._error = error
        self.accounting = accounting
        self.queue_wait_seconds = queue_wait
        self.wall_seconds = wall
        self.state = "failed" if error is not None else "done"
        self._event.set()

    def __repr__(self):
        return (
            "JobHandle(tenant=%r, label=%r, state=%s)"
            % (self.tenant, self.label, self.state)
        )


class JobContext:
    """What a program sees while it runs: the engine + shared artifacts.

    Attributes:
        ctx: The service's shared
            :class:`~repro.engine.context.EngineContext`.  Programs use
            it exactly as in one-shot scripts (``ctx.bag_of`` etc.).
        tenant: The owning tenant's name.
    """

    __slots__ = ("ctx", "tenant", "_service", "_pinned")

    def __init__(self, service, tenant):
        self._service = service
        self.ctx = service.ctx
        self.tenant = tenant
        self._pinned = []

    def dataset(self, key, build):
        """A shared cached bag, built once and reused across jobs.

        ``build(ctx)`` must return a :class:`~repro.engine.bag.Bag`;
        it is invoked only on a cache miss and the result is marked
        ``cache()``.  The bag stays pinned (safe from eviction) until
        this job ends.  Keys are service-global: tenants naming the
        same key share one artifact.
        """
        return self._service._artifact(self, key, build, KIND_BAG)

    def broadcast(self, key, build):
        """A shared broadcast value, shipped once and reused.

        ``build(ctx)`` returns the payload (or a ready
        :class:`~repro.engine.broadcast.Broadcast`); misses wrap it via
        ``ctx.broadcast``.
        """
        return self._service._artifact(self, key, build, KIND_BROADCAST)

    def gather(self, *thunks):
        """Nested parallelism inside one job (``ctx.gather``)."""
        return self.ctx.gather(*thunks)

    def _release(self):
        """Re-charge and unpin this job's artifacts (job is over)."""
        for key in self._pinned:
            self._service._cache.charge(key)
        for key in self._pinned:
            self._service._cache.unpin(key)
        del self._pinned[:]


class JobService:
    """A long-lived multi-tenant job daemon over one engine context.

    Args:
        config: Cluster config for a service-owned context (ignored if
            ``ctx`` is given).
        ctx: Adopt an existing context instead of owning one -- the
            bench harness passes its own so the regression gate can
            cost the full trace.  Adopted contexts are not closed on
            shutdown.
        num_slots: Worker threads executing jobs.  1 (the default)
            makes the execution order exactly the DRR dequeue order --
            deterministic and assertable; more slots trade that for
            concurrency.
        cache_limit_bytes: Artifact-cache budget
            (:class:`~repro.serve.artifacts.ArtifactCache`); 0 runs
            the service "cold" (nothing retained across jobs).
        max_depth / quantum / seed: Queue admission + DRR knobs
            (:class:`~repro.serve.queue.JobQueue`).
        report_dir: When set, created on ``start()``; each tenant gets
            ``<tenant>.jsonl`` (one record per job) and -- on
            ``write_reports()``/``shutdown()`` -- ``<tenant>-report
            .json`` (a :class:`~repro.observe.report.RunReport`).
        retain_trace: Keep engine jobs in the context trace instead of
            draining them per job.  Only for harnesses that read
            ``ctx.trace`` afterwards; leaves growth unbounded.
    """

    def __init__(self, config=None, ctx=None, num_slots=1,
                 cache_limit_bytes=256 * 1024 * 1024, max_depth=256,
                 quantum=1.0, seed=0, report_dir=None,
                 retain_trace=False):
        if num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        self._owns_ctx = ctx is None
        self.ctx = ctx if ctx is not None else EngineContext(config)
        self.num_slots = num_slots
        self.report_dir = report_dir
        self.retain_trace = retain_trace
        self._queue = JobQueue(
            max_depth=max_depth, quantum=quantum, seed=seed
        )
        self._cache = ArtifactCache(
            cache_limit_bytes, on_evict=self._on_evict
        )
        self._lock = threading.Lock()
        # Monotonic source of never-matching fingerprints for builders
        # whose determinism the effect analysis refuted: each of their
        # jobs gets a fresh fingerprint, so the cache never serves a
        # value one nondeterministic build produced to another.
        self._volatile_fingerprints = 0
        self._stats = {}
        self._recent_jobs = {}
        self._sinks = {}
        self._schedule = collections.deque(maxlen=SCHEDULE_WINDOW)
        self._threads = []
        self._inflight = 0
        self._stopping = False
        self._started = False
        self._started_at = None

    # -- tenants -------------------------------------------------------

    def add_tenant(self, tenant, weight=1.0, max_pending=16):
        """Register a tenant (name or :class:`TenantConfig`)."""
        if not isinstance(tenant, TenantConfig):
            tenant = TenantConfig(
                tenant, weight=weight, max_pending=max_pending
            )
        self._queue.add_tenant(tenant)
        with self._lock:
            self._stats[tenant.name] = TenantStats()
            self._recent_jobs[tenant.name] = collections.deque(
                maxlen=REPORT_WINDOW
            )
        return tenant

    # -- lifecycle -----------------------------------------------------

    def start(self):
        """Spawn the worker slots (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            self._started_at = time.monotonic()
        if self.report_dir:
            os.makedirs(self.report_dir, exist_ok=True)
        self._threads = [
            threading.Thread(
                target=self._worker, name="repro-serve-%d" % slot,
                daemon=True,
            )
            for slot in range(self.num_slots)
        ]
        for thread in self._threads:
            thread.start()
        return self

    def submit(self, tenant, program, label="", cost=1.0):
        """Queue ``program`` for ``tenant``; returns a :class:`JobHandle`.

        Raises :class:`~repro.serve.queue.AdmissionRejected` when
        admission control refuses the job (also counted in the
        tenant's ``rejected`` stat).
        """
        if not self._started:
            raise RuntimeError("service not started (call start())")
        handle = JobHandle(tenant, label)
        job = PendingJob(
            ticket=None, tenant=tenant, program=program,
            future=handle, label=label, cost=cost,
        )
        try:
            self._queue.submit(job)
        except AdmissionRejected:
            with self._lock:
                stats = self._stats.get(tenant)
                if stats is not None:
                    stats.record_rejection()
            raise
        with self._lock:
            self._stats[tenant].record_submit()
        return handle

    def await_result(self, handle, timeout=None):
        """Shorthand for ``handle.result(timeout)``."""
        return handle.result(timeout)

    def drain(self, timeout=None):
        """Refuse new jobs; wait for queued + running jobs to finish.

        Returns ``True`` once idle, ``False`` on timeout.  The queue's
        ``join`` counts jobs from admission until the worker slot
        acknowledges completion, so there is no window in which a
        dequeued-but-starting job looks idle.
        """
        self._queue.drain()
        return self._queue.join(timeout)

    def shutdown(self, drain=True, timeout=None):
        """Stop the service.

        ``drain=True`` (default) finishes queued jobs first;
        ``drain=False`` abandons them (their handles fail with
        :class:`~repro.serve.queue.AdmissionRejected`).  Flushes
        per-tenant reports, joins the workers, and closes the context
        if the service owns it.
        """
        if drain:
            self.drain(timeout)
        with self._lock:
            self._stopping = True
        self._queue.close()
        # Abandon whatever is still queued (no-op after a drain) before
        # the workers can race us to it, so drain=False means what it
        # says for all but the jobs already mid-flight.
        self._fail_abandoned()
        for thread in self._threads:
            thread.join(timeout)
        if self.report_dir:
            self.write_reports()
        for sink in self._sinks.values():
            sink.close()
        self._sinks.clear()
        if self._owns_ctx:
            self.ctx.close()
        return self

    def _fail_abandoned(self):
        """Fail handles of jobs still queued after a no-drain shutdown."""
        while True:
            job = self._queue.take(timeout=0)
            if job is None:
                return
            try:
                job.future._complete(
                    None,
                    AdmissionRejected(
                        job.tenant, REJECT_SHUTDOWN,
                        "abandoned by shutdown(drain=False)",
                    ),
                    None, 0.0, 0.0,
                )
            finally:
                self._queue.task_done()

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.shutdown()
        return False

    # -- worker slots --------------------------------------------------

    def _worker(self):
        while True:
            job = self._queue.take(timeout=0.05)
            if job is None:
                if self._stopped() and self._queue.is_idle:
                    return
                continue
            with self._lock:
                self._inflight += 1
                self._schedule.append((job.tenant, job.label))
            try:
                self._execute(job)
            finally:
                with self._lock:
                    self._inflight -= 1
                self._queue.task_done()

    def _stopped(self):
        with self._lock:
            return self._stopping

    def _execute(self, job):
        handle = job.future
        handle._mark_running()
        queue_wait = time.monotonic() - job.submitted_at
        started = time.monotonic()
        jc = JobContext(self, job.tenant)
        window = self.ctx.begin_job()
        value, error = None, None
        try:
            value = job.program(jc)
        except Exception as exc:  # noqa: BLE001 -- delivered via handle
            error = exc
        finally:
            accounting = self.ctx.end_job(
                window, drain=not self.retain_trace
            )
            jc._release()
        wall = time.monotonic() - started
        self._record(job, accounting, queue_wait, wall, error)
        handle._complete(value, error, accounting, queue_wait, wall)

    def _record(self, job, accounting, queue_wait, wall, error):
        with self._lock:
            stats = self._stats[job.tenant]
            stats.record_finished(
                queue_wait, wall, accounting, failed=error is not None
            )
            self._recent_jobs[job.tenant].extend(accounting.jobs)
            sink = self._job_sink(job.tenant)
        if sink is not None:
            record = {
                "tenant": job.tenant,
                "label": job.label,
                "status": "failed" if error is not None else "ok",
                "queue_wait_seconds": queue_wait,
                "wall_seconds": wall,
            }
            record.update(accounting.to_dict())
            if error is not None:
                record["error"] = repr(error)
            sink.write(record)

    def _job_sink(self, tenant):
        """Per-tenant JSONL job log (lazily opened; caller holds lock)."""
        if not self.report_dir:
            return None
        sink = self._sinks.get(tenant)
        if sink is None:
            sink = _JsonlJobLog(
                os.path.join(self.report_dir, "%s.jsonl" % tenant)
            )
            self._sinks[tenant] = sink
        return sink

    # -- artifacts -----------------------------------------------------

    def _artifact(self, jc, key, build, kind):
        def factory():
            value = build(self.ctx)
            if kind == KIND_BAG:
                return value.cache()
            if not isinstance(value, Broadcast):
                value = self.ctx.broadcast(value)
            return value

        value, hit = self._cache.get_or_build(
            key, factory, kind=kind, pin=True,
            fingerprint=self._artifact_fingerprint(build),
        )
        jc._pinned.append(key)
        with self._lock:
            stats = self._stats.get(jc.tenant)
            if stats is not None:
                stats.record_cache(hit)
        return value

    def _artifact_fingerprint(self, build):
        """Canonical identity of an artifact's builder program.

        Two jobs may share a cached artifact only when they would have
        built the same value, which requires (a) the same builder code
        -- captured by the canonical AST fingerprint
        (:func:`repro.analysis.effects.fingerprint_function`), which
        also covers the module-level helpers the builder calls -- and
        (b) a builder that produces the same value every run.  When
        the effect analysis *refutes* determinism, (b) provably fails:
        the builder gets a fresh, never-matching fingerprint per job,
        so cross-job reuse is never offered for it.  A builder whose
        source is unavailable keeps a stable opaque fingerprint
        (matching the pre-fingerprint behavior for artifacts the
        analysis cannot see into).
        """
        from ..analysis.effects import (
            analyze_effects,
            fingerprint_function,
        )

        if analyze_effects(build).deterministic is False:
            with self._lock:
                self._volatile_fingerprints += 1
                return "volatile:%d" % self._volatile_fingerprints
        digest = fingerprint_function(build)
        return digest if digest is not None else "opaque"

    def _on_evict(self, entry):
        """Cache eviction hook: release executor-side state too.

        ``Bag.uncache`` drops the materialized partitions *and* the
        subtree's origin->layout registry entries, so no later plan can
        adopt a layout whose backing partitions were just evicted.
        """
        if entry.kind == KIND_BAG:
            entry.value.uncache()

    @property
    def cache(self):
        return self._cache

    @property
    def queue(self):
        return self._queue

    # -- reporting -----------------------------------------------------

    def schedule(self):
        """Recent ``(tenant, label)`` dequeues, oldest first.

        With ``num_slots=1`` this is exactly the execution order the
        DRR policy chose (bounded to the last ``SCHEDULE_WINDOW``).
        """
        with self._lock:
            return list(self._schedule)

    def tenant_stats(self, tenant):
        with self._lock:
            return self._stats[tenant]

    def stats(self):
        """JSON-ready service snapshot: tenants, cache, queue, uptime."""
        elapsed = (
            time.monotonic() - self._started_at
            if self._started_at is not None else 0.0
        )
        with self._lock:
            tenants = {}
            for name, stats in self._stats.items():
                entry = stats.to_dict()
                entry["throughput_jobs_per_s"] = stats.throughput(
                    elapsed
                )
                entry["pending"] = self._queue.pending(name)
                tenants[name] = entry
            return {
                "uptime_seconds": elapsed,
                "inflight": self._inflight,
                "queue_depth": self._queue.depth,
                "tenants": tenants,
                "cache": self._cache.stats(),
                "schedule_seed": self._queue.seed,
                "cycle": self._queue.cycle_order(),
            }

    def tenant_report(self, tenant, label=None):
        """A :class:`~repro.observe.report.RunReport` for one tenant.

        Built from the tenant's retained window of recent engine-job
        metrics (last ``REPORT_WINDOW`` engine jobs), so it stays
        bounded on a long-lived service.
        """
        with self._lock:
            jobs = list(self._recent_jobs[tenant])
            stats = self._stats[tenant].to_dict()
        report = RunReport(
            "serve:%s" % tenant,
            meta={"tenant": tenant, "stats": stats},
        )
        report.add(
            entry_from_jobs(
                jobs, self.ctx.cost_model, system="serve",
                x=label if label is not None else tenant,
            )
        )
        return report

    def write_reports(self):
        """Write one RunReport JSON per tenant under ``report_dir``."""
        if not self.report_dir:
            raise ValueError("service has no report_dir")
        os.makedirs(self.report_dir, exist_ok=True)
        paths = []
        for tenant in sorted(self._stats):
            path = os.path.join(
                self.report_dir, "%s-report.json" % tenant
            )
            self.tenant_report(tenant).save(path)
            paths.append(path)
        return paths


class _JsonlJobLog:
    """Append-only JSONL job log (one file per tenant)."""

    __slots__ = ("path", "_file", "_lock")

    def __init__(self, path):
        self.path = path
        self._file = open(path, "a")
        self._lock = threading.Lock()

    def write(self, record):
        with self._lock:
            json.dump(record, self._file, separators=(",", ":"))
            self._file.write("\n")
            self._file.flush()

    def close(self):
        with self._lock:
            if not self._file.closed:
                self._file.close()

"""Tracer semantics and the ``resolve_tracer`` spec language."""

import threading

import pytest

from repro.observe import (
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    NullSink,
    Tracer,
    resolve_tracer,
)
from repro.observe.events import DRIVER_LANE
from repro.observe.tracer import DEFAULT_MAX_TASK_SPANS


class TestTracer:
    def test_instant(self):
        tracer = Tracer(MemorySink())
        tracer.instant("shuffle:x", "shuffle", records=10)
        (event,) = tracer.events()
        assert event.name == "shuffle:x"
        assert event.dur is None
        assert event.args == {"records": 10}
        assert tracer.emitted == 1

    def test_span_yields_mutable_args(self):
        tracer = Tracer(MemorySink())
        with tracer.span("job#0", "job", action="collect") as args:
            args["records"] = 42
        (event,) = tracer.events()
        assert event.is_span
        assert event.dur >= 0.0
        assert event.args == {"action": "collect", "records": 42}

    def test_span_emitted_with_error_on_exception(self):
        tracer = Tracer(MemorySink())
        with pytest.raises(ValueError):
            with tracer.span("job#0", "job"):
                raise ValueError("boom")
        (event,) = tracer.events()
        assert event.args["error"] == "ValueError"

    def test_spans_nest_by_time_containment(self):
        tracer = Tracer(MemorySink())
        with tracer.span("outer", "driver"):
            with tracer.span("inner", "job"):
                pass
        inner, outer = tracer.events()
        assert inner.name == "inner"
        assert outer.ts <= inner.ts
        assert inner.end <= outer.end

    def test_emit_anchored(self):
        tracer = Tracer(MemorySink())
        tracer.emit_anchored(
            "task:Map#0", "task", 100.0, -0.5, 0.25, "worker-9", pid=9
        )
        (event,) = tracer.events()
        assert event.ts == 99.5
        assert event.dur == 0.25
        assert event.lane == "worker-9"

    def test_thread_safety_no_lost_events(self):
        tracer = Tracer(MemorySink(capacity=None))

        def spam():
            for _ in range(200):
                tracer.instant("x", "fault")

        threads = [threading.Thread(target=spam) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert tracer.emitted == 800
        assert len(tracer.events()) == 800

    def test_max_task_spans_default_and_override(self):
        assert Tracer(MemorySink()).max_task_spans == (
            DEFAULT_MAX_TASK_SPANS
        )
        assert Tracer(MemorySink(), max_task_spans=5).max_task_spans == 5
        unlimited = Tracer(MemorySink(), max_task_spans=0)
        assert unlimited.max_task_spans == float("inf")

    def test_max_task_spans_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_MAX_TASKS", "7")
        assert Tracer(MemorySink()).max_task_spans == 7
        monkeypatch.setenv("REPRO_TRACE_MAX_TASKS", "0")
        assert Tracer(MemorySink()).max_task_spans == float("inf")


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.instant("x", "fault")
        with NULL_TRACER.span("y", "job") as args:
            args["k"] = 1
        NULL_TRACER.emit_anchored("z", "task", 0.0, 0.0, 0.0, "driver")
        assert NULL_TRACER.events() == []
        NULL_TRACER.close()


class TestResolveTracer:
    def test_none_without_env_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert resolve_tracer(None) is NULL_TRACER

    def test_env_memory(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        tracer = resolve_tracer(None)
        assert tracer.enabled
        assert isinstance(tracer.sink, MemorySink)

    def test_env_off_values(self, monkeypatch):
        for value in ("", "0", "off", "false", "no"):
            monkeypatch.setenv("REPRO_TRACE", value)
            assert resolve_tracer(None) is NULL_TRACER

    def test_env_path(self, monkeypatch, tmp_path):
        path = str(tmp_path / "t.jsonl")
        monkeypatch.setenv("REPRO_TRACE", path)
        tracer = resolve_tracer(None)
        assert isinstance(tracer.sink, JsonlSink)
        assert tracer.sink.path == path
        tracer.close()

    def test_bools(self):
        assert resolve_tracer(False) is NULL_TRACER
        tracer = resolve_tracer(True)
        assert tracer.enabled
        assert isinstance(tracer.sink, MemorySink)

    def test_null_spec_traces_but_retains_nothing(self):
        tracer = resolve_tracer("null")
        assert tracer.enabled
        assert isinstance(tracer.sink, NullSink)
        tracer.instant("x", "fault")
        assert tracer.events() == []

    def test_tracer_passthrough(self):
        tracer = Tracer(MemorySink())
        assert resolve_tracer(tracer) is tracer
        assert resolve_tracer(NULL_TRACER) is NULL_TRACER

    def test_sink_object_is_wrapped(self):
        sink = MemorySink()
        tracer = resolve_tracer(sink)
        assert tracer.sink is sink

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            resolve_tracer(3.14)

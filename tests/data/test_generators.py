"""Synthetic dataset generators."""

from collections import Counter

import pytest

from repro.data import (
    clustered_points,
    component_graph,
    grouped_edges,
    grouped_points,
    initial_centroids,
    visits_log,
)
from repro.tasks.graphs import connected_components_reference


class TestVisitsLog:
    def test_total_count_exact(self):
        records = visits_log(num_days=5, total_visits=300, seed=1)
        assert len(records) == 300

    def test_all_days_present(self):
        records = visits_log(num_days=8, total_visits=400, seed=1)
        assert {d for d, _ip in records} == {
            "day%d" % i for i in range(8)
        }

    def test_deterministic(self):
        a = visits_log(4, 100, seed=9)
        b = visits_log(4, 100, seed=9)
        assert a == b

    def test_seeds_differ(self):
        assert visits_log(4, 100, seed=1) != visits_log(4, 100, seed=2)

    def test_uniform_sizes_balanced(self):
        records = visits_log(4, 400, skew=0.0, seed=3)
        sizes = Counter(d for d, _ip in records)
        assert max(sizes.values()) - min(sizes.values()) <= 4

    def test_zipf_sizes_skewed(self):
        records = visits_log(16, 1600, skew=1.2, seed=3)
        sizes = Counter(d for d, _ip in records)
        assert max(sizes.values()) > 5 * min(sizes.values())

    def test_bounce_fraction_moves_the_rate(self):
        low = visits_log(2, 600, bounce_fraction=0.1, seed=5)
        high = visits_log(2, 600, bounce_fraction=0.9, seed=5)

        def rate(records):
            counts = Counter(records)
            return sum(1 for c in counts.values() if c == 1) / len(
                counts
            )

        assert rate(high) > rate(low)

    def test_ips_are_day_scoped(self):
        records = visits_log(3, 90, seed=7)
        assert all(ip.startswith("d") for _d, ip in records)


class TestGroupedEdges:
    def test_total_edges_exact(self):
        records = grouped_edges(4, 200, seed=1)
        assert len(records) == 200

    def test_group_ids_cover_range(self):
        records = grouped_edges(6, 300, seed=1)
        assert {g for g, _e in records} == {
            "g%d" % i for i in range(6)
        }

    def test_no_self_loops(self):
        records = grouped_edges(3, 150, seed=2)
        assert all(src != dst for _g, (src, dst) in records)

    def test_vertex_bound_respected(self):
        records = grouped_edges(
            2, 100, vertices_per_group=5, seed=2
        )
        for _g, (src, dst) in records:
            assert 0 <= src < 5 and 0 <= dst < 5


class TestComponentGraph:
    def test_components_are_exactly_as_built(self):
        edges = component_graph(3, 7, seed=4)
        labels = connected_components_reference(edges)
        assert len(set(labels.values())) == 3

    def test_every_vertex_connected(self):
        edges = component_graph(2, 10, seed=4)
        labels = connected_components_reference(edges)
        assert len(labels) == 20

    def test_vertices_globally_unique(self):
        edges = component_graph(4, 5, seed=4)
        vertices = {v for edge in edges for v in edge}
        assert vertices == set(range(20))


class TestPoints:
    def test_counts_and_dims(self):
        points = clustered_points(120, k=3, dim=4, seed=6)
        assert len(points) == 120
        assert all(len(p) == 4 for p in points)

    def test_grouped_points_total(self):
        records = grouped_points(5, 250, k=3, seed=6)
        assert len(records) == 250
        assert {c for c, _p in records} == {
            "cfg%d" % i for i in range(5)
        }

    def test_initial_centroids_shape(self):
        configs = initial_centroids(k=4, num_configs=3, dim=2, seed=6)
        assert len(configs) == 3
        for _cid, centroids in configs:
            assert len(centroids) == 4
            assert all(len(c) == 2 for c in centroids)

    def test_configs_differ(self):
        configs = initial_centroids(k=2, num_configs=2, seed=6)
        assert configs[0][1] != configs[1][1]

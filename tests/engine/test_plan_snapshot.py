"""Snapshot-isolated planning: node ids and unit graphs must not
depend on how concurrently gathered jobs interleave.

``plan_units`` reads each node's ``cached`` / ``materialized`` state
from a single snapshot taken at the start of the walk
(:func:`repro.engine.dag.snapshot_plan_state`), so a concurrent job
materializing a shared cached subtree (or the auto-cache pass flipping
``cached``) mid-walk can never produce a hybrid unit graph.
"""

from repro.engine import EngineContext, laptop_config
from repro.engine.dag import snapshot_plan_state
from repro.engine.plan import assign_node_ids


def _double(x):
    return x * 2


def _negate(x):
    return -x


def _even(x):
    return x % 4 == 0


def fresh_ctx(**overrides):
    overrides.setdefault("backend", "serial")
    overrides.setdefault("max_concurrent_stages", 2)
    return EngineContext(laptop_config(**overrides))


def test_snapshot_records_cached_and_materialized(ctx):
    shared = ctx.bag_of(range(10)).map(_double).cache()
    state = snapshot_plan_state(shared.node)
    assert state[id(shared.node)] == (True, None)
    shared.sum()
    cached, materialized = snapshot_plan_state(shared.node)[
        id(shared.node)
    ]
    assert cached
    assert materialized is not None


def test_gathered_jobs_keep_node_ids_stable():
    for _ in range(3):
        ctx = fresh_ctx()
        shared = ctx.bag_of(range(40)).map(_double).cache()
        left = shared.map(_negate)
        right = shared.filter(_even)
        ids_left = assign_node_ids(left.node)
        ids_right = assign_node_ids(right.node)
        results = ctx.gather(
            lambda: left.sum(), lambda: right.count()
        )
        assert results == [sum(-x * 2 for x in range(40)), 20]
        # ids are a pure function of plan shape: execution (and the
        # concurrent materialization of the shared subtree) must not
        # have moved them
        assert assign_node_ids(left.node) == ids_left
        assert assign_node_ids(right.node) == ids_right


def test_gathered_auto_cache_decision_recorded_once():
    for _ in range(3):
        ctx = fresh_ctx(optimize_caching=True)
        shared = ctx.bag_of(range(40)).map(_double)
        left = shared.map(_negate).union(shared.map(_double))
        right = shared.filter(_even).union(shared.map(_negate))
        results = ctx.gather(
            lambda: left.sum(), lambda: right.count()
        )
        assert results == [
            sum(-x * 2 + x * 4 for x in range(40)),
            20 + 40,
        ]
        decisions = [
            d for d in ctx.optimizer_decisions if d.kind == "auto-cache"
        ]
        # both gathered jobs prove the same reused subtree safe; the
        # flip (and its Decision) must land exactly once
        assert len(decisions) == 1
        assert shared.node.cached

"""Shared fixtures for the test suite."""

import pytest

from repro.engine import ClusterConfig, EngineContext, laptop_config


@pytest.fixture
def config():
    """A small, OOM-proof cluster config."""
    return laptop_config()

@pytest.fixture
def ctx(config):
    """A fresh engine context per test."""
    return EngineContext(config)


@pytest.fixture
def tight_memory_config():
    """A config whose memory limits are easy to hit on purpose."""
    return ClusterConfig(
        machines=2,
        cores_per_machine=2,
        memory_per_machine_bytes=10_000,
        bytes_per_record=100.0,
        memory_overhead_factor=1.0,
        driver_memory_bytes=50_000,
        parallelism_factor=2,
    )


@pytest.fixture
def tight_ctx(tight_memory_config):
    return EngineContext(tight_memory_config)

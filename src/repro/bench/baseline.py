"""The engine baseline matrix behind ``--check-regressions``.

A small, fast, fixed grid of (task, scale) cells -- K-means, PageRank,
and Bounce Rate, each in the Matryoshka and inner-parallel formulations
at two group counts -- measured into one
:class:`~repro.observe.RunReport`.  The committed snapshot lives at
``BENCH_engine.json`` in the repo root.

The regression gate compares **simulated** seconds: the cost model is a
deterministic function of the execution trace, so the committed numbers
are stable across machines and the diff flags genuine cost-model or
planner changes rather than host noise.  Measured wall-clock is stored
in every entry too, for eyeballing, but is not gated by default.

Regenerate the snapshot after an intentional cost change::

    python -m repro.bench --emit-baseline

and check the working tree against it::

    python -m repro.bench --check-regressions
"""

from ..baselines.inner_parallel import group_locally
from ..data import grouped_edges, grouped_points, initial_centroids, visits_log
from ..observe import RunReport
from ..tasks import bounce_rate, kmeans, pagerank
from .figures import _cluster
from .harness import run_measured

#: Where the committed snapshot lives, relative to the repo root.
BASELINE_FILENAME = "BENCH_engine.json"

_K = 4
_KMEANS_ITERS = 4
_PAGERANK_ITERS = 4
_GROUP_COUNTS = (4, 16)


def _kmeans_cell(system, groups):
    config = _cluster(2.0, 512, overhead=2.0)
    records = grouped_points(groups, 512, _K, seed=11)
    configs = initial_centroids(_K, groups, seed=11)
    kwargs = {"max_iterations": _KMEANS_ITERS, "tolerance": None}
    if system == "kmeans-matryoshka":
        return run_measured(
            config, system, groups,
            lambda ctx: kmeans.kmeans_nested_grouped(
                ctx.bag_of(records), configs, **kwargs
            ).save(),
        )
    local = group_locally(records)
    return run_measured(
        config, system, groups,
        lambda ctx: kmeans.kmeans_inner(ctx, local, configs, **kwargs),
    )


def _pagerank_cell(system, groups):
    config = _cluster(20.0, 1024)
    records = grouped_edges(groups, 1024, seed=13)
    if system == "pagerank-matryoshka":
        return run_measured(
            config, system, groups,
            lambda ctx: pagerank.pagerank_nested(
                ctx.bag_of(records), iterations=_PAGERANK_ITERS
            ).save(),
        )
    local = group_locally(records)
    return run_measured(
        config, system, groups,
        lambda ctx: pagerank.pagerank_inner(
            ctx, local, iterations=_PAGERANK_ITERS
        ),
    )


def _bounce_rate_cell(system, groups):
    config = _cluster(48.0, 2048, overhead=8.0)
    records = visits_log(groups, 2048, seed=23)
    if system == "bounce-matryoshka":
        return run_measured(
            config, system, groups,
            lambda ctx: bounce_rate.bounce_rate_nested(
                ctx.bag_of(records)
            ).save(),
        )
    local = group_locally(records)
    return run_measured(
        config, system, groups,
        lambda ctx: bounce_rate.bounce_rate_inner(ctx, local),
    )


#: The full matrix: system name -> cell runner; every system runs at
#: every group count in ``_GROUP_COUNTS``.
CELLS = {
    "kmeans-matryoshka": _kmeans_cell,
    "kmeans-inner": _kmeans_cell,
    "pagerank-matryoshka": _pagerank_cell,
    "pagerank-inner": _pagerank_cell,
    "bounce-matryoshka": _bounce_rate_cell,
    "bounce-inner": _bounce_rate_cell,
}


def run_baseline(label="engine-baseline", progress=None):
    """Run the whole matrix; return a :class:`RunReport`."""
    report = RunReport(
        label,
        meta={
            "matrix": sorted(CELLS),
            "group_counts": list(_GROUP_COUNTS),
            "metric": "simulated",
        },
    )
    for system, cell in CELLS.items():
        for groups in _GROUP_COUNTS:
            result = cell(system, groups)
            report.add(result.entry)
            if progress is not None:
                progress(result)
    return report

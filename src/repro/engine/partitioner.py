"""Hash partitioning with a process-stable hash.

Python's built-in ``hash`` is salted per process for strings, which would
make shuffles non-reproducible across runs.  The engine therefore uses a
CRC32 over a canonical byte rendering of the key.  Keys must have a stable
``repr`` (primitives, strings, and nested tuples of those do).
"""

import heapq
import warnings
import zlib

#: Key types already warned about for falling back to the repr() hash
#: branch (one warning per type per process).  Tests may clear this via
#: :func:`reset_unstable_key_warnings`.
_UNSTABLE_KEY_TYPES_SEEN = set()


def stable_hash(key):
    """A deterministic, process-stable hash of ``key``."""
    return zlib.crc32(_canonical_bytes(key))


def reset_unstable_key_warnings():
    """Forget which key types already triggered the repr()-fallback
    warning (so tests can assert the one-time behavior)."""
    _UNSTABLE_KEY_TYPES_SEEN.clear()


def unstable_key_reason(key):
    """Why hashing ``key`` would fall back to ``repr()``, or ``None``.

    Mirrors :func:`_canonical_bytes`: primitives, ``None``, and nested
    tuples/frozensets of those hash canonically; anything else reaches
    the ``r:`` branch, whose ``repr()`` rendering is not guaranteed
    stable across processes (default object reprs embed addresses).
    """
    if isinstance(key, (bytes, str, bool, int, float)) or key is None:
        return None
    if isinstance(key, (tuple, frozenset)):
        for part in key:
            reason = unstable_key_reason(part)
            if reason is not None:
                return reason
        return None
    return (
        "type %s hashes via its repr(), which is not guaranteed "
        "process-stable" % type(key).__name__
    )


def _canonical_bytes(key):
    if isinstance(key, bytes):
        return b"b:" + key
    if isinstance(key, str):
        return b"s:" + key.encode("utf-8")
    if isinstance(key, bool):
        return b"B:%d" % int(key)
    if isinstance(key, int):
        return b"i:%d" % key
    if isinstance(key, float):
        return b"f:" + repr(key).encode("ascii")
    if key is None:
        return b"n"
    if isinstance(key, (tuple, frozenset)):
        parts = [_canonical_bytes(part) for part in key]
        return b"t:(" + b",".join(parts) + b")"
    key_type = type(key)
    if key_type not in _UNSTABLE_KEY_TYPES_SEEN:
        _UNSTABLE_KEY_TYPES_SEEN.add(key_type)
        warnings.warn(
            "hashing a %s key via repr(): not guaranteed process-stable; "
            "use primitives or tuples of primitives as shuffle keys "
            "(NPL203)" % key_type.__name__,
            RuntimeWarning,
            stacklevel=3,
        )
    return b"r:" + repr(key).encode("utf-8", errors="replace")


def build_balanced_assignment(key_counts, num_partitions):
    """Assign keys to buckets, balancing record counts (LPT).

    Every simulated record stands for a block of real records, so a
    simulated key stands for a large set of real keys: hash collisions
    between *simulated* keys would fabricate skew that the real, much
    finer-grained hashing does not have.  Balancing by key count keeps
    the irreducible part of skew (a single heavy key still lands in one
    bucket) while removing the granularity artifact.

    Returns a ``{key: bucket_index}`` dict.  Deterministic: ties break on
    the stable hash.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    assignment = {}
    ordered = sorted(
        key_counts.items(),
        key=lambda item: (-item[1], stable_hash(item[0])),
    )
    # A heap of (load, bucket_index) gives the least-loaded bucket in
    # O(log P) per key; ties break on the lower bucket index, exactly
    # like the linear scan this replaces (paper-scale shuffles assign
    # hundreds of thousands of keys over ~1200 buckets).
    heap = [(0, index) for index in range(num_partitions)]
    for key, count in ordered:
        load, index = heap[0]
        assignment[key] = index
        heapq.heapreplace(heap, (load + count, index))
    return assignment


class HashPartitioner:
    """Assigns keyed records to ``num_partitions`` buckets."""

    def __init__(self, num_partitions):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions

    def partition_for(self, key):
        return stable_hash(key) % self.num_partitions

    def split(self, records):
        """Bucket an iterable of ``(key, value)`` records."""
        buckets = [[] for _ in range(self.num_partitions)]
        for record in records:
            key = record[0]
            buckets[self.partition_for(key)].append(record)
        return buckets

    def __eq__(self, other):
        return (
            isinstance(other, HashPartitioner)
            and other.num_partitions == self.num_partitions
        )

    def __hash__(self):
        return hash(("HashPartitioner", self.num_partitions))

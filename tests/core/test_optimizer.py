"""The lowering-phase runtime optimizer (paper Sec. 8)."""

import pytest

from repro.core.nestedbag import group_by_key_into_nested_bag
from repro.core.optimizer import LoweringConfig, Optimizer
from repro.engine import ClusterConfig, EngineContext


@pytest.fixture
def big_cluster_ctx():
    return EngineContext(
        ClusterConfig(machines=25, cores_per_machine=16)
    )


class TestLoweringConfig:
    def test_defaults_are_auto(self):
        lowering = LoweringConfig()
        assert lowering.join_strategy == "auto"
        assert lowering.cross_side == "auto"
        assert lowering.partition_policy == "auto"

    @pytest.mark.parametrize(
        "field,value",
        [
            ("join_strategy", "hash"),
            ("cross_side", "left"),
            ("partition_policy", "many"),
        ],
    )
    def test_rejects_unknown_values(self, field, value):
        with pytest.raises(ValueError):
            LoweringConfig(**{field: value})


class TestPartitionCounts:
    """Sec. 8.1: partition counts follow InnerScalar cardinalities."""

    def test_small_tag_counts_get_few_partitions(self, big_cluster_ctx):
        optimizer = Optimizer(big_cluster_ctx)
        assert optimizer.scalar_partitions(1) == 1
        assert optimizer.scalar_partitions(10) == 10

    def test_large_tag_counts_capped_at_default(self, big_cluster_ctx):
        optimizer = Optimizer(big_cluster_ctx)
        default = big_cluster_ctx.config.default_parallelism
        assert optimizer.scalar_partitions(10 ** 9) == default

    def test_default_policy_ignores_cardinality(self, big_cluster_ctx):
        optimizer = Optimizer(
            big_cluster_ctx, LoweringConfig(partition_policy="default")
        )
        default = big_cluster_ctx.config.default_parallelism
        assert optimizer.scalar_partitions(1) == default


class TestJoinStrategy:
    """Sec. 8.2: broadcast when the InnerScalar cannot feed all cores."""

    def test_few_tags_broadcast(self, big_cluster_ctx):
        optimizer = Optimizer(big_cluster_ctx)
        assert optimizer.scalar_join_strategy(10) == "broadcast"

    def test_enough_tags_repartition(self, big_cluster_ctx):
        optimizer = Optimizer(big_cluster_ctx)
        cores = big_cluster_ctx.config.total_cores
        assert optimizer.scalar_join_strategy(cores) == "repartition"

    def test_forced_strategy_wins(self, big_cluster_ctx):
        optimizer = Optimizer(
            big_cluster_ctx, LoweringConfig(join_strategy="repartition")
        )
        assert optimizer.scalar_join_strategy(1) == "repartition"

    def test_decisions_recorded(self, big_cluster_ctx):
        optimizer = Optimizer(big_cluster_ctx)
        optimizer.scalar_join_strategy(10)
        optimizer.scalar_join_strategy(10 ** 6)
        kinds = [
            d.choice for d in optimizer.decisions_of_kind("scalar-join")
        ]
        assert kinds == ["broadcast", "repartition"]

    def test_join_with_scalar_executes_both_ways(self, ctx):
        nested = group_by_key_into_nested_bag(
            ctx.bag_of([("a", 1), ("a", 2), ("b", 3)])
        )
        counts = nested.inner.count()
        for strategy in ("broadcast", "repartition"):
            optimizer = Optimizer(
                ctx, LoweringConfig(join_strategy=strategy)
            )
            joined = optimizer.join_with_scalar(
                nested.inner.repr, counts
            )
            got = sorted(joined.collect())
            assert got == [
                ("a", (1, 2)), ("a", (2, 2)), ("b", (3, 1)),
            ]


class TestCrossSide:
    """Sec. 8.3: which side of the half-lifted cross to broadcast."""

    def test_single_partition_scalar_broadcasts_scalar(
        self, big_cluster_ctx
    ):
        optimizer = Optimizer(big_cluster_ctx)
        nested = group_by_key_into_nested_bag(
            big_cluster_ctx.bag_of([("only", 1)])
        )
        primary = big_cluster_ctx.bag_of(range(1000))
        side = optimizer.cross_broadcast_side(
            primary, nested.lctx.constant(0)
        )
        assert side == "scalar"

    def test_size_comparison_picks_smaller_side(self, big_cluster_ctx):
        config = big_cluster_ctx.config
        optimizer = Optimizer(big_cluster_ctx)
        records = [("g%d" % i, i) for i in range(2000)]
        nested = group_by_key_into_nested_bag(
            big_cluster_ctx.bag_of(records)
        )
        # Primary bytes (tiny bag, data rate) < scalar bytes (2000 tags).
        small_primary = big_cluster_ctx.bag_of([1])
        side = optimizer.cross_broadcast_side(
            small_primary, nested.lctx.constant(0)
        )
        expected_scalar_bytes = 2000 * config.result_record_bytes
        expected_primary_bytes = 1 * config.bytes_per_record
        assert (side == "primary") == (
            expected_primary_bytes < expected_scalar_bytes
        )

    def test_forced_side(self, big_cluster_ctx):
        optimizer = Optimizer(
            big_cluster_ctx, LoweringConfig(cross_side="primary")
        )
        nested = group_by_key_into_nested_bag(
            big_cluster_ctx.bag_of([("only", 1)])
        )
        side = optimizer.cross_broadcast_side(
            big_cluster_ctx.bag_of([1]), nested.lctx.constant(0)
        )
        assert side == "primary"


class TestEstimateCount:
    def test_driver_data_is_free(self, ctx):
        optimizer = Optimizer(ctx)
        bag = ctx.bag_of(range(42))
        before = ctx.trace.num_jobs
        assert optimizer.estimate_count(bag) == 42
        assert ctx.trace.num_jobs == before

    def test_derived_bags_counted_once(self, ctx):
        optimizer = Optimizer(ctx)
        bag = ctx.bag_of(range(10)).map(lambda x: x)
        before = ctx.trace.num_jobs
        assert optimizer.estimate_count(bag) == 10
        assert optimizer.estimate_count(bag) == 10
        assert ctx.trace.num_jobs == before + 1

"""The engine baseline matrix: the service-mode and pipeline cells.

The ``serve-pagerank-*`` pair runs repeated PageRank jobs through one
long-lived :class:`repro.serve.JobService`; the only difference between
the rows is the artifact budget, so warm must beat cold by exactly the
cost the cache removes -- and the committed ``BENCH_engine.json``
snapshot must show the same advantage, since ``--check-regressions``
gates it.

The ``pipeline-*`` pair differs only in ``compile_pipelines``: the
compiled row must simulate *exactly* the interpreted row's seconds
(the generated loop credits identical per-operator counts) while its
measured wall-clock -- recorded in the committed snapshot -- must be
at least 2x lower on the serial rows.
"""

import json
from pathlib import Path

from repro.bench.baseline import (
    _GROUP_COUNTS,
    _SCHEDULERS,
    _pipeline_cell,
    _serve_pagerank_cell,
    BASELINE_FILENAME,
    CELLS,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Wall-clock advantage the committed compiled rows must show over the
#: interpreted rows on the serial backend (the live-run assertion uses
#: a softer floor -- CI machines are noisy, the snapshot was not).
_COMMITTED_SPEEDUP_FLOOR = 2.0
_LIVE_SPEEDUP_FLOOR = 1.3


class TestServeCells:
    def test_matrix_includes_service_mode(self):
        assert "serve-pagerank-cold" in CELLS
        assert "serve-pagerank-warm" in CELLS

    def test_warm_cache_beats_cold(self):
        cold = _serve_pagerank_cell("serve-pagerank-cold", 4)
        warm = _serve_pagerank_cell("serve-pagerank-warm", 4)
        assert cold.status == "ok"
        assert warm.status == "ok"
        assert warm.seconds < cold.seconds
        # The warm repeats read the cached graph artifacts instead of
        # re-parsing and re-shuffling the edge list every time.
        assert (
            warm.entry["totals"]["shuffle_records"]
            < cold.entry["totals"]["shuffle_records"]
        )
        assert (
            warm.entry["totals"]["records"]
            < cold.entry["totals"]["records"]
        )

    def test_warm_cell_is_deterministic(self):
        a = _serve_pagerank_cell("serve-pagerank-warm", 4)
        b = _serve_pagerank_cell("serve-pagerank-warm", 4)
        assert a.seconds == b.seconds

    def test_committed_snapshot_has_warm_advantage(self):
        data = json.loads((REPO_ROOT / BASELINE_FILENAME).read_text())
        rows = {
            (entry["system"], entry["x"]): entry["simulated_seconds"]
            for entry in data["entries"]
        }
        for groups in _GROUP_COUNTS:
            for scheduler in _SCHEDULERS:
                suffix = "" if scheduler == "serial" else "+dag"
                cold = rows["serve-pagerank-cold" + suffix, groups]
                warm = rows["serve-pagerank-warm" + suffix, groups]
                assert warm < cold


class TestPipelineCells:
    def test_matrix_includes_pipeline_pair(self):
        assert "pipeline-interpreted" in CELLS
        assert "pipeline-compiled" in CELLS

    def test_compiled_simulates_identical_seconds(self):
        interpreted = _pipeline_cell("pipeline-interpreted", 4)
        compiled = _pipeline_cell("pipeline-compiled", 4)
        assert interpreted.status == "ok"
        assert compiled.status == "ok"
        # Not approximately: the generated loop credits exactly the
        # interpreter's per-operator record counts, so the cost model
        # sees the same trace.
        assert compiled.seconds == interpreted.seconds
        assert (
            compiled.entry["totals"]["records"]
            == interpreted.entry["totals"]["records"]
        )

    def test_compiled_is_faster_in_wall_clock(self):
        # Warm both paths once so neither row pays one-time costs
        # (effect analysis cache, codegen compile) inside the timing.
        _pipeline_cell("pipeline-interpreted", 4)
        _pipeline_cell("pipeline-compiled", 4)
        interpreted = _pipeline_cell("pipeline-interpreted", 16)
        compiled = _pipeline_cell("pipeline-compiled", 16)
        speedup = interpreted.measured_seconds / compiled.measured_seconds
        assert speedup >= _LIVE_SPEEDUP_FLOOR, (
            "compiled pipeline only %.2fx faster" % speedup
        )

    def test_committed_snapshot_has_compiled_speedup(self):
        data = json.loads((REPO_ROOT / BASELINE_FILENAME).read_text())
        rows = {
            (entry["system"], entry["x"]): entry
            for entry in data["entries"]
        }
        for groups in _GROUP_COUNTS:
            interpreted = rows["pipeline-interpreted", groups]
            compiled = rows["pipeline-compiled", groups]
            assert (
                compiled["simulated_seconds"]
                == interpreted["simulated_seconds"]
            )
            ratio = (
                interpreted["measured_wall_seconds"]
                / compiled["measured_wall_seconds"]
            )
            assert ratio >= _COMMITTED_SPEEDUP_FLOOR, (
                "committed compiled row at %d groups only %.2fx faster"
                % (groups, ratio)
            )

"""Cluster configuration for the simulated dataflow engine.

A :class:`ClusterConfig` plays the role of the paper's physical cluster plus
the Spark configuration: it fixes the machine count, cores, memory, network
and the overhead constants that the cost model uses to turn an execution
trace into simulated wall-clock seconds.

The default constants are calibrated to the Spark deployments described in
the paper's evaluation (Sec. 9.1): job-launch overhead on the order of a
second, default parallelism of 3x the total core count, and 22 GB of
executor memory per machine.
"""

import os
from dataclasses import dataclass, field, replace

GB = 1024 ** 3
MB = 1024 ** 2

#: Backends the task runtime knows (see :mod:`repro.engine.runtime`).
VALID_BACKENDS = ("serial", "process")

#: Stage schedulers the executor knows (see :mod:`repro.engine.dag`):
#: ``"serial"`` runs one stage at a time in plan order, ``"dag"``
#: dispatches every ready stage of the stage graph concurrently.
VALID_SCHEDULERS = ("serial", "dag")


def _default_backend():
    return os.environ.get("REPRO_BACKEND", "serial")


def _default_scheduler():
    return os.environ.get("REPRO_SCHEDULER", "serial")


def _default_num_workers():
    return int(os.environ.get("REPRO_NUM_WORKERS", "0"))


def _default_straggler_factor():
    return float(os.environ.get("REPRO_STRAGGLER_FACTOR", "1.5"))


def _default_optimize_shuffles():
    raw = os.environ.get("REPRO_OPTIMIZE_SHUFFLES", "1")
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


def _default_optimize_caching():
    raw = os.environ.get("REPRO_OPTIMIZE_CACHING", "0")
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


def _default_speculative_execution():
    raw = os.environ.get("REPRO_SPECULATE", "0")
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


def _default_compile_pipelines():
    raw = os.environ.get("REPRO_COMPILE", "0")
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


def _default_schema_inference():
    raw = os.environ.get("REPRO_SCHEMA", "0")
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the simulated cluster.

    Attributes:
        machines: Number of worker machines.
        cores_per_machine: CPU cores per machine (the paper's machines have
            two 8-core processors).
        memory_per_machine_bytes: Memory available to the engine on each
            machine (the paper dedicates 22 GB per machine to Spark).
        bytes_per_record: How many bytes one record of the *paper-scale*
            dataset represents.  The generators produce laptop-scale record
            counts; this factor maps record counts back onto the paper's
            GB-scale axis for both memory accounting and shuffle costs.
        parallelism_factor: Default number of partitions is
            ``parallelism_factor * total_cores`` (the paper sets Spark
            parallelism to 3x the total core count).
        job_launch_overhead_s: Fixed cost of launching one job (driver
            round-trip, DAG scheduling, executor wake-up).
        stage_overhead_s: Fixed cost per stage (scheduling a task set).
        task_overhead_s: Cost of launching a single task [37].
        cpu_bytes_per_s: Bulk processing throughput of one core running a
            fused operator pipeline (scan + hash + serialize).
        sequential_work_factor: Slowdown of record-at-a-time UDF-internal
            loops (hash probes, boxed objects) relative to the bulk rate.
            Work reported through :class:`~repro.engine.work.Weighted` is
            charged at this multiple.
        network_bytes_per_s: Aggregate per-machine network bandwidth (the
            paper's cluster has 1 Gb Ethernet).
        disk_bytes_per_s: Per-machine disk bandwidth, charged for spills.
        driver_memory_bytes: Memory limit of the driver process, charged
            when collecting results.
        memory_safety_fraction: Fraction of executor memory usable for a
            single materialized working set (mirrors Spark's storage/
            execution fractions).
        result_record_bytes: Size of a record returned to the driver by
            an action.  Results (counts, aggregates, trained models) are
            summary-sized regardless of the input record scale, so they
            are charged separately from ``bytes_per_record``.
        memory_overhead_factor: In-memory blow-up of materialized data
            relative to its serialized size (JVM object headers, boxing,
            hash-map load factors).  Spark's tuning guide cites 2-5x for
            primitive-heavy data; string-heavy records go higher.  Set it
            per experiment to match the workload's record type.
    """

    machines: int = 25
    cores_per_machine: int = 16
    memory_per_machine_bytes: int = 22 * GB
    bytes_per_record: float = 100.0
    parallelism_factor: int = 3
    job_launch_overhead_s: float = 0.8
    stage_overhead_s: float = 0.05
    task_overhead_s: float = 0.002
    cpu_bytes_per_s: float = 100 * MB
    sequential_work_factor: float = 8.0
    network_bytes_per_s: float = 120 * MB
    disk_bytes_per_s: float = 150 * MB
    driver_memory_bytes: int = 8 * GB
    memory_safety_fraction: float = 0.6
    memory_overhead_factor: float = 3.0
    result_record_bytes: float = 256.0
    #: The engine optimizer's own broadcast-join threshold (the analog
    #: of Spark's spark.sql.autoBroadcastJoinThreshold): with
    #: strategy="auto", a join side whose estimated size is below this
    #: is broadcast.
    auto_broadcast_threshold_bytes: int = 512 * MB
    #: Check the trace invariants of :mod:`repro.engine.validate` after
    #: every completed job.  Cheap (linear in the stage count) and on by
    #: default; disable only when deliberately constructing invalid
    #: traces.
    validate_traces: bool = True
    #: Task runtime backend (:mod:`repro.engine.runtime`): ``"serial"``
    #: runs tasks inline on the driver thread, ``"process"`` fans them
    #: out over worker processes.  Defaults to the ``REPRO_BACKEND``
    #: environment variable, else serial.
    backend: str = field(default_factory=_default_backend)
    #: Worker processes for the process backend; 0 means one per CPU.
    #: Defaults to ``REPRO_NUM_WORKERS``, else 0.  Orthogonal to
    #: ``machines``, which sizes the *simulated* cluster.
    num_workers: int = field(default_factory=_default_num_workers)
    #: Per-task attempt budget (Spark's spark.task.maxFailures is 4):
    #: transient failures are retried until the task succeeds or the
    #: budget is spent.
    max_task_attempts: int = 4
    #: A task is counted as a straggler when its measured runtime
    #: exceeds this multiple of its task set's median (Spark's
    #: speculation multiplier).  Defaults to the
    #: ``REPRO_STRAGGLER_FACTOR`` environment variable, else 1.5 ...
    straggler_factor: float = field(
        default_factory=_default_straggler_factor
    )
    #: ... and this absolute floor, so scheduling jitter on
    #: microsecond-scale tasks never registers.
    straggler_min_task_seconds: float = 0.01
    #: Stage scheduler (:mod:`repro.engine.dag`): ``"serial"`` evaluates
    #: the plan one evaluation unit at a time in plan order (today's
    #: barrier schedule), ``"dag"`` derives the dependency graph of
    #: evaluation units and dispatches every *ready* unit onto the
    #: shared worker pool as soon as its inputs are complete, so
    #: independent plan branches overlap.  Results, trace signatures,
    #: and shuffle accounting are identical either way (see
    #: :func:`repro.engine.validate.assert_schedule_parity`).  Defaults
    #: to the ``REPRO_SCHEDULER`` environment variable, else serial.
    scheduler: str = field(default_factory=_default_scheduler)
    #: Bound on evaluation units (and with them, in-flight task sets)
    #: the DAG scheduler runs concurrently; 0 picks a default from the
    #: host CPU count.  Ignored by the serial scheduler.
    max_concurrent_stages: int = 0
    #: Statically elide shuffles whose input is provably co-partitioned
    #: with the layout the shuffle would build (see
    #: :mod:`repro.engine.optimize` and
    #: :mod:`repro.analysis.properties`).  Defaults to the
    #: ``REPRO_OPTIMIZE_SHUFFLES`` environment variable, else on.
    optimize_shuffles: bool = field(
        default_factory=_default_optimize_shuffles
    )
    #: Auto-insert ``cache()`` on plan subtrees that are reused by more
    #: than one consumer when the effect analysis
    #: (:mod:`repro.analysis.effects`) *proves* every UDF below pure
    #: and deterministic -- an unproven subtree is left alone (see
    #: :func:`repro.engine.optimize.plan_auto_caches`).  Off by
    #: default; defaults to the ``REPRO_OPTIMIZE_CACHING`` environment
    #: variable.
    optimize_caching: bool = field(
        default_factory=_default_optimize_caching
    )
    #: Re-dispatch one speculative copy of each detected straggler,
    #: but only when its task's UDFs are *proven* pure, deterministic,
    #: and I/O-free (see :class:`repro.engine.runtime.TaskScheduler`).
    #: Off by default; defaults to the ``REPRO_SPECULATE`` environment
    #: variable.
    speculative_execution: bool = field(
        default_factory=_default_speculative_execution
    )
    #: Execute fused elementwise chains as generated, specialized loop
    #: functions over columnar partitions (:mod:`repro.engine.codegen`
    #: and :mod:`repro.engine.columnar`) instead of the interpreted
    #: per-record pipeline -- but only for chains whose UDFs the effect
    #: analysis *proves* pure and free of
    #: :class:`~repro.engine.work.Weighted` results; anything unproven
    #: falls back to the interpreter with the reason recorded as an
    #: optimizer decision.  Results, trace signatures, and simulated
    #: seconds are identical either way (see ``--compare compiled`` in
    #: :mod:`repro.analysis.equivalence`); only measured wall-clock
    #: changes.  Off by default; defaults to the ``REPRO_COMPILE``
    #: environment variable.
    compile_pipelines: bool = field(
        default_factory=_default_compile_pipelines
    )
    #: Run whole-plan record schema inference
    #: (:mod:`repro.analysis.schema`) before executing fused chains,
    #: and act on *proven* verdicts: a proven int/float fixed-arity
    #: output schema commits to columnar storage without the
    #: per-partition encode probe, a refuted schema skips encoding
    #: entirely, and a proven columnar *input* schema lets the
    #: generated loop read :class:`~repro.engine.columnar
    #: .ColumnarPartition` buffers directly.  Unknown verdicts fall
    #: back to the probe-and-interpret behavior of plain
    #: ``compile_pipelines``.  Results, trace signatures, and simulated
    #: seconds are identical either way (see ``--compare schema`` in
    #: :mod:`repro.analysis.equivalence`).  Only meaningful together
    #: with ``compile_pipelines``.  Off by default; defaults to the
    #: ``REPRO_SCHEMA`` environment variable.
    schema_inference: bool = field(
        default_factory=_default_schema_inference
    )

    def __post_init__(self):
        if self.machines < 1:
            raise ValueError("machines must be >= 1")
        if self.cores_per_machine < 1:
            raise ValueError("cores_per_machine must be >= 1")
        if self.bytes_per_record <= 0:
            raise ValueError("bytes_per_record must be positive")
        if self.backend not in VALID_BACKENDS:
            raise ValueError(
                "backend must be one of %r, got %r"
                % (VALID_BACKENDS, self.backend)
            )
        if self.num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if self.scheduler not in VALID_SCHEDULERS:
            raise ValueError(
                "scheduler must be one of %r, got %r"
                % (VALID_SCHEDULERS, self.scheduler)
            )
        if self.max_concurrent_stages < 0:
            raise ValueError("max_concurrent_stages must be >= 0")
        if self.max_task_attempts < 1:
            raise ValueError("max_task_attempts must be >= 1")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1.0")

    @property
    def total_cores(self):
        """Total task slots in the cluster."""
        return self.machines * self.cores_per_machine

    @property
    def default_parallelism(self):
        """Default partition count for shuffles and parallelize."""
        return self.parallelism_factor * self.total_cores

    @property
    def executor_memory_limit_bytes(self):
        """Largest working set a single executor may materialize."""
        return int(self.memory_per_machine_bytes * self.memory_safety_fraction)

    def task_memory_limit_bytes(self, concurrent_tasks_per_machine):
        """Working-set budget of one task.

        Concurrently running tasks on a machine share executor memory
        (Spark's unified memory manager); a lone task may use all of it.
        """
        concurrent = max(1, min(self.cores_per_machine,
                                concurrent_tasks_per_machine))
        return self.executor_memory_limit_bytes // concurrent

    def materialized_bytes(self, num_records, record_bytes=None):
        """In-memory footprint of materializing ``num_records`` records."""
        if record_bytes is None:
            record_bytes = self.bytes_per_record
        return int(
            num_records * record_bytes * self.memory_overhead_factor
        )

    def with_machines(self, machines):
        """Return a copy of this config with a different machine count."""
        return replace(self, machines=machines)

    def with_bytes_per_record(self, bytes_per_record):
        """Return a copy with a different record-size scale factor."""
        return replace(self, bytes_per_record=bytes_per_record)

    def with_backend(self, backend, num_workers=None):
        """Return a copy running on a different task-runtime backend."""
        if num_workers is None:
            return replace(self, backend=backend)
        return replace(self, backend=backend, num_workers=num_workers)

    def with_scheduler(self, scheduler, max_concurrent_stages=None):
        """Return a copy running under a different stage scheduler."""
        if max_concurrent_stages is None:
            return replace(self, scheduler=scheduler)
        return replace(
            self, scheduler=scheduler,
            max_concurrent_stages=max_concurrent_stages,
        )


def laptop_config(**overrides):
    """A small config suitable for tests: no OOM surprises, tiny overheads."""
    defaults = {
        "machines": 2,
        "cores_per_machine": 4,
        "memory_per_machine_bytes": 4 * GB,
        "bytes_per_record": 100.0,
        "parallelism_factor": 2,
    }
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def paper_cluster_config(**overrides):
    """The 25-machine cluster from the paper's evaluation (Sec. 9.1)."""
    defaults = {
        "machines": 25,
        "cores_per_machine": 16,
        "memory_per_machine_bytes": 22 * GB,
    }
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def large_cluster_config(**overrides):
    """The 36-machine cluster used for the larger datasets (Sec. 9.7)."""
    defaults = {
        "machines": 36,
        "cores_per_machine": 40,
        "memory_per_machine_bytes": 100 * GB,
    }
    defaults.update(overrides)
    return ClusterConfig(**defaults)

"""Bounce Rate: every system variant agrees with the ground truth."""

import pytest

from repro.baselines.inner_parallel import group_locally
from repro.data import visits_log
from repro.tasks import bounce_rate as br


@pytest.fixture(scope="module")
def visits():
    return visits_log(num_days=6, total_visits=400, seed=3)


@pytest.fixture(scope="module")
def truth(visits):
    return br.bounce_rate_reference(visits)


class TestReference:
    def test_hand_example(self):
        records = [
            ("mon", "a"), ("mon", "a"), ("mon", "b"),
            ("tue", "c"),
        ]
        assert br.bounce_rate_reference(records) == {
            "mon": 0.5, "tue": 1.0,
        }

    def test_rates_in_unit_interval(self, truth):
        assert all(0 <= rate <= 1 for rate in truth.values())


class TestVariantsAgree:
    def test_nested_matches_reference(self, ctx, visits, truth):
        got = dict(br.bounce_rate_nested(ctx.bag_of(visits)).collect())
        assert got == truth

    def test_flat_listing3_matches_reference(self, ctx, visits, truth):
        got = dict(br.bounce_rate_flat(ctx.bag_of(visits)).collect())
        assert got == truth

    def test_nested_equals_hand_flattened(self, ctx, visits):
        """Theorem 2 in miniature: the flattened program Matryoshka
        produces is equivalent to Listing 3."""
        nested = dict(
            br.bounce_rate_nested(ctx.bag_of(visits)).collect()
        )
        flat = dict(br.bounce_rate_flat(ctx.bag_of(visits)).collect())
        assert nested == flat

    def test_outer_matches_reference(self, ctx, visits, truth):
        got = dict(br.bounce_rate_outer(ctx.bag_of(visits)).collect())
        assert got == truth

    def test_inner_matches_reference(self, ctx, visits, truth):
        got = dict(br.bounce_rate_inner(ctx, group_locally(visits)))
        assert got == truth

    def test_diql_matches_reference(self, ctx, visits, truth):
        got = dict(br.bounce_rate_diql(ctx.bag_of(visits)).collect())
        assert got == truth


class TestJobScaling:
    def test_nested_jobs_independent_of_group_count(self, ctx):
        job_counts = []
        for days in (2, 12):
            ctx.reset_trace()
            records = visits_log(days, 120, seed=1)
            br.bounce_rate_nested(ctx.bag_of(records)).collect()
            job_counts.append(ctx.trace.num_jobs)
        assert job_counts[0] == job_counts[1]

    def test_inner_jobs_grow_with_group_count(self, ctx):
        job_counts = []
        for days in (2, 12):
            ctx.reset_trace()
            records = visits_log(days, 120, seed=1)
            br.bounce_rate_inner(ctx, group_locally(records))
            job_counts.append(ctx.trace.num_jobs)
        assert job_counts[1] == 6 * job_counts[0]


class TestGroupUdfCompositionality:
    def test_group_udf_runs_on_plain_sequential_bags(self):
        """Sec. 2.1's point: the same whole-bag function should work on
        any Bag-like collection -- including a local one."""

        class LocalBag:
            def __init__(self, items):
                self.items = list(items)

            def map(self, fn):
                return LocalBag(fn(x) for x in self.items)

            def filter(self, fn):
                return LocalBag(x for x in self.items if fn(x))

            def reduce_by_key(self, fn):
                acc = {}
                for key, value in self.items:
                    acc[key] = fn(acc[key], value) if key in acc else (
                        value
                    )
                return LocalBag(acc.items())

            def distinct(self):
                return LocalBag(set(self.items))

            def count(self):
                return len(self.items)

        group = LocalBag(["a", "a", "b"])
        assert br.bounce_rate_group_udf(group) == 0.5

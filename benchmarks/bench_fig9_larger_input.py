"""Fig. 9: 8x larger inputs on the 36-machine cluster (Sec. 9.7).

Expected: same orderings as the smaller experiments -- Matryoshka more
than an order of magnitude faster than inner-parallel from ~128 inner
computations (PageRank); outer-parallel OOMs for Bounce Rate at every
point.
"""

from repro.bench import figures

import os

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


def test_fig9a_pagerank_160gb(figure_benchmark):
    sweep = figure_benchmark(figures.fig9_larger_pagerank, SCALE)
    xs = sweep.x_values()
    assert sweep.speedup(figures.INNER, figures.MATRYOSHKA, xs[-1]) > 10


def test_fig9b_bounce_rate_384gb(figure_benchmark):
    sweep = figure_benchmark(figures.fig9_larger_bounce_rate, SCALE)
    for x in sweep.x_values():
        assert sweep.result_for(figures.OUTER, x).status == "oom"
    xs = sweep.x_values()
    assert sweep.speedup(figures.INNER, figures.MATRYOSHKA, xs[-1]) > 5

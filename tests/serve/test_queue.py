"""JobQueue: deterministic deficit round-robin + admission control."""

import threading

import pytest

from repro.serve.queue import (
    REJECT_DRAINING,
    REJECT_QUEUE_FULL,
    REJECT_SHUTDOWN,
    REJECT_TENANT_QUOTA,
    REJECT_UNKNOWN_TENANT,
    AdmissionRejected,
    JobQueue,
    PendingJob,
)
from repro.serve.tenants import TenantConfig


def _queue(tenants, seed=1, **kwargs):
    queue = JobQueue(seed=seed, **kwargs)
    for config in tenants:
        queue.add_tenant(config)
    return queue


def _submit(queue, tenant, label, cost=1.0):
    queue.submit(
        PendingJob(ticket=None, tenant=tenant, program=None,
                   label=label, cost=cost)
    )


def _drain_labels(queue):
    labels = []
    while True:
        job = queue.take(timeout=0)
        if job is None:
            return labels
        labels.append(job.label)
        queue.task_done()


class TestDeficitRoundRobin:
    def test_cycle_is_seeded_and_stable(self):
        names = ["alice", "bob", "carol"]
        order_a = _queue(
            [TenantConfig(n) for n in names], seed=7
        ).cycle_order()
        order_b = _queue(
            [TenantConfig(n) for n in reversed(names)], seed=7
        ).cycle_order()
        # Same tenants + seed -> same cycle, regardless of
        # registration order.
        assert order_a == order_b
        assert sorted(order_a) == names
        order_c = _queue(
            [TenantConfig(n) for n in names], seed=8
        ).cycle_order()
        assert sorted(order_c) == names

    def test_weighted_schedule_is_exact(self):
        # seed=1 fixes the visit cycle to [alice, bob]; with weight
        # 2 vs 1 and unit costs DRR must serve alice twice per
        # bob's once.
        queue = _queue(
            [TenantConfig("alice", weight=2.0), TenantConfig("bob")],
            seed=1,
        )
        assert queue.cycle_order() == ["alice", "bob"]
        for i in range(4):
            _submit(queue, "alice", "a%d" % i)
            _submit(queue, "bob", "b%d" % i)
        assert _drain_labels(queue) == [
            "a0", "a1", "b0", "a2", "a3", "b1", "b2", "b3",
        ]

    def test_equal_weights_round_robin(self):
        queue = _queue(
            [TenantConfig("alice"), TenantConfig("bob")], seed=1
        )
        for i in range(3):
            _submit(queue, "alice", "a%d" % i)
            _submit(queue, "bob", "b%d" % i)
        assert _drain_labels(queue) == [
            "a0", "b0", "a1", "b1", "a2", "b2",
        ]

    def test_emptied_tenant_forfeits_deficit(self):
        queue = _queue(
            [TenantConfig("alice", weight=3.0), TenantConfig("bob")],
            seed=1,
        )
        _submit(queue, "alice", "a0")
        _submit(queue, "bob", "b0")
        # alice drains her only job (deficit 3 -> 2, then forfeited);
        # the leftover must not let her pre-empt bob later.
        assert _drain_labels(queue) == ["a0", "b0"]
        _submit(queue, "bob", "b1")
        _submit(queue, "alice", "a1")
        assert _drain_labels(queue) == ["a1", "b1"]

    def test_heavy_job_accumulates_deficit_without_starving(self):
        # bob's head job costs 3 quanta: he must wait ~3 rounds but
        # still run; alice (weight 1) keeps progressing meanwhile.
        queue = _queue(
            [TenantConfig("alice"), TenantConfig("bob")], seed=1
        )
        for i in range(4):
            _submit(queue, "alice", "a%d" % i)
        _submit(queue, "bob", "heavy", cost=3.0)
        labels = _drain_labels(queue)
        assert set(labels) == {"a0", "a1", "a2", "a3", "heavy"}
        assert labels.index("heavy") == 3  # after 3 replenish rounds

    def test_determinism_across_runs(self):
        def run():
            queue = _queue(
                [
                    TenantConfig("alice", weight=2.0),
                    TenantConfig("bob"),
                    TenantConfig("carol", weight=1.5),
                ],
                seed=5,
            )
            for i in range(5):
                for tenant in ("carol", "alice", "bob"):
                    _submit(queue, tenant, "%s%d" % (tenant[0], i))
            return _drain_labels(queue)

        first = run()
        assert first == run()
        assert len(first) == 15

    def test_single_tenant_fifo(self):
        queue = _queue([TenantConfig("alice")])
        for i in range(5):
            _submit(queue, "alice", "a%d" % i)
        assert _drain_labels(queue) == ["a%d" % i for i in range(5)]


class TestAdmission:
    def test_unknown_tenant(self):
        queue = _queue([TenantConfig("alice")])
        with pytest.raises(AdmissionRejected) as exc:
            _submit(queue, "mallory", "m0")
        assert exc.value.reason == REJECT_UNKNOWN_TENANT
        assert exc.value.tenant == "mallory"

    def test_tenant_quota(self):
        queue = _queue([TenantConfig("alice", max_pending=2)])
        _submit(queue, "alice", "a0")
        _submit(queue, "alice", "a1")
        with pytest.raises(AdmissionRejected) as exc:
            _submit(queue, "alice", "a2")
        assert exc.value.reason == REJECT_TENANT_QUOTA
        # Draining one admits one more.
        assert queue.take(timeout=0) is not None
        queue.task_done()
        _submit(queue, "alice", "a2")

    def test_global_depth(self):
        queue = _queue(
            [TenantConfig("alice"), TenantConfig("bob")],
            max_depth=3,
        )
        _submit(queue, "alice", "a0")
        _submit(queue, "alice", "a1")
        _submit(queue, "bob", "b0")
        with pytest.raises(AdmissionRejected) as exc:
            _submit(queue, "bob", "b1")
        assert exc.value.reason == REJECT_QUEUE_FULL

    def test_draining_rejects_but_serves(self):
        queue = _queue([TenantConfig("alice")])
        _submit(queue, "alice", "a0")
        queue.drain()
        with pytest.raises(AdmissionRejected) as exc:
            _submit(queue, "alice", "a1")
        assert exc.value.reason == REJECT_DRAINING
        assert _drain_labels(queue) == ["a0"]

    def test_closed_rejects(self):
        queue = _queue([TenantConfig("alice")])
        queue.close()
        with pytest.raises(AdmissionRejected) as exc:
            _submit(queue, "alice", "a0")
        assert exc.value.reason == REJECT_SHUTDOWN

    def test_duplicate_tenant_rejected(self):
        queue = _queue([TenantConfig("alice")])
        with pytest.raises(ValueError):
            queue.add_tenant(TenantConfig("alice"))


class TestLifecycle:
    def test_take_blocks_until_submit(self):
        queue = _queue([TenantConfig("alice")])
        out = []

        def taker():
            out.append(queue.take(timeout=5))

        thread = threading.Thread(target=taker)
        thread.start()
        _submit(queue, "alice", "a0")
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert out[0].label == "a0"

    def test_close_wakes_blocked_take(self):
        queue = _queue([TenantConfig("alice")])
        out = []

        def taker():
            out.append(queue.take(timeout=5))

        thread = threading.Thread(target=taker)
        thread.start()
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert out == [None]

    def test_join_counts_taken_jobs(self):
        queue = _queue([TenantConfig("alice")])
        _submit(queue, "alice", "a0")
        job = queue.take(timeout=0)
        assert job is not None
        # Dequeued but unacknowledged: not idle yet.
        assert not queue.is_idle
        assert queue.join(timeout=0.01) is False
        queue.task_done()
        assert queue.is_idle
        assert queue.join(timeout=1) is True

    def test_depth_and_pending(self):
        queue = _queue([TenantConfig("alice"), TenantConfig("bob")])
        _submit(queue, "alice", "a0")
        _submit(queue, "alice", "a1")
        _submit(queue, "bob", "b0")
        assert queue.depth == 3
        assert queue.pending("alice") == 2
        assert queue.pending("bob") == 1
        assert queue.pending("nobody") == 0

    def test_add_tenant_mid_stream_keeps_serving(self):
        queue = _queue([TenantConfig("alice"), TenantConfig("bob")])
        for i in range(2):
            _submit(queue, "alice", "a%d" % i)
            _submit(queue, "bob", "b%d" % i)
        first = queue.take(timeout=0)
        queue.task_done()
        queue.add_tenant(TenantConfig("carol"))
        _submit(queue, "carol", "c0")
        rest = _drain_labels(queue)
        assert sorted([first.label] + rest) == [
            "a0", "a1", "b0", "b1", "c0",
        ]


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ValueError):
            JobQueue(max_depth=0)
        with pytest.raises(ValueError):
            JobQueue(quantum=0)
        with pytest.raises(ValueError):
            PendingJob(ticket=None, tenant="a", program=None, cost=0)
        with pytest.raises(ValueError):
            TenantConfig("")
        with pytest.raises(ValueError):
            TenantConfig("a", weight=0)
        with pytest.raises(ValueError):
            TenantConfig("a", max_pending=0)

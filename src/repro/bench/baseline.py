"""The engine baseline matrix behind ``--check-regressions``.

A small, fast, fixed grid of (task, scale) cells -- K-means, PageRank,
and Bounce Rate, each in the Matryoshka and inner-parallel formulations
at two group counts, plus a branch-overlap cell exercising the DAG
scheduler, a service-mode pair (``serve-pagerank-cold`` /
``serve-pagerank-warm``) running repeated PageRank jobs through a
long-lived :mod:`repro.serve` daemon, and a reuse-heavy pair
(``reuse-baseline`` / ``reuse-autocache``) where the only difference
is ``optimize_caching``, so the row delta is the simulated seconds the
verified auto-``cache()`` rewrite saves, and a compiled-pipeline trio
(``pipeline-interpreted`` / ``pipeline-compiled`` /
``pipeline-columnar-direct``) where the rows differ only in
``compile_pipelines`` and ``schema_inference`` -- identical simulated
seconds by construction, with the compiled rows' measured wall-clock
the observable win (the columnar-direct row additionally skips the
per-partition encode probe and reads column buffers directly off the
proven schema) -- measured into one
:class:`~repro.observe.RunReport`.  Every
cell runs under both stage schedules (``serial`` and ``dag``; the DAG
rows carry a ``+dag`` system suffix), so the gate holds the DAG
scheduler to the exact same simulated cost as serial execution.  The
committed snapshot lives at ``BENCH_engine.json`` in the repo root.

The regression gate compares **simulated** seconds: the cost model is a
deterministic function of the execution trace, so the committed numbers
are stable across machines and the diff flags genuine cost-model or
planner changes rather than host noise.  Measured wall-clock is stored
in every entry too, for eyeballing, but is not gated by default.  The
``branch-overlap`` cell is where measured wall-clock is interesting: its
plan fans out into independent branches whose tasks carry a fixed
latency, so on the process backend the DAG rows finish in a fraction of
the serial rows' wall time while reporting identical simulated seconds.

Regenerate the snapshot after an intentional cost change::

    python -m repro.bench --emit-baseline

and check the working tree against it::

    python -m repro.bench --check-regressions
"""

import time
from dataclasses import replace

from ..baselines.inner_parallel import group_locally
from ..data import grouped_edges, grouped_points, initial_centroids, visits_log
from ..observe import RunReport
from ..serve import JobService
from ..serve.client import program as service_program
from ..tasks import bounce_rate, kmeans, pagerank
from .figures import _cluster
from .harness import run_measured

#: Where the committed snapshot lives, relative to the repo root.
BASELINE_FILENAME = "BENCH_engine.json"

_K = 4
_KMEANS_ITERS = 4
_PAGERANK_ITERS = 4
_GROUP_COUNTS = (4, 16)
_SCHEDULERS = ("serial", "dag")

#: Per-task latency of one branch in the branch-overlap cell, modelling
#: the fixed remote-fetch cost of that branch's input split.  Real
#: wall-clock (the task sleeps), invisible to the simulated counters.
_BRANCH_TASK_SLEEP_S = 0.05

#: The service-mode cell: how many times the same PageRank program is
#: resubmitted against one daemon, and the warm artifact budget.  The
#: cold row pins ``cache_limit_bytes=0`` so every repeat rebuilds the
#: graph; warm repeats reuse the cached edges/links/vertices artifacts
#: and adopt the links layout instead of reshuffling.
_SERVE_REPEATS = 3
_SERVE_PAGERANK_ITERS = 2
_SERVE_WARM_BYTES = 256 * 1024 * 1024

#: The pipeline cell: records per group for the interpreted-vs-compiled
#: pair.  Large enough that the per-record interpreter overhead (step
#: dispatch, ``call_udf`` frames, ``unwrap`` checks) dominates the
#: measured wall-clock, so the compiled row's speedup is stable across
#: hosts.
_PIPELINE_RECORDS_PER_GROUP = 8192

#: The reuse cell: how many identical jobs consume the same shared,
#: deliberately *uncached* feature subtree.  With ``optimize_caching``
#: off every job recomputes the subtree once per consumer; with it on
#: the effect analysis proves the subtree pure and deterministic, the
#: optimizer inserts the ``cache()`` itself, and jobs after the first
#: short-circuit through the materialized partitions.
_REUSE_JOBS = 3


def _scheduled(config, system, scheduler):
    """Apply the scheduler dimension to a cell's config and row name."""
    if scheduler == "serial":
        return config, system
    return config.with_scheduler(scheduler), "%s+%s" % (system, scheduler)


def _kmeans_cell(system, groups, scheduler="serial"):
    config, system = _scheduled(
        _cluster(2.0, 512, overhead=2.0), system, scheduler
    )
    records = grouped_points(groups, 512, _K, seed=11)
    configs = initial_centroids(_K, groups, seed=11)
    kwargs = {"max_iterations": _KMEANS_ITERS, "tolerance": None}
    if system.startswith("kmeans-matryoshka"):
        return run_measured(
            config, system, groups,
            lambda ctx: kmeans.kmeans_nested_grouped(
                ctx.bag_of(records), configs, **kwargs
            ).save(),
        )
    local = group_locally(records)
    return run_measured(
        config, system, groups,
        lambda ctx: kmeans.kmeans_inner(ctx, local, configs, **kwargs),
    )


def _pagerank_cell(system, groups, scheduler="serial"):
    config, system = _scheduled(_cluster(20.0, 1024), system, scheduler)
    records = grouped_edges(groups, 1024, seed=13)
    if system.startswith("pagerank-matryoshka"):
        return run_measured(
            config, system, groups,
            lambda ctx: pagerank.pagerank_nested(
                ctx.bag_of(records), iterations=_PAGERANK_ITERS
            ).save(),
        )
    local = group_locally(records)
    return run_measured(
        config, system, groups,
        lambda ctx: pagerank.pagerank_inner(
            ctx, local, iterations=_PAGERANK_ITERS
        ),
    )


def _bounce_rate_cell(system, groups, scheduler="serial"):
    config, system = _scheduled(
        _cluster(48.0, 2048, overhead=8.0), system, scheduler
    )
    records = visits_log(groups, 2048, seed=23)
    if system.startswith("bounce-matryoshka"):
        return run_measured(
            config, system, groups,
            lambda ctx: bounce_rate.bounce_rate_nested(
                ctx.bag_of(records)
            ).save(),
        )
    local = group_locally(records)
    return run_measured(
        config, system, groups,
        lambda ctx: bounce_rate.bounce_rate_inner(ctx, local),
    )


def _branch_pause(item):
    time.sleep(_BRANCH_TASK_SLEEP_S)
    return item


def _branch_overlap_cell(system, branches, scheduler="serial"):
    """``branches`` independent single-partition pipelines merged by one
    union: the group count doubles as the fan-out width.

    Each branch's only task sleeps for a fixed latency, so the serial
    schedule pays ``branches`` latencies back to back while the DAG
    schedule overlaps them across the worker pool.  The process backend
    and the concurrency knobs are pinned explicitly because the default
    dispatch width is derived from the host CPU count -- the point of
    this cell is scheduling overlap, not host parallelism.
    """
    config = replace(
        _cluster(2.0, 64),
        backend="process",
        num_workers=4,
        max_concurrent_stages=8,
    )
    config, system = _scheduled(config, system, scheduler)

    def program(ctx):
        parts = [
            ctx.bag_of([index], num_partitions=1).map(_branch_pause)
            for index in range(branches)
        ]
        return parts[0].union(*parts[1:]).count()

    return run_measured(config, system, branches, program)


def _serve_pagerank_cell(system, groups, scheduler="serial"):
    """Repeated PageRank jobs through a long-lived :class:`JobService`.

    The service adopts the harness-provided context (``retain_trace=True``
    keeps every job in the live trace so the harness costs and validates
    it as usual) and runs ``_SERVE_REPEATS`` identical submissions of the
    registered ``pagerank`` program on one worker slot.  The only knob
    that differs between the two rows is the artifact budget, so the
    cold-vs-warm delta in simulated seconds is exactly what the cache
    buys.
    """
    config, system = _scheduled(_cluster(20.0, 1024), system, scheduler)
    limit = 0 if system.startswith("serve-pagerank-cold") else _SERVE_WARM_BYTES
    prog = service_program(
        "pagerank",
        num_groups=groups,
        total_edges=1024,
        iterations=_SERVE_PAGERANK_ITERS,
        seed=13,
    )

    def program(ctx):
        service = JobService(
            ctx=ctx,
            num_slots=1,
            cache_limit_bytes=limit,
            seed=1,
            retain_trace=True,
        )
        service.add_tenant("bench")
        service.start()
        try:
            for repeat in range(_SERVE_REPEATS):
                handle = service.submit(
                    "bench", prog, label="repeat-%d" % repeat
                )
                handle.result(timeout=600)
        finally:
            service.shutdown(timeout=600)

    return run_measured(config, system, groups, program)


def _reuse_scale(x):
    return (x * 3 + 1) % 997


def _reuse_shift(x):
    return x - 500


def _auto_cache_cell(system, groups, scheduler="serial"):
    """A reuse-heavy workload: ``_REUSE_JOBS`` jobs over one shared
    uncached subtree with two consumers each.

    The two rows differ only in ``optimize_caching``: the baseline row
    recomputes the shared feature map twice per job, the autocache row
    lets the verified rewrite materialize it once -- the simulated
    delta is exactly what the auto-inserted ``cache()`` buys.  The
    UDFs are module-level and provably pure/deterministic on purpose:
    an unprovable subtree would (correctly) suppress the rewrite and
    collapse the delta to zero.
    """
    config, system = _scheduled(_cluster(2.0, 512), system, scheduler)
    config = replace(
        config,
        optimize_caching=system.startswith("reuse-autocache"),
    )

    def program(ctx):
        feats = ctx.bag_of(range(groups * 128)).map(_reuse_scale)
        total = 0
        for _ in range(_REUSE_JOBS):
            total += (
                feats.map(_reuse_shift)
                .union(feats.map(_reuse_scale))
                .sum()
            )
        return total

    return run_measured(config, system, groups, program)


def _pipe_scale(x):
    return x * 3 + 1


def _pipe_mix(x):
    return x ^ (x >> 3)


def _pipe_keep(x):
    return x % 7 != 0


def _pipe_shift(x):
    return x * 2 - 5


def _pipe_sparse(x):
    return x % 11 != 3


def _pipe_offset(x):
    return x + 13


def _pipe_bucket(x):
    return x % 1000


def _pipeline_cell(system, groups, scheduler="serial"):
    """A map/filter-heavy fused chain: interpreted vs compiled vs
    columnar-direct.

    The three rows differ only in ``compile_pipelines`` and
    ``schema_inference``: the interpreted row runs the chain through
    :class:`FusedPipelineTask`'s per-record step machine, the compiled
    row through the generated specialized loop
    (:mod:`repro.engine.codegen`) plus the per-partition columnar
    encode *probe*, and the columnar-direct row adds whole-plan schema
    inference (:mod:`repro.analysis.schema`) -- the proven ``int``
    schema lets the generated loop read column buffers directly and
    replaces the probe with a probe-free ``encode_committed``.
    Simulated seconds are *identical by construction* across all three
    -- every variant credits exactly the interpreter's per-operator
    record counts -- so the gated metric cannot regress; the
    interesting delta is the recorded measured wall-clock, where the
    compiled row must be at least ~2x faster than interpreted and the
    columnar-direct row at least as fast as compiled (asserted by the
    baseline tests).  The UDFs are module-level and provably pure on
    purpose: a lambda here would fall back to the interpreter and
    collapse the wall-clock delta.
    """
    config, system = _scheduled(_cluster(2.0, 512), system, scheduler)
    config = replace(
        config,
        compile_pipelines=system.startswith(
            ("pipeline-compiled", "pipeline-columnar-direct")
        ),
        schema_inference=system.startswith("pipeline-columnar-direct"),
    )
    n = groups * _PIPELINE_RECORDS_PER_GROUP

    def program(ctx):
        return (
            ctx.bag_of(range(n), num_partitions=8)
            .map(_pipe_scale)
            .map(_pipe_mix)
            .filter(_pipe_keep)
            .map(_pipe_shift)
            .filter(_pipe_sparse)
            .map(_pipe_offset)
            .map(_pipe_bucket)
            .count()
        )

    return run_measured(config, system, groups, program)


#: The full matrix: system name -> cell runner; every system runs at
#: every group count in ``_GROUP_COUNTS`` under every scheduler in
#: ``_SCHEDULERS``.
CELLS = {
    "kmeans-matryoshka": _kmeans_cell,
    "kmeans-inner": _kmeans_cell,
    "pagerank-matryoshka": _pagerank_cell,
    "pagerank-inner": _pagerank_cell,
    "bounce-matryoshka": _bounce_rate_cell,
    "bounce-inner": _bounce_rate_cell,
    "branch-overlap": _branch_overlap_cell,
    "serve-pagerank-cold": _serve_pagerank_cell,
    "serve-pagerank-warm": _serve_pagerank_cell,
    "reuse-baseline": _auto_cache_cell,
    "reuse-autocache": _auto_cache_cell,
    "pipeline-interpreted": _pipeline_cell,
    "pipeline-compiled": _pipeline_cell,
    "pipeline-columnar-direct": _pipeline_cell,
}


def run_baseline(label="engine-baseline", progress=None):
    """Run the whole matrix; return a :class:`RunReport`."""
    report = RunReport(
        label,
        meta={
            "matrix": sorted(CELLS),
            "group_counts": list(_GROUP_COUNTS),
            "schedulers": list(_SCHEDULERS),
            "metric": "simulated",
        },
    )
    for system, cell in CELLS.items():
        for groups in _GROUP_COUNTS:
            for scheduler in _SCHEDULERS:
                result = cell(system, groups, scheduler)
                report.add(result.entry)
                if progress is not None:
                    progress(result)
    return report

"""Artifact fingerprinting: cross-job reuse only for provably
deterministic builders whose code has not changed.

The service keys every artifact with a canonical AST fingerprint of
its builder (:func:`repro.analysis.effects.fingerprint_function`).  A
re-registered program with a different body can never be served the
old program's artifact, and a builder whose determinism is *refuted*
gets a fresh fingerprint per job -- its artifacts are never reused.
"""

import random

import pytest

from repro.serve import JobService
from repro.serve.artifacts import ArtifactCache


@pytest.fixture
def service():
    svc = JobService(num_slots=1, seed=1)
    svc.add_tenant("alice")
    svc.start()
    yield svc
    svc.shutdown(drain=False, timeout=10)


def _submit(service, program):
    return service.submit("alice", program).result(timeout=30)


class TestServiceFingerprints:
    def test_stable_builder_still_hits(self, service):
        def program(job):
            data = job.dataset(
                "nums", lambda ctx: ctx.bag_of(range(30))
            )
            return data.count()

        assert _submit(service, program) == 30
        assert _submit(service, program) == 30
        stats = service.cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_changed_builder_body_rebuilds(self, service):
        def program_v1(job):
            data = job.dataset(
                "nums", lambda ctx: ctx.bag_of(range(10))
            )
            return data.count()

        def program_v2(job):
            data = job.dataset(
                "nums", lambda ctx: ctx.bag_of(range(20))
            )
            return data.count()

        assert _submit(service, program_v1) == 10
        # same artifact key, different builder AST: the stale entry
        # must be evicted and rebuilt, not served
        assert _submit(service, program_v2) == 20
        stats = service.cache.stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 0
        assert stats["evictions"] == 1

    def test_nondeterministic_builder_never_reused(self, service):
        def program(job):
            data = job.dataset(
                "noise",
                lambda ctx: ctx.bag_of(
                    [random.random() for _ in range(10)]
                ),
            )
            return data.count()

        assert _submit(service, program) == 10
        assert _submit(service, program) == 10
        stats = service.cache.stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 0


class TestCacheFingerprints:
    def test_matching_fingerprint_hits(self):
        cache = ArtifactCache(on_evict=None)
        evicted = []
        cache.on_evict = evicted.append
        value, hit = cache.get_or_build(
            "k", lambda: object(), kind="broadcast-free",
            fingerprint="abc",
        )
        assert not hit
        again, hit = cache.get_or_build(
            "k", lambda: object(), kind="broadcast-free",
            fingerprint="abc",
        )
        assert hit
        assert again is value
        assert not evicted

    def test_mismatch_evicts_and_rebuilds(self):
        evicted = []
        cache = ArtifactCache(on_evict=evicted.append)
        first, _ = cache.get_or_build(
            "k", lambda: "old", kind="x", fingerprint="abc"
        )
        fresh, hit = cache.get_or_build(
            "k", lambda: "new", kind="x", fingerprint="def"
        )
        assert not hit
        assert fresh == "new"
        assert [e.value for e in evicted] == ["old"]
        assert cache.entry("k").fingerprint == "def"

    def test_mismatch_on_pinned_entry_builds_outside_cache(self):
        evicted = []
        cache = ArtifactCache(on_evict=evicted.append)
        cache.get_or_build(
            "k", lambda: "old", kind="x", fingerprint="abc", pin=True
        )
        fresh, hit = cache.get_or_build(
            "k", lambda: "new", kind="x", fingerprint="def"
        )
        assert not hit
        assert fresh == "new"
        # the running job's pinned value stays untouched
        assert not evicted
        assert cache.entry("k").value == "old"
        # once unpinned, the next mismatch replaces the slot
        cache.unpin("k")
        cache.get_or_build(
            "k", lambda: "new", kind="x", fingerprint="def"
        )
        assert cache.entry("k").value == "new"
        assert [e.value for e in evicted] == ["old"]

    def test_no_fingerprint_preserves_plain_lru_behavior(self):
        cache = ArtifactCache()
        cache.get_or_build("k", lambda: "v", kind="x")
        _, hit = cache.get_or_build("k", lambda: "v2", kind="x")
        assert hit

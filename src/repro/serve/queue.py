"""The service's job queue: admission control + deficit round-robin.

One thread-safe :class:`JobQueue` sits between every client and the
worker slots.  It enforces two policies:

* **Admission control** on the way in: a submission is rejected with a
  typed :class:`AdmissionRejected` when its tenant's pending quota is
  exhausted (``tenant-quota``), when the queue as a whole is at depth
  (``queue-full``), or when the service is draining or shut down
  (``draining`` / ``shutdown``).  Rejecting at the door keeps queue
  wait bounded under overload instead of letting latency grow without
  limit.

* **Deficit round-robin (DRR)** on the way out: tenants are visited in
  a fixed cycle; on entering a tenant with pending jobs its *deficit*
  grows by ``quantum * weight``, and the tenant keeps serving jobs
  (each costing ``job.cost`` deficit) until the deficit or its queue is
  exhausted.  Every non-empty tenant gains deficit once per round, so
  no tenant starves regardless of weights, and service is
  proportional: with unit job costs, a weight-2 tenant drains two jobs
  for every one of a weight-1 tenant.

**Determinism**: the visit cycle is fixed at
``sorted(tenants, key=seeded-hash)`` -- a stable shuffle of the tenant
names under the queue's ``seed`` -- and deficits evolve only through
``take()``.  Given the same tenants, submissions, and seed, the
dequeue order is therefore a pure function of the submission
interleaving, which is what lets tests assert exact schedules.
"""

import collections
import threading
import time

from ..engine.partitioner import stable_hash
from ..errors import ReproError

__all__ = ["AdmissionRejected", "JobQueue", "PendingJob"]

#: Admission rejection reasons.
REJECT_TENANT_QUOTA = "tenant-quota"
REJECT_QUEUE_FULL = "queue-full"
REJECT_DRAINING = "draining"
REJECT_SHUTDOWN = "shutdown"
REJECT_UNKNOWN_TENANT = "unknown-tenant"


class AdmissionRejected(ReproError):
    """A job submission the service refused to queue.

    Attributes:
        tenant: The submitting tenant's name.
        reason: One of ``"tenant-quota"``, ``"queue-full"``,
            ``"draining"``, ``"shutdown"``, ``"unknown-tenant"``.
    """

    def __init__(self, tenant, reason, detail=""):
        self.tenant = tenant
        self.reason = reason
        message = "job for tenant %r rejected (%s)" % (tenant, reason)
        if detail:
            message += ": " + detail
        super().__init__(message)


class PendingJob:
    """One queued unit of work.

    ``program`` is a callable taking the service's
    :class:`~repro.serve.service.JobContext`; ``future`` is the
    :class:`~repro.serve.service.JobHandle` completed by the worker
    slot.  ``cost`` is the job's DRR cost in quantum units (default 1:
    every job is equal; a service may charge known-heavy programs
    more).
    """

    __slots__ = ("ticket", "tenant", "label", "program", "future",
                 "cost", "submitted_at")

    def __init__(self, ticket, tenant, program, future=None, label="",
                 cost=1.0):
        if cost <= 0:
            raise ValueError("job cost must be positive")
        self.ticket = ticket
        self.tenant = tenant
        self.label = label
        self.program = program
        self.future = future
        self.cost = cost
        self.submitted_at = time.monotonic()


class _TenantQueue:
    """Per-tenant FIFO plus its DRR state."""

    __slots__ = ("config", "jobs", "deficit", "replenished")

    def __init__(self, config):
        self.config = config
        self.jobs = collections.deque()
        self.deficit = 0.0
        # Whether the current visit already granted this tenant its
        # quantum (cleared when the scan cursor moves on).
        self.replenished = False


class JobQueue:
    """Thread-safe multi-tenant queue with fair, deterministic dequeue.

    Args:
        max_depth: Global bound on queued jobs across all tenants.
        quantum: Deficit granted per round to a weight-1 tenant.  With
            the default unit job cost, ``quantum=1`` serves ``weight``
            jobs per tenant per round.
        seed: Seeds the tenant visit cycle's tie-break ordering.
    """

    def __init__(self, max_depth=256, quantum=1.0, seed=0):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.max_depth = max_depth
        self.quantum = quantum
        self.seed = seed
        self._tenants = {}
        self._cycle = []
        self._cursor = 0
        self._depth = 0
        # Jobs handed out by take() whose task_done() hasn't arrived:
        # join()/is_idle count them, closing the window in which a job
        # is neither queued nor yet visible as running.
        self._taken = 0
        self._draining = False
        self._closed = False
        self._cv = threading.Condition()

    # -- setup ---------------------------------------------------------

    def add_tenant(self, config):
        """Register a :class:`~repro.serve.tenants.TenantConfig`."""
        with self._cv:
            if config.name in self._tenants:
                raise ValueError(
                    "tenant %r already registered" % config.name
                )
            self._tenants[config.name] = _TenantQueue(config)
            current = self._cycle[self._cursor] if self._cycle else None
            self._cycle = sorted(
                self._tenants,
                key=lambda name: (
                    stable_hash((self.seed, name)), name
                ),
            )
            # Keep the cursor on the tenant it was visiting: inserting
            # a tenant must not replay or skip anyone mid-round.
            if current is not None:
                self._cursor = self._cycle.index(current)

    # -- admission -----------------------------------------------------

    def submit(self, job):
        """Admit ``job`` or raise :class:`AdmissionRejected`."""
        with self._cv:
            if self._closed:
                raise AdmissionRejected(job.tenant, REJECT_SHUTDOWN)
            if self._draining:
                raise AdmissionRejected(job.tenant, REJECT_DRAINING)
            tq = self._tenants.get(job.tenant)
            if tq is None:
                raise AdmissionRejected(
                    job.tenant, REJECT_UNKNOWN_TENANT
                )
            if len(tq.jobs) >= tq.config.max_pending:
                raise AdmissionRejected(
                    job.tenant, REJECT_TENANT_QUOTA,
                    "%d jobs already pending (quota %d)"
                    % (len(tq.jobs), tq.config.max_pending),
                )
            if self._depth >= self.max_depth:
                raise AdmissionRejected(
                    job.tenant, REJECT_QUEUE_FULL,
                    "queue depth %d at limit" % self._depth,
                )
            tq.jobs.append(job)
            self._depth += 1
            self._cv.notify()

    # -- fair dequeue --------------------------------------------------

    def take(self, timeout=None):
        """Next job under the DRR schedule; blocks up to ``timeout``.

        Returns ``None`` on timeout or when the queue is closed and
        empty.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._cv:
            while True:
                job = self._next_locked()
                if job is not None:
                    self._depth -= 1
                    self._taken += 1
                    return job
                if self._closed:
                    return None
                if deadline is None:
                    self._cv.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cv.wait(remaining)

    def _next_locked(self):
        """One DRR scheduling step (caller holds the lock)."""
        if self._depth == 0 or not self._cycle:
            return None
        # Progress bound: every full cycle grants each non-empty tenant
        # quantum * weight, so some head job's cost is reached within
        # max_cost / (quantum * min_weight) rounds.
        max_cost = max(
            tq.jobs[0].cost
            for tq in self._tenants.values() if tq.jobs
        )
        min_grant = self.quantum * min(
            tq.config.weight
            for tq in self._tenants.values() if tq.jobs
        )
        limit = len(self._cycle) * (int(max_cost / min_grant) + 2)
        for _ in range(limit):
            tq = self._tenants[self._cycle[self._cursor]]
            if tq.jobs:
                if not tq.replenished:
                    tq.replenished = True
                    tq.deficit += self.quantum * tq.config.weight
                if tq.deficit >= tq.jobs[0].cost:
                    job = tq.jobs.popleft()
                    tq.deficit -= job.cost
                    if not tq.jobs:
                        # Classic DRR: an emptied queue forfeits its
                        # leftover deficit (no banking while idle).
                        tq.deficit = 0.0
                        tq.replenished = False
                        self._advance_locked()
                    return job
            tq.replenished = False
            self._advance_locked()
        raise RuntimeError(
            "DRR failed to schedule within %d visits" % limit
        )

    def _advance_locked(self):
        self._cursor = (self._cursor + 1) % len(self._cycle)

    def task_done(self):
        """Acknowledge one job handed out by :meth:`take`."""
        with self._cv:
            if self._taken > 0:
                self._taken -= 1
            self._cv.notify_all()

    def join(self, timeout=None):
        """Block until no job is queued or unacknowledged.

        Returns ``True`` when idle, ``False`` on timeout.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._cv:
            while self._depth > 0 or self._taken > 0:
                if deadline is None:
                    self._cv.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    self._cv.wait(remaining)
        return True

    # -- lifecycle -----------------------------------------------------

    def drain(self):
        """Stop admitting; queued jobs still drain through ``take``."""
        with self._cv:
            self._draining = True
            self._cv.notify_all()

    def close(self):
        """Stop admitting and wake every blocked ``take``."""
        with self._cv:
            self._draining = True
            self._closed = True
            self._cv.notify_all()

    # -- introspection -------------------------------------------------

    @property
    def depth(self):
        """Queued jobs across all tenants."""
        with self._cv:
            return self._depth

    def pending(self, tenant):
        """Queued jobs for one tenant."""
        with self._cv:
            tq = self._tenants.get(tenant)
            return len(tq.jobs) if tq else 0

    @property
    def is_idle(self):
        with self._cv:
            return self._depth == 0 and self._taken == 0

    def cycle_order(self):
        """The deterministic tenant visit cycle (for tests/stats)."""
        with self._cv:
            return list(self._cycle)

"""Effect-gated re-execution.

Retries of provably nondeterministic tasks are never silent: the
scheduler warns once per operator and emits a
``nondeterministic_retry`` trace instant (the retry still runs --
loud, not blocked).  Speculative straggler copies are gated the other
way: they run *only* when the task's UDFs are proven pure,
deterministic, and I/O-free.
"""

import random
import time
import warnings

import pytest

from repro.engine import EngineContext, TaskScheduler, laptop_config
from repro.engine.metrics import ExecutionTrace
from repro.observe.events import (
    KIND_NONDETERMINISTIC_RETRY,
    KIND_SPECULATION,
)


def _noisy(x):
    return x + random.random()


def _steady(x):
    return x * 2


def fresh_ctx(**overrides):
    overrides.setdefault("backend", "serial")
    trace = overrides.pop("trace", False)
    return EngineContext(laptop_config(**overrides), trace=trace)


class TestRetryGate:
    def test_nondeterministic_retry_warns(self):
        ctx = fresh_ctx()
        ctx.fault_injector.kill_task(task_index=0, stage=0)
        with pytest.warns(RuntimeWarning, match="nondeterministic"):
            ctx.bag_of(range(8)).map(_noisy).collect()
        assert ctx.runtime.tasks_retried == 1

    def test_warning_fires_once_per_operator(self):
        ctx = fresh_ctx()
        ctx.fault_injector.kill_task(task_index=0, stage=0, times=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ctx.bag_of(range(8)).map(_noisy).collect()
        relevant = [
            w for w in caught if "nondeterministic" in str(w.message)
        ]
        assert len(relevant) == 1
        assert ctx.runtime.tasks_retried == 2

    def test_deterministic_retry_is_silent(self):
        ctx = fresh_ctx()
        ctx.fault_injector.kill_task(task_index=0, stage=0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = sorted(ctx.bag_of(range(8)).map(_steady).collect())
        assert result == [x * 2 for x in range(8)]
        assert not [
            w for w in caught if "nondeterministic" in str(w.message)
        ]
        assert ctx.runtime.tasks_retried == 1

    def test_trace_instant_emitted_per_retry(self):
        ctx = fresh_ctx(trace=True)
        ctx.fault_injector.kill_task(task_index=0, stage=0, times=2)
        with pytest.warns(RuntimeWarning):
            ctx.bag_of(range(8)).map(_noisy).collect()
        instants = [
            e
            for e in ctx.tracer.events()
            if e.kind == KIND_NONDETERMINISTIC_RETRY
        ]
        # warn-once, but *every* unsafe retry is traced
        assert len(instants) == 2
        assert all(e.args["reason"] == "retry" for e in instants)

    def test_retry_still_completes_the_job(self):
        ctx = fresh_ctx()
        ctx.fault_injector.kill_task(task_index=0, stage=0)
        with pytest.warns(RuntimeWarning):
            assert ctx.bag_of(range(8)).map(_noisy).count() == 8


class _UdfSleepTask:
    """A sleep task that carries a UDF, like fused pipeline tasks do."""

    def __init__(self, fn, operator="Sleep[udf]"):
        self.udfs = (fn,)
        self.operator = operator

    def __call__(self, seconds):
        time.sleep(seconds)
        return seconds


def speculative_scheduler():
    return TaskScheduler(
        laptop_config(
            backend="serial",
            speculative_execution=True,
            straggler_min_task_seconds=0.005,
            straggler_factor=1.5,
        )
    )


def run_straggly_stage(scheduler, task):
    trace = ExecutionTrace()
    stage = trace.new_job("collect").new_stage("input")
    future = scheduler.submit_stage(
        task, [(0.0,)] * 5 + [(0.04,)], stage=stage
    )
    result = future.result(timeout=30)
    return stage, result


class TestSpeculationGate:
    def test_proven_task_is_speculated(self):
        scheduler = speculative_scheduler()
        try:
            stage, result = run_straggly_stage(
                scheduler, _UdfSleepTask(_steady)
            )
        finally:
            scheduler.close()
        assert stage.straggler_tasks == 1
        assert scheduler.tasks_speculated == 1
        # the copy is redundant work, never task time
        assert stage.failed_attempt_seconds > 0.0
        assert result == [0.0] * 5 + [0.04]

    def test_unproven_task_is_not_speculated(self):
        scheduler = speculative_scheduler()
        try:
            with pytest.warns(RuntimeWarning, match="not speculating"):
                stage, _ = run_straggly_stage(
                    scheduler, _UdfSleepTask(_noisy)
                )
        finally:
            scheduler.close()
        assert stage.straggler_tasks == 1
        assert scheduler.tasks_speculated == 0

    def test_udf_less_task_is_not_speculated(self):
        class PlainSleep:
            operator = "Sleep[plain]"

            def __call__(self, seconds):
                time.sleep(seconds)
                return seconds

        scheduler = speculative_scheduler()
        try:
            with pytest.warns(RuntimeWarning, match="not speculating"):
                stage, _ = run_straggly_stage(scheduler, PlainSleep())
        finally:
            scheduler.close()
        assert scheduler.tasks_speculated == 0

    def test_speculation_off_by_default(self):
        scheduler = TaskScheduler(
            laptop_config(
                backend="serial",
                straggler_min_task_seconds=0.005,
                straggler_factor=1.5,
            )
        )
        try:
            stage, _ = run_straggly_stage(
                scheduler, _UdfSleepTask(_steady)
            )
        finally:
            scheduler.close()
        assert stage.straggler_tasks == 1
        assert scheduler.tasks_speculated == 0

    def test_speculation_traced(self):
        from repro.observe import MemorySink, Tracer

        tracer = Tracer(MemorySink())
        scheduler = TaskScheduler(
            laptop_config(
                backend="serial",
                speculative_execution=True,
                straggler_min_task_seconds=0.005,
                straggler_factor=1.5,
            ),
            tracer=tracer,
        )
        try:
            run_straggly_stage(scheduler, _UdfSleepTask(_steady))
        finally:
            scheduler.close()
        instants = [
            e for e in tracer.events() if e.kind == KIND_SPECULATION
        ]
        assert len(instants) == 1
        assert instants[0].args["task"] == 5

"""Two tenants sharing one long-lived service and one cached input.

The service keeps a single engine context alive across jobs.  Tenant
``analytics`` (weight 2) and tenant ``reporting`` (weight 1) both
resolve the same click-log artifact by key: the first job pays to
build and materialize it, every later job from *either* tenant reuses
the cached partitions, and the deficit-round-robin scheduler drains
analytics twice as fast under contention.

Run:  PYTHONPATH=src python examples/multi_tenant_service.py
"""

from repro.serve import JobService, ServiceClient

CLICKS_KEY = "clicks:demo"


def build_clicks(ctx):
    # (user, page) click pairs; in real life this is the expensive
    # read-and-parse step every query repays.
    return ctx.bag_of(
        [("user%d" % (i % 50), "page%d" % (i % 7)) for i in range(2000)]
    )


def page_views(job):
    clicks = job.dataset(CLICKS_KEY, build_clicks)
    return sorted(
        clicks.map(lambda kv: (kv[1], 1))
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )


def active_users(job):
    clicks = job.dataset(CLICKS_KEY, build_clicks)
    return clicks.map(lambda kv: kv[0]).distinct().count()


def main():
    service = JobService(num_slots=1, seed=1)
    service.add_tenant("analytics", weight=2.0)
    service.add_tenant("reporting", weight=1.0)
    service.start()

    analytics = ServiceClient(service, "analytics")
    reporting = ServiceClient(service, "reporting")

    # Interleave submissions; the DRR scheduler decides the order.
    handles = []
    for round_no in range(3):
        handles.append(analytics.submit(
            page_views, label="views-%d" % round_no
        ))
        handles.append(reporting.submit(
            active_users, label="users-%d" % round_no
        ))
    for handle in handles:
        handle.result(timeout=60)

    print("execution order (DRR, weights 2:1):")
    for tenant, label in service.schedule():
        print("  %-10s %s" % (tenant, label))

    views = handles[0].result()
    print("\ntop pages:", views[:3], "...")
    print("active users:", handles[1].result())

    stats = service.stats()
    cache = stats["cache"]
    print(
        "\nartifact cache: %d build(s), %d reuse(s), %d bytes held"
        % (cache["misses"], cache["hits"], cache["bytes"])
    )
    for name in ("analytics", "reporting"):
        tenant = stats["tenants"][name]
        print(
            "%-10s completed=%d mean queue wait=%.4fs simulated=%.2fs"
            % (
                name, tenant["completed"],
                tenant["mean_queue_wait_seconds"],
                tenant["simulated_seconds"],
            )
        )

    service.shutdown()
    print("\nclean shutdown.")


if __name__ == "__main__":
    main()

"""Fig. 6: Matryoshka vs. DIQL at reduced (12 GB) input.

Expected: at a quarter of the input, DIQL completes at larger group
counts (its materialized groups fit), and Matryoshka is faster at every
surviving point (paper: up to 6.6x).
"""

from repro.bench import figures

import os

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


def test_fig6_diql_comparison(figure_benchmark):
    sweep = figure_benchmark(figures.fig6_diql_comparison, SCALE)
    survived = 0
    for x in sweep.x_values():
        diql = sweep.seconds(figures.DIQL, x)
        if diql is None:
            continue
        survived += 1
        assert sweep.seconds(figures.MATRYOSHKA, x) <= diql * 1.05
    assert survived >= 1, "DIQL must survive somewhere at 12 GB"

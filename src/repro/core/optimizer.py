"""The lowering-phase runtime optimizer (paper Sec. 8).

The two-phase flattening exists so that these decisions can be made *at
runtime*, when the sizes of the bags representing InnerScalars are known.
The optimizer exploits the paper's key observation (Sec. 8.1): every
InnerScalar inside a lifted UDF has exactly one element per tag, and the
number of tags is known when the lifted UDF starts.  Three decisions hang
off that:

* partition counts for InnerScalar-sized bags (Sec. 8.1);
* broadcast vs. repartition for InnerBag-InnerScalar joins (Sec. 8.2);
* which side of a half-lifted ``mapWithClosure`` cross product to
  broadcast (Sec. 8.3).
"""

from dataclasses import dataclass, field

from ..engine import plan as engine_plan


@dataclass(frozen=True)
class LoweringConfig:
    """Strategy overrides for the lowering phase.

    The defaults (``"auto"``) enable the paper's runtime optimizer.  Fixing
    a strategy emulates a system that must commit at compile time (as DIQL
    and MRQL do) -- the ablation benchmarks for Fig. 8 use this.

    Attributes:
        join_strategy: ``"auto"``, ``"broadcast"``, or ``"repartition"``
            for joins between InnerBags/InnerScalars and InnerScalars.
            ``"hints"`` implements the paper's suggested alternative
            (Sec. 8.2): instead of deciding itself, Matryoshka passes
            the known InnerScalar size and key uniqueness to the
            *engine's* optimizer as a :class:`~repro.engine.JoinHint`.
        cross_side: ``"auto"``, ``"scalar"`` (always broadcast the
            InnerScalar side), or ``"primary"`` (always broadcast the
            primary input) for half-lifted ``mapWithClosure``.
        partition_policy: ``"auto"`` sizes partition counts to InnerScalar
            cardinalities; ``"default"`` always uses the engine default.
    """

    join_strategy: str = "auto"
    cross_side: str = "auto"
    partition_policy: str = "auto"

    def __post_init__(self):
        if self.join_strategy not in (
            "auto", "broadcast", "repartition", "hints"
        ):
            raise ValueError(
                "bad join_strategy: %r" % (self.join_strategy,)
            )
        if self.cross_side not in ("auto", "scalar", "primary"):
            raise ValueError("bad cross_side: %r" % (self.cross_side,))
        if self.partition_policy not in ("auto", "default"):
            raise ValueError(
                "bad partition_policy: %r" % (self.partition_policy,)
            )


@dataclass
class Decision:
    """One recorded optimizer decision (inspectable in tests/benches)."""

    kind: str
    choice: str
    num_tags: int
    #: Free-form human-readable context (e.g. which shuffle's layout an
    #: elision reuses); empty for decisions that need none.
    detail: str = ""


class Optimizer:
    """Makes the Sec. 8 physical-operator choices for one engine context."""

    def __init__(self, engine, lowering=None):
        self.engine = engine
        self.lowering = lowering if lowering is not None else LoweringConfig()
        self.decisions = []
        self._count_cache = {}

    # ------------------------------------------------------------------
    # Sec. 8.1: partition counts from InnerScalar sizes
    # ------------------------------------------------------------------

    def scalar_partitions(self, num_tags):
        """Partition count for a bag holding one record per tag.

        Small bags get few partitions (avoiding the per-partition overhead
        the paper cites from [37]); large bags get the engine default.
        """
        default = self.engine.config.default_parallelism
        if self.lowering.partition_policy == "default":
            return default
        return max(1, min(default, num_tags))

    # ------------------------------------------------------------------
    # Sec. 8.2: InnerBag-InnerScalar join strategy
    # ------------------------------------------------------------------

    def scalar_join_strategy(self, num_tags):
        """Broadcast vs. repartition for joining against an InnerScalar.

        The paper's rule: repartition only when the InnerScalar has enough
        elements to give work to all CPU cores; otherwise broadcast.
        """
        if self.lowering.join_strategy != "auto":
            choice = self.lowering.join_strategy
        elif num_tags >= self.engine.config.total_cores:
            choice = "repartition"
        else:
            choice = "broadcast"
        self.decisions.append(Decision("scalar-join", choice, num_tags))
        return choice

    def join_with_scalar(self, left_bag, scalar):
        """Equi-join a tagged bag with an InnerScalar's representation.

        Returns a bag of ``(tag, (left_value, scalar_value))``.
        """
        if self.lowering.join_strategy == "hints":
            return self._join_via_engine_hints(left_bag, scalar)
        strategy = self.scalar_join_strategy(scalar.lctx.num_tags)
        if strategy == "broadcast":
            return left_bag.join(scalar.repr, strategy="broadcast")
        return left_bag.join(
            scalar.repr,
            strategy="repartition",
            num_partitions=self.join_partitions(left_bag, scalar),
        )

    def _join_via_engine_hints(self, left_bag, scalar):
        """Sec. 8.2's suggested integration: hand the InnerScalar's size
        (known before it is computed) and its key uniqueness to the
        engine optimizer and let *it* pick the join algorithm."""
        from ..engine import JoinHint

        hint = JoinHint(
            right_records=scalar.lctx.num_tags, unique_key=True
        )
        self.decisions.append(
            Decision("scalar-join", "hints", scalar.lctx.num_tags)
        )
        return left_bag.join(
            scalar.repr,
            strategy="auto",
            num_partitions=self.join_partitions(left_bag, scalar),
            hints=hint,
        )

    def join_partitions(self, left_bag, scalar):
        """Partitions for a repartition join against an InnerScalar."""
        if self.lowering.partition_policy == "default":
            return self.engine.config.default_parallelism
        return max(
            self.scalar_partitions(scalar.lctx.num_tags),
            min(
                left_bag.num_partitions,
                self.engine.config.default_parallelism,
            ),
        )

    # ------------------------------------------------------------------
    # Sec. 8.3: half-lifted mapWithClosure broadcast side
    # ------------------------------------------------------------------

    def cross_broadcast_side(self, primary_bag, scalar):
        """Which side of the half-lifted cross product to broadcast.

        Follows the paper exactly: if the InnerScalar occupies a single
        partition, broadcast it (the quick check that is also the common
        case thanks to Sec. 8.1); otherwise compare estimated sizes and
        broadcast the smaller side.
        """
        if self.lowering.cross_side == "scalar":
            choice = "scalar"
        elif self.lowering.cross_side == "primary":
            choice = "primary"
        elif self.scalar_partitions(scalar.lctx.num_tags) == 1:
            choice = "scalar"
        else:
            # Spark-SizeEstimator equivalent: compare estimated *bytes*
            # of the two inputs and broadcast the smaller one.
            config = self.engine.config
            scalar_bytes = (
                scalar.lctx.num_tags * config.result_record_bytes
            )
            primary_rate = (
                config.result_record_bytes
                if primary_bag.is_meta
                else config.bytes_per_record
            )
            primary_bytes = (
                self.estimate_count(primary_bag) * primary_rate
            )
            choice = (
                "scalar" if scalar_bytes <= primary_bytes else "primary"
            )
        self.decisions.append(
            Decision("cross-side", choice, scalar.lctx.num_tags)
        )
        return choice

    def estimate_count(self, bag):
        """Record count of a bag, as Spark's SizeEstimator would obtain it.

        Free when the bag is driver-provided data; otherwise counted once
        and memoized (the count job is charged to the trace -- estimating
        a distributed dataset's size is not free in reality either).
        """
        key = id(bag.node)
        if key in self._count_cache:
            return self._count_cache[key]
        if isinstance(bag.node, engine_plan.Parallelize):
            count = len(bag.node.data)
        else:
            count = bag.count(label="optimizer size estimate")
        self._count_cache[key] = count
        return count

    def decisions_of_kind(self, kind):
        return [d for d in self.decisions if d.kind == kind]

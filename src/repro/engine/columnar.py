"""Columnar partition representation for numeric record batches.

A :class:`ColumnarPartition` stores a partition of scalar-numeric
records (or fixed-arity tuples of them) as parallel typed buffers --
one 64-bit column per field -- instead of a list of boxed Python
objects.  This is the storage half of the Flare-style compiled
pipeline work (:mod:`repro.engine.codegen` is the compute half): the
flattening transformation turns nested programs into long narrow
chains over flat tagged data, which is exactly the shape that packs
into columns.

Design constraints, in order:

* **Value fidelity.**  Iterating or decoding a columnar partition must
  yield *exactly* the Python values that went in -- ``int`` stays
  ``int``, ``float`` stays ``float``, tuples keep their arity.  Records
  that cannot be represented losslessly (bools, big ints beyond 64
  bits, strings, mixed-type columns) are simply not encoded:
  :meth:`ColumnarPartition.from_records` returns ``None`` and the
  caller keeps the plain list.  Downstream operators therefore never
  need to know whether a partition is columnar.
* **Pickle safety.**  Partitions cross the process-pool boundary;
  ``__reduce__`` serializes columns as raw little-endian bytes plus a
  type string, independent of whether numpy is importable on the other
  side.
* **Optional numpy.**  When numpy is importable, columns are built and
  held as ``numpy`` arrays (fast bulk construction and ``tolist``
  decode); otherwise :mod:`array` buffers are used.  The two paths are
  value- and pickle-compatible.

Sizing: :mod:`repro.engine.sizing` charges a columnar partition its
buffer bytes (:attr:`ColumnarPartition.nbytes`) plus a small fixed
overhead, instead of recursing into per-record boxed estimates.
"""

import array
import struct
import sys

try:  # optional fast path, auto-detected at import
    import numpy as _np
except ImportError:  # pragma: no cover - depends on the environment
    _np = None

HAVE_NUMPY = _np is not None

__all__ = [
    "HAVE_NUMPY",
    "ColumnarPartition",
    "as_records",
    "encode_committed",
    "maybe_columnar",
]

#: Column kind -> (array typecode, numpy dtype name).  Both are 64-bit
#: and little-endian on every platform this repo targets, so the two
#: storage backends serialize identically.
_KINDS = {
    "i": ("q", "int64"),
    "f": ("d", "float64"),
}

#: Widest tuple record we bother to columnarize.
_MAX_ARITY = 16

#: Fixed per-column estimate overhead (object header + buffer header).
_COLUMN_OVERHEAD = 64


def _column_kind(values):
    """``"i"``/``"f"`` when every value is exactly that scalar type.

    ``bool`` is deliberately rejected (``type(True) is not int``):
    encoding ``True`` as ``1`` would change the decoded value.
    """
    kind = None
    for value in values:
        t = type(value)
        if t is int:
            k = "i"
        elif t is float:
            k = "f"
        else:
            return None
        if kind is None:
            kind = k
        elif kind != k:
            return None
    return kind


def _promote_mixed_column(values):
    """A mixed int/float column as all-floats, or ``None`` when lossy.

    Every int must survive the round-trip exactly -- ``2**53 + 1``
    (not representable in a double) and ``10**400`` (overflows) are
    rejected, so promotion never silently truncates.  Pure int or pure
    float columns also answer ``None``: they already encode as-is, and
    promoting an unmixed int column would change its decoded values.
    """
    promoted = []
    append = promoted.append
    saw_int = saw_float = False
    for value in values:
        t = type(value)
        if t is float:
            saw_float = True
            append(value)
        elif t is int:
            saw_int = True
            try:
                as_float = float(value)
            except OverflowError:
                return None
            if int(as_float) != value:
                return None
            append(as_float)
        else:
            return None
    if not (saw_int and saw_float):
        return None
    return promoted


def _encode_column(kind, values):
    """Build one typed column; raises ``OverflowError`` on >64-bit ints."""
    typecode, dtype = _KINDS[kind]
    if HAVE_NUMPY:
        column = _np.asarray(values, dtype=dtype)
        if kind == "i" and column.dtype != _np.dtype("int64"):
            raise OverflowError("int column does not fit int64")
        return column
    return array.array(typecode, values)


def _column_bytes(column):
    if HAVE_NUMPY and isinstance(column, _np.ndarray):
        if sys.byteorder == "big":  # pragma: no cover - LE platforms
            return column.astype(column.dtype.newbyteorder("<")).tobytes()
        return column.tobytes()
    data = column.tobytes()
    if sys.byteorder == "big":  # pragma: no cover - LE platforms
        column = array.array(column.typecode, column)
        column.byteswap()
        data = column.tobytes()
    return data


def _decode_column(kind, data):
    typecode, dtype = _KINDS[kind]
    if HAVE_NUMPY:
        column = _np.frombuffer(data, dtype="<" + {"i": "i8", "f": "f8"}[kind])
        return column.astype(dtype, copy=False)
    column = array.array(typecode)
    column.frombytes(data)
    if sys.byteorder == "big":  # pragma: no cover - LE platforms
        column.byteswap()
    return column


class ColumnarPartition:
    """One partition stored as parallel 64-bit columns.

    Attributes:
        kinds: One ``"i"``/``"f"`` character per column.
        scalar: True when records are bare scalars (one column) rather
            than 1-tuples.
    """

    __slots__ = ("kinds", "scalar", "columns", "_length")

    def __init__(self, kinds, scalar, columns, length):
        self.kinds = kinds
        self.scalar = scalar
        self.columns = columns
        self._length = length

    # -- construction --------------------------------------------------

    @classmethod
    def from_records(cls, records, promote_mixed=False):
        """Encode a list of records, or return ``None`` when the shape
        is not columnar (empty, non-numeric, ragged, or out of range).

        ``promote_mixed=True`` additionally accepts columns mixing
        ``int`` and ``float`` by promoting the ints to floats -- but
        only when every promotion is numerically exact (see
        :func:`_promote_mixed_column`); a lossy column still rejects
        the whole partition.  Off by default because promotion changes
        decoded types (``1`` comes back as ``1.0``), which the engine's
        value-fidelity contract forbids.
        """
        if not isinstance(records, list) or not records:
            return None
        first = records[0]
        if type(first) is tuple:
            arity = len(first)
            if not 1 <= arity <= _MAX_ARITY:
                return None
            for record in records:
                if type(record) is not tuple or len(record) != arity:
                    return None
            raw_columns = list(zip(*records))
            scalar = False
        else:
            raw_columns = [records]
            scalar = True
        kinds = []
        for index, values in enumerate(raw_columns):
            kind = _column_kind(values)
            if kind is None and promote_mixed:
                promoted = _promote_mixed_column(values)
                if promoted is not None:
                    raw_columns[index] = promoted
                    kind = "f"
            if kind is None:
                return None
            kinds.append(kind)
        try:
            columns = [
                _encode_column(kind, values)
                for kind, values in zip(kinds, raw_columns)
            ]
        except (OverflowError, ValueError, TypeError):
            return None
        return cls("".join(kinds), scalar, columns, len(records))

    # -- decoding ------------------------------------------------------

    def to_records(self):
        """The partition back as a list of plain Python records."""
        decoded = [column.tolist() for column in self.columns]
        if self.scalar:
            return decoded[0]
        return list(zip(*decoded))

    def __iter__(self):
        return iter(self.to_records())

    def __len__(self):
        return self._length

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.to_records()[index]
        if self.scalar:
            return _plain(self.columns[0][index])
        return tuple(_plain(column[index]) for column in self.columns)

    def __add__(self, other):
        """Concatenation decodes: consumers that merge partitions
        (elided co-group buckets, unions) get a plain list back."""
        if isinstance(other, ColumnarPartition):
            return self.to_records() + other.to_records()
        if isinstance(other, list):
            return self.to_records() + other
        return NotImplemented

    def __radd__(self, other):
        if isinstance(other, list):
            return other + self.to_records()
        return NotImplemented

    # -- accounting ----------------------------------------------------

    @property
    def nbytes(self):
        """Raw buffer bytes across all columns."""
        return self._length * 8 * len(self.columns)

    @property
    def estimated_bytes(self):
        """What the size estimator should charge for this partition."""
        return (
            sys.getsizeof(self)
            + self.nbytes
            + _COLUMN_OVERHEAD * len(self.columns)
        )

    # -- transport -----------------------------------------------------

    def __reduce__(self):
        return (
            _rebuild,
            (
                self.kinds,
                self.scalar,
                [_column_bytes(column) for column in self.columns],
                self._length,
            ),
        )

    def __eq__(self, other):
        if isinstance(other, ColumnarPartition):
            return (
                self.kinds == other.kinds
                and self.scalar == other.scalar
                and self.to_records() == other.to_records()
            )
        if isinstance(other, list):
            return self.to_records() == other
        return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self):
        shape = "scalar" if self.scalar else "tuple[%d]" % len(self.columns)
        return "ColumnarPartition(%s %s, %d records, %d bytes)" % (
            shape, self.kinds, self._length, self.nbytes,
        )


def _plain(value):
    """A column element as the exact Python scalar that was encoded.

    numpy indexing yields ``np.int64``/``np.float64`` (the latter even
    *subclasses* ``float``, so an isinstance check would let it leak);
    ``array.array`` indexing already yields plain scalars.
    """
    if type(value) is int or type(value) is float:
        return value
    return value.item()


def _rebuild(kinds, scalar, blobs, length):
    columns = [
        _decode_column(kind, data) for kind, data in zip(kinds, blobs)
    ]
    return ColumnarPartition(kinds, scalar, columns, length)


# Sanity: both storage backends serialize a record to exactly 8 bytes
# per column; ``struct`` spells out the invariant the codecs rely on.
assert struct.calcsize("<q") == struct.calcsize("<d") == 8


def maybe_columnar(records):
    """``records`` as a :class:`ColumnarPartition` when encodable,
    else the list unchanged (the stage-boundary adapter)."""
    part = ColumnarPartition.from_records(records)
    return records if part is None else part


def encode_committed(kinds, scalar, records):
    """Probe-free encode for a *statically proven* columnar schema.

    Where :meth:`ColumnarPartition.from_records` scans every value of
    every column to discover the shape, this trusts the
    ``(kinds, scalar)`` spec proven by :mod:`repro.analysis.schema`
    and goes straight to the typed-buffer constructors.  The guards
    that remain are all C-speed or per-column:

    * arity is verified exactly without touching individual values --
      ``zip(*records)`` yields ``min(arity)`` columns and
      ``sum(map(len, records))`` gives ``mean(arity) * n``, and
      ``min == mean == proven`` forces every record to the proven
      arity, so a ragged partition can never be silently truncated;
    * the buffer constructors themselves reject wrong-typed or
      out-of-range values (``OverflowError``/``ValueError``/
      ``TypeError``).

    Any failure returns ``None`` with ``records`` untouched -- the
    caller keeps the intact plain list, exactly as if no encode had
    been attempted.  Proven schemas cannot rule out >64-bit ints (a
    value property, not a type property), so this fallback is load-
    bearing, not defensive decoration.
    """
    if not isinstance(records, list) or not records:
        return None
    if scalar:
        raw_columns = [records]
    else:
        if type(records[0]) is not tuple:
            return None
        arity = len(kinds)
        try:
            if sum(map(len, records)) != arity * len(records):
                return None
        except TypeError:
            return None
        raw_columns = list(zip(*records))
        if len(raw_columns) != arity:
            return None
    try:
        columns = [
            _encode_column(kind, values)
            for kind, values in zip(kinds, raw_columns)
        ]
    except (OverflowError, ValueError, TypeError):
        return None
    return ColumnarPartition(kinds, scalar, columns, len(records))


def as_records(part):
    """A partition as a plain list (the inverse adapter).

    Lists pass through untouched, so call sites that must hand user
    code a real list (``map_partitions``) can normalize
    unconditionally.
    """
    if isinstance(part, ColumnarPartition):
        return part.to_records()
    return part

"""NPL1xx: static lint of ``@nested_udf`` function bodies.

The walker mirrors the statement-level semantics of the parsing phase
(:mod:`repro.lang.ast_parser`): it descends exactly where the rewriter
descends (while/if/for bodies), stops at nested function and class
definitions (which the rewriter leaves as plain Python), and reports
every construct the rewriter either rejects or would silently mishandle.

``parse_udf`` runs :func:`first_unsupported` on every decoration, so the
constructs that used to surface as confusing rewrite-time or staging
failures now fail eagerly with a precise source location; the analysis
CLI and ``analyze_udf`` run :func:`scan_function` to collect *all*
findings, warnings included.
"""

import ast

from .diagnostics import ERROR, make_diagnostic

#: Method names whose call on a captured object mutates it in place.
_MUTATING_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popitem", "remove", "reverse",
    "setdefault", "sort", "update", "write",
})

_STAGED_PREFIX = "__mz_"

_TRY_TYPES = (ast.Try,) + (
    (ast.TryStar,) if hasattr(ast, "TryStar") else ()
)
_MATCH_TYPES = (ast.Match,) if hasattr(ast, "Match") else ()
_CONTROL_FLOW = (ast.While, ast.For, ast.If)


def scan_function(fndef, filename="<udf>", line_offset=0, col_offset=0):
    """Lint one ``FunctionDef`` AST; returns a list of Diagnostics.

    Args:
        fndef: The (pre-rewrite) function definition node.
        filename: Reported in each diagnostic's location.
        line_offset: Added to AST line numbers, so findings on a
            function parsed from a dedented snippet still point at the
            real file position.
        col_offset: Added to AST column offsets (the dedent width).
    """
    return _Scanner(filename, line_offset, col_offset).scan(fndef)


def first_unsupported(fndef, filename="<udf>", line_offset=0,
                      col_offset=0):
    """The first error-severity finding, or ``None``.

    This is the parsing phase's eager pre-check: warnings do not block
    decoration, errors do.
    """
    for diag in scan_function(fndef, filename, line_offset, col_offset):
        if diag.severity == ERROR:
            return diag
    return None


class _Scanner:
    def __init__(self, filename, line_offset, col_offset):
        self.filename = filename
        self.line_offset = line_offset
        self.col_offset = col_offset
        self.diags = []

    # ------------------------------------------------------------------

    def scan(self, fndef):
        self.bound = _bound_names(fndef)
        self.has_for_loop = any(
            isinstance(node, ast.For) for node in ast.walk(fndef)
        )
        for stmt in fndef.body:
            self._stmt(stmt, in_flow=False)
        self.diags.sort(key=lambda d: (d.line, d.col, d.code))
        return self.diags

    def _emit(self, code, node, message):
        self.diags.append(
            make_diagnostic(
                code,
                message,
                file=self.filename,
                line=getattr(node, "lineno", 0) + self.line_offset,
                col=getattr(node, "col_offset", 0) + self.col_offset + 1,
            )
        )

    # -- statements ----------------------------------------------------

    def _block(self, stmts, in_flow):
        for stmt in stmts:
            self._stmt(stmt, in_flow)

    def _stmt(self, stmt, in_flow):
        if isinstance(stmt, _TRY_TYPES):
            self._emit(
                "NPL101", stmt,
                "try/except cannot be lifted to dataflow control flow; "
                "restructure the UDF so failures are data (e.g. a "
                "sentinel value)",
            )
            self._block(stmt.body, in_flow)
            for handler in stmt.handlers:
                self._block(handler.body, in_flow)
            self._block(stmt.orelse, in_flow)
            self._block(stmt.finalbody, in_flow)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._emit(
                "NPL105", stmt,
                "with-statements (context-manager side effects) are not "
                "supported in lifted UDFs",
            )
            self._block(stmt.body, in_flow)
            return
        if isinstance(stmt, _MATCH_TYPES):
            self._emit(
                "NPL106", stmt,
                "match-statements are not rewritten into staged "
                "combinators; use if/elif chains",
            )
            for case in stmt.cases:
                self._block(case.body, in_flow)
            return
        if isinstance(stmt, ast.Global):
            self._emit(
                "NPL104", stmt,
                "global declaration mutates module state; lifted UDFs "
                "must be side-effect free",
            )
            return
        if isinstance(stmt, ast.Nonlocal):
            self._emit(
                "NPL104", stmt,
                "nonlocal declaration mutates enclosing state; lifted "
                "UDFs must be side-effect free",
            )
            return
        if isinstance(stmt, ast.While):
            if stmt.orelse:
                self._emit(
                    "NPL109", stmt, "while/else cannot be lifted"
                )
            self._exprs(stmt.test)
            self._block(stmt.body, in_flow=True)
            self._block(stmt.orelse, in_flow=True)
            return
        if isinstance(stmt, ast.If):
            self._exprs(stmt.test)
            self._block(stmt.body, in_flow=True)
            self._block(stmt.orelse, in_flow=True)
            return
        if isinstance(stmt, ast.AsyncFor):
            self._emit(
                "NPL103", stmt, "async for cannot be lifted"
            )
            self._block(stmt.body, in_flow=True)
            return
        if isinstance(stmt, ast.For):
            self._check_for_shape(stmt)
            self._exprs(stmt.iter)
            self._block(stmt.body, in_flow=True)
            self._block(stmt.orelse, in_flow=True)
            return
        if isinstance(stmt, (ast.Break, ast.Continue)):
            kind = "break" if isinstance(stmt, ast.Break) else "continue"
            self._emit(
                "NPL107", stmt,
                "%s cannot be lifted; fold the exit condition into the "
                "loop condition instead" % kind,
            )
            return
        if isinstance(stmt, ast.Return):
            if in_flow:
                self._emit(
                    "NPL108", stmt,
                    "return inside a lifted control-flow construct is "
                    "not supported; assign to a variable and return "
                    "after the construct",
                )
            if stmt.value is not None:
                self._exprs(stmt.value)
            return
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            # The rewriter leaves nested definitions as plain Python:
            # control flow inside them is *not* lifted and would loop on
            # staged values.
            if any(
                isinstance(node, _CONTROL_FLOW)
                for node in ast.walk(stmt)
            ):
                self._emit(
                    "NPL122", stmt,
                    "nested %s %r contains control flow that will not "
                    "be lifted; it only works on plain (non-staged) "
                    "values" % (
                        "class" if isinstance(stmt, ast.ClassDef)
                        else "function",
                        stmt.name,
                    ),
                )
            if stmt.name.startswith(_STAGED_PREFIX):
                self._emit(
                    "NPL111", stmt,
                    "name %r shadows a reserved staged name" % stmt.name,
                )
            return
        if isinstance(stmt, ast.Delete):
            self._emit(
                "NPL123", stmt,
                "del removes a variable from the lifted state dict; "
                "rebind it instead",
            )
            return
        # Plain statement: only its expressions need scanning.
        self._exprs(stmt)

    def _check_for_shape(self, stmt):
        if stmt.orelse:
            self._emit("NPL109", stmt, "for/else cannot be lifted")
        iter_node = stmt.iter
        if not (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "range"
            and not iter_node.keywords
            and 1 <= len(iter_node.args) <= 3
        ):
            self._emit(
                "NPL110", stmt,
                "only `for name in range(...)` loops can be lifted; "
                "use Bag operations for data-parallel iteration",
            )
            return
        if len(iter_node.args) == 3 and _literal_int(
            iter_node.args[2]
        ) in (None, 0):
            self._emit(
                "NPL110", iter_node.args[2],
                "range step must be a non-zero integer literal",
            )
        if not isinstance(stmt.target, ast.Name):
            self._emit(
                "NPL110", stmt.target,
                "range loop target must be a simple name",
            )

    # -- expressions ---------------------------------------------------

    def _exprs(self, root):
        """Expression-level checks, stopping at nested def boundaries."""
        for node in _walk_same_scope(root):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                self._emit(
                    "NPL102", node,
                    "yield makes the UDF a generator, which cannot be "
                    "staged",
                )
            elif isinstance(node, ast.Await):
                self._emit(
                    "NPL103", node, "await cannot be lifted"
                )
            elif isinstance(node, ast.Name):
                self._check_name(node)
            elif isinstance(node, ast.Call):
                self._check_call(node)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    self._check_store_target(target)

    def _check_name(self, node):
        if node.id.startswith(_STAGED_PREFIX) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            self._emit(
                "NPL111", node,
                "name %r shadows a reserved staged name; the rewriter "
                "injects __mz_* helpers into this scope" % node.id,
            )
        elif (
            node.id == "range"
            and isinstance(node.ctx, ast.Store)
            and self.has_for_loop
        ):
            self._emit(
                "NPL121", node,
                "UDF rebinds 'range' but for-loop desugaring assumes "
                "the builtin",
            )

    def _check_call(self, node):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id not in self.bound
        ):
            self._emit(
                "NPL120", node,
                "call to .%s() mutates captured variable %r; staging "
                "may evaluate the UDF body more than once, so in-place "
                "mutation of captured state is unsafe"
                % (func.attr, func.value.id),
            )

    def _check_store_target(self, target):
        """Subscript/attribute stores into captured objects (NPL120)."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store_target(element)
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name) and base.id not in self.bound:
                self._emit(
                    "NPL120", target,
                    "assignment into captured variable %r; lifted UDFs "
                    "must not mutate captured state" % base.id,
                )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _bound_names(fndef):
    """Names bound anywhere in the function (params + any assignment).

    An over-approximation of local bindings is the right direction for
    the captured-mutation check: a name bound *somewhere* in the UDF is
    never reported as captured.
    """
    bound = set()
    args = fndef.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        bound.add(arg.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    for node in ast.walk(fndef):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            bound.add(node.name)
    return bound


def _walk_same_scope(root):
    """Pre-order walk that does not descend into nested scopes.

    Nested function/class bodies and lambda bodies are plain Python to
    the rewriter, so constructs inside them are not this scope's
    problem (NPL122 covers the risky case).  The nested node itself is
    still yielded so statement handlers can inspect it.
    """
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
             ast.Lambda),
        ) and node is not root:
            continue
        stack.extend(ast.iter_child_nodes(node))


def _literal_int(node):
    """The value of an integer literal node (incl. negatives), or None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
    ):
        return -node.operand.value
    return None

"""Client-side API: named task-library programs and pickled thunks.

A *program* is what the service executes: any callable taking a
:class:`~repro.serve.service.JobContext`.  This module gives clients
three ways to produce one:

* **In-process**: pass any callable straight to
  :meth:`ServiceClient.submit` -- the common case for tests and
  embedded use.
* **By name**: the :data:`PROGRAMS` registry maps task-library names
  (``"pagerank"``, ``"range-sum"``) to parameterized program builders,
  so the CLI (and anything else that only has strings) can run the
  paper's workloads against a shared service.
* **Serialized**: :func:`encode_program` /
  :meth:`ServiceClient.submit_serialized` round-trip a program through
  the engine's closure serde (:mod:`repro.engine.runtime.serde`) --
  the same cloudpickle-or-fallback pipeline task closures use -- which
  is how a plan thunk built in one process would travel to a daemon in
  another.  The service itself stays in-process; the wire format is
  the part this exercises.
"""

import random

from ..engine.runtime import serde

__all__ = [
    "PROGRAMS",
    "ServiceClient",
    "encode_program",
    "decode_program",
    "program",
    "register_program",
]

#: Named program builders: ``name -> builder(**params) -> program``.
PROGRAMS = {}


def register_program(name):
    """Decorator registering a program builder under ``name``."""

    def decorate(builder):
        PROGRAMS[name] = builder
        return builder

    return decorate


def program(name, **params):
    """Build a registered program: ``program("pagerank", iterations=2)``."""
    try:
        builder = PROGRAMS[name]
    except KeyError:
        raise KeyError(
            "unknown program %r (registered: %s)"
            % (name, ", ".join(sorted(PROGRAMS)) or "none")
        ) from None
    return builder(**params)


# ---------------------------------------------------------------------------
# Serialized submission (the daemon wire format)
# ---------------------------------------------------------------------------


def encode_program(fn):
    """Serialize a program callable to bytes (engine closure serde)."""
    return serde.dumps(fn)


def decode_program(payload):
    """Inverse of :func:`encode_program`."""
    return serde.loads(payload)


# ---------------------------------------------------------------------------
# The client handle
# ---------------------------------------------------------------------------


class ServiceClient:
    """One tenant's view of a :class:`~repro.serve.service.JobService`.

    Thin by design: it binds a tenant name, translates program names
    and serialized payloads, and forwards to the service.  Many clients
    (threads) may share one service; each just holds its own
    ``ServiceClient``.
    """

    def __init__(self, service, tenant):
        self.service = service
        self.tenant = tenant

    def submit(self, prog, label="", cost=1.0, **params):
        """Submit a program; returns a :class:`JobHandle`.

        ``prog`` is a callable, or a registered program name (built
        with ``**params``).
        """
        if isinstance(prog, str):
            if not label:
                label = prog
            prog = program(prog, **params)
        elif params:
            raise TypeError(
                "params are only valid with a program name"
            )
        return self.service.submit(
            self.tenant, prog, label=label, cost=cost
        )

    def submit_serialized(self, payload, label="", cost=1.0):
        """Submit a program serialized with :func:`encode_program`."""
        return self.submit(
            decode_program(payload), label=label, cost=cost
        )

    def run(self, prog, label="", cost=1.0, timeout=None, **params):
        """Submit and block for the result."""
        handle = self.submit(prog, label=label, cost=cost, **params)
        return handle.result(timeout)

    def stats(self):
        """This tenant's counters (JSON-ready)."""
        return self.service.tenant_stats(self.tenant).to_dict()

    def __repr__(self):
        return "ServiceClient(tenant=%r)" % self.tenant


# ---------------------------------------------------------------------------
# Built-in task-library programs
# ---------------------------------------------------------------------------


def _edge_list(num_groups, total_edges, seed):
    """A flat random digraph: the grouped generator's groups become
    vertex namespaces, so one service artifact serves any group count."""
    from ..data.generators import grouped_edges

    return [
        ("%s:%d" % (gid, src), "%s:%d" % (gid, dst))
        for gid, (src, dst) in grouped_edges(
            num_groups, total_edges, seed=seed
        )
    ]


@register_program("pagerank")
def pagerank_program(num_groups=4, total_edges=400, iterations=3,
                     damping=0.85, seed=0):
    """Service-mode PageRank over a shared, artifact-cached graph.

    The edge bag *and* its derived link/vertex bags resolve through
    :meth:`~repro.serve.service.JobContext.dataset`, so a warm service
    serves repeat runs without re-reading, re-grouping, or re-counting
    the graph -- the rank iterations (fresh per job) then adopt the
    cached link layout instead of re-shuffling it.  Cold (or evicted),
    every layer rebuilds from lineage.
    """
    key = "pagerank:%d:%d:%d" % (num_groups, total_edges, seed)

    def build_edges(ctx):
        return ctx.bag_of(_edge_list(num_groups, total_edges, seed))

    def run(job):
        edges = job.dataset(key, build_edges)
        links = job.dataset(
            key + "/links", lambda ctx: edges.group_by_key()
        )
        vertices = job.dataset(
            key + "/vertices",
            lambda ctx: edges.flat_map(
                lambda e: [e[0], e[1]]
            ).distinct(),
        )
        n = vertices.count(label="pagerank vertex count")
        base = (1.0 - damping) / n
        ranks = vertices.map(lambda v: (v, 1.0 / n))
        for _ in range(iterations):
            contribs = links.join(ranks).flat_map(
                lambda kv: [
                    (dst, kv[1][1] / len(kv[1][0]))
                    for dst in kv[1][0]
                ]
            )
            ranks = (
                contribs.union(vertices.map(lambda v: (v, 0.0)))
                .reduce_by_key(lambda a, b: a + b)
                .map_values(lambda s: base + damping * s)
            )
        return ranks.collect_as_map()

    return run


@register_program("range-sum")
def range_sum_program(n=1000, seed=0):
    """Tiny smoke program: sum a shared random permutation of 0..n-1."""
    key = "range-sum:%d:%d" % (n, seed)

    def build(ctx):
        values = list(range(n))
        random.Random(seed).shuffle(values)
        return ctx.bag_of(values)

    def run(job):
        return job.dataset(key, build).sum(label="range sum")

    return run

"""Command-line experiment runner.

Regenerate the paper's figures without pytest::

    python -m repro.bench --list
    python -m repro.bench fig1 fig5 --scale quick
    python -m repro.bench all --scale full
    python -m repro.bench fig5 --backend process --workers 4 --measured
"""

import argparse
import os
import sys
import time

from . import figures

#: Short names -> (callable, extra args) for every experiment.
EXPERIMENTS = {
    "fig1": (figures.fig1_kmeans_motivation, ()),
    "fig3a": (figures.fig3_weak_scaling_kmeans, ()),
    "fig3b": (figures.fig3_weak_scaling_pagerank, ()),
    "fig3c": (figures.fig3_weak_scaling_avg_distances, ()),
    "fig4-pagerank": (figures.fig4_scale_out, ("pagerank",)),
    "fig4-kmeans": (figures.fig4_scale_out, ("kmeans",)),
    "fig4-bounce": (figures.fig4_scale_out, ("bounce_rate",)),
    "fig5": (figures.fig5_bounce_rate_weak_scaling, ()),
    "fig6": (figures.fig6_diql_comparison, ()),
    "fig7-bounce": (figures.fig7_skew, ("bounce_rate",)),
    "fig7-pagerank": (figures.fig7_skew, ("pagerank",)),
    "fig8-left": (figures.fig8_join_strategies, ()),
    "fig8-right": (figures.fig8_half_lifted, ()),
    "fig9a": (figures.fig9_larger_pagerank, ()),
    "fig9b": (figures.fig9_larger_bounce_rate, ()),
    "ablation-partitions": (figures.ablation_partition_counts, ()),
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (see --list), or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "full"],
        default="quick",
        help="sweep width / dataset size (default: quick)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment names"
    )
    parser.add_argument(
        "--backend",
        choices=["serial", "process"],
        help="task runtime backend (default: serial, or $REPRO_BACKEND)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        help="worker count for the process backend (0 = all cores)",
    )
    parser.add_argument(
        "--measured",
        action="store_true",
        help="add real wall-clock columns next to simulated seconds",
    )
    args = parser.parse_args(argv)

    # Experiments build their own ClusterConfigs, so backend selection
    # flows through the env-var defaults that ClusterConfig reads.
    if args.backend is not None:
        os.environ["REPRO_BACKEND"] = args.backend
    if args.workers is not None:
        os.environ["REPRO_NUM_WORKERS"] = str(args.workers)

    if args.list or not args.experiments:
        print("Available experiments:")
        for name, (fn, extra) in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print("  %-20s %s" % (name, doc))
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else (
        args.experiments
    )
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(
            "unknown experiments: %s (use --list)" % ", ".join(unknown)
        )
    for name in names:
        fn, extra = EXPERIMENTS[name]
        started = time.time()
        sweep = fn(args.scale, *extra)
        sweep.print_table(measured=args.measured)
        print("[%s: %.1fs wall]" % (name, time.time() - started))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Serial vs process-pool parity: same plan, same results, same trace.

The acceptance bar for the task runtime: every program -- including the
paper's task library, unmodified -- must produce identical collected
results and an identical trace shape whether its tasks run inline or on
a pool of worker processes.
"""

import pytest

from repro.data import grouped_edges, visits_log
from repro.engine import (
    BackendParityError,
    EngineContext,
    assert_backend_parity,
    laptop_config,
    trace_signature,
)
from repro.tasks import bounce_rate as br
from repro.tasks import pagerank as pr


def wordcount(ctx):
    text = "the quick brown fox jumps over the lazy dog the end".split()
    counts = (
        ctx.bag_of(text)
        .map(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b)
    )
    return sorted(counts.collect())


def narrow_chain(ctx):
    return sorted(
        ctx.bag_of(range(200))
        .map(lambda x: x * 3)
        .filter(lambda x: x % 2 == 0)
        .flat_map(lambda x: [x, -x])
        .collect()
    )


def grouping(ctx):
    records = [(i % 7, i) for i in range(100)]
    groups = ctx.bag_of(records).group_by_key()
    return sorted(
        (key, sorted(values)) for key, values in groups.collect()
    )


def joined(ctx):
    left = ctx.bag_of([(i % 5, i) for i in range(40)])
    right = ctx.bag_of([(i % 5, -i) for i in range(20)])
    return sorted(left.join(right).collect())


def bounce_rate_task(ctx):
    visits = ctx.bag_of(
        visits_log(num_days=4, total_visits=200, seed=3)
    )
    return sorted(br.bounce_rate_nested(visits).collect())


def pagerank_task(ctx):
    edges = [
        edge for _gid, edge in grouped_edges(
            num_groups=1, total_edges=60, seed=7
        )
    ]
    ranks = pr.pagerank_parallel(ctx, edges, iterations=3)
    return sorted((v, round(rank, 12)) for v, rank in ranks.items())


PROGRAMS = [
    wordcount,
    narrow_chain,
    grouping,
    joined,
    bounce_rate_task,
    pagerank_task,
]


class TestParity:
    @pytest.mark.parametrize(
        "program", PROGRAMS, ids=[fn.__name__ for fn in PROGRAMS]
    )
    def test_program_is_backend_invariant(self, program):
        result = assert_backend_parity(program, num_workers=2)
        assert result  # every program returns a non-empty result

    def test_mismatching_results_are_reported(self):
        runs = []

        def unstable(ctx):
            runs.append(ctx)
            return len(runs)  # 1 on the first backend, 2 on the second

        with pytest.raises(BackendParityError, match="different results"):
            assert_backend_parity(unstable, num_workers=2)


class TestTraceSignature:
    def test_repeated_serial_runs_have_equal_signatures(self):
        signatures = []
        for _ in range(2):
            ctx = EngineContext(laptop_config(backend="serial"))
            wordcount(ctx)
            signatures.append(trace_signature(ctx.trace))
        assert signatures[0] == signatures[1]

    def test_signature_ignores_measured_time(self):
        ctx = EngineContext(laptop_config(backend="serial"))
        wordcount(ctx)
        before = trace_signature(ctx.trace)
        ctx.trace.jobs[-1].stages[-1].add_task_seconds(0, 12.5)
        ctx.trace.jobs[-1].stages[-1].task_retries += 1
        assert trace_signature(ctx.trace) == before

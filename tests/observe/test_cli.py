"""The ``python -m repro.observe`` command line."""

import json

import pytest

from repro.engine import EngineContext, laptop_config
from repro.observe import RunReport, entry_from_context
from repro.observe.cli import EXIT_REGRESSION, main


@pytest.fixture
def trace_path(tmp_path):
    """A real JSONL trace from a small traced run."""
    path = str(tmp_path / "run.trace.jsonl")
    with EngineContext(laptop_config(), trace=path) as ctx:
        (
            ctx.bag_of(range(50))
            .map(lambda x: (x % 3, x))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
    return path


def save_report(tmp_path, name, seconds):
    entry = {
        "system": "engine",
        "x": 1,
        "status": "ok",
        "simulated_seconds": seconds,
        "measured_task_seconds": seconds / 10.0,
        "measured_wall_seconds": seconds / 5.0,
        "jobs": [],
    }
    path = str(tmp_path / name)
    RunReport(name, entries=[entry]).save(path)
    return path


class TestRender:
    def test_renders_chrome_json(self, trace_path, tmp_path, capsys):
        out = str(tmp_path / "out.json")
        assert main(["render", trace_path, "-o", out]) == 0
        with open(out) as handle:
            doc = json.load(handle)
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert "perfetto" in capsys.readouterr().out

    def test_default_output_path(self, trace_path, tmp_path):
        assert main(["render", trace_path]) == 0
        expected = trace_path.rsplit(".", 1)[0] + ".chrome.json"
        with open(expected) as handle:
            json.load(handle)

    def test_empty_trace_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["render", str(empty)]) == 1
        assert "no events" in capsys.readouterr().err


class TestSummarize:
    def test_summarize_trace(self, trace_path, capsys):
        assert main(["summarize", trace_path]) == 0
        out = capsys.readouterr().out
        assert "events by kind" in out
        assert "stage" in out
        assert "timeline" in out

    def test_summarize_report(self, tmp_path, capsys):
        path = save_report(tmp_path, "r.json", 10.0)
        assert main(["summarize", path]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert "engine@1" in out


class TestDiff:
    def test_ok_exit_zero(self, tmp_path, capsys):
        a = save_report(tmp_path, "a.json", 10.0)
        b = save_report(tmp_path, "b.json", 10.0)
        assert main(["diff", a, b]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_regression_exit_code(self, tmp_path, capsys):
        a = save_report(tmp_path, "a.json", 10.0)
        b = save_report(tmp_path, "b.json", 20.0)
        assert main(["diff", a, b]) == EXIT_REGRESSION
        assert "REGRESSION" in capsys.readouterr().out

    def test_threshold_flag(self, tmp_path):
        a = save_report(tmp_path, "a.json", 10.0)
        b = save_report(tmp_path, "b.json", 12.0)
        assert main(["diff", a, b]) == 0
        assert main(["diff", a, b, "--threshold", "0.1"]) == (
            EXIT_REGRESSION
        )

    def test_metric_wall(self, tmp_path):
        a = save_report(tmp_path, "a.json", 10.0)
        b = save_report(tmp_path, "b.json", 10.0)
        assert main(["diff", a, b, "--metric", "wall"]) == 0


class TestBenchGate:
    def test_check_regressions_detects_injected_slowdown(
        self, tmp_path, capsys, monkeypatch
    ):
        """End-to-end: the bench gate exits non-zero when the committed
        baseline claims the engine used to be much faster."""
        from repro.bench.__main__ import main as bench_main

        monkeypatch.chdir(tmp_path)
        assert bench_main(["--emit-baseline"]) == 0
        capsys.readouterr()
        assert bench_main(["--check-regressions"]) == 0
        # Dividing every baseline figure by 10 makes the fresh run look
        # 10x slower than "before".
        report = RunReport.load("BENCH_engine.json")
        for entry in report.entries:
            entry["simulated_seconds"] /= 10.0
        report.save("BENCH_engine.json")
        capsys.readouterr()
        assert bench_main(["--check-regressions"]) == EXIT_REGRESSION
        assert "REGRESSION" in capsys.readouterr().out

"""Further parsing-phase coverage: augmented assignment, deep nesting,
multiple parameters, defaults, and lambdas inside rewritten UDFs."""

import pytest

from repro.core import nested_map
from repro.engine import EngineContext, laptop_config
from repro.lang import nested_udf

# ---------------------------------------------------------------------------
# UDFs under test
# ---------------------------------------------------------------------------


@nested_udf
def aug_assign(x):
    total = 0
    while x > 0:
        total += x
        x -= 1
    return total


@nested_udf
def nested_loops(n):
    total = 0
    i = 0
    while i < n:
        j = 0
        while j < i:
            total += 1
            j += 1
        i += 1
    return total


@nested_udf
def with_default(x, bump=5):
    if x > 0:
        x = x + bump
    return x


@nested_udf
def two_params(a, b):
    while a < b:
        a = a * 2
    return a


@nested_udf
def uses_lambda_inside(x):
    double = lambda v: v * 2  # noqa: E731 -- deliberate inner lambda
    y = 0
    while y < x:
        y = double(y) + 1
    return y


@nested_udf
def elif_chain(x):
    if x < 0:
        bucket = 0
    elif x < 10:
        bucket = 1
    elif x < 100:
        bucket = 2
    else:
        bucket = 3
    return bucket


GLOBAL_OFFSET = 1000


@nested_udf
def reads_global(x):
    while x < GLOBAL_OFFSET:
        x = x * 3
    return x


@pytest.fixture
def ctx():
    return EngineContext(laptop_config())


class TestPlainBehaviour:
    @pytest.mark.parametrize("n", [0, 1, 5])
    def test_aug_assign(self, n):
        assert aug_assign(n) == n * (n + 1) // 2

    @pytest.mark.parametrize("n", [0, 2, 5])
    def test_nested_loops(self, n):
        assert nested_loops(n) == n * (n - 1) // 2

    def test_with_default(self):
        assert with_default(3) == 8
        assert with_default(3, bump=10) == 13
        assert with_default(-3) == -3

    def test_two_params(self):
        assert two_params(1, 10) == 16

    def test_uses_lambda_inside(self):
        assert uses_lambda_inside(4) == uses_lambda_inside.original(4)

    @pytest.mark.parametrize(
        "x,expected", [(-5, 0), (3, 1), (42, 2), (500, 3)]
    )
    def test_elif_chain(self, x, expected):
        assert elif_chain(x) == expected

    def test_reads_global(self):
        assert reads_global(2) == reads_global.original(2)


class TestLiftedBehaviour:
    def test_aug_assign_lifted(self, ctx):
        got = nested_map(ctx.bag_of([1, 3, 5]), aug_assign)
        assert sorted(got.collect_values()) == [1, 6, 15]

    def test_nested_loops_lifted(self, ctx):
        seeds = [0, 2, 4, 6]
        got = nested_map(ctx.bag_of(seeds), nested_loops)
        assert sorted(got.collect_values()) == sorted(
            n * (n - 1) // 2 for n in seeds
        )

    def test_two_params_partial_lift(self, ctx):
        # One argument lifted, the other a plain closure constant.
        got = nested_map(
            ctx.bag_of([1, 3, 9]), lambda a: two_params(a, 10)
        )
        assert sorted(got.collect_values()) == sorted(
            two_params.original(a, 10) for a in (1, 3, 9)
        )

    def test_elif_chain_lifted(self, ctx):
        got = nested_map(ctx.bag_of([-5, 3, 42, 500]), elif_chain)
        assert sorted(got.collect_values()) == [0, 1, 2, 3]

    def test_reads_global_lifted(self, ctx):
        seeds = [2, 500, 2000]
        got = nested_map(ctx.bag_of(seeds), reads_global)
        assert sorted(got.collect_values()) == sorted(
            reads_global.original(s) for s in seeds
        )

    def test_uses_lambda_inside_lifted(self, ctx):
        seeds = [1, 4, 9]
        got = nested_map(ctx.bag_of(seeds), uses_lambda_inside)
        assert sorted(got.collect_values()) == sorted(
            uses_lambda_inside.original(s) for s in seeds
        )

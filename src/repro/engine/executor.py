"""Plan evaluation: turns a lineage DAG into data, recording metrics.

The executor evaluates plans **iteratively**: the lineage DAG is
linearized over an explicit work stack (children before parents), so
arbitrarily deep lineages -- e.g. the loop-unrolled control flow that
``repro.core.control_flow`` compiles -- evaluate without recursion and
without touching the interpreter's recursion limit.

Narrow elementwise chains (``map``/``filter``/``flat_map``) are *fused*
into one per-partition pipeline: records stream through the whole chain
one at a time instead of materializing an intermediate list per
operator (the Flare-style pipelined evaluation the chain's stage
accounting already assumed).  Narrow operators fuse into the stage of
their input (their per-task record counts are credited to that stage);
wide operators perform a hash shuffle and open a new stage.  The
recorded :class:`~repro.engine.metrics.JobMetrics` mirror what the
Spark UI would show for the same program, which is what the cost model
needs.  A cogroup schedules exactly **one** reduce stage that reads
both sides' shuffle files -- the stage layout a Spark scheduler
produces -- and every completed job is checked against the trace
invariants in :mod:`repro.engine.validate`.

Everything actually executes -- results are real, only the clock is
simulated.
"""

from ..errors import PlanError, SimulatedOutOfMemory, UdfError
from . import plan as p
from .partitioner import build_balanced_assignment
from .validate import validate_job
from .work import unwrap

_SENTINEL = object()

#: Pipeline step tags for fused elementwise chains.
_STEP_MAP = 0
_STEP_FILTER = 1
_STEP_FLATMAP = 2

def _origin(node):
    name = node.name
    if node.label:
        name += "[%s]" % node.label
    return name


class _Result:
    """Partitions of an evaluated node plus the stage that produced them."""

    __slots__ = ("partitions", "stage")

    def __init__(self, partitions, stage):
        self.partitions = partitions
        self.stage = stage


class Executor:
    """Evaluates plan nodes for one :class:`EngineContext`."""

    def __init__(self, config, trace):
        self.config = config
        self.trace = trace

    # ------------------------------------------------------------------
    # Job entry points (actions)
    # ------------------------------------------------------------------

    def collect(self, node, label=""):
        """Run a job and return all elements as a list."""
        job = self.trace.new_job("collect", label)
        partitions = self._run(node, job)
        result = [item for part in partitions for item in part]
        self._check_driver_memory(len(result))
        job.collected_records += len(result)
        self._finish(job)
        return result

    def count(self, node, label=""):
        job = self.trace.new_job("count", label)
        partitions = self._run(node, job)
        job.collected_records += len(partitions)
        self._finish(job)
        return sum(len(part) for part in partitions)

    def save(self, node, label=""):
        """Write a bag to distributed storage (the paper's output op).

        The data never passes through the driver; the job is charged a
        parallel disk write.  Returns the number of records written.
        """
        job = self.trace.new_job("save", label)
        partitions = self._run(node, job)
        written = sum(len(part) for part in partitions)
        if node.meta:
            job.saved_meta_records += written
        else:
            job.saved_records += written
        self._finish(job)
        return written

    def reduce(self, node, fn, label=""):
        job = self.trace.new_job("reduce", label)
        partitions = self._run(node, job)
        partials = []
        for part in partitions:
            iterator = iter(part)
            try:
                acc = next(iterator)
            except StopIteration:
                continue
            for item in iterator:
                acc = fn(acc, item)
            partials.append(acc)
        job.collected_records += len(partials)
        if not partials:
            raise PlanError("reduce of an empty bag")
        acc = partials[0]
        for item in partials[1:]:
            acc = fn(acc, item)
        self._finish(job)
        return acc

    def fold(self, node, zero, fn, label=""):
        job = self.trace.new_job("fold", label)
        partitions = self._run(node, job)
        acc = zero
        for part in partitions:
            for item in part:
                acc = fn(acc, item)
        job.collected_records += len(partitions)
        self._finish(job)
        return acc

    def _finish(self, job):
        if self.config.validate_traces:
            validate_job(job)

    # ------------------------------------------------------------------
    # Iterative evaluation
    # ------------------------------------------------------------------

    def _run(self, node, job):
        return self._eval(node, job).partitions

    def _eval(self, root, job):
        """Evaluate ``root`` bottom-up over an explicit work stack.

        Stack-safe by construction: the Python call depth is constant in
        the lineage depth, so 20k-operator chains evaluate without
        recursion-limit games.
        """
        results = {}
        refcounts = self._refcounts(root)
        stack = [root]
        while stack:
            node = stack[-1]
            key = id(node)
            if key in results:
                stack.pop()
                continue
            if node.materialized is not None:
                results[key] = self._cached_result(node, job)
                stack.pop()
                continue
            chain = self._fused_chain(node, refcounts)
            if chain is not None:
                deps = (chain[0].child,)
            else:
                deps = self._dep_order(node)
            pending = [dep for dep in deps if id(dep) not in results]
            if pending:
                stack.extend(reversed(pending))
                continue
            stack.pop()
            if chain is not None:
                result = self._eval_fused(
                    chain, results[id(chain[0].child)]
                )
            else:
                result = self._eval_node(node, job, results)
            if node.cached:
                node.materialized = result.partitions
            results[key] = result
        return results[id(root)]

    @staticmethod
    def _refcounts(root):
        """Number of evaluated parents per node (by id).

        Only edges that evaluation will actually traverse count:
        children below an already-materialized node are never evaluated.
        """
        counts = {}
        seen = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if node.materialized is not None:
                continue
            for child in node.children:
                counts[id(child)] = counts.get(id(child), 0) + 1
                stack.append(child)
        return counts

    @staticmethod
    def _dep_order(node):
        """Children in the order their side effects must occur.

        Broadcast operators evaluate (and size-check) the build side
        before the stream side, mirroring a real driver's submission
        order.
        """
        if isinstance(node, p.BroadcastJoin):
            return (node.right, node.left)
        if isinstance(node, p.CrossBroadcast):
            if node.broadcast_side == "right":
                return (node.right, node.left)
            return (node.left, node.right)
        return tuple(node.children)

    def _fused_chain(self, node, refcounts):
        """The maximal fusable elementwise chain ending at ``node``.

        Returns the chain bottom-up (``chain[0]`` closest to the data)
        or ``None`` when ``node`` is not elementwise.  Fusion never
        crosses a node that is cached, already materialized, or shared
        by another parent (those must produce a memoized result of
        their own).
        """
        if not node.fusable:
            return None
        chain = [node]
        child = node.child
        while (
            child.fusable
            and not child.cached
            and child.materialized is None
            and refcounts.get(id(child), 0) == 1
        ):
            chain.append(child)
            child = child.child
        chain.reverse()
        return chain

    def _cached_result(self, node, job):
        stage = job.new_stage("cached", meta=node.meta, origin=_origin(node))
        for _ in node.materialized:
            stage.task_records.append(0)
        return _Result(node.materialized, stage)

    def _eval_node(self, node, job, results):
        if isinstance(node, p.Parallelize):
            return self._eval_parallelize(node, job)
        if isinstance(node, p.MapPartitions):
            return self._eval_map_partitions(node, results[id(node.child)])
        if isinstance(node, p.ZipWithUniqueId):
            return self._eval_zip_with_unique_id(
                node, results[id(node.child)]
            )
        if isinstance(node, p.Union):
            return self._eval_union(
                node, job, [results[id(child)] for child in node.children]
            )
        if isinstance(node, p.Coalesce):
            return self._eval_coalesce(node, job, results[id(node.child)])
        if isinstance(node, p.ReduceByKey):
            return self._eval_reduce_by_key(
                node, job, results[id(node.child)]
            )
        if isinstance(node, p.GroupByKey):
            return self._eval_group_by_key(
                node, job, results[id(node.child)]
            )
        if isinstance(node, p.CoGroup):
            return self._eval_cogroup(
                node, job, results[id(node.left)], results[id(node.right)]
            )
        if isinstance(node, p.BroadcastJoin):
            return self._eval_broadcast_join(
                node, job, results[id(node.left)], results[id(node.right)]
            )
        if isinstance(node, p.CrossBroadcast):
            return self._eval_cross_broadcast(
                node, job, results[id(node.left)], results[id(node.right)]
            )
        raise PlanError("unknown plan node type: %s" % node.name)

    def _eval_parallelize(self, node, job):
        partitions = node.build_partitions()
        stage = job.new_stage("input", meta=node.meta, origin=_origin(node))
        for part in partitions:
            stage.task_records.append(len(part))
        return _Result(partitions, stage)

    # -- fused narrow elementwise chains -------------------------------

    def _eval_fused(self, chain, child):
        """Stream each partition through the whole elementwise chain.

        One output list per partition is materialized at the fusion
        boundary; no per-operator intermediates exist.  Each operator is
        credited its input record count (plus reported UDF work) on the
        input's stage, exactly as unfused evaluation would.
        """
        steps = []
        for op in chain:
            if isinstance(op, p.Map):
                steps.append((_STEP_MAP, op.fn, op))
            elif isinstance(op, p.Filter):
                steps.append((_STEP_FILTER, op.fn, op))
            else:
                steps.append((_STEP_FLATMAP, op.fn, op))
        factor = self.config.sequential_work_factor
        stage = child.stage
        out = []
        for index, part in enumerate(child.partitions):
            counts = [0] * len(steps)
            works = [[0] for _ in steps]
            out.append(self._run_pipeline(steps, part, counts, works))
            for i in range(len(steps)):
                stage.add_task_records(index, counts[i])
                if works[i][0]:
                    # UDF-internal sequential work runs record-at-a-time
                    # and is charged at the configured slowdown over the
                    # bulk rate.
                    stage.add_task_records(index, int(works[i][0] * factor))
        return _Result(out, stage)

    def _run_pipeline(self, steps, part, counts, works):
        """One partition through the fused chain, record at a time.

        An explicit iterator stack (one level per in-flight flat_map
        expansion) keeps the evaluation depth independent of the chain
        length: a 20k-operator map chain runs in a flat loop.
        """
        num = len(steps)
        out = []
        stack = [(0, iter(part))]
        while stack:
            depth, iterator = stack[-1]
            item = next(iterator, _SENTINEL)
            if item is _SENTINEL:
                stack.pop()
                continue
            i = depth
            while i < num:
                kind, fn, op = steps[i]
                counts[i] += 1
                if kind == _STEP_MAP:
                    item = unwrap(self._call(op, fn, item), works[i])
                elif kind == _STEP_FILTER:
                    if not unwrap(self._call(op, fn, item), works[i]):
                        break
                else:
                    produced = unwrap(self._call(op, fn, item), works[i])
                    stack.append((i + 1, iter(produced)))
                    break
                i += 1
            else:
                out.append(item)
        return out

    # -- other narrow operators ----------------------------------------

    def _eval_map_partitions(self, node, child):
        out = []
        for index, part in enumerate(child.partitions):
            child.stage.add_task_records(index, len(part))
            produced = list(self._call(node, node.fn, part, index))
            out.append(produced)
        return _Result(out, child.stage)

    def _eval_zip_with_unique_id(self, node, child):
        n = max(1, len(child.partitions))
        out = []
        for index, part in enumerate(child.partitions):
            child.stage.add_task_records(index, len(part))
            out.append(
                [(item, index + i * n) for i, item in enumerate(part)]
            )
        return _Result(out, child.stage)

    def _eval_union(self, node, job, children):
        partitions = p.chain_partitions(
            [child.partitions for child in children]
        )
        stage = job.new_stage("union", meta=node.meta, origin=_origin(node))
        for _ in partitions:
            stage.task_records.append(0)
        return _Result(partitions, stage)

    def _eval_coalesce(self, node, job, child):
        n = min(node.num_partitions, max(1, len(child.partitions)))
        out = [[] for _ in range(n)]
        for index, part in enumerate(child.partitions):
            out[index % n].extend(part)
        stage = job.new_stage(
            "coalesce", meta=node.meta, origin=_origin(node)
        )
        for part in out:
            stage.task_records.append(0)
        return _Result(out, stage)

    # -- wide (shuffling) operators ------------------------------------

    def _bucketize(self, result, num_partitions, assignment):
        """Hash-partition keyed records into reduce buckets.

        Charges the map-side shuffle write to the producing stage and
        returns ``(buckets, moved)`` where ``moved`` is the number of
        records written to (and later read from) the shuffle.
        """
        buckets = [[] for _ in range(num_partitions)]
        moved = 0
        for index, part in enumerate(result.partitions):
            result.stage.add_task_records(index, len(part))
            moved += len(part)
            for record in part:
                self._require_keyed(record)
                buckets[assignment[record[0]]].append(record)
        return buckets, moved

    def _shuffle(self, result, num_partitions, job, meta=False,
                 origin="", assignment=None):
        """Shuffle keyed partitions; returns (buckets, reduce_stage).

        Keys are spread over reduce buckets with a balanced assignment
        (see :func:`build_balanced_assignment`); joins pass a shared
        ``assignment`` so both sides co-partition.
        """
        if assignment is None:
            assignment = self._key_assignment(
                result.partitions, num_partitions
            )
        buckets, moved = self._bucketize(result, num_partitions, assignment)
        stage = job.new_stage("shuffle", meta=meta, origin=origin)
        stage.shuffle_read_records = moved
        stage.shuffle_write_records = moved
        for bucket in buckets:
            stage.task_records.append(len(bucket))
        return buckets, stage

    def _key_assignment(self, partition_lists, num_partitions):
        counts = {}
        for part in partition_lists:
            for record in part:
                self._require_keyed(record)
                key = record[0]
                counts[key] = counts.get(key, 0) + 1
        return build_balanced_assignment(counts, num_partitions)

    def _eval_reduce_by_key(self, node, job, child):
        # Map-side combine: reduce within each map partition first, so the
        # shuffle only moves one record per (partition, key) pair.
        combined = _Result(
            [
                self._combine_partition(node, part)
                for part in child.partitions
            ],
            child.stage,
        )
        buckets, stage = self._shuffle(
            combined, node.num_partitions, job, meta=node.meta,
            origin=_origin(node),
        )
        out = []
        for bucket in buckets:
            out.append(self._combine_partition(node, bucket))
        self._account_spill(stage)
        return _Result(out, stage)

    def _combine_partition(self, node, records):
        acc = {}
        for record in records:
            self._require_keyed(record)
            key, value = record
            if key in acc:
                acc[key] = self._call(node, node.fn, acc[key], value)
            else:
                acc[key] = value
        return list(acc.items())

    def _eval_group_by_key(self, node, job, child):
        buckets, stage = self._shuffle(
            child, node.num_partitions, job, meta=node.meta,
            origin=_origin(node),
        )
        out = []
        limit = self._task_limit(buckets)
        rate = self._stage_rate(stage)
        for bucket in buckets:
            groups = {}
            for key, value in bucket:
                groups.setdefault(key, []).append(value)
            for key, values in groups.items():
                needed = self.config.materialized_bytes(len(values), rate)
                if needed > limit:
                    raise SimulatedOutOfMemory(
                        "materializing group %r" % (key,), needed, limit
                    )
            out.append(list(groups.items()))
        self._account_spill(stage)
        return _Result(out, stage)

    def _task_limit(self, buckets):
        """Per-task memory budget given how many tasks run concurrently."""
        nonempty = sum(1 for bucket in buckets if bucket)
        per_machine = -(-max(1, nonempty) // self.config.machines)
        return self.config.task_memory_limit_bytes(per_machine)

    def _eval_cogroup(self, node, job, left, right):
        # Both sides co-partition: one key assignment over both inputs.
        counts = {}
        for result in (left, right):
            for part in result.partitions:
                for record in part:
                    self._require_keyed(record)
                    counts[record[0]] = counts.get(record[0], 0) + 1
        assignment = build_balanced_assignment(
            counts, node.num_partitions
        )
        left_buckets, left_moved = self._bucketize(
            left, node.num_partitions, assignment
        )
        right_buckets, right_moved = self._bucketize(
            right, node.num_partitions, assignment
        )
        # One reduce stage reads both sides' shuffle files (Spark
        # schedules a single reduce task set for a cogroup); each input
        # record is credited exactly once.
        stage = job.new_stage("shuffle", meta=node.meta,
                              origin=_origin(node))
        stage.shuffle_read_records = left_moved + right_moved
        stage.shuffle_write_records = left_moved + right_moved
        for bucket_index in range(node.num_partitions):
            stage.task_records.append(
                len(left_buckets[bucket_index])
                + len(right_buckets[bucket_index])
            )
        out = []
        limit = self._task_limit(
            [
                left_buckets[i] + right_buckets[i]
                for i in range(node.num_partitions)
            ]
        )
        for bucket_index in range(node.num_partitions):
            groups = {}
            for key, value in left_buckets[bucket_index]:
                groups.setdefault(key, ([], []))[0].append(value)
            for key, value in right_buckets[bucket_index]:
                groups.setdefault(key, ([], []))[1].append(value)
            for key, (lvals, rvals) in groups.items():
                needed = self.config.materialized_bytes(
                    len(lvals) + len(rvals), self._stage_rate(stage)
                )
                if needed > limit:
                    raise SimulatedOutOfMemory(
                        "cogrouping key %r" % (key,), needed, limit
                    )
            out.append(list(groups.items()))
        self._account_spill(stage)
        return _Result(out, stage)

    # -- broadcast operators (narrow) ----------------------------------

    def _eval_broadcast_join(self, node, job, left, right):
        table = {}
        count = 0
        for index, part in enumerate(right.partitions):
            right.stage.add_task_records(index, len(part))
            for record in part:
                self._require_keyed(record)
                key, value = record
                table.setdefault(key, []).append(value)
                count += 1
        self._check_broadcast(
            count, "broadcast join build side", meta=node.right.meta
        )
        if node.right.meta:
            job.broadcast_meta_records += count
        else:
            job.broadcast_records += count
        stage = self._scale_corrected(left.stage, node, job)
        out = []
        for index, part in enumerate(left.partitions):
            produced = []
            for record in part:
                self._require_keyed(record)
                key, value = record
                for other in table.get(key, ()):
                    produced.append((key, (value, other)))
            stage.add_task_records(index, len(part) + len(produced))
            out.append(produced)
        return _Result(out, stage)

    def _eval_cross_broadcast(self, node, job, left, right):
        if node.broadcast_side == "right":
            stream_node, stream = node.left, left
            small_node, small = node.right, right
        else:
            stream_node, stream = node.right, right
            small_node, small = node.left, left
        payload = [item for part in small.partitions for item in part]
        for index, part in enumerate(small.partitions):
            small.stage.add_task_records(index, len(part))
        self._check_broadcast(
            len(payload), "cross-product broadcast side",
            meta=small_node.meta,
        )
        if small_node.meta:
            job.broadcast_meta_records += len(payload)
        else:
            job.broadcast_records += len(payload)
        stage = self._scale_corrected(stream.stage, node, job)
        out = []
        for index, part in enumerate(stream.partitions):
            produced = []
            for item in part:
                for other in payload:
                    if node.broadcast_side == "right":
                        produced.append((item, other))
                    else:
                        produced.append((other, item))
            stage.add_task_records(index, len(produced))
            out.append(produced)
        return _Result(out, stage)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _call(self, node, fn, *args):
        try:
            return fn(*args)
        except (SimulatedOutOfMemory, UdfError):
            raise
        except Exception as exc:
            raise UdfError(node.name, exc) from exc

    def _require_keyed(self, record):
        if not isinstance(record, tuple) or len(record) != 2:
            raise PlanError(
                "keyed operator expects (key, value) records, got %r"
                % (record,)
            )

    def _account_spill(self, stage):
        cfg = self.config
        rate = self._stage_rate(stage)
        # Per-task spill: a reduce task whose working set exceeds its
        # memory share sorts/aggregates on disk.
        nonempty = sum(1 for records in stage.task_records if records)
        per_machine = -(-max(1, nonempty) // cfg.machines)
        task_limit = cfg.task_memory_limit_bytes(per_machine)
        for records in stage.task_records:
            if cfg.materialized_bytes(records, rate) > task_limit:
                stage.spilled_records += records
        # Cluster-level spill: processing the entire input at once can
        # exceed aggregate memory, in which case the excess goes through
        # disk (this is the memory pressure the paper observes for
        # Matryoshka's Bounce Rate at full input size, Sec. 9.4).
        cluster_limit = cfg.executor_memory_limit_bytes * cfg.machines
        total = cfg.materialized_bytes(stage.total_records, rate)
        excess = total - cluster_limit
        if excess > 0:
            per_record = rate * cfg.memory_overhead_factor
            stage.spilled_records += int(excess / per_record)

    def _scale_corrected(self, stage, node, job):
        """Stage to credit a join/cross output to.

        A cross product whose stream side is meta-scale but whose output
        pairs carry data-scale payloads (or vice versa) must not inherit
        the stream stage's record scale; open a narrow continuation stage
        at the node's own scale.
        """
        if stage.meta == node.meta:
            return stage
        corrected = job.new_stage(
            "union", meta=node.meta, origin=_origin(node)
        )
        for _ in stage.task_records:
            corrected.task_records.append(0)
        return corrected

    def _stage_rate(self, stage):
        if stage.meta:
            return self.config.result_record_bytes
        return self.config.bytes_per_record

    def _check_broadcast(self, num_records, what, meta=False):
        # A broadcast lives deserialized on every executor (shared across
        # that machine's tasks) and must also pass through the driver.
        rate = (
            self.config.result_record_bytes
            if meta
            else self.config.bytes_per_record
        )
        needed = self.config.materialized_bytes(num_records, rate)
        limit = min(
            self.config.executor_memory_limit_bytes,
            self.config.driver_memory_bytes,
        )
        if needed > limit:
            raise SimulatedOutOfMemory(what, needed, limit)

    def _check_driver_memory(self, num_records):
        needed = int(num_records * self.config.result_record_bytes)
        if needed > self.config.driver_memory_bytes:
            raise SimulatedOutOfMemory(
                "collecting result to the driver",
                needed,
                self.config.driver_memory_bytes,
            )

"""``python -m repro.serve``: drive a service from the command line.

Two subcommands:

* ``demo`` -- stand up a daemon, hammer it with N concurrent client
  threads across M tenants, drain, and print the service stats as
  JSON.  This is the CI smoke test (``--require-hits`` /
  ``--require-clean`` turn invariants into exit codes) and the
  quickest way to watch fair scheduling and the artifact cache work.
* ``programs`` -- list the registered task-library programs clients
  can submit by name.

Example::

    python -m repro.serve demo --clients 4 --tenants 2 \
        --backend process --report-dir reports/serve

Exit codes: 0 ok; 1 an asserted invariant failed (``--require-*``);
2 bad usage.
"""

import argparse
import json
import sys
import threading

from ..engine.config import laptop_config
from .client import PROGRAMS, ServiceClient, encode_program, program
from .queue import AdmissionRejected
from .service import JobService

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_USAGE = 2


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Run the multi-tenant job service demo.",
    )
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser(
        "demo", help="run a daemon under concurrent client load"
    )
    demo.add_argument("--tenants", type=int, default=2,
                      help="number of tenants (default 2)")
    demo.add_argument("--clients", type=int, default=4,
                      help="concurrent client threads (default 4)")
    demo.add_argument("--jobs-per-client", type=int, default=3,
                      help="submissions per client (default 3)")
    demo.add_argument("--program", default="pagerank",
                      choices=sorted(PROGRAMS),
                      help="task-library program to submit")
    demo.add_argument("--backend", default="serial",
                      choices=["serial", "process"],
                      help="task runtime backend")
    demo.add_argument("--scheduler", default="serial",
                      choices=["serial", "dag"],
                      help="stage scheduler")
    demo.add_argument("--num-slots", type=int, default=2,
                      help="service worker slots (default 2)")
    demo.add_argument("--cache-mb", type=float, default=256.0,
                      help="artifact cache budget in MiB")
    demo.add_argument("--cold", action="store_true",
                      help="disable the artifact cache (budget 0)")
    demo.add_argument("--seed", type=int, default=0,
                      help="fair-scheduler tie-break seed")
    demo.add_argument("--report-dir", default=None,
                      help="write per-tenant JSONL logs + RunReports")
    demo.add_argument("--serialized", action="store_true",
                      help="round-trip programs through the wire serde")
    demo.add_argument("--require-hits", action="store_true",
                      help="exit 1 unless the artifact cache hit")
    demo.add_argument("--require-clean", action="store_true",
                      help="exit 1 on any failed job or missed drain")

    sub.add_parser("programs", help="list registered programs")
    return parser


def _run_demo(args):
    if args.tenants < 1 or args.clients < 1:
        print("need at least one tenant and one client",
              file=sys.stderr)
        return EXIT_USAGE
    config = laptop_config(
        backend=args.backend, scheduler=args.scheduler
    )
    service = JobService(
        config=config,
        num_slots=args.num_slots,
        cache_limit_bytes=(
            0 if args.cold else int(args.cache_mb * 1024 * 1024)
        ),
        seed=args.seed,
        report_dir=args.report_dir,
    )
    # First tenant gets double weight so the demo's schedule shows the
    # weighted (not just round-robin) policy.
    tenants = []
    for i in range(args.tenants):
        name = "tenant-%d" % i
        service.add_tenant(name, weight=2.0 if i == 0 else 1.0)
        tenants.append(name)
    service.start()

    rejected = []
    payload = (
        encode_program(program(args.program)) if args.serialized
        else None
    )

    def client_main(index, handles):
        client = ServiceClient(service, tenants[index % len(tenants)])
        for j in range(args.jobs_per_client):
            label = "c%d-j%d" % (index, j)
            try:
                if payload is not None:
                    handles.append(
                        client.submit_serialized(payload, label=label)
                    )
                else:
                    handles.append(
                        client.submit(args.program, label=label)
                    )
            except AdmissionRejected as exc:
                rejected.append((label, exc.reason))

    all_handles = [[] for _ in range(args.clients)]
    threads = [
        threading.Thread(
            target=client_main, args=(i, all_handles[i]),
            name="client-%d" % i,
        )
        for i in range(args.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    drained = service.drain(timeout=300)
    failures = []
    for handles in all_handles:
        for handle in handles:
            try:
                handle.result(timeout=0)
            except Exception as exc:  # noqa: BLE001 -- reported below
                failures.append((handle.label, repr(exc)))
    stats = service.stats()
    stats["schedule"] = [
        "%s/%s" % pair for pair in service.schedule()
    ]
    stats["client_rejections"] = [
        "%s:%s" % pair for pair in rejected
    ]
    stats["failures"] = ["%s:%s" % pair for pair in failures]
    stats["drained"] = drained
    service.shutdown()
    print(json.dumps(stats, indent=2, sort_keys=True))

    if args.require_clean and (failures or not drained):
        print("FAIL: %d failed jobs, drained=%s"
              % (len(failures), drained), file=sys.stderr)
        return EXIT_FAILED
    if args.require_hits and stats["cache"]["hits"] == 0:
        print("FAIL: artifact cache never hit", file=sys.stderr)
        return EXIT_FAILED
    return EXIT_OK


def _run_programs():
    for name in sorted(PROGRAMS):
        doc = (PROGRAMS[name].__doc__ or "").strip().splitlines()
        print("%-12s %s" % (name, doc[0] if doc else ""))
    return EXIT_OK


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "demo":
        return _run_demo(args)
    if args.command == "programs":
        return _run_programs()
    parser.print_help()
    return EXIT_USAGE


if __name__ == "__main__":
    sys.exit(main())

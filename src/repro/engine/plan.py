"""Logical plan nodes (the lineage DAG behind every Bag).

A :class:`~repro.engine.bag.Bag` is a thin, immutable handle around one of
these nodes.  Plans are lazy; the :mod:`executor <repro.engine.executor>`
evaluates them when an action runs.

Narrow nodes (Map, Filter, FlatMap, MapPartitions, ZipWithUniqueId,
BroadcastJoin, CrossBroadcast) transform partitions in place and fuse into
the stage of their input.  Elementwise nodes additionally mark themselves
``fusable``: the executor streams records through maximal fusable chains
one record at a time instead of materializing an intermediate list per
operator.  Wide nodes (ReduceByKey, GroupByKey, CoGroup) require a
shuffle and start a new stage.
"""

import itertools


class PlanNode:
    """Base class for all plan nodes."""

    #: Subclasses list their child nodes here.
    children = ()

    #: Elementwise record-at-a-time operators (map/filter/flat_map) set
    #: this; the executor fuses unbroken chains of them into one
    #: streaming per-partition pipeline.
    fusable = False

    def __init__(self):
        self.cached = False
        self.materialized = None
        # A short human-readable label, settable via Bag.with_label().
        self.label = ""
        # Record scale for cost accounting: False = data-scale records
        # (each stands for ``bytes_per_record`` of the paper's dataset),
        # True = meta-scale records (per-tag scalars, counts, trained
        # models -- charged at ``result_record_bytes``).  Set by
        # Bag._derive from the children; InnerScalar marks its
        # representation explicitly.
        self.meta = False

    @property
    def name(self):
        return type(self).__name__

    def describe(self, ids=None, parts=None, notes=None):
        """One-line description: ``Name#id [label] parts=N (cached)``.

        ``ids`` / ``parts`` are the dicts produced by
        :func:`assign_node_ids` and :func:`partition_counts`; either may
        be omitted.  The id is *stable*: it depends only on the plan
        shape (pre-order position), so diagnostics and repeated
        ``explain()`` calls agree.  ``notes`` is an optional
        ``{id(node): text}`` dict of extra annotations (e.g. inferred
        partitioning properties), appended as ``[text]``.
        """
        line = self.name
        if ids is not None and id(self) in ids:
            line += "#%d" % ids[id(self)]
        if self.label:
            line += " [%s]" % self.label
        if parts is not None and parts.get(id(self)) is not None:
            line += " parts=%d" % parts[id(self)]
        if self.cached:
            line += " (cached)"
        if notes is not None and notes.get(id(self)):
            line += " [%s]" % notes[id(self)]
        return line

    def explain(self, indent=0, ids=None, parts=None, notes=None):
        """Multi-line textual rendering of the plan tree."""
        pad = "  " * indent
        lines = [pad + self.describe(ids, parts, notes)]
        for child in self.children:
            lines.append(child.explain(indent + 1, ids, parts, notes))
        return "\n".join(lines)


class Parallelize(PlanNode):
    """A dataset provided by the driver, split into partitions."""

    def __init__(self, data, num_partitions):
        super().__init__()
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.data = list(data)
        self.num_partitions = num_partitions

    def build_partitions(self):
        """Split the driver-side data into ``num_partitions`` slices."""
        n = self.num_partitions
        partitions = [[] for _ in range(n)]
        for index, item in enumerate(self.data):
            partitions[index % n].append(item)
        return partitions


class UnaryNode(PlanNode):
    """A node with exactly one child."""

    def __init__(self, child):
        super().__init__()
        self.child = child

    @property
    def children(self):
        return (self.child,)


class Map(UnaryNode):
    fusable = True

    def __init__(self, child, fn, preserves_partitioning=False):
        super().__init__(child)
        self.fn = fn
        # User assertion that fn never rewrites the key slot of keyed
        # records; lets property inference inherit the child's
        # partitioning when the AST proof comes up inconclusive.
        self.preserves_partitioning = preserves_partitioning


class Filter(UnaryNode):
    fusable = True

    def __init__(self, child, fn):
        super().__init__(child)
        self.fn = fn


class FlatMap(UnaryNode):
    fusable = True

    def __init__(self, child, fn, preserves_partitioning=False):
        super().__init__(child)
        self.fn = fn
        self.preserves_partitioning = preserves_partitioning


class MapPartitions(UnaryNode):
    """Applies ``fn(items, partition_index)`` to each whole partition."""

    def __init__(self, child, fn, preserves_partitioning=False):
        super().__init__(child)
        self.fn = fn
        self.preserves_partitioning = preserves_partitioning


class ZipWithUniqueId(UnaryNode):
    """Pairs each element with a cluster-unique integer id.

    Produces ``(element, id)`` pairs, with Spark's id scheme:
    ``id = partition_index + i * num_partitions``.
    """


class Coalesce(UnaryNode):
    """Merge partitions down to ``num_partitions`` without a shuffle.

    Spark's narrow ``coalesce``: needed wherever unions would otherwise
    accumulate partitions (e.g. a lifted if merging branch results every
    loop iteration would double them each time).
    """

    def __init__(self, child, num_partitions):
        super().__init__(child)
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions


class Union(PlanNode):
    """Concatenation of the partitions of all children (narrow)."""

    def __init__(self, inputs):
        super().__init__()
        if not inputs:
            raise ValueError("union of zero inputs")
        self._inputs = tuple(inputs)

    @property
    def children(self):
        return self._inputs


class ReduceByKey(UnaryNode):
    """Shuffle by key with map-side combining, then per-key reduction."""

    def __init__(self, child, fn, num_partitions):
        super().__init__(child)
        self.fn = fn
        self.num_partitions = num_partitions


class GroupByKey(UnaryNode):
    """Shuffle by key, materializing each group as a list.

    Materializing a group that exceeds executor memory raises
    :class:`~repro.errors.SimulatedOutOfMemory` -- this is the failure mode
    of the outer-parallel workaround in the paper's experiments.
    """

    def __init__(self, child, num_partitions):
        super().__init__(child)
        self.num_partitions = num_partitions


class CoGroup(PlanNode):
    """Shuffle both inputs by key; emit ``(k, (left_values, right_values))``.

    Joins, left-outer joins, and subtract-by-key derive from this node at
    the Bag level.
    """

    def __init__(self, left, right, num_partitions):
        super().__init__()
        self.left = left
        self.right = right
        self.num_partitions = num_partitions

    @property
    def children(self):
        return (self.left, self.right)


class BroadcastJoin(PlanNode):
    """Narrow equi-join: the right side is broadcast to every executor."""

    def __init__(self, left, right):
        super().__init__()
        self.left = left
        self.right = right

    @property
    def children(self):
        return (self.left, self.right)


class CrossBroadcast(PlanNode):
    """Cross product implemented by broadcasting one side.

    ``broadcast_side`` is ``"right"`` (default) or ``"left"``.  The
    broadcast side is collected to the driver and shipped to every
    executor; the other side streams through unchanged partitions.
    """

    def __init__(self, left, right, broadcast_side="right"):
        super().__init__()
        if broadcast_side not in ("left", "right"):
            raise ValueError("broadcast_side must be 'left' or 'right'")
        self.left = left
        self.right = right
        self.broadcast_side = broadcast_side

    @property
    def children(self):
        return (self.left, self.right)


def iter_nodes(root):
    """Yield every node in the plan reachable from ``root`` (pre-order)."""
    seen = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        stack.extend(node.children)


def iter_nodes_ordered(root):
    """Depth-first pre-order traversal visiting children left-to-right.

    Unlike :func:`iter_nodes` (whose stack order is an implementation
    detail), this order is the one a reader sees in ``explain()`` --
    node ids are assigned along it.  Iterative, so arbitrarily deep
    plans (the reason the executor itself is iterative) do not overflow
    the Python stack.
    """
    seen = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        stack.extend(reversed(node.children))


def assign_node_ids(root):
    """Stable small integer ids: ``{id(node): ordinal}`` (1-based).

    Ids follow :func:`iter_nodes_ordered`, i.e. the ``explain()``
    reading order, so the same plan always yields the same numbering
    and a diagnostic's ``#n`` can be found by eye in the explain
    output.
    """
    return {
        id(node): ordinal
        for ordinal, node in enumerate(iter_nodes_ordered(root), start=1)
    }


def partition_counts(root):
    """Per-node output partition counts: ``{id(node): int}``.

    Mirrors how the Bag layer threads ``num_partitions``: sources and
    shuffles fix their own count, unions add their inputs, narrow nodes
    inherit from the (streamed) child.
    """
    counts = {}
    # Iterative post-order: children resolved before parents.
    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            counts[id(node)] = _own_partitions(node, counts)
            continue
        if id(node) in counts:
            continue
        stack.append((node, True))
        for child in node.children:
            if id(child) not in counts:
                stack.append((child, False))
    return counts


def _own_partitions(node, counts):
    if hasattr(node, "num_partitions"):
        return node.num_partitions
    if isinstance(node, Union):
        child_counts = [counts.get(id(c)) for c in node.children]
        if any(count is None for count in child_counts):
            return None
        return sum(child_counts)
    if isinstance(node, BroadcastJoin):
        return counts.get(id(node.left))
    if isinstance(node, CrossBroadcast):
        stream = node.left if node.broadcast_side == "right" else node.right
        return counts.get(id(stream))
    if isinstance(node, UnaryNode):
        return counts.get(id(node.child))
    return None


def explain_compact(root, notes=None):
    """One line per node: ``#1 Name [label] parts=N <- #2 #3``.

    The compact rendering used by plan-lint diagnostics: each line
    names the node's stable id, its partition count, and the ids of its
    inputs, so a diagnostic can reference an exact node without
    reproducing the whole tree.  ``notes`` optionally appends a
    ``[text]`` annotation per node (see ``PlanNode.describe``).
    """
    ids = assign_node_ids(root)
    parts = partition_counts(root)
    by_ordinal = sorted(
        iter_nodes_ordered(root), key=lambda node: ids[id(node)]
    )
    lines = []
    for node in by_ordinal:
        line = "#%d %s" % (ids[id(node)], node.name)
        if node.label:
            line += " [%s]" % node.label
        count = parts.get(id(node))
        if count is not None:
            line += " parts=%d" % count
        if node.cached:
            line += " (cached)"
        if notes is not None and notes.get(id(node)):
            line += " [%s]" % notes[id(node)]
        if node.children:
            line += " <- " + " ".join(
                "#%d" % ids[id(child)] for child in node.children
            )
        lines.append(line)
    return "\n".join(lines)


def describe_node(node, ids=None, parts=None):
    """Compact reference to one node: ``#3 GroupByKey [label] parts=8``.

    Used in diagnostic messages to point at the exact plan node.
    """
    text = node.name
    if ids is not None and id(node) in ids:
        text = "#%d %s" % (ids[id(node)], node.name)
    if node.label:
        text += " [%s]" % node.label
    if parts is not None and parts.get(id(node)) is not None:
        text += " parts=%d" % parts[id(node)]
    return text


def static_record_count(node):
    """Record count of a plan node when statically known, else None.

    Driver-provided data has an exact count; size-preserving narrow
    chains (map, zip-with-id, coalesce) propagate it, and unions add
    their inputs.  Anything data-dependent (filters, shuffles) is
    unknown: the analyses that use this value must treat ``None`` as
    "large".
    """
    while True:
        if isinstance(node, Parallelize):
            return len(node.data)
        if isinstance(node, (Map, ZipWithUniqueId, Coalesce)):
            node = node.child
            continue
        if isinstance(node, Union):
            total = 0
            for child in node.children:
                count = static_record_count(child)
                if count is None:
                    return None
                total += count
            return total
        return None


def count_nodes(root):
    return sum(1 for _ in iter_nodes(root))


def flatten_union_inputs(inputs):
    """Collapse nested unions into a single input list."""
    flat = []
    for node in inputs:
        if isinstance(node, Union) and not node.cached:
            flat.extend(node.children)
        else:
            flat.append(node)
    return flat


def chain_partitions(partition_lists):
    """Concatenate per-child partition lists (for Union)."""
    return list(itertools.chain.from_iterable(partition_lists))

"""ClusterConfig invariants and presets."""

import pytest

from repro.engine import GB, ClusterConfig
from repro.engine.config import (
    laptop_config,
    large_cluster_config,
    paper_cluster_config,
)


class TestClusterConfig:
    def test_total_cores(self):
        config = ClusterConfig(machines=25, cores_per_machine=16)
        assert config.total_cores == 400

    def test_default_parallelism_is_three_times_cores(self):
        config = ClusterConfig(
            machines=25, cores_per_machine=16, parallelism_factor=3
        )
        assert config.default_parallelism == 1200

    def test_executor_memory_limit_respects_safety_fraction(self):
        config = ClusterConfig(
            memory_per_machine_bytes=10 * GB, memory_safety_fraction=0.5
        )
        assert config.executor_memory_limit_bytes == 5 * GB

    def test_rejects_zero_machines(self):
        with pytest.raises(ValueError):
            ClusterConfig(machines=0)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            ClusterConfig(cores_per_machine=0)

    def test_rejects_nonpositive_record_bytes(self):
        with pytest.raises(ValueError):
            ClusterConfig(bytes_per_record=0)

    def test_with_machines_returns_modified_copy(self):
        config = ClusterConfig(machines=25)
        other = config.with_machines(5)
        assert other.machines == 5
        assert config.machines == 25

    def test_with_bytes_per_record(self):
        config = ClusterConfig().with_bytes_per_record(42.0)
        assert config.bytes_per_record == 42.0

    def test_frozen(self):
        config = ClusterConfig()
        with pytest.raises(Exception):
            config.machines = 3


class TestTaskMemory:
    def test_lone_task_uses_full_executor_budget(self):
        config = ClusterConfig(
            memory_per_machine_bytes=16 * GB, memory_safety_fraction=0.5
        )
        assert config.task_memory_limit_bytes(1) == 8 * GB

    def test_concurrent_tasks_share_memory(self):
        config = ClusterConfig(
            cores_per_machine=16,
            memory_per_machine_bytes=16 * GB,
            memory_safety_fraction=0.5,
        )
        assert config.task_memory_limit_bytes(8) == GB

    def test_concurrency_capped_at_core_count(self):
        config = ClusterConfig(
            cores_per_machine=4,
            memory_per_machine_bytes=8 * GB,
            memory_safety_fraction=0.5,
        )
        assert config.task_memory_limit_bytes(100) == GB

    def test_materialized_bytes_applies_overhead(self):
        config = ClusterConfig(
            bytes_per_record=100.0, memory_overhead_factor=3.0
        )
        assert config.materialized_bytes(10) == 3000

    def test_materialized_bytes_custom_rate(self):
        config = ClusterConfig(memory_overhead_factor=2.0)
        assert config.materialized_bytes(10, record_bytes=50) == 1000


class TestPresets:
    def test_paper_cluster_matches_section_9_1(self):
        config = paper_cluster_config()
        assert config.machines == 25
        assert config.cores_per_machine == 16
        assert config.memory_per_machine_bytes == 22 * GB

    def test_large_cluster_matches_section_9_7(self):
        config = large_cluster_config()
        assert config.machines == 36
        assert config.cores_per_machine == 40
        assert config.memory_per_machine_bytes == 100 * GB

    def test_laptop_config_accepts_overrides(self):
        config = laptop_config(machines=7)
        assert config.machines == 7

"""Average Distances (paper Sec. 2.2): three levels of parallelism.

The task: compute, for every connected component of a graph, the average
hop distance between all ordered vertex pairs.  The nested formulation is
the paper's one-liner ``connectedComps(g).map(avgDistances)``:

* level 1 -- the components (a NestedBag after grouping by component);
* level 2 -- the BFS sources inside one component (a sub-level whose
  composite tags are ``(component, source)``);
* level 3 -- the data-parallel BFS frontier expansion per source.

Matryoshka parallelizes all three levels; outer-parallel only the first;
inner-parallel only the third (paper Sec. 9.2).
"""

from ..baselines.outer_parallel import run_outer_parallel
from ..core.control_flow import while_loop
from ..core.nestedbag import group_by_key_into_nested_bag
from ..core.primitives import InnerBag
from .graphs import (
    adjacency_of,
    bfs_distances_reference,
    connected_components,
    connected_components_reference,
    undirect,
)

_BFS_LIMIT = 10_000


def _average(total, pairs):
    return total / pairs if pairs else 0.0


# ---------------------------------------------------------------------------
# Sequential reference (also the outer-parallel per-component UDF)
# ---------------------------------------------------------------------------


def avg_distances_reference(edges):
    """Ground truth ``{component_id: average_distance}`` plus work.

    Returns ``(averages, work)`` where work counts edge traversals.
    """
    labels = connected_components_reference(edges)
    component_edges = {}
    for u, v in edges:
        component_edges.setdefault(labels[u], []).append((u, v))
    averages = {}
    work = 0
    for component, comp_edges in component_edges.items():
        average, component_work = component_avg_distance(comp_edges)
        averages[component] = average
        work += component_work
    return averages, work


def component_avg_distance(edges):
    """Average all-pairs distance of one connected component.

    Returns ``(average, work)``.
    """
    adjacency = adjacency_of(edges)
    vertices = sorted(adjacency)
    total = 0.0
    work = 0
    for source in vertices:
        distances = bfs_distances_reference(adjacency, source)
        total += sum(distances.values())
        work += sum(len(nbrs) for nbrs in adjacency.values())
    pairs = len(vertices) * (len(vertices) - 1)
    return _average(total, pairs), work


# ---------------------------------------------------------------------------
# Matryoshka: all three levels lifted
# ---------------------------------------------------------------------------


def avg_distances_nested(ctx, edges, lowering=None):
    """The composed nested program: CC, then lifted per-component BFS.

    Args:
        ctx: Engine context.
        edges: Driver-side undirected edge list ``[(u, v), ...]``.
        lowering: Optional LoweringConfig.

    Returns:
        ``Bag[(component_id, average_distance)]``.
    """
    edges_bag = ctx.bag_of(edges)
    labels = connected_components(ctx, edges_bag)
    both_ways = undirect(edges_bag)
    # Tag each directed edge with its component: (comp, (u, v)).
    component_edges = both_ways.join(labels).map(
        lambda kv: (kv[1][1], (kv[0], kv[1][0]))
    )
    nested = group_by_key_into_nested_bag(component_edges, lowering)
    comp_edges = nested.inner
    vertices = comp_edges.map(lambda e: e[0]).distinct()

    # Level 2: every (component, source) pair becomes a composite tag.
    sub, source = vertices.as_sub_level()
    seed = InnerBag(
        sub, source.repr.map(lambda tv: (tv[0], (tv[1], 0)))
    )

    def bfs_body(state):
        # Expand the frontier against the level-1 edges without
        # replicating them per source (half-lifted join on the parent
        # tag; Sec. 5.2 / Sec. 7).
        candidates = state["frontier"].join_on_parent(
            comp_edges,
            self_key=lambda vd: vd[0],
            outer_key=lambda edge: edge[0],
        ).map(lambda pair: (pair[1][1], pair[0][1] + 1))
        best = candidates.reduce_by_key(min)
        discovered = best.subtract_by_key(state["visited"])
        return {
            "frontier": discovered,
            "visited": state["visited"].union(discovered),
        }

    state = while_loop(
        {"frontier": seed, "visited": seed},
        cond_fn=lambda s: s["frontier"].count() > 0,
        body_fn=bfs_body,
        max_iterations=_BFS_LIMIT,
    )

    # Back to level 1: sum distances per component, divide by the pair
    # count.
    distance_sums = state["visited"].retag_to_parent(
        lambda vd: vd[1]
    ).sum()
    vertex_counts = vertices.count()
    averages = distance_sums.binary(
        vertex_counts,
        lambda total, n: _average(total, n * (n - 1)),
    )
    return averages.to_bag()


# ---------------------------------------------------------------------------
# Workarounds
# ---------------------------------------------------------------------------


def avg_distances_outer(ctx, edges):
    """Outer-parallel: components in parallel, everything inside one
    component sequential (levels 2 and 3 unparallelized)."""
    edges_bag = ctx.bag_of(edges)
    labels = connected_components(ctx, edges_bag)
    component_edges = edges_bag.join(labels).map(
        lambda kv: (kv[1][1], (kv[0], kv[1][0]))
    )
    return run_outer_parallel(component_edges, _outer_udf)


def _outer_udf(_component, comp_edges):
    return component_avg_distance(comp_edges)


def avg_distances_inner(ctx, edges):
    """Inner-parallel: only level 3 (one BFS wavefront) parallel.

    The driver loops over components *and* sources, launching a parallel
    BFS job chain for each -- the job count explodes multiplicatively,
    which is the paper's point about three-level tasks.
    """
    labels = connected_components_reference(edges)
    component_edges = {}
    for u, v in edges:
        component_edges.setdefault(labels[u], []).append((u, v))
    results = []
    for component in sorted(component_edges):
        comp_edges = component_edges[component]
        adjacency_bag = ctx.bag_of(
            [
                pair
                for u, v in comp_edges
                for pair in ((u, v), (v, u))
            ]
        ).distinct().cache()
        vertices = sorted({v for edge in comp_edges for v in edge})
        total = 0.0
        for source in vertices:
            total += _parallel_bfs_distance_sum(
                ctx, adjacency_bag, source
            )
        pairs = len(vertices) * (len(vertices) - 1)
        results.append((component, _average(total, pairs)))
    return results


def _parallel_bfs_distance_sum(ctx, adjacency_bag, source):
    visited = ctx.bag_of([(source, 0)]).cache()
    frontier = visited
    while True:
        candidates = frontier.join(adjacency_bag).map(
            lambda kv: (kv[1][1], kv[1][0] + 1)
        )
        discovered = candidates.reduce_by_key(min).subtract_by_key(
            visited
        ).cache()
        if discovered.count(label="bfs frontier") == 0:
            break
        visited = visited.union(discovered).cache()
        frontier = discovered
    return visited.values().sum(label="bfs distance sum")

"""Exception hierarchy shared across the repro packages."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PlanError(ReproError):
    """A logical plan was constructed or used incorrectly."""


class ExecutionError(ReproError):
    """A job failed while executing on the engine."""


class UdfError(ExecutionError):
    """A user-defined function raised an exception.

    The original exception is available as ``__cause__``.
    """

    def __init__(self, operator, original):
        super().__init__(
            "UDF raised %s in operator %r: %s"
            % (type(original).__name__, operator, original)
        )
        self.operator = operator
        self.original = original

    def __reduce__(self):
        # Exceptions with non-message __init__ signatures do not pickle
        # by default; task results cross process boundaries, so every
        # engine error spells out how to rebuild itself.
        return (type(self), (self.operator, self.original))


class SimulatedOutOfMemory(ExecutionError):
    """An executor's working set exceeded the configured memory.

    Raised by the engine wherever real Spark would die with an
    ``OutOfMemoryError``: materializing a group that does not fit on one
    executor, broadcasting a dataset larger than executor memory, or
    collecting an oversized result to the driver.
    """

    def __init__(self, what, needed_bytes, limit_bytes):
        super().__init__(
            "simulated OOM while %s: needs %d bytes but executor limit is %d"
            % (what, needed_bytes, limit_bytes)
        )
        self.what = what
        self.needed_bytes = needed_bytes
        self.limit_bytes = limit_bytes

    def __reduce__(self):
        return (
            type(self), (self.what, self.needed_bytes, self.limit_bytes)
        )


class SerializationError(PlanError):
    """A closure or task result could not cross a process boundary.

    Raised with the name of the operator whose closure (or output)
    failed to serialize, so the offending UDF is easy to find.
    """


class InjectedFault(ExecutionError):
    """A deterministic fault planted by the test fault-injection hook.

    The scheduler treats it as a transient task failure (a killed
    worker) and retries the task, unlike deterministic UDF bugs.
    """


class TaskFailedError(ExecutionError):
    """A task kept failing after exhausting its retry budget."""

    def __init__(self, stage, task_index, attempts, last_error):
        super().__init__(
            "task %d of stage dispatch %d failed %d time(s); last error: %s"
            % (task_index, stage, attempts, last_error)
        )
        self.stage = stage
        self.task_index = task_index
        self.attempts = attempts
        self.last_error = last_error

    def __reduce__(self):
        return (
            type(self),
            (self.stage, self.task_index, self.attempts, self.last_error),
        )


class FlatteningError(ReproError):
    """The flattening machinery was used in an unsupported way."""


class ParsingError(ReproError):
    """The parsing phase (AST rewriter) could not translate a UDF."""


class UnsupportedConstructError(ParsingError):
    """A ``@nested_udf`` body uses a construct the rewriter cannot lift.

    Raised eagerly at decoration time, before any rewriting happens, so
    the failure points at the offending source construct instead of a
    downstream rewrite or staging error.

    Attributes:
        code: The diagnostic code (``NPL1xx``) of the construct.
        line / col: 1-based source location in the defining file.
    """

    def __init__(self, message, code=None, line=None, col=None):
        super().__init__(message)
        self.code = code
        self.line = line
        self.col = col

    def __reduce__(self):
        return (
            type(self), (self.args[0], self.code, self.line, self.col)
        )


class AnalysisError(ReproError):
    """Static analysis (:mod:`repro.analysis`) found error diagnostics.

    The structured findings are available as ``diagnostics`` (a list of
    :class:`repro.analysis.Diagnostic`).
    """

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        super().__init__(
            "static analysis found %d problem(s):\n%s"
            % (
                len(self.diagnostics),
                "\n".join(str(d) for d in self.diagnostics),
            )
        )

    def __reduce__(self):
        return (type(self), (self.diagnostics,))


class UnsupportedFeatureError(ReproError):
    """A baseline system does not support the requested feature.

    Used by the DIQL baseline, which (like the original prototype) rejects
    control flow statements at inner nesting levels.
    """

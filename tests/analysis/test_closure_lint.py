"""NPL2xx closure-serializability pass and strict decoration mode."""

import functools
import threading

import pytest

from repro.analysis import analyze_closure, analyze_udf
from repro.errors import AnalysisError
from repro.lang import nested_udf


def _capture(value):
    def udf(x):
        return (value, x)

    return udf


def codes(diags):
    return [d.code for d in diags]


def test_serializable_closure_is_clean():
    assert analyze_closure(_capture(42)) == []
    assert analyze_closure(_capture([1, 2, 3])) == []


def test_no_closure_is_clean():
    def free(x):
        return x + 1

    assert analyze_closure(free) == []


def test_unpicklable_capture_is_npl201():
    diags = analyze_closure(_capture(threading.Lock()))
    assert codes(diags) == ["NPL201"]
    diag = diags[0]
    assert diag.severity == "error"
    assert "'value'" in diag.message
    assert diag.file.endswith("test_closure_lint.py")
    assert diag.line > 0


def test_engine_context_capture_is_npl202(ctx):
    diags = analyze_closure(_capture(ctx))
    assert "NPL202" in codes(diags)
    assert "inner-parallel" in diags[codes(diags).index("NPL202")].message


def test_bag_capture_is_npl202(ctx):
    bag = ctx.bag_of([1, 2, 3])
    diags = analyze_closure(_capture(bag))
    assert "NPL202" in codes(diags)


def test_decorated_udf_is_unwrapped_to_original():
    lock = threading.Lock()

    @nested_udf
    def udf(x):
        y = lock.locked()
        return x + y

    diags = analyze_closure(udf)
    assert codes(diags) == ["NPL201"]
    assert "'lock'" in diags[0].message


def _scale(x, factor):
    return x * factor


def test_partial_capture_is_unwrapped_to_npl201():
    fn = functools.partial(_scale, factor=threading.Lock())
    diags = analyze_closure(fn)
    assert "NPL201" in codes(diags)
    message = diags[codes(diags).index("NPL201")].message
    assert "partial keyword 'factor'" in message
    assert "'_scale'" in message


def test_partial_over_engine_bag_is_npl202(ctx):
    bag = ctx.bag_of([1, 2, 3])
    fn = functools.partial(_scale, factor=bag)
    diags = analyze_closure(fn)
    assert "NPL202" in codes(diags)
    message = diags[codes(diags).index("NPL202")].message
    assert "partial keyword 'factor'" in message
    assert "inner-parallel" in message


def test_clean_partial_is_clean():
    assert analyze_closure(functools.partial(_scale, factor=2)) == []


class _LockHolder:
    def __init__(self):
        self.lock = threading.Lock()

    def work(self, x):
        return x


def test_bound_method_instance_is_npl201():
    diags = analyze_closure(_LockHolder().work)
    assert "NPL201" in codes(diags)
    assert "bound instance (_LockHolder)" in diags[0].message


def test_bound_method_of_engine_context_is_npl202(ctx):
    diags = analyze_closure(ctx.bag_of)
    assert "NPL202" in codes(diags)
    message = diags[codes(diags).index("NPL202")].message
    assert "bound instance of EngineContext" in message


def test_location_override():
    diags = analyze_closure(
        _capture(threading.Lock()), filename="over.py", line=7
    )
    assert diags[0].file == "over.py"
    assert diags[0].line == 7


# ---------------------------------------------------------------------------
# analyze_udf combines both families; strict mode enforces at decoration.
# ---------------------------------------------------------------------------


def test_analyze_udf_reports_both_families():
    lock = threading.Lock()

    def udf(x):
        del x  # NPL123 warning
        return lock

    found = codes(analyze_udf(udf))
    assert "NPL123" in found
    assert "NPL201" in found


def test_strict_raises_analysis_error_on_unserializable_capture():
    lock = threading.Lock()

    with pytest.raises(AnalysisError) as err:

        @nested_udf(strict=True)
        def udf(x):
            n = 0
            while n < 2:
                n = n + lock.locked()
            return n

    assert "NPL201" in [d.code for d in err.value.diagnostics]


def test_strict_warns_on_captured_mutation_but_decorates():
    seen = set()

    with pytest.warns(UserWarning, match="NPL120"):

        @nested_udf(strict=True)
        def udf(x):
            seen.add(x)
            return x

    assert udf(3) == 3
    assert seen == {3}


def test_strict_clean_udf_decorates_silently(recwarn):
    @nested_udf(strict=True)
    def udf(x):
        total = 0
        while total < x:
            total = total + 1
        return total

    assert udf(4) == 4
    assert not [w for w in recwarn.list if "NPL" in str(w.message)]


def test_default_decoration_skips_closure_pass():
    lock = threading.Lock()

    @nested_udf
    def udf(x):
        y = lock.locked()
        return x + y

    assert udf(1) == 1

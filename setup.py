"""Legacy setup shim: enables `pip install -e . --no-use-pep517` offline."""

from setuptools import setup

setup()

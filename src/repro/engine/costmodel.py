"""Analytical cost model: execution trace -> simulated wall-clock seconds.

This module is the substitute for running on the paper's physical cluster.
The engine executes programs for real (so results are correct), while the
cost model converts the recorded trace into the runtime the same program
would exhibit on a cluster described by a
:class:`~repro.engine.config.ClusterConfig`.

The model charges exactly the structural costs the paper's analysis relies
on:

* per-job launch overhead -- this is what makes the inner-parallel
  workaround slow (one job chain per inner computation, Sec. 1);
* task makespan on a bounded number of slots -- this is what makes the
  outer-parallel workaround slow (parallelism capped by the number of
  groups, and skewed groups serialize on one core, Sec. 1 and Sec. 9.5);
* shuffle, spill, and broadcast volumes -- these drive the join-strategy
  trade-offs in Sec. 8.2/8.3.
"""

from dataclasses import dataclass, field


@dataclass
class CostBreakdown:
    """Simulated seconds attributed to each cost component."""

    job_launch_s: float = 0.0
    stage_overhead_s: float = 0.0
    task_overhead_s: float = 0.0
    compute_s: float = 0.0
    shuffle_s: float = 0.0
    spill_s: float = 0.0
    broadcast_s: float = 0.0
    collect_s: float = 0.0

    @property
    def total_s(self):
        return (
            self.job_launch_s
            + self.stage_overhead_s
            + self.task_overhead_s
            + self.compute_s
            + self.shuffle_s
            + self.spill_s
            + self.broadcast_s
            + self.collect_s
        )

    def add(self, other):
        self.job_launch_s += other.job_launch_s
        self.stage_overhead_s += other.stage_overhead_s
        self.task_overhead_s += other.task_overhead_s
        self.compute_s += other.compute_s
        self.shuffle_s += other.shuffle_s
        self.spill_s += other.spill_s
        self.broadcast_s += other.broadcast_s
        self.collect_s += other.collect_s


@dataclass
class CostModel:
    """Computes simulated runtimes from an execution trace.

    Args:
        config: The simulated cluster.
    """

    config: object
    _cache: dict = field(default_factory=dict, repr=False)

    def stage_cost(self, stage):
        """Cost breakdown for one :class:`StageMetrics` in isolation.

        Covers the per-stage terms only (scheduling overhead, compute
        makespan, shuffle, spill); job-level terms (launch, broadcast,
        collect) live in :meth:`job_cost`.
        """
        cfg = self.config
        cost = CostBreakdown()
        slots = cfg.total_cores
        if stage.kind not in ("union", "coalesce", "cached"):
            # Unions, coalesces and cache reads are narrow
            # continuations, not scheduled task sets of their own;
            # their tasks belong to the stages that consume them.
            cost.stage_overhead_s += cfg.stage_overhead_s
            # Task scheduling is serial at the driver [24, 37]: many
            # tiny tasks cost real time regardless of cluster size.
            # This is both why inner-parallel degrades with more
            # machines (Fig. 4) and why Sec. 8.1 sizes partition
            # counts to InnerScalar cardinalities.
            cost.task_overhead_s += (
                cfg.task_overhead_s * max(1, stage.num_tasks)
            )
        record_bytes = (
            cfg.result_record_bytes if stage.meta
            else cfg.bytes_per_record
        )
        cost.compute_s += (
            _makespan(stage.task_records, slots)
            * record_bytes
            / cfg.cpu_bytes_per_s
        )
        shuffle_bytes = stage.shuffle_read_records * record_bytes
        cost.shuffle_s += shuffle_bytes / (
            cfg.network_bytes_per_s * cfg.machines
        )
        spill_bytes = stage.spilled_records * record_bytes
        # Spilled data is written once and read once.
        cost.spill_s += 2 * spill_bytes / (
            cfg.disk_bytes_per_s * cfg.machines
        )
        return cost

    def job_cost(self, job):
        """Cost breakdown for a single :class:`JobMetrics`."""
        cfg = self.config
        cost = CostBreakdown(job_launch_s=cfg.job_launch_overhead_s)
        for stage in job.stages:
            cost.add(self.stage_cost(stage))
        broadcast_bytes = (
            job.broadcast_records * cfg.bytes_per_record
            + job.broadcast_meta_records * cfg.result_record_bytes
        )
        # A broadcast ships the full payload to every machine; the driver's
        # uplink is the bottleneck (Spark's torrent broadcast softens this
        # logarithmically; we keep the linear model because the paper's
        # broadcast-join failures come from volume, not topology).
        cost.broadcast_s += (
            broadcast_bytes * cfg.machines / cfg.network_bytes_per_s
        ) / max(1, cfg.machines // 2)
        collect_bytes = job.collected_records * cfg.result_record_bytes
        cost.collect_s += collect_bytes / cfg.network_bytes_per_s
        saved_bytes = (
            job.saved_records * cfg.bytes_per_record
            + job.saved_meta_records * cfg.result_record_bytes
        )
        cost.collect_s += saved_bytes / (
            cfg.disk_bytes_per_s * cfg.machines
        )
        return cost

    def trace_cost(self, trace):
        """Total cost breakdown for every job in the trace.

        Jobs submitted from a driver program run sequentially, so the total
        is the sum over jobs.
        """
        total = CostBreakdown()
        for job in trace.jobs:
            total.add(self.job_cost(job))
        return total

    def simulated_seconds(self, trace):
        """Simulated wall-clock seconds for the whole trace."""
        return self.trace_cost(trace).total_s


def _makespan(task_records, slots):
    """Makespan (in records) of scheduling tasks onto ``slots`` cores.

    Uses the longest-processing-time greedy rule, which is how a dataflow
    engine's slot scheduler behaves to first order.  This is the term that
    penalizes both too-few tasks (outer-parallel: fewer tasks than cores
    leave cores idle) and skew (one giant task dominates).
    """
    active = [records for records in task_records if records > 0]
    if not active:
        return 0
    if len(active) <= slots:
        return max(active)
    loads = [0] * slots
    for records in sorted(active, reverse=True):
        index = loads.index(min(loads))
        loads[index] += records
    return max(loads)

"""Staged boolean/select helpers: lifted behaviour and plain fallback."""

from repro.lang.staged import (
    staged_and,
    staged_not,
    staged_or,
    staged_select,
)


class TestPlainSemantics:
    def test_and_short_circuits(self):
        evaluated = []

        def right():
            evaluated.append(1)
            return True

        assert staged_and(False, right) is False
        assert evaluated == []
        assert staged_and(True, right) is True
        assert evaluated == [1]

    def test_or_short_circuits(self):
        evaluated = []

        def right():
            evaluated.append(1)
            return False

        assert staged_or(True, right) is True
        assert evaluated == []
        assert staged_or(False, right) is False

    def test_not(self):
        assert staged_not(True) is False
        assert staged_not(0) is True

    def test_select_evaluates_one_side(self):
        taken = []
        staged_select(
            True, lambda: taken.append("then"),
            lambda: taken.append("else"),
        )
        assert taken == ["then"]

    def test_truthy_non_bools_pass_through(self):
        assert staged_and([1], lambda: "x") == "x"
        assert staged_or("", lambda: "fallback") == "fallback"


class TestLiftedSemantics:
    def test_and_per_tag(self, lctx):
        a = lctx.scalars_from_pairs(
            [("fruit", True), ("animal", True)]
        )
        b = lctx.scalars_from_pairs(
            [("fruit", False), ("animal", True)]
        )
        assert staged_and(a, lambda: b).as_dict() == {
            "fruit": False, "animal": True,
        }

    def test_or_per_tag(self, lctx):
        a = lctx.scalars_from_pairs(
            [("fruit", False), ("animal", False)]
        )
        assert staged_or(a, lambda: True).as_dict() == {
            "fruit": True, "animal": True,
        }

    def test_not_per_tag(self, lctx):
        a = lctx.scalars_from_pairs(
            [("fruit", True), ("animal", False)]
        )
        assert staged_not(a).as_dict() == {
            "fruit": False, "animal": True,
        }

    def test_select_lifted_predicate(self, lctx):
        pred = lctx.scalars_from_pairs(
            [("fruit", True), ("animal", False)]
        )
        out = staged_select(pred, lambda: 1, lambda: 2)
        assert out.as_dict() == {"fruit": 1, "animal": 2}

    def test_select_lifted_branches(self, lctx):
        pred = lctx.scalars_from_pairs(
            [("fruit", True), ("animal", False)]
        )
        then_value = lctx.constant(10)
        else_value = lctx.constant(20)
        out = staged_select(
            pred, lambda: then_value, lambda: else_value
        )
        assert out.as_dict() == {"fruit": 10, "animal": 20}

    def test_select_mixed_branches(self, lctx):
        pred = lctx.scalars_from_pairs(
            [("fruit", True), ("animal", False)]
        )
        then_value = lctx.constant(10)
        out = staged_select(pred, lambda: then_value, lambda: -1)
        assert out.as_dict() == {"fruit": 10, "animal": -1}

"""Per-figure experiment definitions (paper Sec. 9).

Every public ``fig*`` function regenerates one of the paper's evaluation
figures as a :class:`~repro.bench.harness.Sweep` of simulated runtimes.
``scale`` trades sweep width / data size for wall-clock time: ``"quick"``
keeps pytest-benchmark runs short; ``"full"`` reproduces the paper's
sweep ranges.

Dataset scale mapping: the generators produce N records standing for the
paper's G gigabytes, so ``bytes_per_record = G * 2^30 / N``.  The
``memory_overhead_factor`` is set per workload (string-heavy visit logs
materialize at a higher JVM blow-up than primitive points/edges); see
``ClusterConfig`` for the rationale.
"""

from ..baselines.inner_parallel import group_locally
from ..core.optimizer import LoweringConfig
from ..data import (
    clustered_points,
    component_graph,
    grouped_edges,
    grouped_points,
    initial_centroids,
    visits_log,
)
from ..engine import GB, large_cluster_config, paper_cluster_config
from ..tasks import avg_distances, bounce_rate, kmeans, pagerank
from .harness import Sweep, geometric_x_values

MATRYOSHKA = "matryoshka"
INNER = "inner-parallel"
OUTER = "outer-parallel"
DIQL = "diql"
IDEAL = "ideal"

_KMEANS_ITERS = 8
_PAGERANK_ITERS = 6
_K = 4


def _cluster(total_gb, total_records, machines=25, overhead=3.0,
             large=False, result_record_bytes=None):
    factory = large_cluster_config if large else paper_cluster_config
    kwargs = {
        "bytes_per_record": total_gb * GB / total_records,
        "memory_overhead_factor": overhead,
        "machines": machines,
    }
    if result_record_bytes is not None:
        kwargs["result_record_bytes"] = result_record_bytes
    return factory(**kwargs)


def _scaled(scale, quick, full):
    if scale == "quick":
        return quick
    if scale == "full":
        return full
    raise ValueError("scale must be 'quick' or 'full'")


# ---------------------------------------------------------------------------
# Fig. 1: K-means motivation (runtime vs. number of initial configurations)
# ---------------------------------------------------------------------------


def fig1_kmeans_motivation(scale="quick"):
    """Fig. 1: K-means runtimes across configuration counts.

    Total work is constant: the per-configuration sample size varies
    inversely with the configuration count.  ``ideal`` is the runtime of
    a single full-size configuration.
    """
    total_points = _scaled(scale, 512, 2048)
    x_values = _scaled(
        scale, [1, 4, 16, 64], geometric_x_values(1, 256)
    )
    total_gb = 2.0
    sweep = Sweep(
        title="Fig. 1: K-means, constant total work",
        x_label="configs",
        systems=[IDEAL, MATRYOSHKA, INNER, OUTER],
    )
    config = _cluster(total_gb, total_points, overhead=2.0)
    ideal_points = grouped_points(1, total_points, _K, seed=11)
    ideal_configs = initial_centroids(_K, 1, seed=11)
    for x in x_values:
        records = grouped_points(x, total_points, _K, seed=11)
        configs = initial_centroids(_K, x, seed=11)
        groups = group_locally(records)
        _run_kmeans_systems(
            sweep, config, x, records, configs, groups,
            ideal=(ideal_points, ideal_configs),
        )
    return sweep


def _run_kmeans_systems(sweep, config, x, records, configs, groups,
                        ideal=None):
    kwargs = {"max_iterations": _KMEANS_ITERS, "tolerance": None}
    if ideal is not None:
        ideal_records, ideal_configs = ideal
        sweep.run(
            config, IDEAL, x,
            lambda ctx: kmeans.kmeans_inner(
                ctx, group_locally(ideal_records), ideal_configs,
                **kwargs,
            ),
        )
    sweep.run(
        config, MATRYOSHKA, x,
        lambda ctx: kmeans.kmeans_nested_grouped(
            ctx.bag_of(records), configs, **kwargs
        ).save(),
    )
    sweep.run(
        config, INNER, x,
        lambda ctx: kmeans.kmeans_inner(ctx, groups, configs, **kwargs),
    )
    sweep.run(
        config, OUTER, x,
        lambda ctx: kmeans.kmeans_outer(
            ctx.bag_of(records), configs, **kwargs
        ).save(),
    )


# ---------------------------------------------------------------------------
# Fig. 3: weak scaling for the three iterative tasks
# ---------------------------------------------------------------------------


def fig3_weak_scaling_kmeans(scale="quick"):
    """Fig. 3(a): K-means weak scaling over inner-computation counts."""
    sweep = fig1_kmeans_motivation(scale)
    sweep.title = "Fig. 3a: weak scaling, K-means"
    sweep.systems = [MATRYOSHKA, INNER, OUTER]
    return sweep


def fig3_weak_scaling_pagerank(scale="quick", total_gb=20.0,
                               machines=25, large=False, title=None,
                               x_values=None):
    """Fig. 3(b): grouped PageRank weak scaling (20 GB total input)."""
    total_edges = _scaled(scale, 1024, 4096)
    if x_values is None:
        x_values = _scaled(
            scale, [4, 16, 64, 256], geometric_x_values(4, 1024)
        )
    sweep = Sweep(
        title=title or "Fig. 3b: weak scaling, PageRank",
        x_label="groups",
        systems=[MATRYOSHKA, INNER, OUTER],
    )
    config = _cluster(
        total_gb, total_edges, machines=machines, large=large
    )
    for x in x_values:
        records = grouped_edges(x, total_edges, seed=13)
        groups = group_locally(records)
        _run_pagerank_systems(sweep, config, x, records, groups)
    return sweep


def _run_pagerank_systems(sweep, config, x, records, groups,
                          systems=None):
    systems = systems or (MATRYOSHKA, INNER, OUTER)
    if MATRYOSHKA in systems:
        sweep.run(
            config, MATRYOSHKA, x,
            lambda ctx: pagerank.pagerank_nested(
                ctx.bag_of(records), iterations=_PAGERANK_ITERS
            ).save(),
        )
    if INNER in systems:
        sweep.run(
            config, INNER, x,
            lambda ctx: pagerank.pagerank_inner(
                ctx, groups, iterations=_PAGERANK_ITERS
            ),
        )
    if OUTER in systems:
        sweep.run(
            config, OUTER, x,
            lambda ctx: pagerank.pagerank_outer(
                ctx.bag_of(records), iterations=_PAGERANK_ITERS
            ).save(),
        )


def fig3_weak_scaling_avg_distances(scale="quick"):
    """Fig. 3(c): Average Distances weak scaling (three levels)."""
    total_vertices = _scaled(scale, 48, 128)
    x_values = _scaled(scale, [2, 4, 8], [2, 4, 8, 16, 32])
    sweep = Sweep(
        title="Fig. 3c: weak scaling, Average Distances (3 levels)",
        x_label="components",
        systems=[MATRYOSHKA, INNER, OUTER],
    )
    # Average Distances is compute-bound (all-pairs BFS), so its input is
    # far smaller than the scan-bound tasks': 4 GB at this record count.
    config = _cluster(4.0, 2 * total_vertices)
    for x in x_values:
        per_component = max(2, total_vertices // x)
        edges = component_graph(x, per_component, seed=17)
        sweep.run(
            config, MATRYOSHKA, x,
            lambda ctx: avg_distances.avg_distances_nested(
                ctx, edges
            ).save(),
        )
        sweep.run(
            config, INNER, x,
            lambda ctx: avg_distances.avg_distances_inner(ctx, edges),
        )
        sweep.run(
            config, OUTER, x,
            lambda ctx: avg_distances.avg_distances_outer(
                ctx, edges
            ).save(),
        )
    return sweep


# ---------------------------------------------------------------------------
# Fig. 4: scale-out (varying machine count at 64 inner computations)
# ---------------------------------------------------------------------------


def fig4_scale_out(scale="quick", task="pagerank"):
    """Fig. 4: runtime vs. machine count, 64 inner computations."""
    machine_counts = _scaled(scale, [5, 15, 25], [5, 10, 15, 20, 25])
    num_groups = 64
    sweep = Sweep(
        title="Fig. 4: scale-out, %s (64 inner computations)" % task,
        x_label="machines",
        systems=[MATRYOSHKA, INNER, OUTER],
    )
    if task == "pagerank":
        total_edges = _scaled(scale, 1024, 4096)
        records = grouped_edges(num_groups, total_edges, seed=19)
        groups = group_locally(records)
        for machines in machine_counts:
            config = _cluster(20.0, total_edges, machines=machines)
            _run_pagerank_systems(
                sweep, config, machines, records, groups
            )
        return sweep
    if task == "kmeans":
        total_points = _scaled(scale, 512, 2048)
        records = grouped_points(num_groups, total_points, _K, seed=19)
        configs = initial_centroids(_K, num_groups, seed=19)
        groups = group_locally(records)
        for machines in machine_counts:
            config = _cluster(
                2.0, total_points, machines=machines, overhead=2.0
            )
            _run_kmeans_systems(
                sweep, config, machines, records, configs, groups
            )
        return sweep
    if task == "bounce_rate":
        total_visits = _scaled(scale, 2048, 4096)
        records = visits_log(256, total_visits, seed=19)
        groups = group_locally(records)
        for machines in machine_counts:
            config = _cluster(
                48.0, total_visits, machines=machines, overhead=8.0
            )
            _run_bounce_rate_systems(
                sweep, config, machines, records, groups,
                systems=(MATRYOSHKA, INNER, OUTER),
            )
        return sweep
    raise ValueError("unknown task: %r" % (task,))


# ---------------------------------------------------------------------------
# Fig. 5 / Fig. 6: Bounce Rate (no control flow), incl. the DIQL baseline
# ---------------------------------------------------------------------------


def fig5_bounce_rate_weak_scaling(scale="quick", total_gb=48.0,
                                  title=None, machines=25, large=False,
                                  x_values=None):
    """Fig. 5: Bounce Rate across group counts (48 GB total input).

    Expected shape: DIQL and outer-parallel OOM at every point;
    inner-parallel grows with the group count; Matryoshka stays near
    constant (with some spill at full input size).
    """
    total_visits = _scaled(scale, 2048, 4096)
    if x_values is None:
        x_values = _scaled(
            scale, [4, 32, 256], geometric_x_values(4, 256)
        )
    sweep = Sweep(
        title=title or "Fig. 5: Bounce Rate weak scaling",
        x_label="groups",
        systems=[MATRYOSHKA, INNER, OUTER, DIQL],
    )
    config = _cluster(
        total_gb, total_visits, overhead=8.0, machines=machines,
        large=large,
    )
    for x in x_values:
        records = visits_log(x, total_visits, seed=23)
        groups = group_locally(records)
        _run_bounce_rate_systems(sweep, config, x, records, groups)
    return sweep


def _run_bounce_rate_systems(sweep, config, x, records, groups,
                             systems=(MATRYOSHKA, INNER, OUTER, DIQL)):
    if MATRYOSHKA in systems:
        sweep.run(
            config, MATRYOSHKA, x,
            lambda ctx: bounce_rate.bounce_rate_nested(
                ctx.bag_of(records)
            ).save(),
        )
    if INNER in systems:
        sweep.run(
            config, INNER, x,
            lambda ctx: bounce_rate.bounce_rate_inner(ctx, groups),
        )
    if OUTER in systems:
        sweep.run(
            config, OUTER, x,
            lambda ctx: bounce_rate.bounce_rate_outer(
                ctx.bag_of(records)
            ).save(),
        )
    if DIQL in systems:
        sweep.run(
            config, DIQL, x,
            lambda ctx: bounce_rate.bounce_rate_diql(
                ctx.bag_of(records)
            ).save(),
        )


def fig6_diql_comparison(scale="quick"):
    """Fig. 6: Matryoshka vs. DIQL at reduced (12 GB) input.

    The sweep covers the group counts at which DIQL's materialized
    groups are near the memory limit (the regime the paper compares in):
    below it DIQL still OOMs, far above it its groups become trivially
    small.  Matryoshka wins at every surviving point, by the largest
    factor where DIQL's groups are biggest.
    """
    sweep = fig5_bounce_rate_weak_scaling(
        scale, total_gb=12.0,
        title="Fig. 6: Bounce Rate vs DIQL, 12 GB input",
        x_values=_scaled(scale, [8, 32, 64], [4, 8, 16, 32, 64, 128]),
    )
    sweep.systems = [MATRYOSHKA, DIQL]
    return sweep


# ---------------------------------------------------------------------------
# Fig. 7: data skew (Zipf-distributed group sizes)
# ---------------------------------------------------------------------------


def fig7_skew(scale="quick", task="bounce_rate"):
    """Fig. 7: skewed group sizes (Zipf keys, paper uses 1024 groups).

    The x axis sweeps the Zipf exponent (0 = the unskewed control run).
    Expected: outer-parallel OOMs under skew; Matryoshka stays within
    ~15% of its unskewed runtime; inner-parallel is an order of
    magnitude (or more) slower.
    """
    num_groups = _scaled(scale, 64, 1024)
    exponents = _scaled(scale, [0.0, 1.1], [0.0, 0.8, 1.1, 1.4])
    sweep = Sweep(
        title="Fig. 7: data skew, %s (%d groups)" % (task, num_groups),
        x_label="zipf exponent",
        systems=[MATRYOSHKA, INNER, OUTER],
    )
    if task == "bounce_rate":
        total_visits = _scaled(scale, 2048, 8192)
        config = _cluster(48.0, total_visits, overhead=8.0)
        for exponent in exponents:
            records = visits_log(
                num_groups, total_visits, skew=exponent, seed=29
            )
            groups = group_locally(records)
            _run_bounce_rate_systems(
                sweep, config, exponent, records, groups,
                systems=(MATRYOSHKA, INNER, OUTER),
            )
        return sweep
    if task == "pagerank":
        total_edges = _scaled(scale, 1024, 8192)
        config = _cluster(20.0, total_edges)
        for exponent in exponents:
            records = grouped_edges(
                num_groups, total_edges, skew=exponent, seed=29
            )
            groups = group_locally(records)
            _run_pagerank_systems(sweep, config, exponent, records,
                                  groups)
        return sweep
    raise ValueError("unknown task: %r" % (task,))


# ---------------------------------------------------------------------------
# Fig. 8: optimizer ablations
# ---------------------------------------------------------------------------


def fig8_join_strategies(scale="quick"):
    """Fig. 8 (left): InnerBag-InnerScalar join strategy, PageRank 160 GB.

    Compares the runtime optimizer against both fixed strategies.
    Expected: repartition loses badly at few groups; broadcast loses (and
    finally OOMs) at many groups; the optimizer tracks the better choice
    everywhere.
    """
    total_edges = _scaled(scale, 8192, 16384)
    iterations = _scaled(scale, 3, _PAGERANK_ITERS)
    x_values = _scaled(scale, [4, 64, 1024], geometric_x_values(4, 1024))
    sweep = Sweep(
        title="Fig. 8 left: join strategy (PageRank, 160 GB)",
        x_label="groups",
        systems=["optimizer", "broadcast", "repartition"],
    )
    # Each simulated group stands for a block of real groups at this
    # scale, so the per-tag records carry block-sized payloads: this is
    # what eventually makes the broadcast strategy exceed executor
    # memory, as in the paper.
    config = _cluster(160.0, total_edges, result_record_bytes=8 * 1024
                      * 1024)
    strategies = {
        "optimizer": LoweringConfig(),
        "broadcast": LoweringConfig(join_strategy="broadcast"),
        "repartition": LoweringConfig(join_strategy="repartition"),
    }
    for x in x_values:
        # Keep per-vertex adjacency lists proportionally small (a vertex
        # neighbourhood is a tiny fraction of a 160 GB graph).
        vertices = max(4, (total_edges // x) // 4)
        records = grouped_edges(
            x, total_edges, vertices_per_group=vertices, seed=31
        )
        for name, lowering in strategies.items():
            sweep.run(
                config, name, x,
                lambda ctx, low=lowering: pagerank.pagerank_nested(
                    ctx.bag_of(records),
                    iterations=iterations,
                    lowering=low,
                ).save(),
            )
    return sweep


def fig8_half_lifted(scale="quick"):
    """Fig. 8 (right): half-lifted mapWithClosure strategy, K-means.

    Compares the optimizer's broadcast-side choice against both forced
    sides.  Expected: broadcasting the primary input fails or degrades
    when the point set is large; broadcasting the InnerScalar degrades
    when there are many configurations; the optimizer always picks the
    better side.
    """
    num_points = _scaled(scale, 256, 1024)
    x_values = _scaled(scale, [2, 16, 128], geometric_x_values(2, 512))
    sweep = Sweep(
        title="Fig. 8 right: half-lifted mapWithClosure (K-means)",
        x_label="configs",
        systems=["optimizer", "broadcast-scalar", "broadcast-primary"],
    )
    points = clustered_points(num_points, _K, seed=37)
    config = _cluster(2.0, num_points, overhead=2.0)
    sides = {
        "optimizer": None,
        "broadcast-scalar": "scalar",
        "broadcast-primary": "primary",
    }
    for x in x_values:
        configs = initial_centroids(_K, x, seed=37)
        for name, side in sides.items():
            sweep.run(
                config, name, x,
                lambda ctx, s=side: kmeans.kmeans_nested_shared(
                    ctx, points, configs,
                    max_iterations=4, tolerance=None, cross_side=s,
                ).save(),
            )
    return sweep


# ---------------------------------------------------------------------------
# Fig. 9: 8x larger input on the big cluster
# ---------------------------------------------------------------------------


def fig9_larger_pagerank(scale="quick"):
    """Fig. 9(a): PageRank at 160 GB on the 36-machine cluster."""
    return fig3_weak_scaling_pagerank(
        scale,
        total_gb=160.0,
        large=True,
        machines=36,
        title="Fig. 9a: PageRank, 160 GB, 36 machines",
        x_values=_scaled(
            scale, [4, 32, 128], geometric_x_values(4, 1024)
        ),
    )


def fig9_larger_bounce_rate(scale="quick"):
    """Fig. 9(b): Bounce Rate at 384 GB on the 36-machine cluster."""
    return fig5_bounce_rate_weak_scaling(
        scale,
        total_gb=384.0,
        large=True,
        machines=36,
        title="Fig. 9b: Bounce Rate, 384 GB, 36 machines",
    )


# ---------------------------------------------------------------------------
# Extra ablation (DESIGN.md): partition-count selection (Sec. 8.1)
# ---------------------------------------------------------------------------


def ablation_partition_counts(scale="quick"):
    """Partition-count policy ablation: auto (Sec. 8.1) vs engine default.

    With few inner computations, sizing InnerScalar bags to the tag count
    avoids the per-partition overhead of thousands of near-empty tasks.
    """
    total_points = _scaled(scale, 512, 2048)
    x_values = _scaled(scale, [2, 8], [2, 8, 32, 128])
    sweep = Sweep(
        title="Ablation: InnerScalar partition counts (K-means)",
        x_label="configs",
        systems=["auto (Sec. 8.1)", "engine default"],
    )
    config = _cluster(2.0, total_points, overhead=2.0)
    policies = {
        "auto (Sec. 8.1)": LoweringConfig(),
        "engine default": LoweringConfig(partition_policy="default"),
    }
    for x in x_values:
        records = grouped_points(x, total_points, _K, seed=41)
        configs = initial_centroids(_K, x, seed=41)
        for name, lowering in policies.items():
            sweep.run(
                config, name, x,
                lambda ctx, low=lowering: kmeans.kmeans_nested_grouped(
                    ctx.bag_of(records), configs, lowering=low,
                    max_iterations=_KMEANS_ITERS, tolerance=None,
                ).save(),
            )
    return sweep

"""The differential verifier for shuffle elision."""

import pytest

from repro.analysis.equivalence import (
    EquivalenceError,
    library_programs,
    main,
    results_equivalent,
    verify_library,
    verify_program,
)


def test_registry_covers_every_task_module():
    names = [name for name, _program in library_programs()]
    assert len(names) == len(set(names))
    for fragment in (
        "bounce-rate", "pagerank", "connected", "avg-distances",
        "kmeans", "matrix",
    ):
        assert any(fragment in name for name in names)


def test_verify_program_reports_savings():
    subset = verify_library(only=["bounce-rate-flat"])
    assert len(subset) == 1
    verification = subset[0]
    assert verification.elisions >= 1
    assert verification.shuffle_records_saved > 0
    assert (
        verification.shuffle_records_optimized
        < verification.shuffle_records
    )


def test_verify_program_without_elisions_still_passes():
    subset = verify_library(only=["matrix-row-norms"])
    assert subset[0].elisions == 0
    assert (
        subset[0].shuffle_records_optimized
        == subset[0].shuffle_records
    )


def test_verify_program_rejects_divergent_results():
    def rigged(ctx):
        return ctx.config.optimize_shuffles

    with pytest.raises(EquivalenceError, match="differs"):
        verify_program(rigged, name="rigged")


def test_results_equivalent_is_order_and_ulp_insensitive():
    assert results_equivalent([(1, 0.1 + 0.2)], [(1, 0.3)])
    assert results_equivalent([("b", 2), ("a", 1)], [("a", 1), ("b", 2)])
    assert not results_equivalent([("a", 1)], [("a", 2)])
    assert not results_equivalent([("a", 1)], [("a", 1), ("a", 1)])


def test_cli_subset_run(capsys):
    assert main(["--only", "pagerank-parallel"]) == 0
    out = capsys.readouterr().out
    assert "ok   pagerank-parallel" in out
    assert "1 program(s) verified" in out


# ---------------------------------------------------------------------------
# --compare caching: optimize_caching off vs on
# ---------------------------------------------------------------------------


def test_verify_program_caching_counts_decisions():
    from repro.analysis.equivalence import verify_program_caching

    def program(ctx):
        feats = ctx.bag_of(range(50)).map(lambda x: x * 2)
        return (
            feats.map(lambda x: x + 1)
            .union(feats.map(lambda x: -x))
            .sum()
        )

    verification = verify_program_caching(program, name="reuse")
    assert verification.elisions == 1


def test_verify_program_caching_rejects_divergence():
    from repro.analysis.equivalence import verify_program_caching

    def rigged(ctx):
        return ctx.config.optimize_caching

    with pytest.raises(EquivalenceError, match="differs"):
        verify_program_caching(rigged, name="rigged")


def test_verify_program_caching_clean_without_reuse():
    from repro.analysis.equivalence import verify_program_caching

    def linear(ctx):
        return ctx.bag_of(range(30)).map(lambda x: x + 1).sum()

    verification = verify_program_caching(linear, name="linear")
    assert verification.elisions == 0

"""repro: a reproduction of Matryoshka (SIGMOD 2021).

Matryoshka lets dataflow programs use *nested parallelism* -- parallel
operations launched from inside other parallel operations -- by flattening
nested-parallel programs into flat-parallel ones through a two-phase
process (a compile-time parsing phase and a runtime lowering phase with
dynamic optimizations).

Top-level convenience re-exports::

    import repro

    ctx = repro.EngineContext()
    visits = ctx.bag_of(records)                     # Bag[(day, ip)]
    per_day = repro.group_by_key_into_nested_bag(visits)
    rates = per_day.map_groups(bounce_rate_udf)      # lifted, flat-parallel
"""

from .engine import (
    Bag,
    ClusterConfig,
    EngineContext,
    Weighted,
    laptop_config,
    large_cluster_config,
    paper_cluster_config,
)
from .errors import (
    AnalysisError,
    ExecutionError,
    FlatteningError,
    InjectedFault,
    ParsingError,
    PlanError,
    ReproError,
    SerializationError,
    SimulatedOutOfMemory,
    TaskFailedError,
    UdfError,
    UnsupportedConstructError,
    UnsupportedFeatureError,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "Bag",
    "ClusterConfig",
    "EngineContext",
    "ExecutionError",
    "FlatteningError",
    "InjectedFault",
    "InnerBag",
    "InnerScalar",
    "NestedBag",
    "ParsingError",
    "PlanError",
    "ReproError",
    "SerializationError",
    "SimulatedOutOfMemory",
    "TaskFailedError",
    "UdfError",
    "UnsupportedConstructError",
    "UnsupportedFeatureError",
    "Weighted",
    "cond",
    "group_by_key_into_nested_bag",
    "laptop_config",
    "large_cluster_config",
    "lifted",
    "nested_map",
    "paper_cluster_config",
    "while_loop",
]


def __getattr__(name):
    # Core flattening symbols are imported lazily to keep `import repro`
    # cheap and to avoid import cycles during package construction.
    # importlib is used directly: a `from . import core` here would
    # re-enter this __getattr__ through the import machinery's fromlist
    # handling and recurse forever.
    import importlib

    for module_name in ("analysis", "core", "lang", "engine",
                        "baselines", "tasks", "data", "bench"):
        if name == module_name:
            return importlib.import_module(
                "." + module_name, __name__
            )
    core = importlib.import_module(".core", __name__)
    if hasattr(core, name):
        return getattr(core, name)
    lang = importlib.import_module(".lang", __name__)
    if hasattr(lang, name):
        return getattr(lang, name)
    raise AttributeError("module 'repro' has no attribute %r" % name)

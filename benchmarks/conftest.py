"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's figures: it runs the
experiment (real execution on the simulated cluster), prints the table of
simulated runtimes the figure plots, and reports the harness wall time to
pytest-benchmark.  Experiments are heavy, so each runs exactly once.

Set ``REPRO_BENCH_SCALE=full`` to reproduce the paper's full sweep ranges
instead of the quick ones.
"""

import os

import pytest

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


@pytest.fixture
def figure_benchmark(benchmark):
    """Run a figure experiment once under pytest-benchmark."""

    def run(figure_fn, *args, **kwargs):
        sweep = benchmark.pedantic(
            lambda: figure_fn(*args, **kwargs), rounds=1, iterations=1
        )
        sweep.print_table()
        return sweep

    return run

"""Matryoshka's core: two-phase flattening of nested-parallel programs.

* :mod:`primitives` -- InnerScalar / InnerBag / LiftingContext (Sec. 4).
* :mod:`nestedbag` -- NestedBag and the entry points
  ``group_by_key_into_nested_bag`` / ``nested_map``.
* :mod:`control_flow` -- lifted ``while`` and ``if`` (Sec. 6).
* :mod:`closures` -- mapWithClosure and half-lifted operations (Sec. 5).
* :mod:`optimizer` -- the lowering phase's runtime decisions (Sec. 8).
"""

from .closures import (
    half_lifted_filter_with_closure,
    half_lifted_map_with_closure,
    replicate_bag,
    replicate_scalar,
)
from .control_flow import branch_context, cond, while_loop
from .nestedbag import (
    NestedBag,
    group_by_key_into_nested_bag,
    nested_group_by_key,
    nested_map,
)
from .optimizer import Decision, LoweringConfig, Optimizer
from .primitives import InnerBag, InnerScalar, LiftingContext

__all__ = [
    "Decision",
    "InnerBag",
    "InnerScalar",
    "LiftingContext",
    "LoweringConfig",
    "NestedBag",
    "Optimizer",
    "branch_context",
    "cond",
    "group_by_key_into_nested_bag",
    "nested_group_by_key",
    "half_lifted_filter_with_closure",
    "half_lifted_map_with_closure",
    "nested_map",
    "replicate_bag",
    "replicate_scalar",
    "while_loop",
]

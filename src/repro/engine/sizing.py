"""In-memory size estimation for Python objects.

This mirrors Spark's ``SizeEstimator``, which Matryoshka uses in the
half-lifted ``mapWithClosure`` optimization (paper Sec. 8.3) to decide which
side of a cross product to broadcast.  The estimate does not need to be
exact; it needs to rank two datasets by size reliably.
"""

import sys

from .columnar import ColumnarPartition

# Sampling bound: beyond this many elements we extrapolate from a sample,
# exactly like Spark's SizeEstimator does for large arrays.
_SAMPLE_LIMIT = 100


def estimate_size(obj):
    """Estimate the in-memory footprint of ``obj`` in bytes.

    Containers are sampled: for collections larger than 100 elements, the
    per-element cost is extrapolated from the first 100 elements.  Cycles
    are handled by tracking visited object ids.
    """
    return _estimate(obj, seen=set())


def estimate_record_size(records):
    """Average per-record size of a sequence of records, in bytes.

    Returns 0.0 for an empty sequence.
    """
    if not records:
        return 0.0
    sample = records[:_SAMPLE_LIMIT]
    total = sum(estimate_size(record) for record in sample)
    return total / len(sample)


def _estimate(obj, seen):
    obj_id = id(obj)
    if obj_id in seen:
        return 0
    base = sys.getsizeof(obj)
    if isinstance(obj, (str, bytes, bytearray, int, float, bool, complex)):
        return base
    if obj is None:
        return base
    seen.add(obj_id)
    if isinstance(obj, ColumnarPartition):
        # Typed buffers: the footprint is the buffer bytes plus fixed
        # per-column overhead, not a per-record boxed estimate.
        return obj.estimated_bytes
    if isinstance(obj, dict):
        return base + _estimate_items(
            [item for pair in obj.items() for item in pair], seen
        )
    if isinstance(obj, (list, tuple, set, frozenset)):
        return base + _estimate_items(list(obj), seen)
    if hasattr(obj, "__dict__"):
        return base + _estimate(vars(obj), seen)
    if hasattr(obj, "__slots__"):
        values = [
            getattr(obj, slot)
            for slot in obj.__slots__
            if hasattr(obj, slot)
        ]
        return base + _estimate_items(values, seen)
    return base


def _estimate_items(items, seen):
    if not items:
        return 0
    if len(items) <= _SAMPLE_LIMIT:
        return sum(_estimate(item, seen) for item in items)
    sampled = sum(_estimate(item, seen) for item in items[:_SAMPLE_LIMIT])
    return int(sampled * (len(items) / _SAMPLE_LIMIT))

"""Grouped PageRank (paper Sec. 9.1).

The paper puts PageRank at an inner nesting level by grouping the graph
edges and computing a separate PageRank per group (in the spirit of
Topic-Sensitive PageRank / BlockRank).  The nested UDF contains an
iterative loop, and its rank initialization is the paper's Sec. 5.1
closure example: ``initWeight = 1 / pages.count()`` is computed from a
lifted count and then used inside a (further) map -- a ``mapWithClosure``.

Convergence-based termination (``tolerance``) makes different groups
finish at different iterations, exercising the lifted loop's P1-P3
machinery; fixed ``iterations`` keeps runs comparable for benchmarks.
"""

from ..baselines.inner_parallel import run_inner_parallel
from ..baselines.outer_parallel import run_outer_parallel
from ..core.control_flow import while_loop
from ..core.nestedbag import group_by_key_into_nested_bag

DEFAULT_DAMPING = 0.85
DEFAULT_ITERATIONS = 8


def _out_links(edges):
    links = {}
    for src, dst in edges:
        links.setdefault(src, []).append(dst)
    return links


def _vertices_of(edges):
    vertices = set()
    for src, dst in edges:
        vertices.add(src)
        vertices.add(dst)
    return vertices


# ---------------------------------------------------------------------------
# Sequential reference (also the outer-parallel per-group UDF)
# ---------------------------------------------------------------------------


def pagerank_reference(edges, iterations=None, damping=DEFAULT_DAMPING,
                       tolerance=None):
    """Sequential PageRank on one edge list.

    Returns ``(ranks_dict, iterations_run, work)``.
    """
    limit = iterations or DEFAULT_ITERATIONS
    vertices = _vertices_of(edges)
    links = _out_links(edges)
    n = len(vertices)
    ranks = {v: 1.0 / n for v in vertices}
    base = (1.0 - damping) / n
    work = 0
    iterations_run = 0
    for _ in range(limit):
        sums = {v: 0.0 for v in vertices}
        for src, dsts in links.items():
            share = ranks[src] / len(dsts)
            for dst in dsts:
                sums[dst] += share
        new_ranks = {v: base + damping * sums[v] for v in vertices}
        work += len(edges) + n
        delta = sum(abs(new_ranks[v] - ranks[v]) for v in vertices)
        ranks = new_ranks
        iterations_run += 1
        if tolerance is not None and delta <= tolerance:
            break
    return ranks, iterations_run, work


# ---------------------------------------------------------------------------
# Flat parallel PageRank (one graph) -- the inner-parallel unit
# ---------------------------------------------------------------------------


def pagerank_parallel(ctx, edges, iterations=None,
                      damping=DEFAULT_DAMPING, tolerance=None):
    """Data-parallel PageRank for one graph (driver-side loop)."""
    limit = iterations or DEFAULT_ITERATIONS
    edges_bag = ctx.bag_of(edges).cache()
    links = edges_bag.group_by_key().cache()
    vertices = edges_bag.flat_map(lambda e: [e[0], e[1]]).distinct(
    ).cache()
    n = vertices.count(label="pagerank vertex count")
    base = (1.0 - damping) / n
    ranks = vertices.map(lambda v: (v, 1.0 / n)).cache()
    for _ in range(limit):
        contribs = links.join(ranks).flat_map(
            lambda kv: [
                (dst, kv[1][1] / len(kv[1][0])) for dst in kv[1][0]
            ]
        )
        zeros = vertices.map(lambda v: (v, 0.0))
        new_ranks = (
            contribs.union(zeros)
            .reduce_by_key(lambda a, b: a + b)
            .map_values(lambda s: base + damping * s)
            .cache()
        )
        if tolerance is not None:
            delta = (
                ranks.join(new_ranks)
                .map(lambda kv: abs(kv[1][0] - kv[1][1]))
                .sum(label="pagerank delta")
            )
            ranks = new_ranks
            if delta <= tolerance:
                break
        else:
            new_ranks.count(label="pagerank iteration")
            ranks = new_ranks
    return ranks.collect_as_map()


# ---------------------------------------------------------------------------
# Matryoshka: lifted grouped PageRank
# ---------------------------------------------------------------------------


def pagerank_nested(grouped_edges_bag, iterations=None,
                    damping=DEFAULT_DAMPING, tolerance=None,
                    lowering=None):
    """PageRank per edge group via flattening.

    Args:
        grouped_edges_bag: ``Bag[(group_id, (src, dst))]``.
        iterations: Fixed iteration cap.
        tolerance: Optional L1 convergence threshold; when set, groups
            exit the lifted loop at different iterations.
        lowering: Optional LoweringConfig.

    Returns:
        ``Bag[(group_id, (vertex, rank))]``.
    """
    limit = iterations or DEFAULT_ITERATIONS
    nested = group_by_key_into_nested_bag(grouped_edges_bag, lowering)
    lctx = nested.lctx
    edges = nested.inner
    links = edges.group_by_key()
    vertices = edges.flat_map(lambda e: [e[0], e[1]]).distinct()
    # Sec. 5.1: initWeight = 1/count used inside a map => mapWithClosure.
    n = vertices.count()
    init_weight = n.map(lambda count: 1.0 / count)
    base = n.map(lambda count: (1.0 - damping) / count)
    ranks = vertices.map_with_closure(
        init_weight, lambda v, w: (v, w)
    )

    def body(state):
        contribs = state["links"].join(state["ranks"]).flat_map(
            lambda kv: [
                (dst, kv[1][1] / len(kv[1][0])) for dst in kv[1][0]
            ]
        )
        zeros = state["vertices"].map(lambda v: (v, 0.0))
        summed = contribs.union(zeros).reduce_by_key(lambda a, b: a + b)
        new_ranks = summed.map_with_closure(
            state["base"], lambda kv, b: (kv[0], b + damping * kv[1])
        )
        if tolerance is None:
            delta = state["delta"]
        else:
            delta = (
                state["ranks"]
                .join(new_ranks)
                .map(lambda kv: abs(kv[1][0] - kv[1][1]))
                .sum()
            )
        return {
            "links": state["links"],
            "vertices": state["vertices"],
            "base": state["base"],
            "ranks": new_ranks,
            "delta": delta,
            "it": state["it"] + 1,
        }

    if tolerance is None:
        cond_fn = _fixed_iteration_condition(limit)
    else:
        cond_fn = _convergence_condition(limit, tolerance)
    state = while_loop(
        {
            "links": links,
            "vertices": vertices,
            "base": base,
            "ranks": ranks,
            "delta": lctx.constant(float("inf")),
            "it": lctx.constant(0),
        },
        cond_fn=cond_fn,
        body_fn=body,
    )
    return state["ranks"].to_bag()


def _fixed_iteration_condition(limit):
    return lambda state: state["it"] < limit


def _convergence_condition(limit, tolerance):
    return lambda state: (
        (state["it"] < limit) & (state["delta"] > tolerance)
    )


# ---------------------------------------------------------------------------
# Workarounds
# ---------------------------------------------------------------------------


def pagerank_outer(grouped_edges_bag, iterations=None,
                   damping=DEFAULT_DAMPING, tolerance=None):
    """Outer-parallel: sequential PageRank per materialized group."""

    def udf(_group_id, edges):
        ranks, _iters, work = pagerank_reference(
            edges, iterations, damping, tolerance
        )
        return sorted(ranks.items()), work

    return run_outer_parallel(grouped_edges_bag, udf)


def pagerank_inner(ctx, groups, iterations=None, damping=DEFAULT_DAMPING,
                   tolerance=None):
    """Inner-parallel: a full parallel PageRank job chain per group."""
    return run_inner_parallel(
        ctx,
        groups,
        lambda inner_ctx, edges: pagerank_parallel(
            inner_ctx, edges, iterations, damping, tolerance
        ),
    )

"""NPL3xx: lint over :mod:`repro.engine.plan` DAGs.

Four checks, all pre-execution (the point is to predict the failure or
the waste *before* the job runs):

* **NPL301** -- a node consumed by two or more parents without
  ``cache()``: lineage recomputes it once per consumer.
* **NPL302** -- a filter applied above a shuffle whose predicate
  provably reads only the key: pushing it below the shuffle would cut
  shuffle volume.  The predicate proof is best-effort source analysis
  (a lambda reading only ``kv[0]``); anything unprovable is silent.
* **NPL303** -- a broadcast join / cross whose build side's statically
  known size exceeds the executor memory bound: the exact condition
  the engine's :func:`~repro.engine.broadcast.check_broadcast_fits`
  raises :class:`~repro.errors.SimulatedOutOfMemory` for at runtime,
  predicted at plan-build time.
* **NPL304** -- back-to-back repartitions where the first is wasted:
  a coalesce immediately re-coalesced, or a shuffle whose input is
  already hash-partitioned by key into the same partition count.

Diagnostics carry the node's stable id (see
:func:`repro.engine.plan.assign_node_ids`), so a finding can be matched
by eye against ``Bag.explain()`` / ``explain_compact``.
"""

import ast
import inspect
import textwrap

from ..engine import plan as p
from .diagnostics import make_diagnostic

_WIDE = (p.ReduceByKey, p.GroupByKey, p.CoGroup)


def analyze_plan(root, config=None):
    """Lint one plan DAG; returns a list of Diagnostics.

    Args:
        root: The root :class:`~repro.engine.plan.PlanNode` (e.g.
            ``bag.node``).
        config: The :class:`~repro.engine.config.ClusterConfig` whose
            memory bounds the NPL303 prediction uses; without one the
            memory check is skipped.
    """
    ids = p.assign_node_ids(root)
    parts = p.partition_counts(root)
    consumers = _consumer_counts(root)
    diags = []

    def ref(node):
        return p.describe_node(node, ids, parts)

    for node in p.iter_nodes_ordered(root):
        _check_uncached_reuse(node, consumers, ref, diags)
        _check_filter_pushdown(node, ref, diags)
        if config is not None:
            _check_broadcast_size(node, config, ref, diags)
        _check_redundant_repartition(node, ref, diags)
    return diags


def analyze_bag(bag):
    """Convenience wrapper: lint a Bag against its context's config."""
    return analyze_plan(bag.node, bag.context.config)


# ---------------------------------------------------------------------------
# individual checks
# ---------------------------------------------------------------------------


def _consumer_counts(root):
    """How many parent edges reference each node (``CoGroup(x, x)`` = 2)."""
    counts = {}
    for node in p.iter_nodes_ordered(root):
        for child in node.children:
            counts[id(child)] = counts.get(id(child), 0) + 1
    return counts


def _check_uncached_reuse(node, consumers, ref, diags):
    uses = consumers.get(id(node), 0)
    if uses < 2 or node.cached:
        return
    if isinstance(node, p.Parallelize):
        # Driver-side data re-splits cheaply; no lineage recompute.
        return
    diags.append(
        make_diagnostic(
            "NPL301",
            "%s is consumed %d times without cache(); lineage will "
            "recompute it once per consumer -- call .cache() on the "
            "shared bag" % (ref(node), uses),
            node=ref(node),
        )
    )


def _check_filter_pushdown(node, ref, diags):
    if not isinstance(node, p.Filter):
        return
    child = node.child
    if not isinstance(child, _WIDE):
        return
    if _reads_only_key(node.fn) is not True:
        return
    diags.append(
        make_diagnostic(
            "NPL302",
            "%s reads only the key of %s's output; filtering before "
            "the shuffle would drop those records from the shuffle "
            "instead of after it" % (ref(node), ref(child)),
            node=ref(node),
        )
    )


def _check_broadcast_size(node, config, ref, diags):
    if isinstance(node, p.BroadcastJoin):
        build = node.right
    elif isinstance(node, p.CrossBroadcast):
        build = node.right if node.broadcast_side == "right" else node.left
    else:
        return
    count = p.static_record_count(build)
    if count is None:
        return
    record_bytes = (
        config.result_record_bytes if build.meta
        else config.bytes_per_record
    )
    needed = config.materialized_bytes(count, record_bytes)
    limit = min(
        config.executor_memory_limit_bytes, config.driver_memory_bytes
    )
    if needed <= limit:
        return
    diags.append(
        make_diagnostic(
            "NPL303",
            "%s broadcasts %s (%d records, ~%d bytes materialized) "
            "but the executor memory bound is %d bytes: the engine "
            "will raise SimulatedOutOfMemory at execution -- use a "
            "repartition join" % (ref(node), ref(build), count, needed,
                                  limit),
            node=ref(node),
        )
    )


def _check_redundant_repartition(node, ref, diags):
    if isinstance(node, p.Coalesce) and isinstance(node.child, p.Coalesce):
        diags.append(
            make_diagnostic(
                "NPL304",
                "%s immediately re-coalesces %s; the inner coalesce "
                "does no enduring work -- coalesce once to the final "
                "partition count" % (ref(node), ref(node.child)),
                node=ref(node),
            )
        )
        return
    if isinstance(node, _WIDE):
        child = node.left if isinstance(node, p.CoGroup) else node.child
        if (
            isinstance(child, _WIDE)
            and not isinstance(child, p.CoGroup)
            and child.num_partitions == node.num_partitions
        ):
            diags.append(
                make_diagnostic(
                    "NPL304",
                    "%s re-shuffles the output of %s, which is already "
                    "hash-partitioned by key into %d partitions; the "
                    "back-to-back shuffle moves data that is already "
                    "in place" % (ref(node), ref(child),
                                  node.num_partitions),
                    node=ref(node),
                )
            )


# ---------------------------------------------------------------------------
# predicate analysis for NPL302
# ---------------------------------------------------------------------------


def _reads_only_key(fn):
    """True / False / None(unknown): does ``fn(kv)`` read only ``kv[0]``?

    Best-effort: parses the predicate's source.  Multi-line lambdas,
    builtins, and functions without retrievable source return ``None``
    (the check stays silent rather than guessing).
    """
    lambda_node = _predicate_ast(fn)
    if lambda_node is None:
        return None
    args = lambda_node.args
    if len(args.args) != 1 or args.vararg or args.kwarg or args.kwonlyargs:
        return None
    param = args.args[0].arg
    body = (
        lambda_node.body
        if isinstance(lambda_node, ast.Lambda)
        else lambda_node
    )
    uses = []
    key_uses = set()
    for node in ast.walk(body):
        if isinstance(node, ast.Name) and node.id == param:
            uses.append(node)
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == param
            and isinstance(node.slice, ast.Constant)
            and node.slice.value == 0
        ):
            key_uses.add(id(node.value))
    if not uses:
        return None
    return all(id(use) in key_uses for use in uses)


def _predicate_ast(fn):
    """The predicate's Lambda/FunctionDef AST node, or None."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return None
    for node in ast.walk(tree):
        if isinstance(node, ast.Lambda):
            return node
        if isinstance(node, ast.FunctionDef):
            return node
    return None

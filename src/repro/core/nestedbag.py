"""NestedBag: the lifted representation of a nested collection (Sec. 4.5).

A nested bag ``Bag[(O, Bag[I])]`` outside a UDF -- typically the output of
a ``groupBy`` -- is represented flat as a pair of an
``InnerScalar[T, O]`` (the per-group scalar components, e.g. the group
keys) and an ``InnerBag[T, I]`` (all inner elements, tagged by group).

``group_by_key_into_nested_bag`` is the paper's
``groupByKeyIntoNestedBag``: crucially, it does *not* shuffle the data into
materialized groups -- the tagged flat representation of the inner bag is
the input bag itself, so downstream lifted operations run directly on flat
data.  That is the entire point of flattening.
"""

from ..errors import FlatteningError
from .optimizer import Optimizer
from .primitives import InnerBag, InnerScalar, LiftingContext


class NestedBag:
    """A flat-represented ``Bag[(O, Bag[I])]``.

    Attributes:
        keys: InnerScalar of the outer scalar components (one per group).
        inner: InnerBag of all inner elements, tagged by group.
    """

    __slots__ = ("keys", "inner")

    def __init__(self, keys, inner):
        if keys.lctx is not inner.lctx:
            raise FlatteningError(
                "NestedBag components must share one lifting context"
            )
        self.keys = keys
        self.inner = inner

    @property
    def lctx(self):
        return self.keys.lctx

    @property
    def num_groups(self):
        return self.lctx.num_tags

    # ------------------------------------------------------------------
    # mapWithLiftedUDF (paper Sec. 4.2)
    # ------------------------------------------------------------------

    def map_groups(self, udf):
        """Apply a lifted UDF to every ``(key, inner_bag)`` group.

        Unlike a normal ``map``, the UDF is called exactly *once*, on the
        InnerScalar of keys and the InnerBag of elements; its body's
        operations process all groups simultaneously on flat data.

        The UDF may return an InnerScalar, an InnerBag, a NestedBag, or a
        tuple of those.
        """
        result = udf(self.keys, self.inner)
        return result

    def map_inner(self, udf):
        """``map_groups`` for UDFs that only need the inner bag."""
        return self.map_groups(lambda _keys, inner: udf(inner))

    # ------------------------------------------------------------------
    # UDF-less operations (Sec. 7, case 3)
    # ------------------------------------------------------------------

    def count(self):
        """Number of groups (a driver-side int; runs no job)."""
        return self.num_groups

    def filter_groups(self, key_predicate):
        """Keep only the groups whose key satisfies the predicate."""
        kept_keys = self.keys.repr.filter(
            lambda tv: key_predicate(tv[1])
        ).cache()
        tags = kept_keys.keys().cache()
        num = tags.count(label="filter_groups tag count")
        lctx = self.lctx.derive(tags, num)
        optimizer = lctx.optimizer
        keys = InnerScalar(lctx, kept_keys)
        inner_bag = optimizer.join_with_scalar(
            self.inner.repr, InnerScalar(lctx, tags.map(lambda t: (t, t)))
        ).map(lambda record: (record[0], record[1][0]))
        return NestedBag(keys, InnerBag(lctx, inner_bag))

    def flatten(self):
        """Back to a flat ``Bag[(key, element)]``.

        With key-based tags this simply *is* the inner representation.
        """
        return self.inner.repr

    # ------------------------------------------------------------------
    # Driver-side materialization (testing / small results only)
    # ------------------------------------------------------------------

    def __repr__(self):
        return "NestedBag(num_groups=%d, level=%d)" % (
            self.num_groups, self.lctx.level,
        )

    def collect_nested(self):
        """Driver-side ``{key: [elements]}`` (runs jobs)."""
        key_of = self.keys.as_dict()
        nested = {key: [] for key in key_of.values()}
        for tag, element in self.inner.collect():
            nested[key_of[tag]].append(element)
        return nested


def group_by_key_into_nested_bag(bag, lowering=None):
    """The paper's ``groupByKeyIntoNestedBag`` (Listing 2, line 3).

    Args:
        bag: A keyed ``Bag[(K, V)]``.
        lowering: Optional
            :class:`~repro.core.optimizer.LoweringConfig` controlling the
            runtime optimizer's strategies.

    Returns:
        A :class:`NestedBag` whose tags are the group keys.  The inner
        bag's flat representation is ``bag`` itself -- no shuffle happens
        here.
    """
    # The key projection discards the record payload, so the distinct
    # runs over key-sized (meta-scale) records.
    tags = bag.keys().as_meta().distinct().cache()
    num_tags = tags.count(label="nested-bag tag count")
    optimizer = Optimizer(bag.context, lowering)
    lctx = LiftingContext(bag.context, tags, num_tags, optimizer)
    keys = InnerScalar(lctx, tags.map(lambda key: (key, key)))
    inner = InnerBag(lctx, bag)
    return NestedBag(keys, inner)


def nested_group_by_key(inner_bag):
    """Group a *lifted* keyed bag into a deeper NestedBag (paper Sec. 7).

    Given an ``InnerBag`` of ``(key, value)`` elements at level *n*,
    produces a NestedBag at level *n+1* whose composite tags are
    ``(outer_tag, key)`` pairs -- the "more complex NestedBag" the
    multi-level completeness proof constructs, with one tag component
    per outer level.  Like the top-level
    :func:`group_by_key_into_nested_bag`, no shuffle into materialized
    groups happens.

    Returns a :class:`NestedBag` whose ``keys`` InnerScalar carries the
    grouping keys and whose ``inner`` InnerBag carries the values, both
    under composite tags.
    """
    lctx = inner_bag.lctx
    pairs = inner_bag.repr.map(
        lambda record: ((record[0], record[1][0]), record[1][1])
    )
    tags = pairs.keys().as_meta().distinct().cache()
    num_tags = tags.count(label="nested-group tag count")
    sub = lctx.sub_context(
        tags, num_tags, tag_to_parent=lambda t2: t2[0]
    )
    keys = InnerScalar(sub, tags.map(lambda t2: (t2, t2[1])))
    inner = InnerBag(sub, pairs)
    return NestedBag(keys, inner)


def nested_map(bag, udf, lowering=None):
    """Lifted map over a flat bag whose UDF uses parallel operations.

    This is ``mapWithLiftedUDF`` on a non-nested bag (paper Sec. 4.3 "if
    mapWithLiftedUDF runs on a non-nested Bag, we create the tags using
    the standard zipWithUniqueId operation").  The canonical use is
    hyperparameter optimization: ``bag`` holds parameter settings, and the
    UDF trains a model with parallel operations and control flow.

    Args:
        bag: The flat bag of elements (e.g. hyperparameter settings).
        udf: ``udf(element_scalar) -> InnerScalar | InnerBag | tuple``
            where ``element_scalar`` is the InnerScalar holding each
            element under its unique tag.
        lowering: Optional lowering configuration.

    Returns:
        Whatever the UDF returns (lifted values over the new context).
    """
    tagged = bag.zip_with_unique_id().swap().cache()
    num_tags = tagged.count(label="nested-map tag count")
    tags = tagged.keys().cache()
    optimizer = Optimizer(bag.context, lowering)
    lctx = LiftingContext(bag.context, tags, num_tags, optimizer)
    element = InnerScalar(lctx, tagged)
    return udf(element)

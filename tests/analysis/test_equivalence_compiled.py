"""The compiled-vs-interpreted mode of the differential verifier."""

import pytest

from repro.analysis.equivalence import (
    EquivalenceError,
    main,
    verify_library_compiled,
    verify_program_compiled,
)


def _scale(x):
    return x * 3 + 1


def _keep(x):
    return x % 7 != 0


def _split(x):
    return [x, x + 1]


def _key(x):
    return (x % 5, x)


def _add(a, b):
    return a + b


def chain_program(ctx):
    return sorted(
        ctx.bag_of(range(120), num_partitions=4)
        .map(_scale)
        .filter(_keep)
        .flat_map(_split)
        .map(_key)
        .reduce_by_key(_add)
        .collect()
    )


def test_verify_program_compiled_passes():
    verification = verify_program_compiled(
        chain_program, name="chain"
    )
    assert verification.name == "chain"
    assert verification.elisions >= 1  # at least one chain compiled
    assert verification.seconds_interpreted > 0
    assert verification.seconds_compiled > 0
    # The signature check pins identical shuffle volume.
    assert (
        verification.shuffle_records
        == verification.shuffle_records_optimized
    )


def test_unprovable_udfs_still_verify():
    # A chain the compiler refuses still passes: the compiled run just
    # falls back to the interpreter, and the comparison is off-vs-on of
    # the *flag*, not of compilation success.
    state = {"calls": 0}

    def impure(x):
        state["calls"] += 1
        return x + 1

    def program(ctx):
        return sorted(ctx.bag_of(range(20)).map(impure).collect())

    verification = verify_program_compiled(program, name="impure")
    assert verification.elisions == 0


def test_verify_library_compiled_subset():
    subset = verify_library_compiled(only=["bounce-rate-flat"])
    assert len(subset) == 1
    assert subset[0].name == "bounce-rate-flat"


def test_detects_result_divergence():
    def rigged(ctx):
        return [1] if ctx.config.compile_pipelines else [0]

    with pytest.raises(EquivalenceError, match="signature|result"):
        verify_program_compiled(rigged, name="rigged-result")


def test_cli_compare_compiled(capsys):
    code = main(
        ["--compare", "compiled", "--only", "matrix-row-norms"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "interpreted == compiled" in out
    assert "compile-verified" in out

"""Fixtures for language-frontend tests."""

import pytest

from repro.core.nestedbag import group_by_key_into_nested_bag


@pytest.fixture
def nested(ctx):
    bag = ctx.bag_of(
        [
            ("fruit", 1), ("fruit", 2), ("fruit", 3),
            ("animal", 10), ("animal", 20),
        ]
    )
    return group_by_key_into_nested_bag(bag)


@pytest.fixture
def lctx(nested):
    return nested.lctx

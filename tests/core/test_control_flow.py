"""Lifted while loops and if statements (paper Sec. 6, Listing 4)."""

import pytest

from repro.core.control_flow import cond, while_loop
from repro.core.nestedbag import nested_map
from repro.core.primitives import InnerBag, InnerScalar
from repro.errors import FlatteningError


class TestPlainWhile:
    def test_runs_like_python(self):
        state = while_loop(
            {"x": 0},
            cond_fn=lambda s: s["x"] < 5,
            body_fn=lambda s: {"x": s["x"] + 2},
        )
        assert state["x"] == 6

    def test_zero_iterations(self):
        state = while_loop(
            {"x": 10},
            cond_fn=lambda s: s["x"] < 5,
            body_fn=lambda s: {"x": s["x"] + 1},
        )
        assert state["x"] == 10

    def test_iteration_bound_enforced(self):
        with pytest.raises(FlatteningError):
            while_loop(
                {"x": 0},
                cond_fn=lambda _s: True,
                body_fn=lambda s: s,
                max_iterations=3,
            )


class TestLiftedWhile:
    def test_different_tags_exit_at_different_iterations(self, ctx):
        def udf(x):
            state = while_loop(
                {"x": x, "steps": x.map(lambda _v: 0)},
                cond_fn=lambda s: s["x"] < 10,
                body_fn=lambda s: {
                    "x": s["x"] + 3, "steps": s["steps"] + 1,
                },
            )
            return state["x"], state["steps"]

        x, steps = nested_map(ctx.bag_of([0, 4, 9, 20]), udf)
        assert sorted(x.collect_values()) == [10, 12, 12, 20]
        assert sorted(steps.collect_values()) == [0, 1, 2, 4]

    def test_matches_per_tag_sequential_loops(self, ctx):
        seeds = [1, 7, 13, 2, 2]

        def sequential(value):
            while value % 5 != 0:
                value += 3
            return value

        result = nested_map(
            ctx.bag_of(seeds),
            lambda x: while_loop(
                {"x": x},
                cond_fn=lambda s: s["x"].map(lambda v: v % 5 != 0),
                body_fn=lambda s: {"x": s["x"] + 3},
            )["x"],
        )
        assert sorted(result.collect_values()) == sorted(
            sequential(v) for v in seeds
        )

    def test_inner_bag_loop_variable(self, nested):
        """InnerBags passed through the loop are filtered per tag (P1)
        and their finished parts are saved (P2)."""
        state = while_loop(
            {
                "bag": nested.inner,
                "n": nested.inner.count(),
            },
            cond_fn=lambda s: s["n"] > 2,
            body_fn=lambda s: {
                "bag": s["bag"].filter(lambda x: x > 1),
                "n": s["bag"].filter(lambda x: x > 1).count(),
            },
        )
        # fruit shrinks 3 -> 2 and exits; animal (2) exits immediately.
        assert sorted(state["bag"].collect_nested()["fruit"]) == [2, 3]
        assert sorted(state["bag"].collect_nested()["animal"]) == [
            10, 20,
        ]

    def test_plain_loop_vars_lifted_on_request(self, ctx):
        def udf(x):
            state = while_loop(
                {"x": x, "count": 0},
                cond_fn=lambda s: s["x"] < 3,
                body_fn=lambda s: {
                    "x": s["x"] + 1, "count": s["count"] + 1,
                },
                loop_vars=["x", "count"],
            )
            return state["count"]

        counts = nested_map(ctx.bag_of([0, 2, 5]), udf)
        assert sorted(counts.collect_values()) == [0, 1, 3]

    def test_requires_a_lifted_variable(self, lctx):
        cond_scalar = lctx.constant(True)
        with pytest.raises(FlatteningError):
            while_loop(
                {"x": 1},
                cond_fn=lambda _s: cond_scalar,
                body_fn=lambda s: s,
            )

    def test_foreign_context_variable_rejected(self, ctx, lctx):
        from repro.core.nestedbag import group_by_key_into_nested_bag

        other = group_by_key_into_nested_bag(ctx.bag_of([("z", 1)]))
        with pytest.raises(FlatteningError):
            while_loop(
                {"a": lctx.constant(0), "b": other.lctx.constant(0)},
                cond_fn=lambda s: s["a"] < 1,
                body_fn=lambda s: {
                    "a": s["a"] + 1, "b": s["b"],
                },
            )

    def test_constant_job_count_per_iteration(self, ctx):
        """P3's emptiness check plus one checkpoint: the job count per
        iteration must not depend on the number of tags."""
        job_counts = []
        for num_tags in (2, 8):
            ctx.reset_trace()
            nested_map(
                ctx.bag_of(list(range(num_tags))),
                lambda x: while_loop(
                    {"x": x},
                    cond_fn=lambda s: s["x"] < 100,
                    body_fn=lambda s: {"x": s["x"] + 30},
                )["x"],
            ).collect()
            job_counts.append(ctx.trace.num_jobs)
        assert job_counts[0] == job_counts[1]


class TestPlainCond:
    def test_true_branch(self):
        out = cond(
            True,
            lambda s: {"y": s["x"] + 1},
            lambda s: {"y": s["x"] - 1},
            {"x": 10},
        )
        assert out["y"] == 11

    def test_false_branch(self):
        out = cond(
            False,
            lambda s: {"y": s["x"] + 1},
            lambda s: {"y": s["x"] - 1},
            {"x": 10},
        )
        assert out["y"] == 9

    def test_missing_else_passes_state_through(self):
        out = cond(False, lambda s: {"x": 0}, None, {"x": 5})
        assert out["x"] == 5


class TestLiftedCond:
    def test_both_branches_partition_the_tags(self, ctx):
        def udf(x):
            out = cond(
                x % 2 == 0,
                lambda s: {"y": s["x"] * 10},
                lambda s: {"y": -s["x"]},
                {"x": x},
            )
            return out["y"]

        y = nested_map(ctx.bag_of([1, 2, 3, 4]), udf)
        assert sorted(y.collect_values()) == [-3, -1, 20, 40]

    def test_diverging_plain_constants_become_lifted(self, ctx):
        def udf(x):
            out = cond(
                x > 2,
                lambda _s: {"label": "big"},
                lambda _s: {"label": "small"},
                {"x": x},
            )
            return out["label"]

        labels = nested_map(ctx.bag_of([1, 5]), udf)
        assert sorted(labels.collect_values()) == ["big", "small"]

    def test_equal_plain_results_stay_plain(self, ctx):
        def udf(x):
            out = cond(
                x > 2,
                lambda _s: {"k": 7},
                lambda _s: {"k": 7},
                {"x": x},
            )
            return x.map(lambda _v, k=out["k"]: k)

        values = nested_map(ctx.bag_of([1, 5]), udf)
        assert values.collect_values() == [7, 7]

    def test_branch_key_mismatch_rejected(self, lctx):
        with pytest.raises(FlatteningError):
            cond(
                lctx.constant(True),
                lambda _s: {"a": 1},
                lambda _s: {"b": 2},
                {},
            )

    def test_missing_else_keeps_false_tags_unchanged(self, ctx):
        def udf(x):
            out = cond(
                x > 2,
                lambda s: {"x": s["x"] * 100},
                None,
                {"x": x},
            )
            return out["x"]

        values = nested_map(ctx.bag_of([1, 5]), udf)
        assert sorted(values.collect_values()) == [1, 500]

    def test_inner_bag_state_splits_and_merges(self, nested):
        big = nested.inner.count() > 2
        out = cond(
            big,
            lambda s: {"bag": s["bag"].map(lambda x: x + 1)},
            lambda s: {"bag": s["bag"]},
            {"bag": nested.inner},
        )
        groups = out["bag"].collect_nested()
        assert sorted(groups["fruit"]) == [2, 3, 4]
        assert sorted(groups["animal"]) == [10, 20]

    def test_nested_cond_inside_cond(self, ctx):
        def udf(x):
            def then_branch(s):
                inner = cond(
                    s["x"] > 10,
                    lambda t: {"y": t["x"] * 2},
                    lambda t: {"y": t["x"] * 3},
                    {"x": s["x"]},
                )
                return {"y": inner["y"]}

            out = cond(
                x % 2 == 0,
                then_branch,
                lambda s: {"y": s["x"]},
                {"x": x},
            )
            return out["y"]

        y = nested_map(ctx.bag_of([3, 4, 20]), udf)
        assert sorted(y.collect_values()) == [3, 12, 40]

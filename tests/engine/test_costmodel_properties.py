"""Property-based sanity of the cost model.

The absolute constants are calibration; these properties are what the
benchmark conclusions actually rest on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ClusterConfig, CostModel, EngineContext
from repro.engine.costmodel import _makespan
from repro.engine.metrics import ExecutionTrace


def run_trace(config, records, num_groups):
    ctx = EngineContext(config)
    bag = ctx.bag_of([(i % num_groups, i) for i in range(records)])
    bag.reduce_by_key(lambda a, b: a + b).collect()
    return ctx.trace, ctx.cost_model


machines = st.integers(min_value=1, max_value=40)
records = st.integers(min_value=1, max_value=400)


@settings(max_examples=25, deadline=None)
@given(machines_a=machines, machines_b=machines, n=records)
def test_more_machines_never_slower(machines_a, machines_b, n):
    low, high = sorted((machines_a, machines_b))
    config = ClusterConfig(machines=low, cores_per_machine=4)
    trace, _model = run_trace(config, n, num_groups=max(1, n // 4))
    slow = CostModel(config).simulated_seconds(trace)
    fast = CostModel(
        config.with_machines(high)
    ).simulated_seconds(trace)
    assert fast <= slow + 1e-9


@settings(max_examples=25, deadline=None)
@given(n_small=records, n_big=records)
def test_more_records_cost_at_least_as_much(n_small, n_big):
    small, big = sorted((n_small, n_big))
    config = ClusterConfig(machines=2, cores_per_machine=4)
    trace_small, model = run_trace(config, small, num_groups=4)
    trace_big, _ = run_trace(config, big, num_groups=4)
    assert model.simulated_seconds(
        trace_big
    ) >= model.simulated_seconds(trace_small) - 1e-9


@settings(max_examples=25, deadline=None)
@given(n=records)
def test_cost_is_positive_and_finite(n):
    config = ClusterConfig(machines=2, cores_per_machine=4)
    trace, model = run_trace(config, n, num_groups=3)
    seconds = model.simulated_seconds(trace)
    assert seconds > 0
    assert seconds == seconds and seconds != float("inf")


@settings(max_examples=30, deadline=None)
@given(
    tasks=st.lists(
        st.integers(min_value=0, max_value=100), max_size=20
    ),
    slots=st.integers(min_value=1, max_value=16),
)
def test_makespan_bounds(tasks, slots):
    span = _makespan(tasks, slots)
    total = sum(tasks)
    biggest = max(tasks, default=0)
    # Lower bounds: the biggest task, and perfect parallelism.
    assert span >= biggest
    assert span * slots >= total or len(
        [t for t in tasks if t]
    ) <= slots
    # Upper bound: fully serial.
    assert span <= total


@settings(max_examples=30, deadline=None)
@given(
    tasks=st.lists(
        st.integers(min_value=0, max_value=100), max_size=20
    ),
    slots_a=st.integers(min_value=1, max_value=16),
    slots_b=st.integers(min_value=1, max_value=16),
)
def test_makespan_monotone_in_slots(tasks, slots_a, slots_b):
    low, high = sorted((slots_a, slots_b))
    assert _makespan(tasks, high) <= _makespan(tasks, low)


def test_empty_trace_is_free():
    model = CostModel(ClusterConfig())
    assert model.simulated_seconds(ExecutionTrace()) == 0.0


@settings(max_examples=15, deadline=None)
@given(n=records)
def test_cost_additive_over_jobs(n):
    config = ClusterConfig(machines=2, cores_per_machine=4)
    ctx = EngineContext(config)
    bag = ctx.bag_of(list(range(n)))
    bag.count()
    one = ctx.simulated_seconds()
    bag.count()
    two = ctx.simulated_seconds()
    assert abs(two - 2 * one) < 1e-9


# ----------------------------------------------------------------------
# Stage-accounting properties of the iterative executor.
#
# The fused pipelines and the single-stage cogroup must not shift any
# non-cogroup cost: for narrow chains and reduce_by_key plans the trace
# is compared against an independently computed reference.  Cogroup
# plans must cost *strictly less* than the seed's double-charged layout
# (which left the right side's folded shuffle stage in the job).
# ----------------------------------------------------------------------

import copy

from repro.engine.partitioner import build_balanced_assignment

chain_specs = st.lists(
    st.tuples(st.sampled_from(["map", "filter"]),
              st.integers(min_value=0, max_value=6)),
    max_size=5,
)


def _apply_spec(kind, param, value):
    if kind == "map":
        return value + param
    return (value + param) % 3 != 0


def _reference_trace(config, data, specs, reduce_partitions):
    """Expected trace of parallelize -> narrow chain -> reduce_by_key ->
    collect, computed without the executor."""
    from repro.engine.metrics import ExecutionTrace

    num_partitions = min(config.default_parallelism, max(1, len(data)))
    parts = [[] for _ in range(num_partitions)]
    for index, record in enumerate(data):
        parts[index % num_partitions].append(record)
    trace = ExecutionTrace()
    job = trace.new_job("collect")
    stage = job.new_stage("input", origin="Parallelize")
    tasks = [len(part) for part in parts]
    for kind, param in specs:
        out = []
        for index, part in enumerate(parts):
            tasks[index] += len(part)
            if kind == "map":
                out.append(
                    [(k, _apply_spec(kind, param, v)) for k, v in part]
                )
            else:
                out.append(
                    [
                        (k, v) for k, v in part
                        if _apply_spec(kind, param, v)
                    ]
                )
        parts = out
    # Map-side combine: one record per (partition, key).
    combined = [sorted({k for k, _v in part}) for part in parts]
    for index, keys in enumerate(combined):
        tasks[index] += len(keys)
    stage.task_records.extend(tasks)
    moved = sum(len(keys) for keys in combined)
    counts = {}
    for keys in combined:
        for key in keys:
            counts[key] = counts.get(key, 0) + 1
    assignment = build_balanced_assignment(counts, reduce_partitions)
    reduce_stage = job.new_stage("shuffle", origin="ReduceByKey")
    buckets = [0] * reduce_partitions
    for keys in combined:
        for key in keys:
            buckets[assignment[key]] += 1
    reduce_stage.task_records.extend(buckets)
    reduce_stage.shuffle_read_records = moved
    reduce_stage.shuffle_write_records = moved
    job.collected_records += len(counts)
    return trace


@settings(max_examples=25, deadline=None)
@given(
    n=records,
    tags=st.integers(min_value=1, max_value=20),
    specs=chain_specs,
)
def test_non_cogroup_cost_matches_reference_trace(n, tags, specs):
    config = ClusterConfig(machines=2, cores_per_machine=4)
    data = [("k%d" % (i % tags), i) for i in range(n)]
    ctx = EngineContext(config)
    bag = ctx.bag_of(data)
    for kind, param in specs:
        if kind == "map":
            bag = bag.map(
                lambda kv, p=param: (kv[0], _apply_spec("map", p, kv[1]))
            )
        else:
            bag = bag.filter(
                lambda kv, p=param: _apply_spec("filter", p, kv[1])
            )
    reduce_partitions = config.default_parallelism
    bag.reduce_by_key(lambda a, b: a + b, reduce_partitions).collect()
    got = ctx.simulated_seconds()
    reference = _reference_trace(config, data, specs, reduce_partitions)
    expected = CostModel(config).simulated_seconds(reference)
    assert got == pytest.approx(expected, rel=1e-9, abs=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    left_n=records,
    right_n=records,
    tags=st.integers(min_value=1, max_value=15),
)
def test_cogroup_join_cost_strictly_below_double_charged(
    left_n, right_n, tags
):
    config = ClusterConfig(machines=2, cores_per_machine=4)
    ctx = EngineContext(config)
    left = ctx.bag_of([("k%d" % (i % tags), i) for i in range(left_n)])
    right = ctx.bag_of(
        [("k%d" % (i % tags), -i) for i in range(right_n)]
    )
    left.join(right, strategy="repartition").collect()
    model = CostModel(config)
    fixed = model.simulated_seconds(ctx.trace)
    # Reconstruct the seed's layout: the right side's shuffle stage kept
    # its task records and reads after being folded into the output
    # stage, double-charging every cogroup-based join.
    double_charged = copy.deepcopy(ctx.trace)
    job = double_charged.jobs[-1]
    duplicate = job.new_stage("shuffle", origin="CoGroup")
    duplicate.task_records.append(right_n)
    duplicate.shuffle_read_records = right_n
    duplicate.shuffle_write_records = right_n
    assert fixed < model.simulated_seconds(double_charged)

"""Decoration-time rejection: UnsupportedConstructError with location."""

import pickle
from pathlib import Path

import pytest

from repro.errors import ParsingError, UnsupportedConstructError
from repro.lang import nested_udf

HERE = Path(__file__)


def _marker_line(marker):
    """1-based line of the unique marker comment in this file."""
    lines = HERE.read_text().splitlines()
    hits = [
        index
        for index, text in enumerate(lines, start=1)
        if text.rstrip().endswith("# " + marker)
    ]
    assert len(hits) == 1, "marker %r must appear exactly once" % marker
    return hits[0]


def test_try_except_raises_with_code_and_location():
    with pytest.raises(UnsupportedConstructError) as err:

        @nested_udf
        def bad(x):
            try:  # loc-try
                return x
            except ValueError:
                return 0

    exc = err.value
    assert exc.code == "NPL101"
    assert exc.line == _marker_line("loc-try")
    assert exc.col >= 1
    assert str(HERE) in str(exc)


def test_break_raises_npl107_at_the_break():
    with pytest.raises(UnsupportedConstructError) as err:

        @nested_udf
        def bad(x):
            while x > 0:
                x = x - 1
                break  # loc-break

    assert err.value.code == "NPL107"
    assert err.value.line == _marker_line("loc-break")


def test_for_over_iterable_raises_npl110():
    with pytest.raises(UnsupportedConstructError) as err:

        @nested_udf
        def bad(xs):
            total = 0
            for x in xs:  # loc-for
                total = total + x
            return total

    assert err.value.code == "NPL110"
    assert err.value.line == _marker_line("loc-for")


def test_is_a_parsing_error_subclass():
    # Callers catching the historical ParsingError keep working.
    assert issubclass(UnsupportedConstructError, ParsingError)
    with pytest.raises(ParsingError):

        @nested_udf
        def bad(x):
            yield x


def test_error_survives_pickling():
    exc = UnsupportedConstructError(
        "no yield", code="NPL102", line=12, col=5
    )
    clone = pickle.loads(pickle.dumps(exc))
    assert clone.code == "NPL102"
    assert clone.line == 12
    assert clone.col == 5
    assert str(clone) == str(exc)


def test_warning_constructs_still_decorate():
    # NPL12x findings are advisory: decoration must succeed.
    seen = []

    @nested_udf
    def counts(x):
        seen.append(x)
        total = 0
        while total < x:
            total = total + 1
        return total

    assert counts(3) == 3
    assert seen == [3]

"""Closure serialization for shipping tasks to worker processes.

The engine's UDFs are overwhelmingly lambdas and nested closures (the
flattening machinery in :mod:`repro.core` builds them by the dozen), and
the standard library pickler refuses all of them: it serializes
functions by qualified name only.  This module provides ``dumps`` /
``loads`` that handle them:

* When **cloudpickle** is installed it is used outright -- it serializes
  arbitrary closures, cells, and dynamically created classes.
* Otherwise a built-in fallback pickler kicks in: functions that the
  default by-name protocol cannot handle are reduced to their marshaled
  code object plus defaults and closure-cell values (serialized
  recursively, so a lambda closing over another lambda round-trips).
  On the worker, the function is rebuilt against the globals of its
  defining module, which the worker imports by name.

The fallback intentionally does **not** capture module globals by
value: engine workers import the same code the driver runs, so global
names resolve to the same objects.  Objects that neither path can
serialize (locks, sockets, generators) surface as
:class:`~repro.errors.SerializationError` naming the operator through
:func:`ensure_serializable`.
"""

import functools
import importlib
import io
import marshal
import pickle
import sys
import types

from ...errors import SerializationError

try:  # pragma: no cover - exercised via the CI job that installs it
    import cloudpickle
except ImportError:  # pragma: no cover
    cloudpickle = None


def dumps(obj, force_fallback=False):
    """Serialize ``obj`` (closures included) to bytes.

    Args:
        obj: Any task payload -- typically ``(callable, args)`` tuples.
        force_fallback: Skip cloudpickle even when installed (used by
            tests to exercise the built-in function pickler).
    """
    if cloudpickle is not None and not force_fallback:
        return cloudpickle.dumps(obj)
    buffer = io.BytesIO()
    _FunctionPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buffer.getvalue()


def loads(payload):
    """Inverse of :func:`dumps` (both pickler outputs load with this)."""
    return pickle.loads(payload)


def ensure_serializable(obj, operator, what="closure"):
    """Serialize ``obj`` or raise a diagnostic naming the operator.

    Returns the serialized bytes on success, so pre-flight checks do
    not pay for serialization twice.  On failure the error message
    includes the per-capture findings of :func:`check_serializable`, so
    the launch-time error and the static NPL2xx analysis pass describe
    the same root cause in the same words.
    """
    try:
        return dumps(obj)
    except Exception as exc:
        probe = getattr(obj, "task", obj)
        details = check_serializable(probe)
        detail_text = ("; ".join(details)) if details else ""
        raise SerializationError(
            "%s for operator %r cannot be serialized for the process "
            "backend: %s: %s (use picklable UDFs, or "
            "backend='serial')%s"
            % (
                what,
                operator,
                type(exc).__name__,
                exc,
                (" [%s]" % detail_text) if detail_text else "",
            )
        ) from exc


def check_serializable(fn):
    """Probe whether ``fn`` (typically a closure) can be shipped.

    Returns a list of human-readable problem descriptions -- empty when
    the object serializes cleanly.  When the top-level dump fails, the
    probe drills into the function's closure cells and defaults to name
    exactly which captured values cannot cross a process boundary.
    ``functools.partial`` objects and bound methods are unwrapped first:
    their frozen arguments and bound instances ship with the task just
    like closure cells do, so the report names the offending *value*
    (``partial keyword 'conn'``), not the opaque wrapper.

    This is the single source of truth for "can this closure be
    serialized": the scheduler's pre-flight error path
    (:func:`ensure_serializable`) and the static analysis NPL2xx pass
    (:mod:`repro.analysis.closure_lint`) both call it, so the two can
    never disagree.
    """
    try:
        dumps(fn)
        return []
    except Exception as exc:
        top_level = "%s: %s" % (type(exc).__name__, exc)
    problems = _callable_problems(fn)
    if not problems:
        problems.append(top_level)
    return problems


def _callable_problems(fn, depth=0):
    """Per-capture problem descriptions for one callable.

    Recursively unwraps ``functools.partial`` and bound methods before
    probing, so wrapped UDFs report the same root cause a plain closure
    would.  ``depth`` bounds pathological wrapper towers.
    """
    if depth > 16:  # pragma: no cover - absurd wrapper nesting
        return []
    if isinstance(fn, functools.partial):
        problems = []
        for index, value in enumerate(fn.args):
            problem = _probe_value(value)
            if problem is not None:
                problems.append(
                    "partial argument %d (%s) is not serializable: %s"
                    % (index, type(value).__name__, problem)
                )
        for name in sorted(fn.keywords or {}):
            value = fn.keywords[name]
            problem = _probe_value(value)
            if problem is not None:
                problems.append(
                    "partial keyword %r (%s) is not serializable: %s"
                    % (name, type(value).__name__, problem)
                )
        problems.extend(_callable_problems(fn.func, depth + 1))
        return problems
    bound_self = getattr(fn, "__self__", None)
    bound_func = getattr(fn, "__func__", None)
    if bound_self is not None and bound_func is not None:
        problems = []
        problem = _probe_value(bound_self)
        if problem is not None:
            problems.append(
                "bound instance (%s) is not serializable: %s"
                % (type(bound_self).__name__, problem)
            )
        problems.extend(_callable_problems(bound_func, depth + 1))
        return problems
    problems = []
    code = getattr(fn, "__code__", None)
    closure = getattr(fn, "__closure__", None)
    if code is not None and closure:
        for name, cell in zip(code.co_freevars, closure):
            try:
                value = cell.cell_contents
            except ValueError:  # pragma: no cover - empty cell
                continue
            problem = _probe_value(value)
            if problem is not None:
                problems.append(
                    "captured variable %r (%s) is not serializable: %s"
                    % (name, type(value).__name__, problem)
                )
    for index, default in enumerate(
        getattr(fn, "__defaults__", None) or ()
    ):
        problem = _probe_value(default)
        if problem is not None:
            problems.append(
                "default argument %d (%s) is not serializable: %s"
                % (index, type(default).__name__, problem)
            )
    return problems


def _probe_value(value):
    """Error description if ``value`` fails to serialize, else None."""
    try:
        dumps(value)
        return None
    except Exception as exc:
        return "%s: %s" % (type(exc).__name__, exc)


# ----------------------------------------------------------------------
# Fallback function pickling (no cloudpickle)
# ----------------------------------------------------------------------


class _FunctionPickler(pickle.Pickler):
    """Standard pickler plus by-value serialization of plain functions.

    Functions that pickle's by-name protocol can already handle
    (importable top-level defs) go through the default path; everything
    else -- lambdas, nested defs, functions whose module attribute does
    not resolve back to them -- is reduced by value.
    """

    def reducer_override(self, obj):
        if isinstance(obj, types.FunctionType):
            if not _importable_by_name(obj):
                return _reduce_function(obj)
        return NotImplemented


def _importable_by_name(fn):
    module = sys.modules.get(getattr(fn, "__module__", None))
    if module is None:
        return False
    found = module
    for part in fn.__qualname__.split("."):
        if part == "<locals>":
            return False
        found = getattr(found, part, None)
        if found is None:
            return False
    return found is fn


def _reduce_function(fn):
    closure_values = None
    if fn.__closure__:
        closure_values = tuple(cell.cell_contents for cell in fn.__closure__)
    state = (
        marshal.dumps(fn.__code__),
        fn.__module__,
        fn.__name__,
        fn.__qualname__,
        fn.__defaults__,
        fn.__kwdefaults__,
        closure_values,
    )
    return (_rebuild_function, state)


def _rebuild_function(code_bytes, module_name, name, qualname, defaults,
                      kwdefaults, closure_values):
    code = marshal.loads(code_bytes)
    module_globals = _module_globals(module_name)
    closure = None
    if closure_values is not None:
        closure = tuple(
            types.CellType(value) for value in closure_values
        )
    fn = types.FunctionType(code, module_globals, name, defaults, closure)
    fn.__qualname__ = qualname
    fn.__kwdefaults__ = kwdefaults
    fn.__module__ = module_name
    return fn


def _module_globals(module_name):
    """Globals to rebuild a shipped function against.

    Workers run the same code base, so importing the defining module
    gives the same global bindings the driver had.  A module that does
    not exist on the worker (interactive sessions) degrades to a
    builtins-only namespace: the function still works unless it touches
    module globals.
    """
    module = sys.modules.get(module_name)
    if module is None and module_name not in (None, "__main__"):
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            module = None
    if module is not None:
        return module.__dict__
    return {"__builtins__": __builtins__}

"""The tracer: thread-safe event emission over a pluggable sink.

Engine components hold a tracer and guard every hook with
``tracer.enabled`` -- the disabled singleton :data:`NULL_TRACER` makes
tracing-off cost one attribute read per *stage*, nothing per task and
nothing per record.

Driver-side spans are recorded with :meth:`Tracer.span` (a context
manager yielding the span's mutable ``args`` dict); worker-side facts
arrive as (offset, duration) pairs relative to a task's start and are
re-anchored onto the driver timeline with :meth:`Tracer.emit_anchored`.

Timestamps are epoch seconds (see :mod:`repro.observe.events`), so the
events of consecutive contexts -- a whole benchmark sweep appending to
one JSON-lines file -- compose into a single coherent timeline.
"""

import contextlib
import os
import threading
import time

from .events import DRIVER_LANE, TraceEvent
from .sinks import JsonlSink, MemorySink, NullSink

#: Per-stage cap on successful-task spans (see :class:`Tracer`).
DEFAULT_MAX_TASK_SPANS = 64


def _default_max_task_spans():
    raw = os.environ.get("REPRO_TRACE_MAX_TASKS", "").strip()
    if not raw:
        return DEFAULT_MAX_TASK_SPANS
    value = int(raw)
    return float("inf") if value <= 0 else value


class Tracer:
    """Emits :class:`~repro.observe.events.TraceEvent` to one sink.

    Thread-safe: emission is serialized with a lock (the engine driver
    is single-threaded today, but worker callbacks and user threads may
    not be).

    ``max_task_spans`` bounds how many *successful first-attempt* task
    spans the scheduler emits per stage (failed and retried attempts
    are always emitted, and stragglers are always flagged with a
    ``straggler`` instant): a paper-scale stage dispatches ~1000 tasks
    and an iterative sweep runs thousands of stages, so unbounded task
    spans produce traces no viewer can load.  Defaults to
    :data:`DEFAULT_MAX_TASK_SPANS`, overridable with the
    ``REPRO_TRACE_MAX_TASKS`` environment variable (``0`` or negative
    means unlimited).
    """

    enabled = True

    def __init__(self, sink=None, max_task_spans=None):
        self.sink = sink if sink is not None else MemorySink()
        self.max_task_spans = (
            _default_max_task_spans()
            if max_task_spans is None
            else (float("inf") if max_task_spans <= 0 else max_task_spans)
        )
        self._lock = threading.Lock()
        self.emitted = 0

    # -- clock ---------------------------------------------------------

    @staticmethod
    def now():
        """Current trace time: epoch seconds."""
        return time.time()

    # -- emission ------------------------------------------------------

    def emit(self, event):
        with self._lock:
            self.emitted += 1
            self.sink.emit(event)

    def instant(self, name, kind, lane=DRIVER_LANE, **args):
        """Record a zero-duration event at the current time."""
        self.emit(TraceEvent(name, kind, self.now(), None, lane, args))

    @contextlib.contextmanager
    def span(self, name, kind, lane=DRIVER_LANE, **args):
        """Record a span covering the ``with`` block.

        Yields the span's ``args`` dict so the block can attach results
        (record counts, statuses) before the event is emitted.  If the
        block raises, the span is still emitted with an ``error`` arg
        naming the exception type.
        """
        start = self.now()
        try:
            yield args
        except BaseException as exc:
            args.setdefault("error", type(exc).__name__)
            raise
        finally:
            self.emit(
                TraceEvent(name, kind, start, self.now() - start, lane,
                           args)
            )

    def emit_anchored(self, name, kind, anchor, offset, dur, lane,
                      **args):
        """Record a span reported by a worker, re-anchored to ``anchor``.

        Args:
            anchor: Driver-timeline epoch seconds of the task's start
                (the attempt's ``start_epoch``, clamped by the caller
                into its dispatch window if the clocks drifted).
            offset: Event start relative to the anchor, seconds (may be
                negative for work that preceded the task body, e.g.
                deserializing its closure).
            dur: Span duration in seconds, or ``None`` for an instant.
        """
        self.emit(TraceEvent(name, kind, anchor + offset, dur, lane,
                             args))

    def close(self):
        self.sink.close()

    # -- conveniences --------------------------------------------------

    def events(self):
        """The retained events, when the sink keeps them (memory sink)."""
        getter = getattr(self.sink, "events", None)
        return getter() if getter is not None else []


class _NullTracer:
    """The disabled tracer: every operation is a no-op.

    A distinct class (rather than a ``Tracer`` with a ``NullSink``) so
    the disabled check is a plain class-attribute read and misuse --
    emitting through a disabled tracer -- still works but costs nothing
    measurable.
    """

    enabled = False
    sink = NullSink()
    max_task_spans = 0

    def emit(self, event):
        pass

    def instant(self, name, kind, lane=DRIVER_LANE, **args):
        pass

    def span(self, name, kind, lane=DRIVER_LANE, **args):
        return contextlib.nullcontext(args)

    def emit_anchored(self, name, kind, anchor, offset, dur, lane,
                      **args):
        pass

    def events(self):
        return []

    def close(self):
        pass

    @staticmethod
    def now():
        return time.time()


#: The shared disabled tracer; safe to use as a default everywhere.
NULL_TRACER = _NullTracer()

#: ``REPRO_TRACE`` values that mean "off".
_OFF_VALUES = ("", "0", "off", "false", "no")
#: Values that mean "trace into a memory ring buffer".
_MEMORY_VALUES = ("1", "memory", "on", "true", "yes")


def resolve_tracer(spec=None):
    """Build (or pass through) a tracer from a user-facing spec.

    Accepted specs, in the order they are tried:

    * ``None`` -- consult the ``REPRO_TRACE`` environment variable and
      re-resolve its value (unset means off).
    * an existing :class:`Tracer` (or the null tracer) -- returned as is;
    * ``True`` / ``"1"`` / ``"memory"`` -- memory ring buffer;
    * ``False`` / ``"0"`` / ``"off"`` -- disabled;
    * ``"null"`` -- enabled tracer over a :class:`NullSink` (full code
      path, nothing retained: the overhead-measurement configuration);
    * any other string -- treated as a path; events append to it as
      JSON lines;
    * a sink object (anything with ``emit``) -- wrapped in a tracer.
    """
    if spec is None:
        env = os.environ.get("REPRO_TRACE", "")
        if env.strip().lower() in _OFF_VALUES:
            return NULL_TRACER
        return resolve_tracer(env)
    if isinstance(spec, (Tracer, _NullTracer)):
        return spec
    if spec is True:
        return Tracer(MemorySink())
    if spec is False:
        return NULL_TRACER
    if isinstance(spec, str):
        value = spec.strip()
        lowered = value.lower()
        if lowered in _OFF_VALUES:
            return NULL_TRACER
        if lowered in _MEMORY_VALUES:
            return Tracer(MemorySink())
        if lowered == "null":
            return Tracer(NullSink())
        return Tracer(JsonlSink(value))
    if hasattr(spec, "emit"):
        return Tracer(spec)
    raise TypeError(
        "cannot build a tracer from %r (expected None, bool, str, "
        "a sink, or a Tracer)" % (spec,)
    )

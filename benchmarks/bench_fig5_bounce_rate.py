"""Fig. 5: Bounce Rate (no control flow), weak scaling and scale-out.

Expected (paper Sec. 9.4): DIQL and outer-parallel OOM at every point at
the 48 GB input; Matryoshka is near-constant (it pays some memory
pressure when processing the whole input at once); inner-parallel is
marginally faster at few groups and up to ~5x slower at many.
"""

from repro.bench import figures

import os

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


def test_fig5_weak_scaling(figure_benchmark):
    sweep = figure_benchmark(
        figures.fig5_bounce_rate_weak_scaling, SCALE
    )
    for x in sweep.x_values():
        assert sweep.result_for(figures.OUTER, x).status == "oom"
        assert sweep.result_for(figures.DIQL, x).status == "oom"
    xs = sweep.x_values()
    assert sweep.speedup(figures.INNER, figures.MATRYOSHKA, xs[-1]) > 3


def test_fig5_scale_out(figure_benchmark):
    sweep = figure_benchmark(figures.fig4_scale_out, SCALE,
                             "bounce_rate")
    machines = sweep.x_values()
    assert sweep.seconds(figures.MATRYOSHKA, machines[-1]) is not None

"""Connected components and graph helpers."""

import networkx as nx
import pytest

from repro.data import component_graph
from repro.tasks import graphs


@pytest.fixture(scope="module")
def edges():
    return component_graph(
        num_components=4, vertices_per_component=8, seed=11
    )


class TestConnectedComponentsReference:
    def test_matches_networkx(self, edges):
        got = graphs.connected_components_reference(edges)
        graph = nx.Graph(edges)
        for component in nx.connected_components(graph):
            labels = {got[v] for v in component}
            assert len(labels) == 1
            assert labels == {min(component)}

    def test_two_disjoint_edges(self):
        got = graphs.connected_components_reference([(1, 2), (3, 4)])
        assert got == {1: 1, 2: 1, 3: 3, 4: 3}

    def test_chain_collapses_to_min(self):
        got = graphs.connected_components_reference(
            [(5, 4), (4, 3), (3, 2)]
        )
        assert set(got.values()) == {2}


class TestConnectedComponentsDataflow:
    def test_matches_reference(self, ctx, edges):
        reference = graphs.connected_components_reference(edges)
        got = graphs.connected_components(
            ctx, ctx.bag_of(edges)
        ).collect_as_map()
        assert got == reference

    def test_single_component(self, ctx):
        got = graphs.connected_components(
            ctx, ctx.bag_of([(0, 1), (1, 2), (2, 3)])
        ).collect_as_map()
        assert set(got.values()) == {0}

    def test_label_propagation_converges(self, ctx):
        # A long path needs several rounds; the loop must terminate.
        path = [(i, i + 1) for i in range(12)]
        got = graphs.connected_components(
            ctx, ctx.bag_of(path)
        ).collect_as_map()
        assert set(got.values()) == {0}


class TestBfsReference:
    def test_distances_match_networkx(self, edges):
        adjacency = graphs.adjacency_of(edges)
        graph = nx.Graph(edges)
        source = min(adjacency)
        got = graphs.bfs_distances_reference(adjacency, source)
        expected = nx.single_source_shortest_path_length(graph, source)
        assert got == dict(expected)

    def test_unreachable_vertices_absent(self):
        adjacency = graphs.adjacency_of([(1, 2), (3, 4)])
        got = graphs.bfs_distances_reference(adjacency, 1)
        assert 3 not in got and 4 not in got


class TestUndirect:
    def test_both_directions_present(self, ctx):
        got = graphs.undirect(ctx.bag_of([(1, 2)])).collect()
        assert sorted(got) == [(1, 2), (2, 1)]

    def test_deduplicates(self, ctx):
        got = graphs.undirect(
            ctx.bag_of([(1, 2), (2, 1), (1, 2)])
        ).collect()
        assert sorted(got) == [(1, 2), (2, 1)]

"""Staged scalar/control-flow helpers (the parsing phase's target form).

The paper's parsing phase rewrites control flow into higher-order function
calls (Sec. 6.1) and scalar operations into explicit staged operations
(Sec. 4.3).  In this Python reproduction, most scalar staging comes for
free from operator overloading on
:class:`~repro.core.primitives.InnerScalar`; the helpers here cover the
constructs Python does not let us overload: ``and`` / ``or`` / ``not`` and
the conditional expression.

Every helper degrades to ordinary Python semantics (including
short-circuiting) when its operands are plain values, so rewritten UDFs
behave identically when called with unlifted arguments.
"""

from ..core.primitives import InnerScalar


def staged_and(left, right_thunk):
    """``left and right`` with lifted support.

    ``right_thunk`` is a zero-argument callable so plain evaluation keeps
    Python's short-circuit behaviour; lifted evaluation necessarily
    computes both sides (Sec. 6.2: a lifted branch runs for all tags).
    """
    if isinstance(left, InnerScalar):
        return left & right_thunk()
    if not left:
        return left
    return right_thunk()


def staged_or(left, right_thunk):
    """``left or right`` with lifted support."""
    if isinstance(left, InnerScalar):
        return left | right_thunk()
    if left:
        return left
    return right_thunk()


def staged_not(value):
    """``not value`` with lifted support."""
    if isinstance(value, InnerScalar):
        return value.logical_not()
    return not value


def staged_select(pred, then_thunk, else_thunk):
    """``a if pred else b`` with lifted support.

    Plain predicates evaluate one side only.  Lifted predicates evaluate
    both thunks and select per tag.
    """
    if not isinstance(pred, InnerScalar):
        return then_thunk() if pred else else_thunk()
    then_value = then_thunk()
    else_value = else_thunk()
    paired = _pair_with(pred, then_value)
    return _pick(paired, else_value)


def _pair_with(pred, then_value):
    if isinstance(then_value, InnerScalar):
        return pred.binary(then_value, lambda c, a: (c, a))
    return pred.map(lambda c, a=then_value: (c, a))


def _pick(paired, else_value):
    if isinstance(else_value, InnerScalar):
        return paired.binary(
            else_value, lambda ca, b: ca[1] if ca[0] else b
        )
    return paired.map(lambda ca, b=else_value: ca[1] if ca[0] else b)

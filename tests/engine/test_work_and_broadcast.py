"""The Weighted work annotation and broadcast handles."""

import pytest

from repro.core.primitives import retag
from repro.engine import Broadcast, EngineContext, Weighted, laptop_config
from repro.engine.work import unwrap
from repro.errors import SimulatedOutOfMemory


class TestWeighted:
    def test_rejects_negative_work(self):
        with pytest.raises(ValueError):
            Weighted("x", -1)

    def test_repr(self):
        assert "work=3" in repr(Weighted("x", 3))

    def test_unwrap_credits_work(self):
        acc = [0]
        assert unwrap(Weighted("v", 7), acc) == "v"
        assert acc[0] == 7

    def test_unwrap_passes_plain_values(self):
        acc = [0]
        assert unwrap("v", acc) == "v"
        assert acc[0] == 0

    def test_retag_preserves_weighted(self):
        tagged = retag("t", Weighted("v", 5))
        assert isinstance(tagged, Weighted)
        assert tagged.value == ("t", "v")
        assert tagged.work == 5

    def test_retag_plain(self):
        assert retag("t", "v") == ("t", "v")

    def test_weighted_filter_counts_work(self, ctx):
        before = ctx.trace.total_records
        ctx.bag_of(range(10)).filter(
            lambda x: Weighted(x % 2 == 0, 100)
        ).collect()
        factor = ctx.config.sequential_work_factor
        assert ctx.trace.total_records - before >= 1000 * factor

    def test_weighted_flat_map_counts_work(self, ctx):
        before = ctx.trace.total_records
        ctx.bag_of(range(4)).flat_map(
            lambda x: Weighted([x], 50)
        ).collect()
        factor = ctx.config.sequential_work_factor
        assert ctx.trace.total_records - before >= 200 * factor

    def test_weighted_flat_map_mid_chain_unwraps(self, ctx):
        """Regression: a Weighted-returning flat_map in the *middle* of
        a fused chain must hand downstream operators plain values (and
        still credit its work) -- the step machine unwraps at every
        step, not just the last."""
        seen = []

        def tag(x):
            return Weighted([x], 25)

        def probe(x):
            seen.append(type(x))
            return x + 1

        before = ctx.trace.total_records
        out = (
            ctx.bag_of(range(6))
            .map(lambda x: x * 10)
            .flat_map(tag)
            .map(probe)
            .collect()
        )
        assert sorted(out) == [1, 11, 21, 31, 41, 51]
        assert all(t is int for t in seen)
        factor = ctx.config.sequential_work_factor
        assert ctx.trace.total_records - before >= 6 * 25 * factor

    def test_weighted_reduce_by_key_unwraps_and_credits(self, ctx):
        """Regression: a Weighted-returning combiner must store the
        unwrapped value (collect() returns plain ints) and credit its
        work to the stage."""
        before = ctx.trace.total_records
        out = (
            ctx.bag_of([(i % 2, i) for i in range(8)])
            .reduce_by_key(lambda a, b: Weighted(a + b, 40))
            .collect()
        )
        assert sorted(out) == [(0, 12), (1, 16)]
        assert all(type(v) is int for _k, v in out)
        factor = ctx.config.sequential_work_factor
        # 6 combine calls (8 records, 2 keys), each worth 40.
        assert ctx.trace.total_records - before >= 6 * 40 * factor

    def test_weighted_map_partitions_unwraps(self, ctx):
        before = ctx.trace.total_records
        out = (
            ctx.bag_of(range(4), num_partitions=2)
            .map_partitions(
                lambda part, _i: Weighted(list(part), 30)
            )
            .collect()
        )
        assert sorted(out) == [0, 1, 2, 3]
        factor = ctx.config.sequential_work_factor
        assert ctx.trace.total_records - before >= 2 * 30 * factor


class TestBroadcastHandles:
    def test_value_accessible(self, ctx):
        handle = ctx.broadcast({"a": 1})
        assert isinstance(handle, Broadcast)
        assert handle.value == {"a": 1}

    def test_records_default_to_len(self, ctx):
        assert ctx.broadcast([1, 2, 3]).num_records == 3

    def test_scalar_counts_as_one_record(self, ctx):
        assert ctx.broadcast(42).num_records == 1

    def test_volume_charged_to_current_job(self, ctx):
        bag = ctx.bag_of([1]).cache()
        bag.count()
        ctx.broadcast(list(range(5)))
        assert ctx.trace.jobs[-1].broadcast_records == 5

    def test_oversized_broadcast_raises(self):
        from repro.engine import ClusterConfig

        ctx = EngineContext(
            ClusterConfig(
                machines=1,
                cores_per_machine=1,
                memory_per_machine_bytes=1_000,
                bytes_per_record=100.0,
                memory_overhead_factor=1.0,
            )
        )
        with pytest.raises(SimulatedOutOfMemory):
            ctx.broadcast(list(range(100)))

    def test_usable_inside_udfs(self, ctx):
        lookup = ctx.broadcast({0: "even", 1: "odd"})
        got = ctx.bag_of(range(4)).map(
            lambda x, b=lookup: b.value[x % 2]
        ).collect()
        assert sorted(got) == ["even", "even", "odd", "odd"]

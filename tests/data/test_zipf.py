"""Zipf sampling utilities."""

import pytest

from repro.data import sample_zipf_keys, zipf_sizes, zipf_weights


class TestWeights:
    def test_uniform_at_zero_exponent(self):
        assert zipf_weights(4, 0.0) == [1.0, 1.0, 1.0, 1.0]

    def test_decreasing(self):
        weights = zipf_weights(10, 1.5)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)


class TestSizes:
    def test_sizes_sum_exactly(self):
        for exponent in (0.0, 0.7, 1.3):
            sizes = zipf_sizes(7, 1000, exponent, seed=1)
            assert sum(sizes) == 1000

    def test_uniform_split_is_balanced(self):
        sizes = zipf_sizes(5, 1000, 0.0, seed=1)
        assert max(sizes) - min(sizes) <= 2

    def test_skewed_split_has_heavy_head(self):
        sizes = zipf_sizes(20, 2000, 1.5, seed=1)
        assert sizes[0] > 10 * sizes[-1]

    def test_deterministic(self):
        assert zipf_sizes(5, 100, 1.0, seed=3) == zipf_sizes(
            5, 100, 1.0, seed=3
        )


class TestSampling:
    def test_sample_count(self):
        keys = sample_zipf_keys(10, 500, 1.0, seed=2)
        assert len(keys) == 500
        assert all(0 <= k < 10 for k in keys)

    def test_low_ranks_dominate(self):
        keys = sample_zipf_keys(10, 5000, 1.5, seed=2)
        assert keys.count(0) > keys.count(9)

"""Fixtures for the core (flattening) tests."""

import pytest

from repro.core.nestedbag import group_by_key_into_nested_bag


@pytest.fixture
def nested(ctx):
    """A NestedBag of two groups: fruit {1,2,3} and animal {10, 20}."""
    bag = ctx.bag_of(
        [
            ("fruit", 1), ("fruit", 2), ("fruit", 3),
            ("animal", 10), ("animal", 20),
        ]
    )
    return group_by_key_into_nested_bag(bag)


@pytest.fixture
def lctx(nested):
    return nested.lctx

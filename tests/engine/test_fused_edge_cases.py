"""Fused pipeline edge cases, interpreted and compiled.

Every test runs its program under ``compile_pipelines`` off and on (the
compiled path silently falls back for unprovable UDFs, so both runs are
always well-defined) and under both stage schedulers where ordering is
at stake.
"""

import pytest

from repro.engine import EngineContext, laptop_config
from repro.engine.validate import trace_signature


def _inc(x):
    return x + 1


def _none(_x):
    return False


def _fan(x):
    return [x] * 8


def _wide(x):
    return list(range(x, x + 200))


@pytest.fixture(params=[False, True], ids=["interpreted", "compiled"])
def fused_ctx(request):
    return EngineContext(
        laptop_config(compile_pipelines=request.param)
    )


class TestEmptyPartitions:
    def test_empty_bag_through_chain(self, fused_ctx):
        out = (
            fused_ctx.bag_of([], num_partitions=3)
            .map(_inc)
            .filter(_none)
            .flat_map(_fan)
            .collect()
        )
        assert out == []

    def test_sparse_partitions(self, fused_ctx):
        # More partitions than records: most partitions are empty.
        out = (
            fused_ctx.bag_of([5, 9], num_partitions=8)
            .map(_inc)
            .flat_map(_fan)
            .collect()
        )
        assert sorted(out) == [6] * 8 + [10] * 8

    def test_empty_partition_task_records(self, fused_ctx):
        fused_ctx.bag_of([], num_partitions=2).map(_inc).count()
        stage = fused_ctx.trace.jobs[-1].stages[0]
        assert list(stage.task_records) == [0, 0]


class TestFilterEverything:
    def test_all_filtered_returns_empty(self, fused_ctx):
        out = (
            fused_ctx.bag_of(range(100), num_partitions=4)
            .map(_inc)
            .filter(_none)
            .map(_inc)
            .collect()
        )
        assert out == []

    def test_downstream_operator_counts_zero(self, fused_ctx):
        (
            fused_ctx.bag_of(range(40), num_partitions=2)
            .filter(_none)
            .map(_inc)
            .count()
        )
        stage = fused_ctx.trace.jobs[-1].stages[0]
        # Each task: 20 source records + 20 entering the filter + 0
        # entering the downstream map.
        assert list(stage.task_records) == [40, 40]


class TestFlatMapFanOut:
    def test_large_fan_out(self, fused_ctx):
        # 10 records x 200 each = 2000, crossing the 1k threshold
        # within a single task.
        out = (
            fused_ctx.bag_of(range(0, 100, 10), num_partitions=2)
            .flat_map(_wide)
            .collect()
        )
        assert len(out) == 2000

    def test_fan_out_then_filter_counts(self, fused_ctx):
        (
            fused_ctx.bag_of([0], num_partitions=1)
            .flat_map(_wide)
            .filter(_none)
            .count()
        )
        stage = fused_ctx.trace.jobs[-1].stages[0]
        # One source record + one entering the flat_map + 200 fanned
        # records entering the filter.
        assert stage.task_records[0] == 1 + 1 + 200


class TestChainOrderStability:
    """Fused chains must evaluate steps in plan order regardless of
    scheduler, with identical trace signatures."""

    def _program(self, ctx):
        return (
            ctx.bag_of(range(64), num_partitions=4)
            .map(_inc)
            .filter(_odd)
            .flat_map(_fan)
            .map(_inc)
            .collect()
        )

    @pytest.mark.parametrize("compiled", [False, True],
                             ids=["interpreted", "compiled"])
    def test_dag_schedule_matches_serial(self, compiled):
        runs = {}
        for scheduler in ("serial", "dag"):
            with EngineContext(
                laptop_config(
                    compile_pipelines=compiled, scheduler=scheduler
                )
            ) as ctx:
                result = self._program(ctx)
                runs[scheduler] = (
                    sorted(result), trace_signature(ctx.trace)
                )
        assert runs["serial"][0] == runs["dag"][0]
        assert runs["serial"][1] == runs["dag"][1]

    def test_order_sensitive_steps(self, fused_ctx):
        # filter-then-map differs from map-then-filter; pin that the
        # fused evaluation respects plan order.
        a = (
            fused_ctx.bag_of(range(10))
            .filter(_odd)
            .map(_inc)
            .collect()
        )
        b = (
            fused_ctx.bag_of(range(10))
            .map(_inc)
            .filter(_odd)
            .collect()
        )
        assert sorted(a) == [2, 4, 6, 8, 10]
        assert sorted(b) == [1, 3, 5, 7, 9]


def _odd(x):
    return x % 2 == 1

"""Plan node utilities and invariants."""

import pytest

from repro.engine import plan as p


def small_plan():
    source = p.Parallelize([1, 2, 3], num_partitions=2)
    mapped = p.Map(source, lambda x: x)
    reduced = p.ReduceByKey(mapped, lambda a, b: a, num_partitions=4)
    return source, mapped, reduced


class TestNodeBasics:
    def test_parallelize_splits_round_robin(self):
        node = p.Parallelize([1, 2, 3, 4, 5], num_partitions=2)
        parts = node.build_partitions()
        assert parts == [[1, 3, 5], [2, 4]]

    def test_parallelize_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            p.Parallelize([1], num_partitions=0)

    def test_empty_data_keeps_partition_count(self):
        node = p.Parallelize([], num_partitions=3)
        assert node.build_partitions() == [[], [], []]

    def test_children(self):
        source, mapped, reduced = small_plan()
        assert mapped.children == (source,)
        assert reduced.children == (mapped,)
        assert source.children == ()

    def test_binary_node_children(self):
        left = p.Parallelize([("a", 1)], 1)
        right = p.Parallelize([("a", 2)], 1)
        join = p.CoGroup(left, right, num_partitions=2)
        assert join.children == (left, right)

    def test_cross_rejects_bad_side(self):
        left = p.Parallelize([1], 1)
        right = p.Parallelize([2], 1)
        with pytest.raises(ValueError):
            p.CrossBroadcast(left, right, broadcast_side="middle")

    def test_union_rejects_empty(self):
        with pytest.raises(ValueError):
            p.Union([])


class TestTraversal:
    def test_iter_nodes_visits_all(self):
        source, mapped, reduced = small_plan()
        names = {node.name for node in p.iter_nodes(reduced)}
        assert names == {"Parallelize", "Map", "ReduceByKey"}

    def test_count_nodes_handles_diamonds(self):
        source = p.Parallelize([("a", 1)], 1)
        join = p.CoGroup(source, source, num_partitions=1)
        assert p.count_nodes(join) == 2

    def test_explain_indents(self):
        _s, _m, reduced = small_plan()
        lines = reduced.explain().splitlines()
        assert lines[0].startswith("ReduceByKey")
        assert lines[1].startswith("  Map")
        assert lines[2].startswith("    Parallelize")

    def test_explain_shows_cached_and_label(self):
        node = p.Parallelize([1], 1)
        node.cached = True
        node.label = "input"
        text = node.explain()
        assert "(cached)" in text
        assert "[input]" in text


class TestUnionFlattening:
    def test_nested_unions_collapse(self):
        a = p.Parallelize([1], 1)
        b = p.Parallelize([2], 1)
        c = p.Parallelize([3], 1)
        inner = p.Union([a, b])
        flat = p.flatten_union_inputs([inner, c])
        assert flat == [a, b, c]

    def test_cached_unions_preserved(self):
        a = p.Parallelize([1], 1)
        b = p.Parallelize([2], 1)
        inner = p.Union([a, b])
        inner.cached = True
        flat = p.flatten_union_inputs([inner])
        assert flat == [inner]

    def test_chain_partitions(self):
        assert p.chain_partitions([[[1], [2]], [[3]]]) == [
            [1], [2], [3],
        ]


class TestMetaPropagation:
    def test_derived_meta_requires_all_children(self, ctx):
        meta = ctx.bag_of([("a", 1)]).as_meta()
        data = ctx.bag_of([("a", 2)])
        assert meta.map(lambda kv: kv).is_meta
        assert not data.map(lambda kv: kv).is_meta
        assert not meta.join(data).is_meta
        assert meta.join(
            ctx.bag_of([("a", 3)]).as_meta()
        ).is_meta

    def test_union_meta(self, ctx):
        meta_a = ctx.bag_of([1]).as_meta()
        meta_b = ctx.bag_of([2]).as_meta()
        assert meta_a.union(meta_b).is_meta
        assert not meta_a.union(ctx.bag_of([3])).is_meta

"""The language frontend: Matryoshka's parsing phase for Python UDFs.

* :mod:`ast_parser` -- the ``@nested_udf`` decorator performing
  source-to-source rewriting of control flow and closures.
* :mod:`staged` -- the staged helpers the rewriter targets.
"""

from .ast_parser import lifted, nested_udf, parse_udf
from .staged import staged_and, staged_not, staged_or, staged_select

__all__ = [
    "lifted",
    "nested_udf",
    "parse_udf",
    "staged_and",
    "staged_not",
    "staged_or",
    "staged_select",
]

"""Multi-level nesting: composite tags (paper Sec. 7)."""

import pytest

from repro.core.nestedbag import group_by_key_into_nested_bag
from repro.core.primitives import InnerBag
from repro.errors import FlatteningError


@pytest.fixture
def two_groups(ctx):
    bag = ctx.bag_of(
        [("g1", 1), ("g1", 2), ("g2", 10), ("g2", 20), ("g2", 30)]
    )
    return group_by_key_into_nested_bag(bag)


class TestAsSubLevel:
    def test_composite_tags(self, two_groups):
        sub, element = two_groups.inner.as_sub_level()
        tags = {tag for tag, _v in element.collect()}
        assert tags == {
            ("g1", 1), ("g1", 2),
            ("g2", 10), ("g2", 20), ("g2", 30),
        }

    def test_element_scalar_holds_the_element(self, two_groups):
        _sub, element = two_groups.inner.as_sub_level()
        assert all(
            tag[1] == value for tag, value in element.collect()
        )

    def test_levels_and_parents(self, two_groups):
        sub, _element = two_groups.inner.as_sub_level()
        assert two_groups.lctx.level == 1
        assert sub.level == 2
        assert sub.parent is two_groups.lctx

    def test_num_tags_counts_every_element(self, two_groups):
        sub, _element = two_groups.inner.as_sub_level()
        assert sub.num_tags == 5

    def test_tag_to_parent(self, two_groups):
        sub, _element = two_groups.inner.as_sub_level()
        assert sub.tag_to_parent(("g1", 2)) == "g1"


class TestJoinOnParent:
    def test_joins_against_the_enclosing_level(self, two_groups):
        sub, element = two_groups.inner.as_sub_level()
        # Level-2 bag: each element under its composite tag.
        level2 = InnerBag(
            sub, element.repr.map(lambda tv: (tv[0], tv[1]))
        )
        # Join each level-2 element with the level-1 elements of its
        # group that carry the same parity.
        joined = level2.join_on_parent(
            two_groups.inner,
            self_key=lambda x: x % 2,
            outer_key=lambda y: y % 2,
        )
        pairs = joined.collect()
        # g1 element 1 (odd) matches only 1; g1 element 2 matches only 2.
        g1 = sorted(v for t, v in pairs if t[0] == "g1")
        assert g1 == [(1, 1), (2, 2)]
        # g2 elements are all even: 3 x 3 pairs.
        g2 = [v for t, v in pairs if t[0] == "g2"]
        assert len(g2) == 9

    def test_requires_nested_context(self, two_groups):
        with pytest.raises(FlatteningError):
            two_groups.inner.join_on_parent(
                two_groups.inner, lambda x: x, lambda y: y
            )

    def test_outer_must_be_the_parent_level(self, ctx, two_groups):
        sub, element = two_groups.inner.as_sub_level()
        level2 = InnerBag(sub, element.repr)
        foreign = group_by_key_into_nested_bag(ctx.bag_of([("z", 1)]))
        with pytest.raises(FlatteningError):
            level2.join_on_parent(
                foreign.inner, lambda x: x, lambda y: y
            )


class TestRetagToParent:
    def test_sums_collapse_one_level(self, two_groups):
        sub, element = two_groups.inner.as_sub_level()
        level2 = InnerBag(sub, element.repr)
        per_group = level2.retag_to_parent().sum()
        assert per_group.as_dict() == {"g1": 3, "g2": 60}

    def test_transform_on_the_way_up(self, two_groups):
        sub, element = two_groups.inner.as_sub_level()
        level2 = InnerBag(sub, element.repr)
        doubled = level2.retag_to_parent(lambda x: x * 2).sum()
        assert doubled.as_dict() == {"g1": 6, "g2": 120}

    def test_requires_nested_context(self, two_groups):
        with pytest.raises(FlatteningError):
            two_groups.inner.retag_to_parent()


class TestThreeLevelPipeline:
    def test_per_element_sub_computation(self, two_groups):
        """A miniature Average-Distances shape: for every element of
        every group, count the group elements not smaller than it, then
        average those counts per group."""
        sub, element = two_groups.inner.as_sub_level()
        level2 = InnerBag(
            sub, element.repr.map(lambda tv: (tv[0], tv[0][1]))
        )
        paired = level2.join_on_parent(
            two_groups.inner,
            self_key=lambda _x: None,
            outer_key=lambda _y: None,
        )
        not_smaller = paired.filter(lambda pair: pair[1] >= pair[0])
        counts = not_smaller.retag_to_parent(lambda _pair: 1).sum()
        sizes = two_groups.inner.count()
        average = counts.binary(sizes, lambda c, n: c / n)
        assert average.as_dict() == {
            "g1": pytest.approx((2 + 1) / 2),
            "g2": pytest.approx((3 + 2 + 1) / 3),
        }

"""Fig. 4: scale-out over machine counts at 64 inner computations.

Expected: Matryoshka scales close to linearly with machines; the
workarounds stay flat (outer-parallel cannot use cores beyond the group
count; inner-parallel's job overhead even grows with more partitions).
"""

import pytest

from repro.bench import figures

import os

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


@pytest.mark.parametrize("task", ["pagerank", "kmeans", "bounce_rate"])
def test_fig4_scale_out(figure_benchmark, task):
    sweep = figure_benchmark(figures.fig4_scale_out, SCALE, task)
    machines = sweep.x_values()
    times = [sweep.seconds(figures.MATRYOSHKA, m) for m in machines]
    assert all(a > b for a, b in zip(times, times[1:])), (
        "Matryoshka must scale down with machines"
    )
    # Fixed driver-side overheads (job launches, task scheduling) bound
    # the speedup at this quick scale; require a solid fraction of it.
    assert times[0] / times[-1] > 1.8
    inner_first = sweep.seconds(figures.INNER, machines[0])
    inner_last = sweep.seconds(figures.INNER, machines[-1])
    assert inner_last > 0.7 * inner_first, (
        "inner-parallel must not benefit much from machines"
    )

"""Trace invariants: the structural contract between executor and cost model.

The cost model trusts the execution trace blindly, so the executor must
produce traces shaped like what a Spark scheduler would report.  This
module states that contract as checkable invariants and verifies them --
the executor runs :func:`validate_job` after every completed job (see
``ClusterConfig.validate_traces``), and the bench harness re-validates
whole traces before converting them to simulated seconds.

Invariants checked per job:

* **Stage kinds** come from the known vocabulary (``input``, ``shuffle``,
  ``union``, ``coalesce``, ``cached``) and stage ids are consecutive.
* **Counts are non-negative**: task records, shuffle reads/writes, spills.
* **Narrow stages do not shuffle**: only ``shuffle`` stages may carry
  shuffle read/write volumes.
* **Every shuffled record is credited exactly once**: a shuffle stage
  reads exactly what the map side wrote for it
  (``shuffle_read_records == shuffle_write_records``), and its tasks
  process at least every record read.  A wide operator therefore
  schedules exactly one reduce stage -- the cogroup double-count this
  guards against left a second, already-folded stage in the job.
* **Shuffle reads never exceed upstream writes**: a stage cannot read
  more records over the network than earlier stages of the job produced.
* **Shuffle stages name their origin**: every scheduled reduce stage
  records the wide plan node that opened it.
"""

from ..errors import PlanError

#: Stage kinds the executor may emit.  ``input``/``shuffle`` stages are
#: scheduled task sets; ``union``/``coalesce``/``cached`` are narrow
#: continuations whose work is credited to consuming stages.
VALID_STAGE_KINDS = frozenset(
    {"input", "shuffle", "union", "coalesce", "cached"}
)

SCHEDULED_STAGE_KINDS = frozenset({"input", "shuffle"})


class TraceInvariantError(PlanError):
    """A recorded trace violates the executor/cost-model contract."""


def _fail(job, stage, message):
    where = "job %d" % job.job_id
    if stage is not None:
        where += ", stage %d (%s)" % (stage.stage_id, stage.kind)
    raise TraceInvariantError("%s: %s" % (where, message))


def validate_stage(job, stage, upstream_records):
    """Check one stage; ``upstream_records`` is the total record count of
    the job's earlier stages."""
    if stage.kind not in VALID_STAGE_KINDS:
        _fail(job, stage, "unknown stage kind %r" % stage.kind)
    for count in stage.task_records:
        if count < 0:
            _fail(job, stage, "negative task record count %d" % count)
    if stage.shuffle_read_records < 0:
        _fail(job, stage, "negative shuffle read volume")
    if stage.shuffle_write_records < 0:
        _fail(job, stage, "negative shuffle write volume")
    if stage.spilled_records < 0:
        _fail(job, stage, "negative spill volume")
    if stage.kind != "shuffle":
        if stage.shuffle_read_records or stage.shuffle_write_records:
            _fail(
                job, stage,
                "narrow %r stage carries shuffle volume" % stage.kind,
            )
        return
    if not stage.origin:
        _fail(
            job, stage,
            "shuffle stage does not name the wide operator that "
            "opened it",
        )
    if stage.shuffle_read_records != stage.shuffle_write_records:
        _fail(
            job, stage,
            "reads %d records but the map side wrote %d -- each "
            "shuffled record must be credited exactly once"
            % (stage.shuffle_read_records, stage.shuffle_write_records),
        )
    if stage.total_records < stage.shuffle_read_records:
        _fail(
            job, stage,
            "tasks process %d records but read %d from the shuffle"
            % (stage.total_records, stage.shuffle_read_records),
        )
    if stage.shuffle_read_records > upstream_records:
        _fail(
            job, stage,
            "reads %d records but upstream stages only produced %d"
            % (stage.shuffle_read_records, upstream_records),
        )


def validate_job(job):
    """Check every invariant for one completed job."""
    upstream = 0
    for index, stage in enumerate(job.stages):
        if stage.stage_id != index:
            _fail(
                job, stage,
                "stage ids not consecutive (expected %d)" % index,
            )
        validate_stage(job, stage, upstream)
        upstream += stage.total_records
    for name in ("broadcast_records", "broadcast_meta_records",
                 "collected_records", "saved_records",
                 "saved_meta_records"):
        if getattr(job, name) < 0:
            _fail(job, None, "negative %s" % name)


def validate_trace(trace):
    """Check every job of an :class:`~repro.engine.metrics.ExecutionTrace`."""
    for job in trace.jobs:
        validate_job(job)
    return trace

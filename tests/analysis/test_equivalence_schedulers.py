"""The scheduled-vs-serial mode of the differential verifier."""

import pytest

from repro.analysis.equivalence import (
    EquivalenceError,
    main,
    verify_library_schedules,
    verify_program_schedules,
)


def branching_program(ctx):
    left = (
        ctx.bag_of(range(30))
        .map(lambda x: (x % 3, x))
        .reduce_by_key(lambda a, b: a + b)
    )
    right = (
        ctx.bag_of(range(30))
        .map(lambda x: (x % 3, 1))
        .group_by_key()
    )
    return sorted(left.cogroup(right).collect())


def test_verify_program_schedules_passes_on_branching_plan():
    verification = verify_program_schedules(
        branching_program, name="branching"
    )
    assert verification.name == "branching"
    # The signature check pins the two schedules to identical shuffle
    # volume; the Verification reports both sides for the summary line.
    assert (
        verification.shuffle_records
        == verification.shuffle_records_optimized
    )
    assert verification.shuffle_records > 0
    assert verification.shuffle_records_saved == 0


def test_verify_library_schedules_subset():
    subset = verify_library_schedules(only=["bounce-rate-flat"])
    assert len(subset) == 1
    assert subset[0].name == "bounce-rate-flat"


def test_detects_result_divergence():
    def rigged(ctx):
        return [1] if ctx.config.scheduler == "dag" else [0]

    with pytest.raises(EquivalenceError, match="result differs"):
        verify_program_schedules(rigged, name="rigged-result")


def test_detects_trace_divergence():
    def rigged(ctx):
        bag = ctx.bag_of(range(12)).map(lambda x: (x % 2, x))
        result = sorted(bag.reduce_by_key(lambda a, b: a + b).collect())
        if ctx.config.scheduler == "dag":
            bag.count()  # an extra job only one schedule runs
        return result

    with pytest.raises(EquivalenceError, match="trace"):
        verify_program_schedules(rigged, name="rigged-trace")


def test_measured_totals_are_not_compared():
    # Retries are measured runtime behavior: a schedule-dependent
    # wobble in retry counts must not fail the verifier, so only the
    # deterministic totals are compared.  Injecting a fault in one
    # schedule but not the other still changes nothing deterministic.
    def program(ctx):
        if ctx.config.scheduler == "dag":
            ctx.fault_injector.kill_task(task_index=0, stage=0)
        return sorted(
            ctx.bag_of(range(16))
            .map(lambda x: (x % 2, x))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )

    verify_program_schedules(program, name="retry-wobble")


def test_cli_compare_schedulers(capsys):
    exit_code = main(["--compare", "schedulers", "--only", "matrix"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "serial == dag" in captured.out
    assert "schedule-" in captured.out

"""The schema-inference mode of the differential verifier."""

import pytest

from repro.analysis.equivalence import (
    EquivalenceError,
    main,
    verify_library_schema,
    verify_program_schema,
)


def _scale(x):
    return x * 3 + 1


def _keep(x):
    return x % 7 != 0


def _pair(x):
    return (x % 5, x)


def _add(a, b):
    return a + b


def _tag(x):
    return "v%d" % x


def proven_program(ctx):
    """All-int chains: schemas prove, commits replace probes."""
    return sorted(
        ctx.bag_of(range(200), num_partitions=4)
        .map(_scale)
        .filter(_keep)
        .map(_pair)
        .reduce_by_key(_add)
        .collect()
    )


def refuted_program(ctx):
    """A str chain: the schema refutes columnar and the compiled path
    falls back to the interpreter -- results must be untouched."""
    return sorted(
        ctx.bag_of(range(50), num_partitions=2).map(_tag).collect()
    )


def mixed_program(ctx):
    """Mixed driver data: unknown schemas keep the probe behavior."""
    return sorted(
        ctx.bag_of([1, 2.5, 3, 4.5] * 10, num_partitions=2)
        .map(_scale)
        .collect(),
        key=repr,
    )


def test_proven_program_verifies_with_commits():
    verification = verify_program_schema(proven_program, name="proven")
    assert verification.name == "proven"
    # The inferring run replaced at least one probe with a commit.
    assert verification.elisions >= 1
    assert verification.seconds_interpreted > 0
    assert verification.seconds_compiled > 0
    assert (
        verification.shuffle_records
        == verification.shuffle_records_optimized
    )


def test_refuted_program_verifies_without_commits():
    verification = verify_program_schema(refuted_program, name="refuted")
    assert verification.elisions == 0


def test_unknown_program_verifies():
    verification = verify_program_schema(mixed_program, name="mixed")
    assert verification.elisions == 0


def test_library_schema_verifies():
    verifications = verify_library_schema(only=["matrix"])
    assert verifications
    for verification in verifications:
        assert (
            verification.shuffle_records
            == verification.shuffle_records_optimized
        )


def test_main_compare_schema_exits_zero(capsys):
    code = main(["--compare", "schema", "--only", "matrix"])
    out = capsys.readouterr().out
    assert code == 0
    assert "probing == inferring" in out
    assert "schema-verified" in out


def test_divergence_raises():
    calls = {"n": 0}

    def flaky(ctx):
        calls["n"] += 1
        count = 10 if calls["n"] == 1 else 11
        return sorted(
            ctx.bag_of(range(count), num_partitions=2)
            .map(_scale)
            .collect()
        )

    with pytest.raises(EquivalenceError):
        verify_program_schema(flaky, name="flaky")

"""Deterministic fault injection under DAG scheduling.

Kill plans address stages by dispatch ordinal, and ordinals are fixed
by the *plan* (reserved per evaluation unit before anything runs, see
``repro.engine.dag``).  These tests prove the consequence: a plan keyed
on ``(stage, task)`` hits the same task attempt whether stages run one
at a time or concurrently.
"""

import time

import pytest

from repro.engine import EngineContext, laptop_config
from repro.errors import TaskFailedError


def branching_program(ctx):
    left = (
        ctx.bag_of(range(24))
        .map(lambda x: (x % 3, x))
        .reduce_by_key(lambda a, b: a + b)
    )
    right = (
        ctx.bag_of(range(18))
        .map(lambda x: (x % 3, x + 100))
        .group_by_key()
    )
    return sorted(left.cogroup(right).collect())


def run_with_kill(scheduler, stage_ordinal):
    """Run the branching program killing (stage_ordinal, task 0) once.

    Returns what an outside observer can see of the fault: whether the
    plan fired, the result, and which stage (index, kind, origin within
    which job) recorded the retry.
    """
    ctx = EngineContext(laptop_config(scheduler=scheduler))
    try:
        ctx.fault_injector.kill_task(task_index=0, stage=stage_ordinal)
        result = branching_program(ctx)
        retries = [
            (job_index, stage.stage_id, stage.kind, stage.origin)
            for job_index, job in enumerate(ctx.trace.jobs)
            for stage in job.stages
            if stage.task_retries
        ]
        return {
            "injected": ctx.fault_injector.injected,
            "pending": ctx.fault_injector.pending,
            "result": result,
            "retries": retries,
        }
    finally:
        ctx.close()


def total_ordinals(scheduler="serial"):
    ctx = EngineContext(laptop_config(scheduler=scheduler))
    try:
        branching_program(ctx)
        return ctx.runtime.dispatch_count
    finally:
        ctx.close()


class TestKillPlanParity:
    def test_ordinal_budget_identical_across_schedulers(self):
        assert total_ordinals("serial") == total_ordinals("dag")

    def test_every_ordinal_hits_the_same_stage_under_both_schedules(self):
        # Sweep a kill plan over every dispatch ordinal the job can
        # draw; each plan must fire (or not fire -- elided dispatches
        # leave deterministic gaps) identically under both schedules
        # and credit the retry to the same stage of the same job.
        for ordinal in range(total_ordinals()):
            serial = run_with_kill("serial", ordinal)
            dag = run_with_kill("dag", ordinal)
            assert serial == dag, "ordinal %d diverged" % ordinal
            assert serial["result"] == branching_result()

    def test_retry_landing_after_sibling_stage_completed(self):
        # The killed branch carries extra latency, so under the DAG
        # schedule its retry runs after the fast sibling branch has
        # already finished -- the late retry must neither corrupt the
        # sibling's output nor its own.
        def program(ctx):
            fast = ctx.bag_of(range(12)).map(lambda x: (x % 2, x))

            def slow(pair):
                time.sleep(0.01)
                return pair

            delayed = (
                ctx.bag_of(range(12))
                .map(slow)
                .map(lambda x: (x % 2, x))
                .reduce_by_key(lambda a, b: a + b)
            )
            return sorted(fast.cogroup(delayed).collect())

        outputs = []
        for scheduler in ("serial", "dag"):
            ctx = EngineContext(laptop_config(scheduler=scheduler))
            try:
                ctx.fault_injector.kill_task(
                    task_index=0, operator="ReduceByKey"
                )
                outputs.append(program(ctx))
                assert ctx.fault_injector.injected == 1
                assert ctx.trace.task_retries == 1
            finally:
                ctx.close()
        assert outputs[0] == outputs[1]

    def test_permanent_failure_fails_the_job_under_dag(self):
        ctx = EngineContext(
            laptop_config(scheduler="dag", max_task_attempts=2)
        )
        try:
            ctx.fault_injector.kill_task(
                task_index=0, operator="ReduceByKey", times=99
            )
            with pytest.raises(TaskFailedError):
                branching_program(ctx)
            # A failed branch never poisons the next job.
            ctx.fault_injector.reset()
            assert branching_program(ctx) == branching_result()
        finally:
            ctx.close()

    def test_injection_under_dag_on_process_backend(self):
        ctx = EngineContext(
            laptop_config(
                scheduler="dag", backend="process", num_workers=2
            )
        )
        try:
            ctx.fault_injector.kill_task(
                task_index=0, operator="ReduceByKey"
            )
            assert branching_program(ctx) == branching_result()
            assert ctx.fault_injector.injected == 1
            assert ctx.trace.task_retries == 1
        finally:
            ctx.close()


def branching_result():
    ctx = EngineContext(laptop_config())
    try:
        return branching_program(ctx)
    finally:
        ctx.close()

"""Zipf-distributed key sampling (for the data-skew experiments, Sec. 9.5).

The paper creates skewed inputs by drawing grouping keys from a Zipf
instead of a uniform distribution, yielding a few large groups and many
small groups.
"""

import random


def zipf_weights(num_keys, exponent):
    """Unnormalized Zipf weights ``1 / rank^exponent`` for ranks 1..n."""
    if num_keys < 1:
        raise ValueError("num_keys must be >= 1")
    if exponent < 0:
        raise ValueError("exponent must be >= 0")
    return [1.0 / (rank ** exponent) for rank in range(1, num_keys + 1)]


def zipf_sizes(num_keys, total, exponent, seed=0):
    """Split ``total`` items over ``num_keys`` keys, Zipf-proportionally.

    With ``exponent == 0`` the split is uniform.  Sizes always sum to
    ``total``; remainders are distributed deterministically.
    """
    weights = zipf_weights(num_keys, exponent)
    weight_sum = sum(weights)
    sizes = [int(total * w / weight_sum) for w in weights]
    shortfall = total - sum(sizes)
    rng = random.Random(seed)
    for _ in range(shortfall):
        sizes[rng.randrange(num_keys)] += 1
    return sizes


def sample_zipf_keys(num_keys, count, exponent, seed=0):
    """Draw ``count`` keys from ``0..num_keys-1`` Zipf-proportionally."""
    weights = zipf_weights(num_keys, exponent)
    rng = random.Random(seed)
    return rng.choices(range(num_keys), weights=weights, k=count)

"""Regression: the repo's own UDF code stays lint-clean.

This mirrors the CI ``lint-nested`` job, so a PR that introduces a
construct the parsing phase cannot lift -- or an unserializable capture
-- fails here before it fails in CI.
"""

import json
from pathlib import Path

from repro.analysis import cli

REPO = Path(__file__).resolve().parents[2]


def test_tasks_and_examples_are_lint_clean(capsys):
    code = cli.main(
        [
            str(REPO / "src" / "repro" / "tasks"),
            str(REPO / "examples"),
            "--format",
            "json",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    errors = [
        d for d in payload["diagnostics"] if d["severity"] == "error"
    ]
    assert errors == []
    assert code == 0

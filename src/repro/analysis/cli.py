"""``python -m repro.analysis``: lint nested UDFs across source trees.

Two layers per file:

1. A **static pass** (always): parse the file, find every function
   decorated with ``@nested_udf`` / ``@lifted``, and run the NPL1xx
   construct lint with file-absolute line numbers.  Nothing is
   imported or executed.
2. An **import pass** (default, disable with ``--no-import``): import
   the module, run the NPL2xx closure-serializability pass on each
   decorated function found at module scope, and run the full plan
   lint (NPL3xx smells plus the NPL6xx schema & shape findings from
   :mod:`repro.analysis.schema`) on each :class:`~repro.engine.bag
   .Bag` found at module scope.  Files that cannot be imported degrade
   to an NPL002 notice -- the static findings stand either way.

Exit status is 1 when any diagnostic at or above the ``--fail-on``
threshold (default ``error``) survives ``--select`` / ``--ignore``
filtering, else 0 -- so a CI job fails on errors but tolerates
advisory warnings, while an effects-focused job can pass
``--select NPL5 --fail-on warning`` to enforce a clean tree.
"""

import argparse
import dataclasses
import importlib
import importlib.util
import os
import sys

from . import analyze_source
from .closure_lint import analyze_closure
from .diagnostics import (
    ERROR,
    INFO,
    WARNING,
    count_by_severity,
    filter_diagnostics,
    make_diagnostic,
    render_github,
    render_json,
    render_text,
    sort_key,
)


def main(argv=None):
    """Entry point; returns the process exit code."""
    args = _parse_args(argv)
    files = _collect_files(args.paths)
    if not files:
        print("repro.analysis: no Python files found", file=sys.stderr)
        return 2
    diagnostics = []
    for path in files:
        diagnostics.extend(_analyze_file(path, do_import=args.imports))
    diagnostics = filter_diagnostics(
        diagnostics, select=args.select, ignore=args.ignore
    )
    diagnostics.sort(key=sort_key)
    if args.format == "json":
        print(render_json(diagnostics))
    elif args.format == "github":
        # GitHub Actions annotation lines only: the runner parses every
        # ``::level ...::`` line and attaches it to the diff.
        if diagnostics:
            print(render_github(diagnostics))
    else:
        if diagnostics:
            print(render_text(diagnostics))
        counts = count_by_severity(diagnostics)
        print(
            "repro.analysis: %d file(s), %d error(s), %d warning(s)"
            % (len(files), counts[ERROR], counts["warning"])
        )
    return 1 if _fails(diagnostics, args.fail_on) else 0


#: Severity rank for the ``--fail-on`` threshold.
_SEVERITY_RANK = {INFO: 0, WARNING: 1, ERROR: 2}


def _fails(diagnostics, fail_on):
    if fail_on == "never":
        return False
    threshold = _SEVERITY_RANK[fail_on]
    return any(
        _SEVERITY_RANK.get(d.severity, 0) >= threshold
        for d in diagnostics
    )


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static diagnostics for @nested_udf functions "
        "(NPL1xx constructs, NPL2xx closure serializability).",
    )
    parser.add_argument(
        "paths", nargs="+",
        help="Python files or directories to analyze",
    )
    parser.add_argument(
        "--select", type=_code_list, default=None,
        help="comma-separated code prefixes to report (e.g. NPL1,NPL201)",
    )
    parser.add_argument(
        "--ignore", type=_code_list, default=None,
        help="comma-separated code prefixes to suppress",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="output format (default: text); 'github' emits GitHub "
        "Actions workflow-annotation lines",
    )
    parser.add_argument(
        "--no-import", dest="imports", action="store_false",
        help="skip the import-based closure pass (static checks only)",
    )
    parser.add_argument(
        "--fail-on", choices=("error", "warning", "info", "never"),
        default="error",
        help="lowest severity that makes the exit status 1 "
        "(default: error; 'never' always exits 0)",
    )
    return parser.parse_args(argv)


def _code_list(text):
    return [part.strip() for part in text.split(",") if part.strip()]


def _collect_files(paths):
    files = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            files.append(path)
        else:
            files.append(path)  # let the open() below report it
    return files


def _analyze_file(path, do_import=True):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        return [
            make_diagnostic(
                "NPL001", "cannot read file: %s" % exc, file=path
            )
        ]
    diagnostics = analyze_source(source, filename=path)
    if do_import and (
        "nested_udf" in source or "lifted" in source
        or "bag_of" in source
    ):
        diagnostics.extend(_import_pass(path))
    return diagnostics


def _import_pass(path):
    """Import ``path``; closure-check its decorated UDFs and plan-lint
    its module-level bags."""
    module, problem = _import_module(path)
    if module is None:
        return [
            make_diagnostic(
                "NPL002",
                "module could not be imported (%s); closure "
                "serializability not checked" % problem,
                file=path,
            )
        ]
    diagnostics = []
    target = os.path.abspath(path)
    for name in sorted(vars(module)):
        obj = vars(module)[name]
        original = getattr(obj, "original", None)
        if original is None or not callable(obj):
            continue
        code = getattr(original, "__code__", None)
        if code is None or os.path.abspath(code.co_filename) != target:
            continue  # re-exported from elsewhere; its own file reports
        diagnostics.extend(
            analyze_closure(original, filename=path)
        )
    diagnostics.extend(_plan_pass(module, path))
    return diagnostics


def _plan_pass(module, path):
    """Plan-lint every module-level :class:`Bag` (NPL3xx + NPL6xx).

    Plan findings carry a ``#id NodeKind`` path instead of a source
    position; the defining file is attached so ``--format github``
    annotations land on the right file.
    """
    # Lazy import: the CLI's static pass must not pull in the engine.
    from ..engine.bag import Bag
    from .plan_lint import analyze_plan

    diagnostics = []
    for name in sorted(vars(module)):
        obj = vars(module)[name]
        if not isinstance(obj, Bag):
            continue
        for diag in analyze_plan(obj.node, obj.context.config):
            if not diag.file:
                diag = dataclasses.replace(diag, file=path)
            diagnostics.append(diag)
    return diagnostics


def _import_module(path):
    """Import the module at ``path``; returns ``(module, error_text)``.

    Files inside a package (an ``__init__.py`` chain) are imported
    under their real dotted name so relative imports work; standalone
    scripts are loaded from their file location under a private name.
    """
    abspath = os.path.abspath(path)
    dotted, root = _dotted_name(abspath)
    try:
        if dotted is not None:
            added = root not in sys.path
            if added:
                sys.path.insert(0, root)
            try:
                return importlib.import_module(dotted), None
            finally:
                if added:
                    sys.path.remove(root)
        name = "_repro_analysis_%s" % (
            os.path.splitext(os.path.basename(abspath))[0]
        )
        spec = importlib.util.spec_from_file_location(name, abspath)
        if spec is None or spec.loader is None:
            return None, "no import spec"
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module, None
    except BaseException as exc:  # noqa: BLE001 - report, don't crash
        return None, "%s: %s" % (type(exc).__name__, exc)


def _dotted_name(abspath):
    """``(dotted_module_name, sys_path_root)`` for package files."""
    directory = os.path.dirname(abspath)
    stem = os.path.splitext(os.path.basename(abspath))[0]
    parts = [] if stem == "__init__" else [stem]
    while os.path.exists(os.path.join(directory, "__init__.py")):
        parts.insert(0, os.path.basename(directory))
        directory = os.path.dirname(directory)
    if len(parts) <= 1 and stem != "__init__":
        return None, None
    return ".".join(parts), directory

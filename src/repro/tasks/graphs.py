"""Graph building blocks: connected components and friends (Sec. 2.2).

``connected_components`` is the flat, iterative label-propagation
algorithm the paper's Average Distances task composes with: it tags each
vertex with the smallest vertex id reachable from it, exactly like the
Spark GraphX / Flink Gelly library functions the paper cites [51, 52].
"""


def undirect(edges_bag):
    """Both directions of every edge, deduplicated."""
    return edges_bag.flat_map(
        lambda e: [(e[0], e[1]), (e[1], e[0])]
    ).distinct()


def connected_components(ctx, edges_bag, max_iterations=100):
    """Label propagation on the engine: ``Bag[(vertex, component_id)]``.

    The component id is the minimum vertex id in the component.  Runs a
    driver-side loop with one convergence-check job per round (the
    standard dataflow formulation).
    """
    adjacency = undirect(edges_bag).cache()
    labels = adjacency.keys().distinct().map(lambda v: (v, v)).cache()
    for _ in range(max_iterations):
        messages = adjacency.join(labels).map(
            lambda kv: (kv[1][0], kv[1][1])
        )
        new_labels = labels.union(messages).reduce_by_key(min).cache()
        changed = (
            labels.join(new_labels)
            .filter(lambda kv: kv[1][0] != kv[1][1])
            .count(label="cc convergence check")
        )
        labels = new_labels
        if changed == 0:
            break
    return labels


def connected_components_reference(edges):
    """Union-find ground truth: ``{vertex: component_id}`` (min id)."""
    parent = {}

    def find(v):
        parent.setdefault(v, v)
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:
            parent[v], v = root, parent[v]
        return root

    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    return {v: find(v) for v in parent}


def bfs_distances_reference(adjacency, source):
    """Sequential BFS: ``{vertex: hop_distance}`` from ``source``."""
    distances = {source: 0}
    frontier = [source]
    while frontier:
        next_frontier = []
        for vertex in frontier:
            for neighbor in adjacency.get(vertex, ()):
                if neighbor not in distances:
                    distances[neighbor] = distances[vertex] + 1
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return distances


def adjacency_of(edges):
    """Driver-side undirected adjacency: ``{vertex: [neighbors]}``."""
    adjacency = {}
    for u, v in edges:
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)
    return adjacency

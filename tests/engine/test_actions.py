"""Actions: collect, count, reduce, fold, sum, save, take."""

import pytest

from repro.errors import PlanError


class TestCollectCount:
    def test_collect(self, ctx):
        assert sorted(ctx.bag_of([3, 1, 2]).collect()) == [1, 2, 3]

    def test_collect_as_map(self, ctx):
        assert ctx.bag_of([("a", 1)]).collect_as_map() == {"a": 1}

    def test_count(self, ctx):
        assert ctx.bag_of(range(17)).count() == 17

    def test_count_empty(self, ctx):
        assert ctx.empty_bag().count() == 0

    def test_is_empty(self, ctx):
        assert ctx.empty_bag().is_empty()
        assert not ctx.bag_of([1]).is_empty()

    def test_each_action_is_one_job(self, ctx):
        bag = ctx.bag_of([1, 2, 3])
        bag.count()
        bag.collect()
        bag.sum()
        assert ctx.trace.num_jobs == 3


class TestReduceFold:
    def test_reduce(self, ctx):
        assert ctx.bag_of([1, 2, 3, 4]).reduce(lambda a, b: a + b) == 10

    def test_reduce_single_element(self, ctx):
        assert ctx.bag_of([42]).reduce(lambda a, b: a + b) == 42

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(PlanError):
            ctx.empty_bag().reduce(lambda a, b: a + b)

    def test_fold(self, ctx):
        got = ctx.bag_of([1, 2, 3]).fold(100, lambda acc, x: acc + x)
        assert got == 106

    def test_fold_empty_returns_zero(self, ctx):
        assert ctx.empty_bag().fold(7, lambda acc, x: acc + x) == 7

    def test_sum(self, ctx):
        assert ctx.bag_of(range(5)).sum() == 10


class TestSaveTake:
    def test_save_returns_record_count(self, ctx):
        assert ctx.bag_of(range(9)).save() == 9

    def test_save_charges_data_volume(self, ctx):
        ctx.bag_of(range(9)).save()
        assert ctx.trace.jobs[-1].saved_records == 9

    def test_save_of_meta_bag_charged_as_meta(self, ctx):
        ctx.bag_of(range(9)).as_meta().save()
        job = ctx.trace.jobs[-1]
        assert job.saved_meta_records == 9
        assert job.saved_records == 0

    def test_take(self, ctx):
        assert len(ctx.bag_of(range(100)).take(5)) == 5

    def test_take_zero_runs_no_job(self, ctx):
        assert ctx.bag_of(range(100)).take(0) == []
        assert ctx.trace.num_jobs == 0

    def test_take_elements_come_from_the_bag(self, ctx):
        got = ctx.bag_of(range(100)).take(7)
        assert len(got) == 7
        assert set(got) <= set(range(100))

    def test_take_from_bag_larger_than_driver_memory(self, tight_ctx):
        from repro.errors import SimulatedOutOfMemory

        # 1000 result records exceed the tight driver's 50 kB budget...
        big = tight_ctx.bag_of(range(1000)).as_meta()
        with pytest.raises(SimulatedOutOfMemory):
            big.collect()
        # ...but take(5) only moves 5 records per partition, as Spark
        # truncates partitions before collecting.
        assert len(big.take(5)) == 5


class TestRangeBag:
    def test_range_bag(self, ctx):
        assert sorted(ctx.range_bag(4).collect()) == [0, 1, 2, 3]

"""Command-line experiment runner.

Regenerate the paper's figures without pytest::

    python -m repro.bench --list
    python -m repro.bench fig1 fig5 --scale quick
    python -m repro.bench all --scale full
    python -m repro.bench fig5 --backend process --workers 4 --measured

Observability (:mod:`repro.observe`)::

    # per-experiment trace (JSONL + Chrome JSON) and RunReport
    python -m repro.bench fig1 --trace
    # regression gate against the committed BENCH_engine.json
    python -m repro.bench --check-regressions
    # refresh the committed baseline after an intentional cost change
    python -m repro.bench --emit-baseline
"""

import argparse
import os
import sys
import time

from ..observe import RunReport, write_chrome
from ..observe.sinks import read_events
from . import figures
from .baseline import BASELINE_FILENAME, run_baseline

#: Exit status when --check-regressions finds one (2, so argparse's own
#: usage errors keep their conventional meaning).
EXIT_REGRESSION = 2

#: Short names -> (callable, extra args) for every experiment.
EXPERIMENTS = {
    "fig1": (figures.fig1_kmeans_motivation, ()),
    "fig3a": (figures.fig3_weak_scaling_kmeans, ()),
    "fig3b": (figures.fig3_weak_scaling_pagerank, ()),
    "fig3c": (figures.fig3_weak_scaling_avg_distances, ()),
    "fig4-pagerank": (figures.fig4_scale_out, ("pagerank",)),
    "fig4-kmeans": (figures.fig4_scale_out, ("kmeans",)),
    "fig4-bounce": (figures.fig4_scale_out, ("bounce_rate",)),
    "fig5": (figures.fig5_bounce_rate_weak_scaling, ()),
    "fig6": (figures.fig6_diql_comparison, ()),
    "fig7-bounce": (figures.fig7_skew, ("bounce_rate",)),
    "fig7-pagerank": (figures.fig7_skew, ("pagerank",)),
    "fig8-left": (figures.fig8_join_strategies, ()),
    "fig8-right": (figures.fig8_half_lifted, ()),
    "fig9a": (figures.fig9_larger_pagerank, ()),
    "fig9b": (figures.fig9_larger_bounce_rate, ()),
    "ablation-partitions": (figures.ablation_partition_counts, ()),
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (see --list), or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "full"],
        default="quick",
        help="sweep width / dataset size (default: quick)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment names"
    )
    parser.add_argument(
        "--backend",
        choices=["serial", "process"],
        help="task runtime backend (default: serial, or $REPRO_BACKEND)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        help="worker count for the process backend (0 = all cores)",
    )
    parser.add_argument(
        "--measured",
        action="store_true",
        help="add real wall-clock columns next to simulated seconds",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="trace each experiment; write JSONL + Chrome traces and a "
        "RunReport under --report-dir",
    )
    parser.add_argument(
        "--report-dir",
        default=os.path.join("benchmarks", "reports"),
        help="where --trace artifacts go (default: benchmarks/reports)",
    )
    parser.add_argument(
        "--baseline",
        default=BASELINE_FILENAME,
        help="baseline report for --check-regressions / --emit-baseline "
        "(default: %s)" % BASELINE_FILENAME,
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="relative growth that counts as a regression "
        "(default: 0.25 = 25%%)",
    )
    parser.add_argument(
        "--check-regressions",
        action="store_true",
        help="run the engine baseline matrix and diff it against "
        "--baseline; exit %d on regression" % EXIT_REGRESSION,
    )
    parser.add_argument(
        "--emit-baseline",
        action="store_true",
        help="run the engine baseline matrix and (re)write --baseline",
    )
    args = parser.parse_args(argv)

    # Experiments build their own ClusterConfigs, so backend selection
    # flows through the env-var defaults that ClusterConfig reads.
    if args.backend is not None:
        os.environ["REPRO_BACKEND"] = args.backend
    if args.workers is not None:
        os.environ["REPRO_NUM_WORKERS"] = str(args.workers)

    if args.emit_baseline or args.check_regressions:
        return _run_baseline_gate(args)

    if args.list or not args.experiments:
        print("Available experiments:")
        for name, (fn, extra) in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print("  %-20s %s" % (name, doc))
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else (
        args.experiments
    )
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(
            "unknown experiments: %s (use --list)" % ", ".join(unknown)
        )
    if args.trace:
        os.makedirs(args.report_dir, exist_ok=True)
    for name in names:
        fn, extra = EXPERIMENTS[name]
        started = time.time()
        if args.trace:
            sweep = _run_traced(name, fn, extra, args)
        else:
            sweep = fn(args.scale, *extra)
        sweep.print_table(measured=args.measured)
        print("[%s: %.1fs wall]" % (name, time.time() - started))
    return 0


def _run_traced(name, fn, extra, args):
    """Run one experiment with tracing on; leave three artifacts.

    Contexts resolve ``REPRO_TRACE`` when they are built, so pointing it
    at one JSONL file per experiment makes every measured run of the
    sweep append to a shared timeline (epoch timestamps keep the runs
    ordered).  The JSONL is then exported to Chrome trace-event JSON,
    and the sweep's :class:`~repro.observe.RunReport` is saved next to
    both.
    """
    trace_path = os.path.join(args.report_dir, name + ".trace.jsonl")
    if os.path.exists(trace_path):
        os.remove(trace_path)
    previous = os.environ.get("REPRO_TRACE")
    os.environ["REPRO_TRACE"] = trace_path
    try:
        sweep = fn(args.scale, *extra)
    finally:
        if previous is None:
            del os.environ["REPRO_TRACE"]
        else:
            os.environ["REPRO_TRACE"] = previous
    chrome_path = os.path.join(args.report_dir, name + ".trace.json")
    report_path = os.path.join(args.report_dir, name + ".report.json")
    write_chrome(read_events(trace_path), chrome_path, label=name)
    sweep.to_report(name, meta={"scale": args.scale}).save(report_path)
    print(
        "[%s: trace %s + %s, report %s]"
        % (name, trace_path, chrome_path, report_path)
    )
    return sweep


def _run_baseline_gate(args):
    """Run the baseline matrix; emit or diff the committed snapshot."""

    def progress(result):
        print(
            "  %-22s x=%-4s %s  (%.2fs wall)"
            % (result.system, result.x, result.cell(),
               result.measured_seconds)
        )

    print("engine baseline matrix:")
    report = run_baseline(progress=progress)
    if args.emit_baseline:
        report.save(args.baseline)
        print("baseline written: %s" % args.baseline)
        return 0
    if not os.path.exists(args.baseline):
        print(
            "no baseline at %s (generate one with --emit-baseline)"
            % args.baseline,
            file=sys.stderr,
        )
        return 1
    kwargs = {"metric": "simulated"}
    if args.threshold is not None:
        kwargs["threshold"] = args.threshold
    diff = RunReport.compare(
        RunReport.load(args.baseline), report, **kwargs
    )
    print()
    print(diff.render())
    return EXIT_REGRESSION if diff.has_regressions else 0


if __name__ == "__main__":
    sys.exit(main())

"""Terminal rendering: timelines and top-N summaries, no dependencies.

Two inputs, same philosophy as the Spark UI's jobs page but in a
terminal: a list of :class:`~repro.observe.events.TraceEvent` (from a
memory sink or a JSON-lines file) or a
:class:`~repro.observe.report.RunReport`.
"""

from .events import (
    KIND_FAULT,
    KIND_JOB,
    KIND_STAGE,
    KIND_STRAGGLER,
    KIND_TASK,
    KIND_TASK_RETRY,
)

_BAR = "#"


def _fmt_s(seconds):
    if seconds is None:
        return "-"
    if seconds >= 100:
        return "%.0fs" % seconds
    if seconds >= 1:
        return "%.2fs" % seconds
    return "%.1fms" % (seconds * 1e3)


def timeline(events, width=64):
    """ASCII timeline of the job and stage spans in ``events``.

    One row per span, indented by kind, with a proportional bar over
    the trace's full time extent.
    """
    spans = [
        e for e in events
        if e.is_span and e.kind in (KIND_JOB, KIND_STAGE)
    ]
    if not spans:
        return "(no job/stage spans in trace)"
    t0 = min(e.ts for e in spans)
    t1 = max(e.end for e in spans)
    extent = max(t1 - t0, 1e-9)
    spans.sort(key=lambda e: (e.ts, -(e.dur or 0.0)))
    name_width = min(44, max(len(e.name) for e in spans) + 2)
    lines = [
        "timeline: %d spans over %s" % (len(spans), _fmt_s(extent))
    ]
    for event in spans:
        indent = "  " if event.kind == KIND_STAGE else ""
        start = int((event.ts - t0) / extent * width)
        length = max(1, int(event.dur / extent * width))
        length = min(length, width - start)
        bar = " " * start + _BAR * length
        lines.append(
            "%-*s |%-*s| %s"
            % (
                name_width, (indent + event.name)[:name_width],
                width, bar, _fmt_s(event.dur),
            )
        )
    return "\n".join(lines)


def top_stages(events, top=10):
    """The ``top`` longest stage spans, with their share of stage time."""
    stages = [e for e in events if e.is_span and e.kind == KIND_STAGE]
    if not stages:
        return "(no stage spans in trace)"
    total = sum(e.dur for e in stages) or 1e-9
    stages.sort(key=lambda e: e.dur, reverse=True)
    lines = [
        "top %d of %d stages by wall-clock (total %s):"
        % (min(top, len(stages)), len(stages), _fmt_s(total))
    ]
    for event in stages[:top]:
        share = 100.0 * event.dur / total
        tasks = event.args.get("tasks", "?")
        lines.append(
            "  %6s  %4.1f%%  tasks=%-5s %s"
            % (_fmt_s(event.dur), share, tasks, event.name)
        )
    return "\n".join(lines)


def summarize_events(events, top=10, width=64):
    """Full text summary of a trace: counts, top stages, timeline."""
    if not events:
        return "(empty trace)"
    kinds = {}
    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    lanes = sorted({e.lane for e in events})
    task_spans = [
        e for e in events if e.is_span and e.kind == KIND_TASK
    ]
    task_total = sum(e.dur for e in task_spans)
    lines = [
        "trace: %d events, %d lanes (%s)"
        % (len(events), len(lanes), ", ".join(lanes)),
        "events by kind: "
        + ", ".join(
            "%s=%d" % (kind, kinds[kind]) for kind in sorted(kinds)
        ),
        "task attempts: %d spanning %s"
        % (len(task_spans), _fmt_s(task_total)),
    ]
    incidents = []
    for kind, label in (
        (KIND_TASK_RETRY, "retries"),
        (KIND_FAULT, "faults"),
        (KIND_STRAGGLER, "stragglers"),
    ):
        if kinds.get(kind):
            incidents.append("%s=%d" % (label, kinds[kind]))
    if incidents:
        lines.append("incidents: " + ", ".join(incidents))
    lines.append("")
    lines.append(top_stages(events, top=top))
    lines.append("")
    lines.append(timeline(events, width=width))
    return "\n".join(lines)


def summarize_report(report, top=10):
    """Text summary of a :class:`~repro.observe.report.RunReport`."""
    lines = [
        "report %r: %d entries (schema v1)"
        % (report.label, len(report.entries))
    ]
    rows = []
    for entry in report.entries:
        totals = entry.get("totals", {})
        rows.append(
            (
                "%s@%s" % (entry.get("system"), entry.get("x")),
                entry.get("status", "?"),
                _fmt_s(entry.get("simulated_seconds")),
                _fmt_s(entry.get("measured_task_seconds")),
                _fmt_s(entry.get("measured_wall_seconds")),
                str(totals.get("stages", "-")),
                str(totals.get("shuffle_records", "-")),
                str(totals.get("retries", "-")),
            )
        )
    header = (
        "entry", "status", "simulated", "task-time", "wall", "stages",
        "shuffle", "retries",
    )
    widths = [
        max(len(header[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(header))
    ]
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(header, widths))
    )
    for row in rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths))
        )
    stages = [
        (
            stage.get("simulated_seconds") or 0.0,
            "%s@%s job%d/stage%d:%s%s"
            % (
                entry.get("system"), entry.get("x"),
                j, stage.get("stage_id", s),
                stage.get("kind", "?"),
                "<-%s" % stage["origin"] if stage.get("origin") else "",
            ),
        )
        for entry in report.entries
        for j, job in enumerate(entry.get("jobs") or [])
        for s, stage in enumerate(job.get("stages") or [])
    ]
    if stages:
        stages.sort(reverse=True)
        lines.append("")
        lines.append("top %d stages by simulated seconds:" % top)
        for seconds, key in stages[:top]:
            lines.append("  %8s  %s" % (_fmt_s(seconds), key))
    return "\n".join(lines)

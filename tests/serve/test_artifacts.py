"""ArtifactCache: LRU accounting, pinning, and eviction callbacks."""

import pytest

from repro.serve.artifacts import (
    KIND_BAG,
    KIND_BROADCAST,
    ArtifactCache,
)


class _FakeBroadcast:
    """Quacks like repro.engine.broadcast.Broadcast for sizing."""

    __slots__ = ("value", "num_records")

    def __init__(self, value):
        self.value = value
        self.num_records = 1


def _put(cache, key, nbytes, **kwargs):
    cache.get_or_build(
        key, lambda: _FakeBroadcast(None), kind=KIND_BROADCAST,
        **kwargs,
    )
    cache.charge(key, nbytes)


class TestLRU:
    def test_hit_miss_counters(self):
        cache = ArtifactCache(limit_bytes=1000)
        value, hit = cache.get_or_build(
            "a", lambda: _FakeBroadcast(1), kind=KIND_BROADCAST
        )
        assert not hit and value.value == 1
        value, hit = cache.get_or_build(
            "a", lambda: _FakeBroadcast(2), kind=KIND_BROADCAST
        )
        assert hit and value.value == 1  # factory not re-invoked
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_evicts_least_recently_used_first(self):
        evicted = []
        cache = ArtifactCache(
            limit_bytes=250, on_evict=lambda e: evicted.append(e.key)
        )
        _put(cache, "a", 100)
        _put(cache, "b", 100)
        # Touch a so b becomes the LRU victim.
        cache.get_or_build("a", None, kind=KIND_BROADCAST)
        _put(cache, "c", 100)
        assert evicted == ["b"]
        assert cache.keys() == ["a", "c"]

    def test_oversized_entry_evicts_everything_else(self):
        evicted = []
        cache = ArtifactCache(
            limit_bytes=150, on_evict=lambda e: evicted.append(e.key)
        )
        _put(cache, "a", 60)
        _put(cache, "b", 60)
        _put(cache, "big", 140)
        assert evicted == ["a", "b"]
        assert cache.keys() == ["big"]

    def test_zero_limit_is_cold(self):
        evicted = []
        cache = ArtifactCache(
            limit_bytes=0, on_evict=lambda e: evicted.append(e.key)
        )
        _put(cache, "a", 10)
        assert evicted == ["a"]
        assert len(cache) == 0
        # Every lookup is a miss forever.
        _put(cache, "a", 10)
        assert cache.stats()["misses"] == 2
        assert cache.stats()["hits"] == 0

    def test_explicit_evict_and_clear(self):
        cache = ArtifactCache(limit_bytes=1000)
        _put(cache, "a", 10)
        _put(cache, "b", 10)
        assert cache.evict("a") is True
        assert cache.evict("a") is False
        assert "a" not in cache
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["evictions"] == 2


class TestPinning:
    def test_pinned_entry_survives_pressure(self):
        evicted = []
        cache = ArtifactCache(
            limit_bytes=150, on_evict=lambda e: evicted.append(e.key)
        )
        _put(cache, "a", 100, pin=True)
        _put(cache, "b", 100)
        # a is pinned and oldest; b must be the victim even though it
        # is more recently used.
        assert evicted == ["b"]
        assert cache.keys() == ["a"]
        assert cache.total_bytes == 100

    def test_all_pinned_overshoots_then_reclaims_on_unpin(self):
        evicted = []
        cache = ArtifactCache(
            limit_bytes=150, on_evict=lambda e: evicted.append(e.key)
        )
        _put(cache, "a", 100, pin=True)
        _put(cache, "b", 100, pin=True)
        assert evicted == []
        assert cache.total_bytes == 200  # transient overshoot
        cache.unpin("a")
        assert evicted == ["a"]
        assert cache.keys() == ["b"]

    def test_pin_refcounts(self):
        cache = ArtifactCache(limit_bytes=100)
        _put(cache, "a", 90)
        assert cache.pin("a")
        assert cache.pin("a")
        cache.unpin("a")
        assert cache.evict("a") is False  # still pinned once
        cache.unpin("a")
        assert cache.evict("a") is True
        assert not cache.pin("missing")

    def test_get_or_build_pin_is_atomic(self):
        cache = ArtifactCache(limit_bytes=50)
        value, hit = cache.get_or_build(
            "a", lambda: _FakeBroadcast(None), kind=KIND_BROADCAST,
            pin=True,
        )
        # Charging over-limit cannot evict the pinned entry.
        cache.charge("a", 100)
        assert "a" in cache
        cache.unpin("a")
        assert "a" not in cache


class TestCharging:
    def test_charge_estimates_broadcast_payload(self):
        cache = ArtifactCache(limit_bytes=1 << 20)
        cache.get_or_build(
            "a", lambda: _FakeBroadcast(list(range(100))),
            kind=KIND_BROADCAST,
        )
        assert cache.entry("a").bytes > 0

    def test_charge_missing_key_is_noop(self):
        cache = ArtifactCache(limit_bytes=100)
        assert cache.charge("ghost", 10) == 0

    def test_bag_kind_charges_materialized_partitions(self, ctx):
        cache = ArtifactCache(limit_bytes=1 << 20)
        bag, _ = cache.get_or_build(
            "data", lambda: ctx.bag_of(range(500)).cache(),
            kind=KIND_BAG,
        )
        # Not yet materialized: nothing to charge.
        assert cache.charge("data") == 0
        assert bag.count() == 500
        assert cache.charge("data") > 0

    def test_eviction_of_bag_calls_back_with_entry(self, ctx):
        seen = []
        cache = ArtifactCache(
            limit_bytes=0, on_evict=lambda e: seen.append(e)
        )
        bag, _ = cache.get_or_build(
            "data", lambda: ctx.bag_of(range(10)).cache(),
            kind=KIND_BAG, pin=True,
        )
        assert bag.count() == 10
        cache.charge("data")
        cache.unpin("data")
        (entry,) = seen
        assert entry.kind == KIND_BAG
        assert entry.value is bag
        assert entry.node_id == id(bag.node)

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            ArtifactCache(limit_bytes=-1)

"""Shuffle-stage accounting and the trace invariants of engine.validate.

The headline regression: a cogroup (and everything derived from it --
repartition joins, left-outer joins, subtract) must schedule exactly
*one* reduce stage that reads both sides' shuffle files.  The seed
executor left the right side's folded stage in the job, double-charging
every repartition join.
"""

import pytest

from repro.engine import (
    JobMetrics,
    TraceInvariantError,
    validate_job,
    validate_trace,
)


def keyed(n, tags=10, sign=1):
    return [("k%d" % (i % tags), sign * i) for i in range(n)]


class TestCogroupStageAccounting:
    def test_cogroup_schedules_exactly_one_reduce_stage(self, ctx):
        left = ctx.bag_of(keyed(30))
        right = ctx.bag_of(keyed(30, sign=-1))
        left.cogroup(right).collect()
        job = ctx.trace.jobs[-1]
        shuffles = [s for s in job.stages if s.kind == "shuffle"]
        assert len(shuffles) == 1

    def test_cogroup_of_two_30_record_bags_traces_60_and_60(self, ctx):
        left = ctx.bag_of(keyed(30))
        right = ctx.bag_of(keyed(30, sign=-1))
        left.cogroup(right).collect()
        job = ctx.trace.jobs[-1]
        stage = [s for s in job.stages if s.kind == "shuffle"][0]
        assert stage.total_records == 60
        assert stage.shuffle_read_records == 60
        assert job.total_shuffle_records == 60

    def test_repartition_join_not_double_charged(self, ctx):
        left = ctx.bag_of(keyed(30))
        right = ctx.bag_of(keyed(30, sign=-1))
        left.join(right).collect()
        job = ctx.trace.jobs[-1]
        shuffles = [s for s in job.stages if s.kind == "shuffle"]
        assert len(shuffles) == 1
        assert job.total_shuffle_records == 60

    def test_cogroup_results_unchanged(self, ctx):
        left = ctx.bag_of([("a", 1), ("b", 2), ("a", 3)])
        right = ctx.bag_of([("a", "x"), ("c", "y")])
        got = dict(left.cogroup(right).collect())
        assert sorted(got["a"][0]) == [1, 3]
        assert got["a"][1] == ["x"]
        assert got["b"] == ([2], [])
        assert got["c"] == ([], ["y"])

    def test_left_outer_and_subtract_share_the_layout(self, ctx):
        for op in ("left_outer_join", "subtract_by_key"):
            left = ctx.bag_of(keyed(20))
            right = ctx.bag_of(keyed(10))
            getattr(left, op)(right).collect()
            job = ctx.trace.jobs[-1]
            shuffles = [s for s in job.stages if s.kind == "shuffle"]
            assert len(shuffles) == 1
            assert job.total_shuffle_records == 30


class TestCoalesceStageKind:
    def test_coalesce_has_its_own_kind(self, ctx):
        bag = ctx.bag_of(range(20), num_partitions=8).coalesce(2)
        bag.collect()
        kinds = [stage.kind for stage in ctx.trace.jobs[-1].stages]
        assert kinds == ["input", "coalesce"]

    def test_coalesce_is_not_a_scheduled_stage(self, ctx):
        plain = ctx.bag_of(range(20), num_partitions=8)
        plain.collect()
        base = ctx.cost_breakdown().stage_overhead_s
        ctx.reset_trace()
        ctx.bag_of(range(20), num_partitions=8).coalesce(2).collect()
        assert ctx.cost_breakdown().stage_overhead_s == pytest.approx(
            base
        )


class TestValidateModule:
    def make_valid_job(self):
        job = JobMetrics(job_id=0, action="collect")
        inp = job.new_stage("input", origin="Parallelize")
        inp.task_records.extend([5, 5])
        red = job.new_stage("shuffle", origin="ReduceByKey")
        red.task_records.extend([4, 4])
        red.shuffle_read_records = 8
        red.shuffle_write_records = 8
        return job

    def test_valid_job_passes(self):
        validate_job(self.make_valid_job())

    def test_unknown_stage_kind_rejected(self):
        job = self.make_valid_job()
        job.stages[0].kind = "mystery"
        with pytest.raises(TraceInvariantError):
            validate_job(job)

    def test_negative_counts_rejected(self):
        job = self.make_valid_job()
        job.stages[1].task_records[0] = -1
        with pytest.raises(TraceInvariantError):
            validate_job(job)

    def test_narrow_stage_with_shuffle_volume_rejected(self):
        job = self.make_valid_job()
        job.stages[0].shuffle_read_records = 3
        with pytest.raises(TraceInvariantError):
            validate_job(job)

    def test_read_write_mismatch_rejected(self):
        # The double-count signature: a stage reading more than the map
        # side wrote for it.
        job = self.make_valid_job()
        job.stages[1].shuffle_read_records = 16
        with pytest.raises(TraceInvariantError):
            validate_job(job)

    def test_reads_beyond_upstream_writes_rejected(self):
        job = self.make_valid_job()
        job.stages[1].shuffle_read_records = 100
        job.stages[1].shuffle_write_records = 100
        with pytest.raises(TraceInvariantError):
            validate_job(job)

    def test_anonymous_shuffle_stage_rejected(self):
        # The seed's folded cogroup stage had no origin; a scheduled
        # reduce stage must name the wide operator that opened it.
        job = self.make_valid_job()
        job.stages[1].origin = ""
        with pytest.raises(TraceInvariantError):
            validate_job(job)

    def test_tasks_fewer_than_reads_rejected(self):
        job = self.make_valid_job()
        job.stages[1].task_records = [1, 1]
        with pytest.raises(TraceInvariantError):
            validate_job(job)


class TestValidationWiring:
    def test_every_executed_job_passes_validation(self, ctx):
        bag = ctx.bag_of(keyed(40))
        bag.reduce_by_key(lambda a, b: a + b).collect()
        bag.group_by_key().count()
        bag.cogroup(ctx.bag_of(keyed(12))).collect()
        bag.join(ctx.bag_of(keyed(8)), strategy="broadcast").collect()
        ctx.bag_of(range(9)).coalesce(2).union(
            ctx.bag_of(range(3))
        ).collect()
        validate_trace(ctx.trace)
        ctx.validate_trace()

    def test_executor_validates_eagerly(self, config):
        from dataclasses import replace

        from repro.engine import EngineContext

        checked = EngineContext(config)
        assert checked.config.validate_traces
        checked.bag_of(keyed(10)).reduce_by_key(
            lambda a, b: a + b
        ).collect()
        unchecked = EngineContext(
            replace(config, validate_traces=False)
        )
        unchecked.bag_of(keyed(10)).reduce_by_key(
            lambda a, b: a + b
        ).collect()
        # Both produce valid traces; the flag only controls eager checks.
        validate_trace(unchecked.trace)

"""Execution metrics: the trace the cost model consumes.

The engine records, for every job it runs, the same quantities a Spark UI
would show: stages, per-task input record counts, shuffle read volumes,
spill volumes, and broadcast sizes.  The cost model (``costmodel.py``) turns
this trace into simulated wall-clock seconds for a given
:class:`~repro.engine.config.ClusterConfig`.

Concurrency: the DAG scheduler (:mod:`repro.engine.dag`) evaluates
independent plan branches on separate threads, and two branches may
credit work to the *same* stage (a shared input stage feeding both).
Every incremental mutator here is therefore guarded by a per-object
lock; since all credited quantities are sums, the final totals are
deterministic regardless of interleaving.  Plain field assignment on a
freshly created stage (one not yet visible to other threads) needs no
lock and is left alone.
"""

import threading
from dataclasses import dataclass, field


@dataclass
class StageMetrics:
    """Metrics for one stage (a fused pipeline over one set of partitions).

    Attributes:
        stage_id: Stage number within the trace.
        kind: How the stage's input partitions were obtained:
            ``"input"`` (driver-provided data) and ``"shuffle"`` (a wide
            operator's reduce side) are scheduled task sets;
            ``"union"``, ``"coalesce"``, and ``"cached"`` are narrow
            continuations whose tasks belong to the stages that consume
            them.  See :mod:`repro.engine.validate` for the invariants
            each kind must satisfy.
        task_records: Per-task record counts, *including* extra work that
            UDFs reported (see :mod:`repro.engine.work`).  Task ``i``
            corresponds to partition ``i`` of the stage input.
        shuffle_read_records: Records read over the network to form the
            stage input (0 for non-shuffle stages).
        shuffle_write_records: Records the upstream map side wrote into
            the shuffle feeding this stage.  Always equals
            ``shuffle_read_records`` in a valid trace (every shuffled
            record is read exactly once); recorded separately so the
            validator can prove it.
        spilled_records: Records spilled to disk during the shuffle because
            the in-memory working set was too large.
        task_seconds: *Measured* wall-clock seconds per task, recorded
            by the task runtime next to the simulated counters.  Task
            ``i`` corresponds to partition ``i``; driver-inline work
            (unions, shuffle bucketing) is not timed.  Only the
            *successful* attempt of each task is credited here, so
            retried tasks are never double-counted; time burned in
            failed attempts accrues to ``failed_attempt_seconds``.
        failed_attempt_seconds: Wall-clock spent in task attempts that
            failed (and were retried or gave up).  Kept separate from
            ``task_seconds`` so per-stage measured totals stay
            comparable across runs with and without faults.
        task_retries: Task attempts beyond the first that the scheduler
            launched for this stage (each recovery from a fault adds
            one).
        straggler_tasks: Tasks whose measured runtime exceeded the
            configured multiple of their task set's median.
    """

    stage_id: int
    kind: str = "input"
    task_records: list = field(default_factory=list)
    shuffle_read_records: int = 0
    shuffle_write_records: int = 0
    #: Records a full shuffle would have moved here but did not because
    #: the optimizer elided (part of) the shuffle: the input was already
    #: laid out as this stage required (see :mod:`repro.engine.optimize`).
    #: Only shuffle stages may carry a non-zero value.
    shuffle_records_saved: int = 0
    spilled_records: int = 0
    #: Meta-scale stages carry per-tag summary records, charged at the
    #: config's result_record_bytes instead of bytes_per_record.
    meta: bool = False
    #: Name (and label, if set) of the plan node that opened this stage.
    origin: str = ""
    task_seconds: list = field(default_factory=list)
    failed_attempt_seconds: float = 0.0
    task_retries: int = 0
    straggler_tasks: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False,
        compare=False,
    )

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def num_tasks(self):
        return len(self.task_records)

    @property
    def total_records(self):
        return sum(self.task_records)

    @property
    def measured_seconds(self):
        """Total measured task wall-clock for this stage.

        Successful attempts only; see ``failed_attempt_seconds`` for
        time lost to faults.
        """
        return sum(self.task_seconds)

    def add_task_records(self, partition_index, count):
        """Credit ``count`` processed records to the given task."""
        with self._lock:
            while len(self.task_records) <= partition_index:
                self.task_records.append(0)
            self.task_records[partition_index] += count

    def add_task_seconds(self, partition_index, seconds):
        """Credit measured wall-clock seconds to the given task."""
        with self._lock:
            while len(self.task_seconds) <= partition_index:
                self.task_seconds.append(0.0)
            self.task_seconds[partition_index] += seconds

    def add_failed_attempt_seconds(self, seconds):
        """Credit wall-clock burned in a failed task attempt."""
        with self._lock:
            self.failed_attempt_seconds += seconds

    def add_task_retries(self, count):
        """Credit retried task attempts to this stage."""
        with self._lock:
            self.task_retries += count

    def add_straggler_tasks(self, count):
        """Credit detected straggler tasks to this stage."""
        with self._lock:
            self.straggler_tasks += count


@dataclass
class JobMetrics:
    """Metrics for one job (one action: collect, count, reduce, ...)."""

    job_id: int
    action: str = ""
    stages: list = field(default_factory=list)
    broadcast_records: int = 0
    broadcast_meta_records: int = 0
    collected_records: int = 0
    saved_records: int = 0
    saved_meta_records: int = 0
    label: str = ""
    #: Submission slot for jobs run concurrently via ``ctx.gather``:
    #: the index of the thunk that submitted this job, or -1 for jobs
    #: submitted from the driver thread.  Used to restore submission
    #: order in the trace after a concurrent window closes.
    slot: int = -1
    #: Accounting-window ticket (``ctx.begin_job``): every job created
    #: while a window is open on the submitting thread carries the
    #: window's ticket, so ``ctx.end_job`` can extract exactly its own
    #: jobs even when several windows run concurrently (the service's
    #: worker slots).  -1 means "no window".
    ticket: int = -1

    def new_stage(self, kind, meta=False, origin=""):
        stage = StageMetrics(
            stage_id=len(self.stages), kind=kind, meta=meta,
            origin=origin,
        )
        self.stages.append(stage)
        return stage

    @property
    def total_records(self):
        return sum(stage.total_records for stage in self.stages)

    @property
    def total_shuffle_records(self):
        return sum(stage.shuffle_read_records for stage in self.stages)

    @property
    def measured_task_seconds(self):
        """Measured task wall-clock summed over the job's stages."""
        return sum(stage.measured_seconds for stage in self.stages)

    @property
    def failed_attempt_seconds(self):
        return sum(stage.failed_attempt_seconds for stage in self.stages)

    @property
    def task_retries(self):
        return sum(stage.task_retries for stage in self.stages)


@dataclass
class ExecutionTrace:
    """All jobs run against one :class:`~repro.engine.context.EngineContext`.

    The trace is append-only; ``reset()`` starts a fresh measurement window
    (used by the benchmark harness between systems).
    """

    jobs: list = field(default_factory=list)
    #: Next job id.  Monotonic across the trace's lifetime, so draining
    #: completed jobs (``take_ticket_jobs``) never recycles an id.
    next_job_id: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False,
        compare=False,
    )
    _slots: threading.local = field(
        default_factory=threading.local, init=False, repr=False,
        compare=False,
    )

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        del state["_slots"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._slots = threading.local()

    def new_job(self, action, label=""):
        with self._lock:
            job = JobMetrics(
                job_id=self.next_job_id, action=action, label=label,
                slot=getattr(self._slots, "value", -1),
                ticket=getattr(self._slots, "ticket", -1),
            )
            self.next_job_id += 1
            self.jobs.append(job)
            return job

    def set_job_slot(self, slot):
        """Tag jobs created on *this thread* with a submission slot.

        ``ctx.gather`` assigns each concurrent thunk a slot so the
        trace can be restored to submission order afterwards; pass
        ``-1`` (the default for untagged threads) to clear.
        """
        self._slots.value = slot

    def current_slot(self):
        """The submission slot tagged on this thread (-1 if none)."""
        return getattr(self._slots, "value", -1)

    def set_job_ticket(self, ticket):
        """Tag jobs created on *this thread* with an accounting ticket.

        ``ctx.begin_job`` opens a window by tagging the calling thread;
        ``-1`` clears.  Orthogonal to the gather slot: the slot orders
        concurrent jobs, the ticket groups them into windows.
        """
        self._slots.ticket = ticket

    def current_ticket(self):
        """The accounting ticket tagged on this thread (-1 if none)."""
        return getattr(self._slots, "ticket", -1)

    def take_ticket_jobs(self, ticket, drain=True):
        """Jobs tagged with ``ticket``, in trace order.

        With ``drain=True`` (the default) the returned jobs are removed
        from the trace -- this is how a long-lived context keeps its
        trace bounded: each completed accounting window carries its own
        jobs away.  ``drain=False`` returns them but leaves the trace
        intact (used when a surrounding harness still wants the full
        trace, e.g. the bench regression gate).
        """
        with self._lock:
            taken = [job for job in self.jobs if job.ticket == ticket]
            if drain:
                self.jobs = [
                    job for job in self.jobs if job.ticket != ticket
                ]
            return taken

    def restore_submission_order(self, start_id=0):
        """Stable-sort the jobs with ``job_id >= start_id`` by slot.

        Jobs appended concurrently land in completion order; sorting by
        the submission slot (stable, so a slot's own jobs keep their
        relative order) makes the trace independent of thread timing.
        The window is addressed by job *id*, not list position, so a
        concurrent ``take_ticket_jobs`` drain (another worker slot
        closing its accounting window) cannot shift it; the sorted jobs
        are renumbered consecutively from the window's smallest id.
        """
        with self._lock:
            keep = [j for j in self.jobs if j.job_id < start_id]
            window = [j for j in self.jobs if j.job_id >= start_id]
            if not window:
                return
            base = min(job.job_id for job in window)
            window.sort(key=lambda job: job.slot)
            for index, job in enumerate(window):
                job.job_id = base + index
            self.jobs = keep + window

    def reset(self):
        with self._lock:
            self.jobs.clear()

    @property
    def num_jobs(self):
        return len(self.jobs)

    @property
    def num_stages(self):
        return sum(len(job.stages) for job in self.jobs)

    @property
    def num_tasks(self):
        return sum(
            stage.num_tasks for job in self.jobs for stage in job.stages
        )

    @property
    def total_records(self):
        return sum(job.total_records for job in self.jobs)

    @property
    def measured_task_seconds(self):
        """Measured task wall-clock summed over every job.

        Successful attempts only: a retried task contributes the time
        of the attempt that produced its result, never the failed ones
        (those are in :attr:`failed_attempt_seconds`).
        """
        return sum(job.measured_task_seconds for job in self.jobs)

    @property
    def failed_attempt_seconds(self):
        """Wall-clock lost to failed task attempts across every job."""
        return sum(job.failed_attempt_seconds for job in self.jobs)

    @property
    def task_retries(self):
        return sum(job.task_retries for job in self.jobs)

    def summary(self):
        """Human-readable one-line summary of the trace."""
        return (
            "jobs=%d stages=%d tasks=%d records=%d"
            % (self.num_jobs, self.num_stages, self.num_tasks,
               self.total_records)
        )

    def describe(self, max_jobs=None):
        """A multi-line per-job rendering of the trace (a mini Spark UI).

        Args:
            max_jobs: Show only the last ``max_jobs`` jobs.
        """
        jobs = self.jobs if max_jobs is None else self.jobs[-max_jobs:]
        lines = [self.summary()]
        for job in jobs:
            label = " [%s]" % job.label if job.label else ""
            lines.append(
                "job %d: %s%s -- %d stages, %d records"
                % (job.job_id, job.action, label, len(job.stages),
                   job.total_records)
            )
            for stage in job.stages:
                origin = " <- %s" % stage.origin if stage.origin else ""
                scale = " meta" if stage.meta else ""
                extras = []
                if stage.shuffle_read_records:
                    extras.append(
                        "shuffle=%d" % stage.shuffle_read_records
                    )
                if stage.shuffle_records_saved:
                    extras.append(
                        "saved=%d" % stage.shuffle_records_saved
                    )
                if stage.spilled_records:
                    extras.append("spill=%d" % stage.spilled_records)
                if stage.task_seconds:
                    extras.append(
                        "measured=%.3fs" % stage.measured_seconds
                    )
                if stage.task_retries:
                    extras.append("retries=%d" % stage.task_retries)
                if stage.straggler_tasks:
                    extras.append(
                        "stragglers=%d" % stage.straggler_tasks
                    )
                lines.append(
                    "  stage %d (%s%s): tasks=%d records=%d %s%s"
                    % (
                        stage.stage_id, stage.kind, scale,
                        stage.num_tasks, stage.total_records,
                        " ".join(extras), origin,
                    )
                )
        return "\n".join(lines)

"""check_serializable: the shared closure-probing primitive."""

import functools
import threading

import pytest

from repro.engine.runtime import check_serializable
from repro.engine.runtime.serde import ensure_serializable
from repro.errors import SerializationError


def _closure_over(value):
    def fn(x):
        return (value, x)

    return fn


def test_clean_closure_returns_empty():
    assert check_serializable(_closure_over(41)) == []


def test_plain_lambda_is_clean():
    assert check_serializable(lambda x: x + 1) == []


def test_unpicklable_capture_names_the_variable():
    problems = check_serializable(_closure_over(threading.Lock()))
    assert len(problems) == 1
    assert "captured variable 'value'" in problems[0]
    assert "lock" in problems[0]


def test_multiple_bad_captures_all_reported():
    lock = threading.Lock()
    event = threading.Event()

    def fn(x):
        return (lock, event, x)

    problems = check_serializable(fn)
    text = "\n".join(problems)
    assert "'lock'" in text
    assert "'event'" in text


def test_unpicklable_default_argument():
    def fn(x, out=threading.Lock()):
        return (x, out)

    problems = check_serializable(fn)
    assert any("default argument 0" in p for p in problems)


def test_ensure_serializable_message_includes_details():
    fn = _closure_over(threading.Lock())
    with pytest.raises(SerializationError) as err:
        ensure_serializable(fn, "map")
    assert "captured variable 'value'" in str(err.value)
    assert "'map'" in str(err.value)


# ---------------------------------------------------------------------------
# Wrapper unwrapping: partials and bound methods used to report only the
# generic top-level error, hiding the actual offending capture.
# ---------------------------------------------------------------------------


def _add(x, extra):
    return (x, extra)


def test_partial_keyword_names_the_value():
    fn = functools.partial(_add, extra=threading.Lock())
    problems = check_serializable(fn)
    assert any("partial keyword 'extra'" in p for p in problems)
    assert any("lock" in p for p in problems)


def test_partial_positional_names_the_index():
    fn = functools.partial(_add, threading.Lock())
    problems = check_serializable(fn)
    assert any("partial argument 0" in p for p in problems)


def test_partial_over_closure_drills_into_both():
    lock = threading.Lock()
    fn = functools.partial(_closure_over(lock), )
    problems = check_serializable(fn)
    assert any("captured variable 'value'" in p for p in problems)


def test_nested_partial_unwraps_recursively():
    fn = functools.partial(
        functools.partial(_add, extra=threading.Lock())
    )
    problems = check_serializable(fn)
    assert any("partial keyword 'extra'" in p for p in problems)


def test_clean_partial_is_clean():
    assert check_serializable(functools.partial(_add, extra=2)) == []


class _Holder:
    def __init__(self):
        self.lock = threading.Lock()

    def work(self, x):
        return x


def test_bound_method_names_the_instance():
    problems = check_serializable(_Holder().work)
    assert any("bound instance (_Holder)" in p for p in problems)

"""repro.serve: a long-lived multi-tenant job service over the engine.

Where the rest of the repo runs one program per process, this package
keeps a single :class:`~repro.engine.context.EngineContext` alive and
shares it between tenants: jobs are admitted through per-tenant quotas,
scheduled by deficit round-robin in proportion to tenant weights, and
served by worker slots that account each job with
``ctx.begin_job()``/``ctx.end_job()`` so the daemon's state stays
bounded forever.  A memory-bounded LRU :class:`ArtifactCache` keeps hot
bags and broadcasts materialized across jobs -- the service-mode
payoff for the paper's iterative workloads -- and evicting an artifact
also invalidates its adoptable shuffle layouts, so the optimizer can
never elide a shuffle into partitions that no longer exist.

See ``docs/serving.md`` for the architecture and policies, and
``python -m repro.serve demo`` for a working multi-client run.
"""

from .artifacts import ArtifactCache, CacheEntry
from .client import (
    PROGRAMS,
    ServiceClient,
    decode_program,
    encode_program,
    program,
    register_program,
)
from .queue import AdmissionRejected, JobQueue, PendingJob
from .service import JobContext, JobHandle, JobService
from .tenants import TenantConfig, TenantStats

__all__ = [
    "AdmissionRejected",
    "ArtifactCache",
    "CacheEntry",
    "JobContext",
    "JobHandle",
    "JobQueue",
    "JobService",
    "PendingJob",
    "PROGRAMS",
    "ServiceClient",
    "TenantConfig",
    "TenantStats",
    "decode_program",
    "encode_program",
    "program",
    "register_program",
]

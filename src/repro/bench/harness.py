"""Experiment harness: run a task under each system, report simulated time.

Each measured run gets a fresh :class:`EngineContext` over the experiment's
cluster configuration.  The program executes for real; the reported
seconds come from the cost model over the recorded trace.  Simulated OOM
is caught and reported the way the paper's plots mark failed runs.

Next to the simulated figure, every run also records *measured* seconds:
the driver wall-clock of the run, and the summed per-task wall-clock
reported by the task runtime.  Tables and CSVs show the simulated column
by default; pass ``measured=True`` to :meth:`Sweep.to_table` /
:meth:`Sweep.to_csv` to see real runtime side by side -- useful when
comparing the serial and process-pool backends.
"""

import math
import time
from dataclasses import dataclass, field

from ..engine import EngineContext
from ..errors import SimulatedOutOfMemory
from ..observe import RunReport, entry_from_context

OOM = "OOM"


@dataclass
class RunResult:
    """Outcome of one measured run."""

    system: str
    x: object
    seconds: float = math.nan
    status: str = "ok"
    jobs: int = 0
    detail: str = ""
    #: Driver wall-clock of the whole run (plan building included).
    measured_seconds: float = math.nan
    #: Summed per-task wall-clock reported by the task runtime.
    task_seconds: float = math.nan
    #: Full :mod:`repro.observe` report entry (per-job / per-stage
    #: breakdown) for this run; ``None`` for hand-built results.
    entry: dict = None

    @property
    def failed(self):
        return self.status != "ok"

    def cell(self, measured=False):
        if self.status == "oom":
            return OOM
        if self.status == "skipped":
            return "-"
        if measured:
            return _format_seconds(self.measured_seconds)
        return _format_seconds(self.seconds)


def run_measured(config, system, x, fn):
    """Run ``fn(ctx)`` on a fresh context; return a :class:`RunResult`.

    The trace is checked against the invariants of
    :mod:`repro.engine.validate` before it is costed: a figure must
    never be computed from a malformed trace.
    """
    ctx = EngineContext(config)
    start = time.perf_counter()
    try:
        try:
            fn(ctx)
        except SimulatedOutOfMemory as oom:
            elapsed = time.perf_counter() - start
            return RunResult(
                system=system,
                x=x,
                status="oom",
                jobs=ctx.trace.num_jobs,
                detail=str(oom),
                measured_seconds=elapsed,
                task_seconds=ctx.measured_task_seconds(),
                entry=entry_from_context(
                    ctx, system, x, status="oom",
                    measured_wall_seconds=elapsed, detail=str(oom),
                ),
            )
        elapsed = time.perf_counter() - start
        ctx.validate_trace()
        return RunResult(
            system=system,
            x=x,
            seconds=ctx.simulated_seconds(),
            jobs=ctx.trace.num_jobs,
            measured_seconds=elapsed,
            task_seconds=ctx.measured_task_seconds(),
            entry=entry_from_context(
                ctx, system, x, measured_wall_seconds=elapsed,
            ),
        )
    finally:
        # Flush the run's trace sink (contexts resolve REPRO_TRACE on
        # construction, so traced bench runs append to a shared file).
        ctx.close()


@dataclass
class Sweep:
    """One experiment: systems x sweep values, rendered as a table.

    Attributes:
        title: Table heading (e.g. ``"Fig. 3b: weak scaling, PageRank"``).
        x_label: Name of the sweep parameter column.
        systems: Column order.
        results: All collected :class:`RunResult` rows.
    """

    title: str
    x_label: str
    systems: list
    results: list = field(default_factory=list)

    def add(self, result):
        self.results.append(result)

    def run(self, config, system, x, fn):
        result = run_measured(config, system, x, fn)
        self.add(result)
        return result

    def result_for(self, system, x):
        for result in self.results:
            if result.system == system and result.x == x:
                return result
        return None

    def seconds(self, system, x):
        """Simulated seconds of one cell, or None if missing/failed."""
        result = self.result_for(system, x)
        if result is None or result.failed:
            return None
        return result.seconds

    def speedup(self, baseline, system, x):
        """How much faster ``system`` is than ``baseline`` at ``x``."""
        base = self.seconds(baseline, x)
        ours = self.seconds(system, x)
        if base is None or ours is None or ours == 0:
            return None
        return base / ours

    def x_values(self):
        seen = []
        for result in self.results:
            if result.x not in seen:
                seen.append(result.x)
        return seen

    def to_table(self, measured=False):
        """Aligned text table: one row per x value, one column per system.

        With ``measured=True`` each system gets a second column showing
        real driver wall-clock next to the simulated seconds.
        """
        header = [self.x_label]
        for system in self.systems:
            header.append(system)
            if measured:
                header.append(system + " (wall)")
        rows = [header]
        for x in self.x_values():
            row = [str(x)]
            for system in self.systems:
                result = self.result_for(system, x)
                row.append(result.cell() if result else "-")
                if measured:
                    row.append(
                        result.cell(measured=True) if result else "-"
                    )
            rows.append(row)
        widths = [
            max(len(row[i]) for row in rows) for i in range(len(header))
        ]
        lines = [self.title, "=" * len(self.title)]
        for index, row in enumerate(rows):
            lines.append(
                "  ".join(
                    cell.rjust(width) for cell, width in zip(row, widths)
                )
            )
            if index == 0:
                lines.append(
                    "  ".join("-" * width for width in widths)
                )
        return "\n".join(lines)

    def print_table(self, measured=False):
        print()
        print(self.to_table(measured=measured))

    def to_report(self, label, meta=None):
        """The sweep as a :class:`repro.observe.RunReport`.

        One report entry per collected result (hand-built results
        without an entry are skipped); diffable against a saved
        baseline with :meth:`repro.observe.RunReport.compare`.
        """
        report = RunReport(label, meta=meta)
        for result in self.results:
            report.add(result.entry)
        return report

    def to_csv(self, measured=False):
        """The sweep as CSV text (x column + one column per system).

        Failed cells render as ``OOM``; missing cells are empty.  Handy
        for plotting the figures with external tooling.  With
        ``measured=True`` each system additionally gets a
        ``<system>_wall_seconds`` column of real driver wall-clock.
        """
        header = [self.x_label]
        for system in self.systems:
            header.append(system)
            if measured:
                header.append(system + "_wall_seconds")
        lines = [",".join(header)]
        for x in self.x_values():
            row = [str(x)]
            for system in self.systems:
                result = self.result_for(system, x)
                if result is None:
                    row.append("")
                elif result.failed:
                    row.append(OOM)
                else:
                    row.append("%.3f" % result.seconds)
                if measured:
                    if result is None or math.isnan(
                        result.measured_seconds
                    ):
                        row.append("")
                    else:
                        row.append("%.3f" % result.measured_seconds)
            lines.append(",".join(row))
        return "\n".join(lines) + "\n"


def _format_seconds(seconds):
    if seconds != seconds:  # NaN
        return "-"
    if seconds >= 100:
        return "%.0f s" % seconds
    if seconds >= 1:
        return "%.1f s" % seconds
    return "%.2f s" % seconds


def geometric_x_values(start, stop, factor=2):
    """Sweep values ``start, start*factor, ... <= stop`` (inclusive)."""
    values = []
    x = start
    while x <= stop:
        values.append(x)
        x *= factor
    return values

"""Task payloads: the self-contained unit of work a backend executes.

A *task* is one partition's worth of a stage's work, packaged so it can
run anywhere: in the driver process (:class:`SerialBackend`) or in a
forked worker (:class:`ProcessPoolBackend`).  Tasks therefore hold only
picklable state -- UDFs, operator names, scalar config values -- never
plan nodes, contexts, or metrics objects.  All metrics accounting stays
on the driver: a task returns its outputs (plus the per-operator record
counts the cost model needs), and the executor credits the trace.

The task classes mirror the executor's per-partition loops exactly;
:mod:`repro.engine.executor` decides *what* runs where, these classes
decide *how* one partition is processed.
"""

import os
import threading
import time
import traceback

from ...errors import (
    InjectedFault,
    PlanError,
    SimulatedOutOfMemory,
    UdfError,
)
from ..work import unwrap

_SENTINEL = object()

#: Pipeline step tags for fused elementwise chains.
STEP_MAP = 0
STEP_FILTER = 1
STEP_FLATMAP = 2


def call_udf(operator, fn, *args):
    """Invoke a UDF, wrapping user errors with the operator's name."""
    try:
        return fn(*args)
    except (SimulatedOutOfMemory, UdfError):
        raise
    except Exception as exc:
        raise UdfError(operator, exc) from exc


class FusedPipelineTask:
    """Stream one partition through a fused map/filter/flat_map chain.

    ``steps`` is the chain bottom-up: ``(kind, fn, operator)`` triples.
    Returns ``(records, counts, works)`` where ``counts[i]`` is the
    number of records operator ``i`` processed and ``works[i]`` the
    extra :class:`~repro.engine.work.Weighted` work it reported.
    """

    __slots__ = ("steps",)

    def __init__(self, steps):
        self.steps = list(steps)

    @property
    def operator(self):
        return "+".join(step[2] for step in self.steps)

    @property
    def udfs(self):
        return tuple(step[1] for step in self.steps)

    def __call__(self, part):
        steps = self.steps
        num = len(steps)
        counts = [0] * num
        works = [[0] for _ in range(num)]
        out = []
        # An explicit iterator stack (one level per in-flight flat_map
        # expansion) keeps evaluation depth independent of chain length.
        stack = [(0, iter(part))]
        while stack:
            depth, iterator = stack[-1]
            item = next(iterator, _SENTINEL)
            if item is _SENTINEL:
                stack.pop()
                continue
            i = depth
            while i < num:
                kind, fn, operator = steps[i]
                counts[i] += 1
                if kind == STEP_MAP:
                    item = unwrap(call_udf(operator, fn, item), works[i])
                elif kind == STEP_FILTER:
                    if not unwrap(call_udf(operator, fn, item), works[i]):
                        break
                else:
                    produced = unwrap(
                        call_udf(operator, fn, item), works[i]
                    )
                    stack.append((i + 1, iter(produced)))
                    break
                i += 1
            else:
                out.append(item)
        return out, counts, [work[0] for work in works]


class CompiledPipelineTask:
    """A fused chain specialized into one generated loop function.

    Built by :mod:`repro.engine.codegen` for chains whose UDFs are
    proven pure and Weighted-free; observationally identical to
    :class:`FusedPipelineTask` (same records, same per-operator
    counts, ``works`` all zero -- which the compile gate guarantees the
    interpreter would also report).

    Carries only picklable state: the steps (for operator names, UDFs,
    and the interpreted-fallback contract), the generated source text,
    and the chain-fingerprint cache key.  The code object itself is
    compiled lazily -- at most once per key per process -- so the task
    ships across the process-pool boundary as cheaply as the
    interpreted one.
    """

    __slots__ = ("steps", "source", "key", "_fn")

    def __init__(self, steps, source, key):
        self.steps = list(steps)
        self.source = source
        self.key = key
        self._fn = None

    @property
    def operator(self):
        return "+".join(step[2] for step in self.steps)

    @property
    def udfs(self):
        return tuple(step[1] for step in self.steps)

    def __reduce__(self):
        return (CompiledPipelineTask, (self.steps, self.source, self.key))

    def __call__(self, part):
        fn = self._fn
        if fn is None:
            from ...engine.codegen import compiled_pipeline_fn

            fn = self._fn = compiled_pipeline_fn(self.key, self.source)
        try:
            out, counts = fn(part, tuple(step[1] for step in self.steps))
        except (SimulatedOutOfMemory, UdfError):
            raise
        except Exception as exc:
            # The specialized loop has no per-call wrapper; attribute
            # the failure to the whole chain.
            raise UdfError(self.operator, exc) from exc
        return out, counts, [0] * len(self.steps)


class MapPartitionsTask:
    """Apply ``fn(items, partition_index)`` to one whole partition.

    Returns ``(records, work)``: a UDF that processes the partition
    record-at-a-time internally may wrap its result in
    :class:`~repro.engine.work.Weighted`, and the declared work is
    credited to the stage exactly as the fused elementwise steps
    credit theirs.
    """

    __slots__ = ("fn", "operator")

    def __init__(self, fn, operator):
        self.fn = fn
        self.operator = operator

    @property
    def udfs(self):
        return (self.fn,)

    def __call__(self, part, index):
        work = [0]
        result = unwrap(
            call_udf(self.operator, self.fn, part, index), work
        )
        return list(result), work[0]


class CombineTask:
    """Per-partition combine for ``reduce_by_key`` (map or reduce side).

    Folds ``(key, value)`` records into one record per key with the
    user's reduce function; used unchanged on both sides of the
    shuffle.  Returns ``(records, work)``: each reduction's result is
    unwrapped like every other UDF result, so a ``Weighted``-returning
    reducer credits its declared work instead of leaking wrapper
    objects into the shuffle.
    """

    __slots__ = ("fn", "operator")

    def __init__(self, fn, operator):
        self.fn = fn
        self.operator = operator

    @property
    def udfs(self):
        return (self.fn,)

    def __call__(self, records):
        work = [0]
        acc = {}
        for record in records:
            require_keyed(record)
            key, value = record
            if key in acc:
                acc[key] = unwrap(
                    call_udf(self.operator, self.fn, acc[key], value),
                    work,
                )
            else:
                acc[key] = value
        return list(acc.items()), work[0]


class GroupBucketTask:
    """Materialize one reduce bucket's groups for ``group_by_key``.

    Carries the scalar memory-model constants it needs (per-record
    rate, overhead factor, per-task limit) so the memory check runs
    wherever the task runs.
    """

    __slots__ = ("record_bytes", "overhead_factor", "limit", "operator")

    def __init__(self, record_bytes, overhead_factor, limit, operator):
        self.record_bytes = record_bytes
        self.overhead_factor = overhead_factor
        self.limit = limit
        self.operator = operator

    def _check_group(self, what, num_values):
        needed = int(num_values * self.record_bytes * self.overhead_factor)
        if needed > self.limit:
            raise SimulatedOutOfMemory(what, needed, self.limit)

    def __call__(self, bucket):
        groups = {}
        for record in bucket:
            require_keyed(record)
            key, value = record
            groups.setdefault(key, []).append(value)
        for key, values in groups.items():
            self._check_group(
                "materializing group %r" % (key,), len(values)
            )
        return list(groups.items())


class CoGroupBucketTask(GroupBucketTask):
    """Materialize one reduce bucket of a cogroup (two input sides)."""

    __slots__ = ()

    def __call__(self, left_bucket, right_bucket):
        groups = {}
        for key, value in left_bucket:
            groups.setdefault(key, ([], []))[0].append(value)
        for key, value in right_bucket:
            groups.setdefault(key, ([], []))[1].append(value)
        for key, (lvals, rvals) in groups.items():
            self._check_group(
                "cogrouping key %r" % (key,), len(lvals) + len(rvals)
            )
        return list(groups.items())


class BroadcastJoinProbeTask:
    """Probe one stream partition against a broadcast hash table."""

    __slots__ = ("table", "operator")

    def __init__(self, table, operator):
        self.table = table
        self.operator = operator

    def __call__(self, part):
        produced = []
        for record in part:
            require_keyed(record)
            key, value = record
            for other in self.table.get(key, ()):
                produced.append((key, (value, other)))
        return produced


class CrossBroadcastTask:
    """Pair one stream partition with a broadcast payload."""

    __slots__ = ("payload", "broadcast_side", "operator")

    def __init__(self, payload, broadcast_side, operator):
        self.payload = payload
        self.broadcast_side = broadcast_side
        self.operator = operator

    def __call__(self, part):
        produced = []
        payload = self.payload
        if self.broadcast_side == "right":
            for item in part:
                for other in payload:
                    produced.append((item, other))
        else:
            for item in part:
                for other in payload:
                    produced.append((other, item))
        return produced


def require_keyed(record):
    if not isinstance(record, tuple) or len(record) != 2:
        raise PlanError(
            "keyed operator expects (key, value) records, got %r"
            % (record,)
        )


# ----------------------------------------------------------------------
# Invocation and outcome: what actually crosses the backend boundary
# ----------------------------------------------------------------------


class Invocation:
    """One attempt of one task: the unit a backend runs.

    ``inject_fault`` is set by the scheduler when the fault injector
    planned a failure for this (stage, task, attempt); the task then
    dies with :class:`~repro.errors.InjectedFault` exactly where a
    killed worker would.

    ``collect_events`` is set when the dispatching context has tracing
    enabled: the attempt then records worker-side trace events (see
    :func:`record_worker_event`) into its outcome, to be re-anchored
    onto the driver timeline by the scheduler.

    Plain ``__slots__`` classes, not dataclasses: a paper-scale stage
    dispatches over a thousand of these, so construction is hot.
    """

    __slots__ = ("task", "args", "task_index", "attempt", "inject_fault",
                 "collect_events")

    def __init__(self, task, args, task_index, attempt=1,
                 inject_fault=False, collect_events=False):
        self.task = task
        self.args = args
        self.task_index = task_index
        self.attempt = attempt
        self.inject_fault = inject_fault
        self.collect_events = collect_events

    @property
    def operator(self):
        return getattr(self.task, "operator", type(self.task).__name__)

    def __reduce__(self):
        return (
            Invocation,
            (self.task, self.args, self.task_index, self.attempt,
             self.inject_fault, self.collect_events),
        )


class TaskOutcome:
    """What came back from running one invocation.

    ``start_epoch`` is the attempt's start on the machine's shared
    wall clock (``time.time()``); ``events`` are worker-side trace
    events as ``(name, kind, offset_s, dur_s, args)`` tuples with
    offsets relative to ``start_epoch`` (negative offsets are allowed:
    deserializing the task's closure happens before its body runs).
    Both exist so the driver can re-anchor what happened inside a
    worker process onto its own timeline; ``events`` is ``None``
    unless the invocation asked for collection.
    """

    __slots__ = ("task_index", "ok", "value", "error", "error_traceback",
                 "seconds", "worker_pid", "attempt", "start_epoch",
                 "events")

    def __init__(self, task_index, ok, value=None, error=None,
                 error_traceback="", seconds=0.0, worker_pid=0, attempt=1,
                 start_epoch=0.0, events=None):
        self.task_index = task_index
        self.ok = ok
        self.value = value
        self.error = error
        self.error_traceback = error_traceback
        self.seconds = seconds
        self.worker_pid = worker_pid
        self.attempt = attempt
        self.start_epoch = start_epoch
        self.events = events

    @property
    def retryable(self):
        """Transient failures are retried; deterministic bugs are not."""
        return isinstance(self.error, InjectedFault) or bool(
            getattr(self.error, "retryable", False)
        )

    def __reduce__(self):
        return (
            TaskOutcome,
            (self.task_index, self.ok, self.value, self.error,
             self.error_traceback, self.seconds, self.worker_pid,
             self.attempt, self.start_epoch, self.events),
        )


#: Worker-side event buffer, active only while an event-collecting
#: attempt runs on this *thread*.  Each entry is
#: ``(name, kind, offset_s, dur_s, args)`` with the offset relative to
#: the running attempt's start (set by :func:`execute_invocation`).
#: Thread-local, not module-global: with the DAG scheduler the serial
#: backend runs concurrent attempts on separate driver threads, and a
#: shared buffer would interleave (or drop) their events.
_worker_state = threading.local()


def record_worker_event(name, kind, dur=None, **args):
    """Record a trace event from inside a running task.

    A no-op unless the current attempt was dispatched with tracing
    enabled, so task code may call it unconditionally.  The event is
    carried back to the driver in the attempt's
    :class:`TaskOutcome.events` and re-anchored onto the driver
    timeline there, relative to the attempt's own start (never the
    stage's dispatch time, which may precede the attempt by arbitrary
    queueing delay).
    """
    events = getattr(_worker_state, "events", None)
    if events is None:
        return
    offset = time.perf_counter() - _worker_state.anchor
    if dur is not None:
        offset -= dur
    events.append((name, kind, offset, dur, args))


def execute_invocation(invocation):
    """Run one invocation, capturing outcome, error, and wall-clock.

    Never raises (short of a ``BaseException`` like a keyboard
    interrupt): failures come back as data so the scheduler on the
    driver owns the retry policy regardless of backend.
    """
    events = None
    start = time.perf_counter()
    start_epoch = time.time()
    if invocation.collect_events:
        events = []
        _worker_state.events = events
        _worker_state.anchor = start
    try:
        if invocation.inject_fault:
            raise InjectedFault(
                "injected fault: task %d attempt %d"
                % (invocation.task_index, invocation.attempt)
            )
        value = invocation.task(*invocation.args)
    except Exception as exc:
        return TaskOutcome(
            task_index=invocation.task_index,
            ok=False,
            error=exc,
            error_traceback=traceback.format_exc(),
            seconds=time.perf_counter() - start,
            worker_pid=os.getpid(),
            attempt=invocation.attempt,
            start_epoch=start_epoch,
            events=events,
        )
    finally:
        if events is not None:
            _worker_state.events = None
    return TaskOutcome(
        task_index=invocation.task_index,
        ok=True,
        value=value,
        seconds=time.perf_counter() - start,
        worker_pid=os.getpid(),
        attempt=invocation.attempt,
        start_epoch=start_epoch,
        events=events,
    )

"""Failure paths through the flattening machinery.

Errors raised deep inside lifted operations must surface with enough
context to debug, and simulated resource failures must not be swallowed.
"""

import pytest

from repro.core import (
    group_by_key_into_nested_bag,
    nested_map,
    while_loop,
)
from repro.core.primitives import InnerBag, InnerScalar
from repro.engine import ClusterConfig, EngineContext
from repro.errors import (
    FlatteningError,
    SimulatedOutOfMemory,
    UdfError,
)


class TestUdfErrors:
    def test_error_in_lifted_map_is_wrapped(self, nested):
        broken = nested.inner.map(lambda x: 1 // (x - 1))
        with pytest.raises(UdfError) as err:
            broken.collect()
        assert isinstance(err.value.original, ZeroDivisionError)

    def test_error_in_scalar_op_is_wrapped(self, lctx):
        scalar = lctx.constant(0)
        with pytest.raises(UdfError):
            scalar.map(lambda v: 1 / v).collect()

    def test_error_in_binary_op(self, lctx):
        a = lctx.constant(1)
        b = lctx.constant(0)
        with pytest.raises(UdfError):
            (a / b).collect()

    def test_error_inside_lifted_loop_body(self, ctx):
        def udf(x):
            return while_loop(
                {"x": x},
                cond_fn=lambda s: s["x"] < 5,
                body_fn=lambda s: {
                    "x": s["x"].map(lambda v: v // 0)
                },
            )["x"]

        with pytest.raises(UdfError):
            nested_map(ctx.bag_of([1]), udf)

    def test_original_exception_chained(self, nested):
        broken = nested.inner.map(lambda x: x.missing_attribute)
        with pytest.raises(UdfError) as err:
            broken.collect()
        assert err.value.__cause__ is err.value.original


class TestOomPropagation:
    def test_oom_inside_lifted_udf_not_swallowed(self):
        ctx = EngineContext(
            ClusterConfig(
                machines=1,
                cores_per_machine=1,
                memory_per_machine_bytes=2_000,
                bytes_per_record=100.0,
                memory_overhead_factor=1.0,
                memory_safety_fraction=1.0,
            )
        )
        records = [("hot", i) for i in range(200)]
        nested = group_by_key_into_nested_bag(ctx.bag_of(records))
        # A lifted group_by_key materializes per-(tag, key) groups.
        grouped = nested.inner.map(lambda x: (1, x)).group_by_key()
        with pytest.raises(SimulatedOutOfMemory):
            grouped.collect()


class TestContextMisuse:
    def test_stale_primitive_after_loop_detected(self, ctx):
        """Using a pre-loop primitive with post-loop state is the
        classic mistake; the context check catches it."""
        from repro.core import nested_map

        def udf(x):
            state = while_loop(
                {"x": x},
                cond_fn=lambda s: s["x"] < 3,
                body_fn=lambda s: {"x": s["x"] + 1},
            )
            # state["x"] is back at the entry context; a value captured
            # from a *mid-loop* context would not be.  Simulate by
            # deriving a context manually:
            stale = x.lctx.derive(x.lctx.tags, x.lctx.num_tags)
            rebound = x.with_context(stale)
            with pytest.raises(FlatteningError):
                state["x"].binary(rebound, lambda a, b: a + b)
            return state["x"]

        nested_map(ctx.bag_of([1]), udf)

    def test_inner_bag_requires_keyed_elements_for_keyed_ops(self,
                                                            nested):
        # The composite rekeying unpacks (key, value) elements; plain
        # ints fail inside the map UDF with a wrapped error.
        with pytest.raises(UdfError):
            nested.inner.reduce_by_key(lambda a, b: a + b).collect()

    def test_with_context_preserves_type(self, lctx):
        scalar = lctx.constant(1)
        derived = lctx.derive(lctx.tags, lctx.num_tags)
        assert isinstance(scalar.with_context(derived), InnerScalar)
        bag = InnerBag(lctx, lctx.tags.map(lambda t: (t, 0)))
        assert isinstance(bag.with_context(derived), InnerBag)


class TestLoopGuards:
    def test_lifted_loop_iteration_cap(self, ctx):
        def udf(x):
            return while_loop(
                {"x": x},
                cond_fn=lambda s: s["x"] > -1,  # never false
                body_fn=lambda s: {"x": s["x"] + 1},
                max_iterations=4,
            )["x"]

        with pytest.raises(FlatteningError) as err:
            nested_map(ctx.bag_of([1]), udf)
        assert "exceeded 4 iterations" in str(err.value)

    def test_condition_must_stay_lifted(self, ctx):
        def udf(x):
            calls = []

            def cond_fn(state):
                calls.append(1)
                if len(calls) == 1:
                    return state["x"] < 5
                return True  # switches to a plain bool: invalid

            return while_loop(
                {"x": x},
                cond_fn=cond_fn,
                body_fn=lambda s: {"x": s["x"] + 1},
            )["x"]

        with pytest.raises(FlatteningError):
            nested_map(ctx.bag_of([1]), udf)

"""The ``python -m repro.analysis`` command-line interface."""

import json

import pytest

from repro.analysis import cli

CLEAN = """\
from repro.lang import nested_udf


@nested_udf
def clean(x):
    total = 0
    while total < x:
        total = total + 1
    return total
"""

DIRTY = """\
from repro.lang import nested_udf


@nested_udf
def broken(x):
    try:
        y = x
    except ValueError:
        y = 0
    return y


@nested_udf
def mutator(x):
    global x
    return x
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean_udfs.py"
    path.write_text(CLEAN)
    return str(path)


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty_udfs.py"
    path.write_text(DIRTY)
    return str(path)


def run(argv, capsys):
    code = cli.main(argv)
    return code, capsys.readouterr().out


def test_clean_file_exits_zero(clean_file, capsys):
    code, out = run([clean_file], capsys)
    assert code == 0
    assert "0 error(s)" in out


def test_dirty_file_exits_one_with_locations(dirty_file, capsys):
    code, out = run([dirty_file, "--no-import"], capsys)
    assert code == 1
    assert "NPL101" in out
    assert "NPL104" in out
    # flake8-style file:line:col prefixes
    assert "dirty_udfs.py:6:5: NPL101" in out
    assert "dirty_udfs.py:15:5: NPL104" in out


def test_json_format(dirty_file, capsys):
    code, out = run(
        [dirty_file, "--no-import", "--format", "json"], capsys
    )
    assert code == 1
    payload = json.loads(out)
    assert payload["summary"]["error"] == 2
    found = {d["code"] for d in payload["diagnostics"]}
    # the global declaration is both unliftable (NPL104) and a proven
    # purity refutation (NPL501)
    assert found == {"NPL101", "NPL104", "NPL501"}
    for entry in payload["diagnostics"]:
        assert entry["line"] > 0
        if entry["code"] == "NPL501":
            assert entry["severity"] == "warning"
        else:
            assert entry["severity"] == "error"


def test_select_filters_codes(dirty_file, capsys):
    code, out = run(
        [dirty_file, "--no-import", "--select", "NPL104"], capsys
    )
    assert code == 1
    assert "NPL104" in out
    assert "NPL101" not in out


def test_ignore_suppresses_codes(dirty_file, capsys):
    code, out = run(
        [dirty_file, "--no-import", "--ignore", "NPL1"], capsys
    )
    assert code == 0
    assert "NPL101" not in out


def test_directory_walk(dirty_file, tmp_path, capsys):
    code, out = run([str(tmp_path), "--no-import"], capsys)
    assert code == 1
    assert "NPL101" in out


def test_no_files_exits_two(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert cli.main([str(empty)]) == 2


def test_import_failure_degrades_to_npl002(dirty_file, capsys):
    # Importing the dirty module raises UnsupportedConstructError at
    # decoration; the static findings must survive with an NPL002 note.
    code, out = run([dirty_file], capsys)
    assert code == 1
    assert "NPL101" in out
    assert "NPL002" in out


SCHEMA_BROKEN = """\
'''Module-level bags with provable schema mistakes.'''
from repro.engine import EngineContext, laptop_config

_ctx = EngineContext(laptop_config())

_left = _ctx.bag_of([(1, "a"), (2, "b")])
_right = _ctx.bag_of([("x", 3.0), ("y", 4.0)])
joined = _left.cogroup(_right)

_pairs = _ctx.bag_of([(1, 2), (3, 4)])
_flat = _ctx.bag_of([5, 6])
merged = _pairs.union(_flat)


def _list_key(x):
    return ([x], x)


keyed = _ctx.bag_of([1, 2, 3]).map(_list_key).group_by_key()
"""


@pytest.fixture
def schema_broken_file(tmp_path):
    path = tmp_path / "schema_broken.py"
    path.write_text(SCHEMA_BROKEN)
    return str(path)


def test_plan_pass_reports_npl6xx(schema_broken_file, capsys):
    code, out = run([schema_broken_file], capsys)
    assert code == 1  # NPL603 is an error
    assert "NPL601" in out
    assert "NPL602" in out
    assert "NPL603" in out
    # Plan findings carry the defining file for CI annotations.
    assert "schema_broken.py" in out


def test_npl6_prefix_selects_schema_family(schema_broken_file, capsys):
    code, out = run(
        [schema_broken_file, "--select", "NPL6", "--fail-on", "warning"],
        capsys,
    )
    assert code == 1
    assert "NPL601" in out
    assert "NPL602" in out
    # Non-schema families are filtered out.
    assert "NPL2" not in out and "NPL3" not in out


def test_npl6_prefix_ignores_schema_family(schema_broken_file, capsys):
    code, out = run(
        [schema_broken_file, "--ignore", "NPL6"], capsys
    )
    assert code == 0
    assert "NPL60" not in out


def test_npl6_fail_on_warning_threshold(schema_broken_file, capsys):
    # NPL601/602 are warnings: the default error threshold tolerates
    # them once the NPL603 error is ignored...
    code, _ = run(
        [schema_broken_file, "--select", "NPL601,NPL602"], capsys
    )
    assert code == 0
    # ...while --fail-on warning trips on them.
    code, _ = run(
        [
            schema_broken_file,
            "--select", "NPL601,NPL602",
            "--fail-on", "warning",
        ],
        capsys,
    )
    assert code == 1


def test_github_format_annotates_schema_findings(
    schema_broken_file, capsys
):
    code, out = run(
        [schema_broken_file, "--format", "github", "--select", "NPL6"],
        capsys,
    )
    assert code == 1
    assert "::error" in out
    assert "NPL603" in out


def test_import_pass_reports_closure_problems(tmp_path, capsys):
    path = tmp_path / "capturing.py"
    path.write_text(
        "import threading\n"
        "\n"
        "from repro.lang import nested_udf\n"
        "\n"
        "\n"
        "def make():\n"
        "    lock = threading.Lock()\n"
        "\n"
        "    @nested_udf\n"
        "    def locked(x):\n"
        "        y = lock.locked()\n"
        "        return x + y\n"
        "\n"
        "    return locked\n"
        "\n"
        "\n"
        "udf = make()\n"
    )
    code, out = run([str(path)], capsys)
    assert code == 1
    assert "NPL201" in out
    assert "'lock'" in out

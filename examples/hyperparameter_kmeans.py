"""Hyperparameter optimization with nested parallel K-means (Sec. 2.3).

Many random centroid initializations are tried in parallel, while each
individual training run is *also* data-parallel -- the nesting current
dataflow engines cannot express.  The training loop is an iterative
lifted while loop: configurations that converge early drop out of the
computation (Listing 4's P1-P3).

The second half of the example scores the trained arms on a held-out
validation set, one job per arm.  The jobs are independent, so they are
submitted side by side (``ctx.gather``) under the DAG stage scheduler
and compared against the serial one-at-a-time schedule: same costs,
same simulated seconds, measurably lower wall-clock.

Run:  python examples/hyperparameter_kmeans.py
"""

import time
from dataclasses import replace

import repro
from repro.data import clustered_points, initial_centroids
from repro.tasks import kmeans

NUM_CONFIGS = 8
K = 3

#: Modelled latency of fetching one validation shard from remote
#: storage inside a scoring task.  Real wall-clock the schedules can
#: overlap; invisible to the simulated cost model.
ARM_FETCH_S = 0.03
VALIDATION_PARTITIONS = 2

def model_cost(points, centroids):
    """Sum of squared distances to the nearest centroid (the metric the
    hyperparameter search minimizes)."""
    return sum(
        min(kmeans.squared_distance(p, c) for c in centroids)
        for p in points
    )

def score_arms(ctx, points, arms, side_by_side):
    """Score every arm on the validation bag, one job per arm.

    Sequentially (``side_by_side=False``) or concurrently via
    ``ctx.gather`` -- the per-arm jobs then interleave their stages over
    the shared worker pool.  Returns (costs, measured wall seconds).
    """
    validation = ctx.bag_of(points, num_partitions=VALIDATION_PARTITIONS)

    def arm_job(centroids):
        def fetch_and_score(shard, _index):
            time.sleep(ARM_FETCH_S)
            return [model_cost(shard, centroids)]

        return lambda: validation.map_partitions(fetch_and_score).sum()

    thunks = [arm_job(centroids) for _, centroids in arms]
    with ctx.measure() as measurement:
        if side_by_side:
            costs = ctx.gather(*thunks)
        else:
            costs = [thunk() for thunk in thunks]
    return costs, measurement.measured_seconds


def compare_arm_scheduling(points, arms):
    """Per-arm scoring jobs, serial schedule vs DAG + ``ctx.gather``.

    Both contexts use the process backend -- the arms' tasks really run
    in worker processes; the knobs are pinned so the comparison is about
    scheduling, not about how many cores this host happens to have.
    """
    config = replace(
        repro.paper_cluster_config(),
        backend="process",
        num_workers=4,
        max_concurrent_stages=8,
    )
    results = {}
    for label, scheduler, side_by_side in (
        ("one at a time (serial)", "serial", False),
        ("side by side (dag)", "dag", True),
    ):
        ctx = repro.EngineContext(config.with_scheduler(scheduler))
        try:
            # Unmeasured warm-up so neither schedule pays pool start-up.
            ctx.bag_of(list(range(4)), num_partitions=4).count()
            results[label] = score_arms(ctx, points, arms, side_by_side)
        finally:
            ctx.close()
    return results


def main():
    ctx = repro.EngineContext(repro.paper_cluster_config())

    points = clustered_points(600, k=K, seed=7)
    configs = initial_centroids(k=K, num_configs=NUM_CONFIGS, seed=7)

    # All configurations share the point bag (a closure of the lifted
    # UDF); the per-iteration assignment is the half-lifted
    # mapWithClosure of Sec. 8.3, with the broadcast side chosen at
    # runtime.
    trained = kmeans.kmeans_nested_shared(
        ctx, points, configs, max_iterations=15, tolerance=1e-3
    )

    print("Trained %d configurations in one nested-parallel program:"
          % NUM_CONFIGS)
    best = None
    for _tag, (config_id, centroids) in sorted(trained.collect()):
        cost = model_cost(points, centroids)
        marker = ""
        if best is None or cost < best[1]:
            best = (config_id, cost)
            marker = "  <- best so far"
        print("  %-6s cost %10.1f%s" % (config_id, cost, marker))

    print()
    print("Best configuration:", best[0], "cost %.1f" % best[1])
    print("Trace:", ctx.trace.summary())
    print("Simulated cluster runtime: %.1f s" % ctx.simulated_seconds())

    # Validation scoring: one independent job per arm.  Under the DAG
    # scheduler the arms run side by side over the same worker pool.
    arms = [arm for _tag, arm in sorted(trained.collect())]
    comparison = compare_arm_scheduling(points, arms)
    print()
    print("Scoring %d arms on the process backend:" % len(arms))
    walls = {}
    reference = None
    for label, (costs, wall) in comparison.items():
        walls[label] = wall
        if reference is None:
            reference = costs
        elif [round(c, 6) for c in costs] != [
            round(c, 6) for c in reference
        ]:
            raise AssertionError("schedules disagreed on arm costs")
        print("  %-24s %5.2f s wall" % (label, wall))
    speedup = walls["one at a time (serial)"] / walls["side by side (dag)"]
    print("  side-by-side speedup: %.1fx (same costs, same trace shape)"
          % speedup)

if __name__ == "__main__":
    main()

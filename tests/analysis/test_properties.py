"""Plan-property inference: partitioning, key preservation, bounds."""

from repro.analysis.properties import (
    HASH,
    NONE,
    infer_properties,
    partitioning_notes,
    udf_preserves_key,
)


def _add(a, b):
    return a + b


def _keyed(ctx, n=60, k=5):
    return ctx.bag_of(list(range(n))).map(lambda x: (x % k, x))


# ---------------------------------------------------------------------------
# the UDF key-preservation prover
# ---------------------------------------------------------------------------


def _identity(kv):
    return kv


def _map_value(kv):
    return (kv[0], kv[1] * 2)


def _keys_only(kv):
    return kv[0]


def _swap(kv):
    return (kv[1], kv[0])


def _rekey_const(kv):
    return (0, kv[1])


def _rekey_call(kv):
    return (hash(kv[0]), kv[1])


def _unpack_rebuild(kv):
    k, v = kv
    return (k, v + 1)


def _opaque(kv):
    return _swap(kv)


def _flat_pairs(kv):
    return [(kv[0], v) for v in kv[1]]


def _flat_rekeyed(kv):
    return [(v, kv[0]) for v in kv[1]]


def test_prover_identity_and_value_maps_preserve():
    assert udf_preserves_key(_identity) is True
    assert udf_preserves_key(_map_value) is True
    assert udf_preserves_key(_unpack_rebuild) is True
    assert udf_preserves_key(lambda kv: (kv[0], abs(kv[1]))) is True


def test_prover_key_rewrites_are_refuted():
    assert udf_preserves_key(_keys_only) is False
    assert udf_preserves_key(_swap) is False
    assert udf_preserves_key(_rekey_const) is False
    assert udf_preserves_key(lambda kv: kv[1]) is False


def test_prover_unknown_stays_unknown():
    # A computed key or a helper call is neither proven nor refuted.
    assert udf_preserves_key(_rekey_call) is None
    assert udf_preserves_key(_opaque) is None


def test_prover_flat_map_variants():
    assert udf_preserves_key(_flat_pairs, flat=True) is True
    assert udf_preserves_key(_flat_rekeyed, flat=True) is False
    assert udf_preserves_key(lambda kv: [kv], flat=True) is True


def test_prover_handles_builtins_without_source():
    assert udf_preserves_key(len) is None


# ---------------------------------------------------------------------------
# partitioning inference over plans
# ---------------------------------------------------------------------------


def test_shuffle_output_is_hash_partitioned(ctx):
    bag = _keyed(ctx).reduce_by_key(_add, 4)
    part = infer_properties(bag.node).partitioning_of(bag.node)
    assert part.kind == HASH
    assert part.num_partitions == 4
    assert part.origin is bag.node


def test_same_layout_shuffle_is_elided(ctx):
    rbk = _keyed(ctx).reduce_by_key(_add, 4)
    gbk = rbk.group_by_key(4)
    props = infer_properties(gbk.node)
    elision = props.elisions.get(id(gbk.node))
    assert elision is not None
    assert elision.choice == "elide"
    assert elision.origin is rbk.node


def test_partition_count_mismatch_blocks_elision(ctx):
    gbk = _keyed(ctx).reduce_by_key(_add, 4).group_by_key(8)
    props = infer_properties(gbk.node)
    assert id(gbk.node) not in props.elisions
    assert props.partitioning_of(gbk.node).num_partitions == 8


def test_key_preserving_map_inherits_partitioning(ctx):
    mapped = _keyed(ctx).reduce_by_key(_add, 4).map(_map_value)
    gbk = mapped.group_by_key(4)
    props = infer_properties(gbk.node)
    assert props.partitioning_of(mapped.node).kind == HASH
    assert props.elisions[id(gbk.node)].choice == "elide"


def test_key_rewriting_map_destroys_partitioning(ctx):
    mapped = _keyed(ctx).reduce_by_key(_add, 4).map(_swap)
    props = infer_properties(mapped.node)
    part = props.partitioning_of(mapped.node)
    assert part.kind == NONE
    assert part.reason == "rewrites-key"
    assert part.blame is mapped.node
    assert part.lost is not None and part.lost.num_partitions == 4


def test_preserves_partitioning_hint_overrides_unproven(ctx):
    rbk = _keyed(ctx).reduce_by_key(_add, 4)
    unproven = rbk.map(_opaque).group_by_key(4)
    hinted = rbk.map(_opaque, preserves_partitioning=True).group_by_key(4)
    assert id(unproven.node) not in infer_properties(unproven.node).elisions
    assert id(hinted.node) in infer_properties(hinted.node).elisions


def test_coalesce_destroys_hash_partitioning(ctx):
    bag = _keyed(ctx).reduce_by_key(_add, 4).coalesce(2)
    part = infer_properties(bag.node).partitioning_of(bag.node)
    assert part.kind == NONE
    assert part.reason == "coalesce"


def test_union_of_mixed_partitionings_is_unknown(ctx):
    rbk = _keyed(ctx).reduce_by_key(_add, 4)
    merged = rbk.union(_keyed(ctx))
    part = infer_properties(merged.node).partitioning_of(merged.node)
    assert part.kind == NONE
    assert part.reason == "union"


def test_cogroup_with_shared_origin_elides_both(ctx):
    rbk = _keyed(ctx).reduce_by_key(_add, 4).cache()
    joined = rbk.join(rbk, num_partitions=4)
    # join() builds pairs with a FlatMap above the CoGroup.
    cogroup = joined.node.child
    props = infer_properties(joined.node)
    elision = props.elisions.get(id(cogroup))
    assert elision is not None and elision.choice == "elide-both"


def test_cogroup_adopts_one_partitioned_side(ctx):
    rbk = _keyed(ctx).reduce_by_key(_add, 4)
    other = _keyed(ctx, n=40)
    joined = rbk.join(other, num_partitions=4)
    cogroup = joined.node.child
    props = infer_properties(joined.node)
    elision = props.elisions.get(id(cogroup))
    assert elision is not None and elision.choice == "adopt-left"
    assert elision.origin is rbk.node


# ---------------------------------------------------------------------------
# record bounds
# ---------------------------------------------------------------------------


def test_bounds_exact_through_maps_and_sums_through_union(ctx):
    base = ctx.bag_of(list(range(30)))
    props = infer_properties(base.node)
    assert props.bound_of(base.node).exact == 30

    mapped = base.map(lambda x: (x % 3, x))
    assert infer_properties(mapped.node).bound_of(mapped.node).exact == 30

    merged = mapped.union(ctx.bag_of(list(range(12))))
    assert infer_properties(merged.node).bound_of(merged.node).exact == 42


def test_bounds_filter_and_shuffle_keep_only_upper(ctx):
    filtered = ctx.bag_of(list(range(30))).filter(lambda x: x > 10)
    bound = infer_properties(filtered.node).bound_of(filtered.node)
    assert bound.exact is None
    assert bound.upper == 30

    reduced = _keyed(ctx, n=50).reduce_by_key(_add, 4)
    bound = infer_properties(reduced.node).bound_of(reduced.node)
    assert bound.exact is None
    assert bound.upper == 50


# ---------------------------------------------------------------------------
# explain(properties=True) annotations
# ---------------------------------------------------------------------------


def test_partitioning_notes_mark_hash_and_loss(ctx):
    mapped = _keyed(ctx).reduce_by_key(_add, 4).map(_swap)
    notes = partitioning_notes(mapped.node)
    rbk_node = mapped.node.child
    assert "hash(k0)" in notes[id(rbk_node)]
    assert "drops hash(k0)" in notes[id(mapped.node)]


def test_explain_properties_renders_annotations(ctx):
    bag = _keyed(ctx).reduce_by_key(_add, 4)
    plain = bag.explain()
    annotated = bag.explain(properties=True)
    assert "hash(k0)" not in plain
    assert "hash(k0)" in annotated
    assert "hash(k0)" in bag.explain(compact=True, properties=True)

"""K-means with hyperparameter optimization (paper Sec. 2.3, Fig. 1).

The nested-parallel task: try many initial centroid configurations, each
of which runs an iterative Lloyd's K-means.  Two nested formulations
appear in the paper and both are implemented:

* :func:`kmeans_nested_grouped` -- each configuration trains on its own
  sample of the data (``(config_id, point)`` records grouped into a
  NestedBag); this is the weak-scaling setup of Fig. 1 / Fig. 3a where
  per-configuration work varies inversely with the configuration count.
* :func:`kmeans_nested_shared` -- all configurations train on one shared
  point bag that lives *outside* the lifted UDF; the per-iteration
  assignment step is the half-lifted ``mapWithClosure`` cross product of
  Sec. 8.3 (current means = InnerScalar closure, points = primary input).

Plus the sequential reference, the flat per-configuration parallel
implementation (for the inner-parallel workaround), and the two
workaround runners.
"""

import math

from ..baselines.outer_parallel import run_outer_parallel
from ..engine.work import Weighted
from ..core.closures import half_lifted_map_with_closure
from ..core.control_flow import while_loop
from ..core.nestedbag import group_by_key_into_nested_bag, nested_map
from ..core.primitives import InnerScalar

DEFAULT_TOLERANCE = 1e-3
DEFAULT_MAX_ITERATIONS = 12


def squared_distance(a, b):
    return sum((x - y) ** 2 for x, y in zip(a, b))


def nearest_index(point, centroids):
    best, best_dist = 0, float("inf")
    for index, centroid in enumerate(centroids):
        dist = squared_distance(point, centroid)
        if dist < best_dist:
            best, best_dist = index, dist
    return best


def centroid_shift(old, new):
    """Total movement between two centroid tuples."""
    return sum(
        math.sqrt(squared_distance(a, b)) for a, b in zip(old, new)
    )


def _means_from_sums(old_centroids, sums):
    """New centroid tuple from ``{cluster_index: (sum_vector, count)}``.

    Empty clusters keep their previous centroid (standard Lloyd's
    convention).
    """
    new = list(old_centroids)
    for index, (vector_sum, count) in sums.items():
        new[index] = tuple(value / count for value in vector_sum)
    return tuple(new)


def _add_assignment(a, b):
    (sum_a, count_a), (sum_b, count_b) = a, b
    return (
        tuple(x + y for x, y in zip(sum_a, sum_b)),
        count_a + count_b,
    )


# ---------------------------------------------------------------------------
# Sequential reference (also the outer-parallel per-group UDF)
# ---------------------------------------------------------------------------


def kmeans_reference(points, centroids, max_iterations=None,
                     tolerance=DEFAULT_TOLERANCE):
    """Sequential Lloyd's K-means.

    Returns ``(centroids, iterations, work)`` where ``work`` counts
    point-assignment record-equivalents for the cost model.
    """
    limit = max_iterations or DEFAULT_MAX_ITERATIONS
    work = 0
    iterations = 0
    current = tuple(tuple(c) for c in centroids)
    while iterations < limit:
        sums = {}
        for point in points:
            index = nearest_index(point, current)
            entry = sums.get(index)
            if entry is None:
                sums[index] = (point, 1)
            else:
                sums[index] = _add_assignment(entry, (point, 1))
        work += len(points) * len(current)
        new = _means_from_sums(current, sums)
        iterations += 1
        shift = centroid_shift(current, new)
        current = new
        if tolerance is not None and shift <= tolerance:
            break
    return current, iterations, work


# ---------------------------------------------------------------------------
# Flat parallel K-means (one configuration) -- the inner-parallel unit
# ---------------------------------------------------------------------------


def kmeans_parallel(ctx, points, centroids, max_iterations=None,
                    tolerance=DEFAULT_TOLERANCE):
    """Data-parallel K-means for one configuration (driver-side loop).

    Each iteration broadcasts the means, assigns points with a map,
    reduces per cluster, and collects the new means -- one job per
    iteration, exactly the Spark pattern whose job-launch overhead the
    inner-parallel workaround multiplies by the configuration count.
    """
    limit = max_iterations or DEFAULT_MAX_ITERATIONS
    bag = ctx.bag_of(points).cache()
    current = tuple(tuple(c) for c in centroids)
    for _ in range(limit):
        means = ctx.broadcast(current, num_records=len(current))
        sums = (
            bag.map(
                lambda p, m=means: Weighted(
                    (nearest_index(p, m.value), (p, 1)), len(m.value)
                )
            )
            .reduce_by_key(_add_assignment)
            .collect(label="kmeans iteration")
        )
        new = _means_from_sums(current, dict(sums))
        shift = centroid_shift(current, new)
        current = new
        if tolerance is not None and shift <= tolerance:
            break
    return current


# ---------------------------------------------------------------------------
# Matryoshka: grouped points (weak scaling / Fig. 1 / Fig. 3a)
# ---------------------------------------------------------------------------


def kmeans_nested_grouped(grouped_points_bag, configs, lowering=None,
                          max_iterations=None,
                          tolerance=DEFAULT_TOLERANCE):
    """Nested K-means over per-configuration samples.

    Args:
        grouped_points_bag: ``Bag[(config_id, point)]``.
        configs: ``[(config_id, centroid_tuple), ...]`` -- the
            hyperparameter settings; config ids must match the grouping
            keys.
        lowering: Optional LoweringConfig for the optimizer.

    Returns:
        ``Bag[(config_id, centroid_tuple)]`` of the trained models.
    """
    limit = max_iterations or DEFAULT_MAX_ITERATIONS
    nested = group_by_key_into_nested_bag(grouped_points_bag, lowering)
    lctx = nested.lctx
    points = nested.inner
    config_map = dict(configs)
    means = InnerScalar(
        lctx, lctx.tags.map(lambda tag: (tag, config_map[tag]))
    )

    def body(state):
        assigned = state["points"].map_with_closure(
            state["means"],
            # Work annotation: one distance evaluation per centroid.
            lambda point, m: Weighted(
                (nearest_index(point, m), (point, 1)), len(m)
            ),
        )
        sums = assigned.reduce_by_key(_add_assignment)
        gathered = sums.collect_per_tag()
        new_means = state["means"].binary(
            gathered, lambda m, kv: _means_from_sums(m, dict(kv))
        )
        if tolerance is None:
            shift = state["shift"]
        else:
            shift = state["means"].binary(new_means, centroid_shift)
        return {
            "points": state["points"],
            "means": new_means,
            "shift": shift,
            "it": state["it"] + 1,
        }

    state = while_loop(
        {
            "points": points,
            "means": means,
            "shift": lctx.constant(float("inf")),
            "it": lctx.constant(0),
        },
        cond_fn=_kmeans_condition(limit, tolerance),
        body_fn=body,
    )
    return state["means"].to_bag()


def _kmeans_condition(limit, tolerance):
    if tolerance is None:
        return lambda state: state["it"] < limit
    return lambda state: (
        (state["shift"] > tolerance) & (state["it"] < limit)
    )


# ---------------------------------------------------------------------------
# Matryoshka: shared points (half-lifted mapWithClosure / Fig. 8 right)
# ---------------------------------------------------------------------------


def kmeans_nested_shared(ctx, points, configs, lowering=None,
                         max_iterations=None,
                         tolerance=DEFAULT_TOLERANCE, cross_side=None):
    """Nested K-means where all configurations share one point bag.

    The point bag is a closure of the lifted UDF (it does not change
    between K-means runs), so the assignment step is the half-lifted
    ``mapWithClosure`` of Sec. 8.3: a cross product between the points
    and the per-configuration means, with the broadcast side chosen at
    runtime (or forced via ``cross_side``).

    Returns ``Bag[(tag, (config_id, centroids))]``.
    """
    limit = max_iterations or DEFAULT_MAX_ITERATIONS
    points_bag = ctx.bag_of(points).cache()
    configs_bag = ctx.bag_of(configs)

    def train(config_scalar):
        means = config_scalar.map(lambda cfg: cfg[1])

        def body(state):
            # The means InnerScalar only holds live tags, so the cross
            # product shrinks as configurations converge.
            assigned = half_lifted_map_with_closure(
                points_bag,
                state["means"],
                lambda point, m: Weighted(
                    (nearest_index(point, m), (point, 1)), len(m)
                ),
                side=cross_side,
            )
            sums = assigned.reduce_by_key(_add_assignment)
            gathered = sums.collect_per_tag()
            new_means = state["means"].binary(
                gathered, lambda m, kv: _means_from_sums(m, dict(kv))
            )
            if tolerance is None:
                shift = state["shift"]
            else:
                shift = state["means"].binary(new_means, centroid_shift)
            return {
                "means": new_means,
                "shift": shift,
                "it": state["it"] + 1,
            }

        lctx = config_scalar.lctx
        state = while_loop(
            {
                "means": means,
                "shift": lctx.constant(float("inf")),
                "it": lctx.constant(0),
            },
            cond_fn=_kmeans_condition(limit, tolerance),
            body_fn=body,
        )
        return config_scalar.binary(
            state["means"], lambda cfg, m: (cfg[0], m)
        )

    result = nested_map(configs_bag, train, lowering)
    return result.to_bag()


# ---------------------------------------------------------------------------
# Workarounds
# ---------------------------------------------------------------------------


def kmeans_outer(grouped_points_bag, configs, max_iterations=None,
                 tolerance=DEFAULT_TOLERANCE):
    """Outer-parallel: one sequential K-means per materialized group."""
    config_map = dict(configs)

    def udf(config_id, points):
        centroids, _iters, work = kmeans_reference(
            points, config_map[config_id], max_iterations, tolerance
        )
        return centroids, work

    return run_outer_parallel(grouped_points_bag, udf)


def kmeans_inner(ctx, groups, configs, max_iterations=None,
                 tolerance=DEFAULT_TOLERANCE):
    """Inner-parallel: a full parallel K-means job chain per config."""
    config_map = dict(configs)
    results = []
    for key in sorted(groups, key=repr):
        results.append(
            (
                key,
                kmeans_parallel(
                    ctx, groups[key], config_map[key], max_iterations,
                    tolerance,
                ),
            )
        )
    return results

"""Run reports: one schema-versioned JSON per measured engine run.

A :class:`RunReport` merges, per run ("entry") and per stage, the three
views the rest of the repo keeps separately:

* **simulated** seconds -- the cost model over the execution trace (the
  paper's figures);
* **measured** seconds -- real wall-clock: driver elapsed time per run
  and the task runtime's summed per-task seconds per stage;
* **volume and robustness** counters -- shuffle records/bytes, spills,
  broadcast volume, retries, straggler flags.

Reports persist as JSON (``save``/``load``, ``schema_version`` checked
on load) and diff structurally: :func:`RunReport.compare` matches
entries by ``(system, x)`` and stages positionally within each job,
producing per-stage deltas and a regression verdict per entry --
the contract ``python -m repro.bench --check-regressions`` and
``python -m repro.observe diff`` are built on.
"""

import json
import math

SCHEMA_VERSION = 1

#: Default regression gate: fail when a metric grows by more than 25%...
DEFAULT_THRESHOLD = 0.25
#: ... and by more than this many absolute seconds (guards tiny stages).
DEFAULT_MIN_SECONDS = 1e-3


def _entry_key(entry):
    return (str(entry.get("system")), str(entry.get("x")))


def _stage_bytes(stage, config):
    rate = (
        config.result_record_bytes if stage.meta
        else config.bytes_per_record
    )
    return int(stage.shuffle_read_records * rate)


def _stage_bytes_saved(stage, config):
    """Bytes the optimizer's shuffle elision kept off the wire."""
    rate = (
        config.result_record_bytes if stage.meta
        else config.bytes_per_record
    )
    return int(stage.shuffle_records_saved * rate)


def _stage_entry(stage, cost_model):
    cost = cost_model.stage_cost(stage)
    return {
        "stage_id": stage.stage_id,
        "kind": stage.kind,
        "origin": stage.origin,
        "meta": stage.meta,
        "tasks": stage.num_tasks,
        "records": stage.total_records,
        "shuffle_records": stage.shuffle_read_records,
        "shuffle_bytes": _stage_bytes(stage, cost_model.config),
        "shuffle_records_saved": stage.shuffle_records_saved,
        "shuffle_bytes_saved": _stage_bytes_saved(
            stage, cost_model.config
        ),
        "spilled_records": stage.spilled_records,
        "measured_seconds": stage.measured_seconds,
        "failed_attempt_seconds": stage.failed_attempt_seconds,
        "simulated_seconds": cost.total_s,
        "retries": stage.task_retries,
        "stragglers": stage.straggler_tasks,
    }


def entry_from_jobs(job_metrics, cost_model, system, x, status="ok",
                    measured_wall_seconds=None, detail=""):
    """Summarize a list of :class:`JobMetrics` as one report entry.

    The general form of :func:`entry_from_context`: it takes the job
    list directly instead of a context's live trace, so callers that
    *drain* jobs as they complete -- the :mod:`repro.serve` daemon
    building per-tenant reports from each job's
    :class:`~repro.engine.context.JobAccounting` -- can still produce
    full per-stage report entries.  The entry is self-contained JSON
    data: per-job and per-stage breakdowns plus run-level totals.
    ``status`` mirrors the bench harness (``"ok"`` / ``"oom"`` /
    ``"skipped"``).
    """
    job_metrics = list(job_metrics)
    jobs = []
    for job in job_metrics:
        jobs.append(
            {
                "job_id": job.job_id,
                "action": job.action,
                "label": job.label,
                "simulated_seconds": cost_model.job_cost(job).total_s,
                "measured_task_seconds": job.measured_task_seconds,
                "broadcast_records": job.broadcast_records,
                "collected_records": job.collected_records,
                "stages": [
                    _stage_entry(stage, cost_model)
                    for stage in job.stages
                ],
            }
        )
    entry = {
        "system": system,
        "x": x,
        "status": status,
        "detail": detail,
        "backend": cost_model.config.backend,
        "simulated_seconds": (
            sum(job["simulated_seconds"] for job in jobs)
            if status == "ok" else None
        ),
        "measured_task_seconds": sum(
            job.measured_task_seconds for job in job_metrics
        ),
        "measured_wall_seconds": measured_wall_seconds,
        "totals": {
            "jobs": len(job_metrics),
            "stages": sum(len(job.stages) for job in job_metrics),
            "tasks": sum(
                stage.num_tasks
                for job in job_metrics
                for stage in job.stages
            ),
            "records": sum(job.total_records for job in job_metrics),
            "shuffle_records": sum(
                job.total_shuffle_records for job in job_metrics
            ),
            "shuffle_bytes": sum(
                stage["shuffle_bytes"]
                for job in jobs
                for stage in job["stages"]
            ),
            "shuffle_records_saved": sum(
                stage["shuffle_records_saved"]
                for job in jobs
                for stage in job["stages"]
            ),
            "shuffle_bytes_saved": sum(
                stage["shuffle_bytes_saved"]
                for job in jobs
                for stage in job["stages"]
            ),
            "spilled_records": sum(
                stage["spilled_records"]
                for job in jobs
                for stage in job["stages"]
            ),
            "retries": sum(job.task_retries for job in job_metrics),
            "stragglers": sum(
                stage["stragglers"]
                for job in jobs
                for stage in job["stages"]
            ),
            "failed_attempt_seconds": sum(
                stage["failed_attempt_seconds"]
                for job in jobs
                for stage in job["stages"]
            ),
        },
        "jobs": jobs,
    }
    return entry


def entry_from_context(ctx, system, x, status="ok",
                       measured_wall_seconds=None, detail=""):
    """Summarize everything ``ctx`` ran as one report entry (a dict).

    Delegates to :func:`entry_from_jobs` over the context's live trace.
    """
    return entry_from_jobs(
        ctx.trace.jobs, ctx.cost_model, system, x, status=status,
        measured_wall_seconds=measured_wall_seconds, detail=detail,
    )


class RunReport:
    """A labelled collection of run entries, persistable and diffable."""

    def __init__(self, label, entries=None, meta=None):
        self.label = label
        self.entries = list(entries) if entries else []
        self.meta = dict(meta) if meta else {}

    # -- construction --------------------------------------------------

    @classmethod
    def from_context(cls, ctx, label, system="engine", x=None,
                     measured_wall_seconds=None, meta=None):
        """One-entry report for everything ``ctx`` has run so far."""
        report = cls(label, meta=meta)
        report.add(
            entry_from_context(
                ctx, system, x,
                measured_wall_seconds=measured_wall_seconds,
            )
        )
        return report

    def add(self, entry):
        if entry is not None:
            self.entries.append(entry)
        return self

    def entry_for(self, system, x):
        for entry in self.entries:
            if _entry_key(entry) == (str(system), str(x)):
                return entry
        return None

    # -- persistence ---------------------------------------------------

    def to_dict(self):
        return {
            "schema_version": SCHEMA_VERSION,
            "label": self.label,
            "meta": self.meta,
            "entries": self.entries,
        }

    def save(self, path):
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def from_dict(cls, data):
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                "unsupported report schema_version %r (this build "
                "reads version %d)" % (version, SCHEMA_VERSION)
            )
        return cls(
            data.get("label", ""),
            entries=data.get("entries", []),
            meta=data.get("meta", {}),
        )

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    # -- comparison ----------------------------------------------------

    @staticmethod
    def compare(baseline, candidate, threshold=DEFAULT_THRESHOLD,
                min_seconds=DEFAULT_MIN_SECONDS, metric="simulated"):
        """Diff two reports; see :class:`ReportDiff`.

        Args:
            baseline: The reference :class:`RunReport`.
            candidate: The report under test.
            threshold: Relative growth beyond which a matched entry or
                stage is a regression (0.25 = 25% slower).
            min_seconds: Absolute growth floor below which nothing is
                flagged (protects sub-millisecond stages from noise).
            metric: ``"simulated"`` (deterministic; the default),
                ``"measured"`` (summed task wall-clock), or ``"wall"``
                (driver wall-clock; entry-level only).
        """
        return ReportDiff(baseline, candidate, threshold=threshold,
                          min_seconds=min_seconds, metric=metric)


def _metric_of(record, metric, stage=False):
    if metric == "simulated":
        value = record.get("simulated_seconds")
    elif metric == "measured":
        value = record.get(
            "measured_seconds" if stage else "measured_task_seconds"
        )
    elif metric == "wall":
        value = None if stage else record.get("measured_wall_seconds")
    else:
        raise ValueError(
            "metric must be 'simulated', 'measured' or 'wall', got %r"
            % (metric,)
        )
    return value


class Delta:
    """One before/after pair with its verdict."""

    __slots__ = ("key", "before", "after", "regression", "improvement")

    def __init__(self, key, before, after, threshold, min_seconds):
        self.key = key
        self.before = before
        self.after = after
        self.regression = False
        self.improvement = False
        if before is None or after is None:
            return
        if math.isnan(before) or math.isnan(after):
            return
        if after > before * (1 + threshold) and (
            after - before
        ) > min_seconds:
            self.regression = True
        elif before > after * (1 + threshold) and (
            before - after
        ) > min_seconds:
            self.improvement = True

    @property
    def delta(self):
        if self.before is None or self.after is None:
            return None
        return self.after - self.before

    @property
    def percent(self):
        if self.before in (None, 0) or self.after is None:
            return None
        return 100.0 * (self.after - self.before) / self.before

    def verdict(self):
        if self.regression:
            return "REGRESSION"
        if self.improvement:
            return "improved"
        return "ok"


class ReportDiff:
    """Structural diff of two :class:`RunReport` objects.

    Attributes:
        entry_deltas: One :class:`Delta` per entry present in both
            reports (keyed ``system@x``).
        stage_deltas: Per-stage :class:`Delta` rows for matched entries
            (keyed ``system@x job<j>/stage<s>:<kind><-origin``).
        missing: Entry keys only in the baseline.
        added: Entry keys only in the candidate.
    """

    def __init__(self, baseline, candidate, threshold=DEFAULT_THRESHOLD,
                 min_seconds=DEFAULT_MIN_SECONDS, metric="simulated"):
        self.baseline = baseline
        self.candidate = candidate
        self.threshold = threshold
        self.min_seconds = min_seconds
        self.metric = metric
        self.entry_deltas = []
        self.stage_deltas = []
        self.missing = []
        self.added = []
        self._build()

    def _build(self):
        before = {
            _entry_key(entry): entry for entry in self.baseline.entries
        }
        after = {
            _entry_key(entry): entry for entry in self.candidate.entries
        }
        self.missing = sorted(
            "%s@%s" % key for key in before if key not in after
        )
        self.added = sorted(
            "%s@%s" % key for key in after if key not in before
        )
        for key, entry_a in before.items():
            entry_b = after.get(key)
            if entry_b is None:
                continue
            label = "%s@%s" % key
            self.entry_deltas.append(
                Delta(
                    label,
                    _metric_of(entry_a, self.metric),
                    _metric_of(entry_b, self.metric),
                    self.threshold,
                    self.min_seconds,
                )
            )
            if self.metric == "wall":
                continue
            self._build_stages(label, entry_a, entry_b)

    def _build_stages(self, label, entry_a, entry_b):
        jobs_a = entry_a.get("jobs") or []
        jobs_b = entry_b.get("jobs") or []
        for j, (job_a, job_b) in enumerate(zip(jobs_a, jobs_b)):
            stages_a = job_a.get("stages") or []
            stages_b = job_b.get("stages") or []
            for s, (stage_a, stage_b) in enumerate(
                zip(stages_a, stages_b)
            ):
                origin = stage_a.get("origin") or stage_b.get("origin")
                key = "%s job%d/stage%d:%s%s" % (
                    label, j, s, stage_a.get("kind", "?"),
                    "<-%s" % origin if origin else "",
                )
                self.stage_deltas.append(
                    Delta(
                        key,
                        _metric_of(stage_a, self.metric, stage=True),
                        _metric_of(stage_b, self.metric, stage=True),
                        self.threshold,
                        self.min_seconds,
                    )
                )

    # -- verdicts ------------------------------------------------------

    @property
    def regressions(self):
        return [d for d in self.entry_deltas if d.regression]

    @property
    def stage_regressions(self):
        return [d for d in self.stage_deltas if d.regression]

    @property
    def has_regressions(self):
        return bool(self.regressions or self.stage_regressions)

    # -- rendering -----------------------------------------------------

    def render(self, show_ok_stages=False):
        """Human-readable diff: entry table plus flagged stage rows."""
        lines = [
            "report diff: %s -> %s  (metric=%s, threshold=+%d%%)"
            % (
                self.baseline.label, self.candidate.label, self.metric,
                round(self.threshold * 100),
            )
        ]
        for name in self.missing:
            lines.append("  missing in candidate: %s" % name)
        for name in self.added:
            lines.append("  new in candidate: %s" % name)
        for delta in self.entry_deltas:
            lines.append("  %s" % _format_delta(delta))
        flagged = [
            d for d in self.stage_deltas
            if show_ok_stages or d.regression or d.improvement
        ]
        if flagged:
            lines.append("  per-stage deltas:")
            for delta in flagged:
                lines.append("    %s" % _format_delta(delta))
        if not self.entry_deltas:
            lines.append("  (no comparable entries)")
        lines.append(
            "verdict: %s"
            % (
                "REGRESSION (%d entry, %d stage)"
                % (len(self.regressions), len(self.stage_regressions))
                if self.has_regressions
                else "ok"
            )
        )
        return "\n".join(lines)


def _format_delta(delta):
    def fmt(value):
        return "-" if value is None else "%.3fs" % value

    percent = delta.percent
    change = "" if percent is None else " (%+.1f%%)" % percent
    return "%-60s %s -> %s%s  [%s]" % (
        delta.key, fmt(delta.before), fmt(delta.after), change,
        delta.verdict(),
    )

"""Lifted control flow (paper Sec. 6).

The parsing phase turns ``while`` and ``if`` statements into calls to the
higher-order functions in this module (Sec. 6.1).  When the condition is a
plain Python value the functions degrade to ordinary control flow, so the
same UDF source composes at any nesting level; when the condition is an
:class:`~repro.core.primitives.InnerScalar` of booleans, the lifted
versions run (Sec. 6.2).

The lifted while loop implements Listing 4: iteration *i* of the lifted
loop executes iteration *i* of every original loop that is still live.
Per iteration it

* (P1) joins every loop variable with the lifted exit condition on the
  tags and discards the parts whose original loops have finished,
* (P2) saves those discarded parts into result bags, and
* (P3) exits once no tag remains live.

Both the plain and the lifted loop unroll into lineage: every iteration
appends operators to the plan of each loop variable, so long-running
loops naturally build plans thousands of operators deep.  The engine's
iterative executor evaluates such chains stack-safely (constant Python
call depth regardless of lineage depth), so the per-iteration caching
below exists purely to avoid *recomputation* across iterations -- not
to keep plans shallow enough to evaluate.
"""

import contextlib

from ..errors import FlatteningError
from .primitives import InnerBag, InnerScalar

_DEFAULT_MAX_ITERATIONS = 10_000

# Stack of lifting contexts for currently-executing cond() branches, so
# branch bodies can create fresh lifted values with matching tag subsets.
_BRANCH_STACK = []


#: Plain types that are lifted to per-tag constants when they are loop
#: variables of a lifted loop ("we also turn variables that are passed
#: between iterations into InnerBags and/or InnerScalars", Sec. 6.2).
_LIFTABLE_SCALARS = (int, float, bool, str, bytes, tuple, frozenset,
                     type(None))


def while_loop(state, cond_fn, body_fn, max_iterations=None,
               loop_vars=None):
    """Run ``body_fn`` while ``cond_fn`` holds (pre-test semantics).

    Args:
        state: Dict of loop variables.  Every lifted value (InnerScalar /
            InnerBag) the body uses -- including loop-invariant ones --
            must be in the state, because live tags shrink as original
            loops finish and all operands must share one tag set.
            Plain Python values may be included: those named in
            ``loop_vars`` are lifted to per-tag constants when the loop is
            lifted; the rest stay shared across tags.
        cond_fn: ``state -> bool | InnerScalar[bool]``.
        body_fn: ``state -> state`` (same keys).
        max_iterations: Safety bound (default 10000).
        loop_vars: Names of state entries the body reassigns.  Their
            values differ per tag once original loops exit at different
            iterations, so plain scalars among them are lifted at entry.
            The parsing phase computes this set automatically.

    Returns:
        The final state.  Lifted variables contain, under each tag, the
        value they had when *that tag's* loop exited.
    """
    limit = max_iterations or _DEFAULT_MAX_ITERATIONS
    probe = cond_fn(state)
    if not isinstance(probe, InnerScalar):
        return _plain_while(state, probe, cond_fn, body_fn, limit)
    state = _lift_loop_vars(state, probe.lctx, loop_vars)
    return _lifted_while(state, probe, cond_fn, body_fn, limit)


def _lift_loop_vars(state, lctx, loop_vars):
    if not loop_vars:
        return state
    lifted = dict(state)
    for name in loop_vars:
        value = lifted.get(name)
        if isinstance(value, (InnerScalar, InnerBag)):
            continue
        if isinstance(value, _LIFTABLE_SCALARS) or value is None:
            lifted[name] = lctx.constant(value)
    return lifted


def _plain_while(state, probe, cond_fn, body_fn, limit):
    iterations = 0
    while probe:
        iterations += 1
        if iterations > limit:
            raise FlatteningError(
                "while_loop exceeded %d iterations" % limit
            )
        state = body_fn(state)
        probe = cond_fn(state)
    return state


def _lifted_while(state, cond_scalar, cond_fn, body_fn, limit):
    entry_contexts = {
        name: value.lctx
        for name, value in state.items()
        if isinstance(value, (InnerScalar, InnerBag))
    }
    if not entry_contexts:
        raise FlatteningError(
            "lifted while loop needs at least one lifted loop variable"
        )
    finished_parts = {name: [] for name in entry_contexts}
    live_state = dict(state)
    iterations = 0
    while True:
        live_state, num_live = _split_on_condition(
            live_state, cond_scalar, finished_parts
        )
        if num_live == 0:
            break
        iterations += 1
        if iterations > limit:
            raise FlatteningError(
                "lifted while_loop exceeded %d iterations" % limit
            )
        live_state = body_fn(live_state)
        cond_scalar = _check_condition(cond_fn(live_state))
    return _assemble_results(state, entry_contexts, finished_parts,
                             live_state)


def _check_condition(cond):
    if not isinstance(cond, InnerScalar):
        raise FlatteningError(
            "loop condition changed from lifted to plain between "
            "iterations; conditions must stay InnerScalar[bool]"
        )
    return cond


def _split_on_condition(live_state, cond_scalar, finished_parts):
    """P1 + P2: discard finished tags, saving their values (Listing 4)."""
    lctx = cond_scalar.lctx
    optimizer = lctx.optimizer
    cond_scalar.repr.cache()
    live_tags = cond_scalar.repr.filter(_value_true).keys().cache()
    continuing = {}
    checkpoint = [live_tags]
    for name, value in live_state.items():
        if not isinstance(value, (InnerScalar, InnerBag)):
            continuing[name] = value
            continue
        if value.lctx is not lctx:
            raise FlatteningError(
                "loop variable %r is not in the loop condition's lifting "
                "context; pass every lifted value the body uses through "
                "the loop state" % name
            )
        joined = optimizer.join_with_scalar(value.repr, cond_scalar)
        live_part = joined.filter(_pair_true).map(_drop_flag).cache()
        done_part = joined.filter(_pair_false).map(_drop_flag).cache()
        finished_parts[name].append(done_part)
        continuing[name] = _Pending(type(value), live_part)
        checkpoint.append(live_part)
        checkpoint.append(done_part)
    # One job materializes every cached per-iteration bag (P3's emptiness
    # check rides along): the job count per iteration is constant, which
    # is exactly why Matryoshka beats the inner-parallel workaround.
    # Materializing also resets each variable's lineage to the cached
    # partitions, so later iterations recompute nothing upstream.
    _materialize(checkpoint)
    num_live = live_tags.count(label="lifted-loop live tags")
    if num_live == 0:
        return live_state, 0
    new_lctx = lctx.derive(live_tags, num_live)
    rebuilt = {}
    for name, value in continuing.items():
        if isinstance(value, _Pending):
            rebuilt[name] = value.cls(new_lctx, value.bag)
        else:
            rebuilt[name] = value
    return rebuilt, num_live


class _Pending:
    """A filtered loop variable awaiting its next-iteration context."""

    __slots__ = ("cls", "bag")

    def __init__(self, cls, bag):
        self.cls = cls
        self.bag = bag


def _materialize(bags):
    union = bags[0]
    if len(bags) > 1:
        union = union.union(*bags[1:])
    union.count(label="lifted-loop checkpoint")


def _assemble_results(entry_state, entry_contexts, finished_parts,
                      final_state):
    result = {}
    for name, entry_value in entry_state.items():
        if name not in entry_contexts:
            result[name] = final_state.get(name, entry_value)
            continue
        parts = finished_parts[name]
        cls = type(entry_value)
        first = parts[0]
        union = first.union(*parts[1:]) if len(parts) > 1 else first
        union = union.coalesce(
            max(part.num_partitions for part in parts)
        )
        result[name] = cls(entry_contexts[name], union)
    return result


def cond(pred, then_fn, else_fn, state):
    """Lifted ``if`` statement (paper Sec. 6.2).

    When ``pred`` is a plain value, exactly one branch runs.  When it is
    an ``InnerScalar[bool]``, *both* branches run, each seeing only the
    state restricted to the tags for which the predicate had the matching
    value; the branch results are unioned per variable.

    Args:
        pred: bool or InnerScalar[bool].
        then_fn / else_fn: ``state -> state`` (same keys).  ``else_fn``
            may be ``None`` for an if-without-else (state passes through
            unchanged for false tags).
        state: Dict of variables read or assigned by the branches.

    Returns:
        The merged state.
    """
    if not isinstance(pred, InnerScalar):
        if pred:
            return then_fn(state)
        return else_fn(state) if else_fn is not None else state
    lctx = pred.lctx
    pred.repr.cache()
    then_lctx, then_state = _restricted_state(state, pred, True)
    else_lctx, else_state = _restricted_state(state, pred, False)
    with _entered_branch(then_lctx):
        then_out = then_fn(then_state)
    if else_fn is not None:
        with _entered_branch(else_lctx):
            else_out = else_fn(else_state)
    else:
        else_out = else_state
    if set(then_out) != set(else_out):
        raise FlatteningError(
            "branches produced different variable sets: %r vs %r"
            % (sorted(then_out), sorted(else_out))
        )
    merged = {}
    for name in then_out:
        merged[name] = _merge_branch_values(
            name, then_out[name], then_lctx, else_out[name], else_lctx,
            lctx,
        )
    return merged


@contextlib.contextmanager
def _entered_branch(lctx):
    _BRANCH_STACK.append(lctx)
    try:
        yield
    finally:
        _BRANCH_STACK.pop()


def branch_context():
    """The lifting context of the innermost executing ``cond`` branch.

    Branch functions that create fresh lifted values (constants, new
    bags) must create them in this context so the merge unions align.
    """
    if not _BRANCH_STACK:
        raise FlatteningError(
            "branch_context() is only available inside cond branches"
        )
    return _BRANCH_STACK[-1]


def _restricted_state(state, pred, keep):
    lctx = pred.lctx
    optimizer = lctx.optimizer
    tags = pred.repr.filter(
        _value_true if keep else _value_false
    ).keys().cache()
    # num_tags stays the parent's count: an upper bound is enough for the
    # optimizer, and avoids an extra count job per branch.
    branch_lctx = lctx.derive(tags, lctx.num_tags)
    restricted = {}
    for name, value in state.items():
        if not isinstance(value, (InnerScalar, InnerBag)):
            restricted[name] = value
            continue
        if value.lctx is not lctx:
            raise FlatteningError(
                "state variable %r is not in the predicate's lifting "
                "context" % name
            )
        joined = optimizer.join_with_scalar(value.repr, pred)
        wanted = _pair_true if keep else _pair_false
        bag = joined.filter(wanted).map(_drop_flag)
        restricted[name] = type(value)(branch_lctx, bag)
    return branch_lctx, restricted


def _merge_branch_values(name, then_value, then_lctx, else_value,
                         else_lctx, lctx):
    then_lifted = isinstance(then_value, (InnerScalar, InnerBag))
    else_lifted = isinstance(else_value, (InnerScalar, InnerBag))
    if not then_lifted and not else_lifted:
        if then_value is else_value or then_value == else_value:
            return then_value
        # Both branches produced plain values that differ: each branch's
        # tags take that branch's constant (the per-tag semantics of the
        # original if statement).
        then_value = then_lctx.constant(then_value)
        else_value = else_lctx.constant(else_value)
        then_lifted = else_lifted = True
    if not then_lifted:
        then_value = _lift_constant(then_value, else_value, then_lctx)
    if not else_lifted:
        else_value = _lift_constant(else_value, then_value, else_lctx)
    if type(then_value) is not type(else_value):
        raise FlatteningError(
            "variable %r has mismatched lifted types across branches"
            % name
        )
    # Coalesce after the union: merging branches must not grow the
    # partition count, or a lifted if inside a lifted loop doubles it
    # every iteration.
    target = max(
        then_value.repr.num_partitions, else_value.repr.num_partitions
    )
    merged_bag = then_value.repr.union(else_value.repr).coalesce(target)
    return type(then_value)(lctx, merged_bag)


def _lift_constant(value, other, branch_lctx):
    if isinstance(other, InnerBag):
        raise FlatteningError(
            "cannot merge a plain value with an InnerBag branch result"
        )
    return branch_lctx.constant(value)


def _value_true(tv):
    return bool(tv[1])


def _value_false(tv):
    return not tv[1]


def _pair_true(record):
    return bool(record[1][1])


def _pair_false(record):
    return not record[1][1]


def _drop_flag(record):
    return (record[0], record[1][0])
